"""Baseline stride and next-line L1D prefetchers."""

from repro.prefetch import make_l1d_prefetcher
from repro.prefetch.stride import NextLineDataPrefetcher, StridePrefetcher
from repro.vm.address import LINE_SHIFT


def run(p, lines, pc=0x400):
    out = []
    for i, line in enumerate(lines):
        out = p.on_access(pc, line << LINE_SHIFT, False, float(i))
    return out


class TestStride:
    def test_learns_constant_stride(self):
        p = StridePrefetcher(degree=2)
        requests = run(p, [i * 5 for i in range(8)])
        assert [r.delta for r in requests] == [5, 10]

    def test_no_prefetch_before_confidence(self):
        p = StridePrefetcher()
        assert run(p, [0, 5]) == []

    def test_irregular_stream_silent(self):
        p = StridePrefetcher()
        lines = [((i * 2654435761) >> 7) % 10_000 for i in range(100)]
        requests = run(p, lines)
        assert requests == []

    def test_table_bounded(self):
        p = StridePrefetcher(table_entries=4)
        for pc in range(50):
            p.on_access(pc, 0x1000, False, 0.0)
        assert len(p._table) <= 4

    def test_negative_stride(self):
        p = StridePrefetcher(degree=1)
        requests = run(p, [1000 - i * 3 for i in range(8)])
        assert [r.delta for r in requests] == [-3]


class TestNextLineData:
    def test_always_prefetches_next(self):
        p = NextLineDataPrefetcher(degree=2)
        requests = p.on_access(0x400, 0x1000, False, 0.0)
        assert [r.delta for r in requests] == [1, 2]

    def test_crosses_page_at_edge(self):
        p = NextLineDataPrefetcher(degree=1)
        requests = p.on_access(0x400, 0x1FC0, False, 0.0)  # last line of page 1
        assert requests[0].vaddr >> 12 == 2


class TestFactory:
    def test_new_names_registered(self):
        assert make_l1d_prefetcher("stride").name == "stride"
        assert make_l1d_prefetcher("next-line").name == "next-line"
