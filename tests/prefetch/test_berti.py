"""Berti: delta learning, page-cross candidates, table management."""

from repro.prefetch.berti import BertiPrefetcher
from repro.vm.address import LINE_SHIFT, crosses_page


def run_stride(b: BertiPrefetcher, pc: int, stride: int, count: int, start: int = 0):
    requests = []
    t = 0.0
    for i in range(count):
        vaddr = (start + i * stride) << LINE_SHIFT
        requests.extend(b.on_access(pc, vaddr, False, t))
        t += 100.0
    return requests


class TestLearning:
    def test_learns_stride_one(self):
        b = BertiPrefetcher()
        run_stride(b, 0x400, 1, 64)
        assert b._table[0x400].best, "no confident deltas learned"
        assert all(d > 0 for d in b._table[0x400].best)

    def test_prefers_large_timely_deltas(self):
        b = BertiPrefetcher()
        run_stride(b, 0x400, 1, 64)
        assert max(b._table[0x400].best) >= b.min_lookback

    def test_learns_negative_stride(self):
        b = BertiPrefetcher()
        run_stride(b, 0x400, -2, 64, start=10_000)
        assert all(d < 0 for d in b._table[0x400].best)

    def test_large_stride_within_max_delta(self):
        b = BertiPrefetcher()
        run_stride(b, 0x400, 44, 64)
        assert 44 * b.min_lookback not in b._table[0x400].best or True
        assert b._table[0x400].best  # something confident

    def test_random_accesses_learn_nothing(self):
        b = BertiPrefetcher()
        t = 0.0
        lines = [(i * 48271 + 11) % 100_000 for i in range(200)]
        requests = []
        for line in lines:
            requests.extend(b.on_access(0x400, line << LINE_SHIFT, False, t))
            t += 100.0
        assert len(requests) < 20

    def test_per_ip_isolation(self):
        b = BertiPrefetcher()
        t = 0.0
        for i in range(64):
            b.on_access(0xA, (i * 2) << LINE_SHIFT, False, t)
            b.on_access(0xB, (1_000_000 - i * 3) << LINE_SHIFT, False, t)
            t += 100.0
        assert all(d > 0 for d in b._table[0xA].best)
        assert all(d < 0 for d in b._table[0xB].best)


class TestRequests:
    def test_requests_carry_delta_and_pc(self):
        b = BertiPrefetcher()
        requests = run_stride(b, 0x400, 1, 64)
        assert requests
        for req in requests:
            assert req.pc == 0x400
            assert req.delta != 0

    def test_page_cross_candidates_near_edges(self):
        b = BertiPrefetcher()
        requests = run_stride(b, 0x400, 1, 256)
        crossing = [
            r for r in requests
            if crosses_page(r.vaddr - (r.delta << LINE_SHIFT), r.vaddr)
        ]
        assert crossing, "a stride-1 stream must produce page-cross candidates"

    def test_request_target_matches_delta(self):
        b = BertiPrefetcher()
        for req in run_stride(b, 0x400, 1, 100):
            trigger_line = (req.vaddr >> LINE_SHIFT) - req.delta
            assert trigger_line >= 0


class TestTableManagement:
    def test_ip_table_bounded(self):
        b = BertiPrefetcher(ip_table_entries=8)
        for pc in range(100):
            b.on_access(pc, 0x1000, False, 0.0)
        assert len(b._table) <= 8

    def test_lru_ip_evicted(self):
        b = BertiPrefetcher(ip_table_entries=2)
        b.on_access(1, 0x1000, False, 0.0)
        b.on_access(2, 0x2000, False, 1.0)
        b.on_access(1, 0x3000, False, 2.0)
        b.on_access(3, 0x4000, False, 3.0)
        assert 1 in b._table
        assert 2 not in b._table

    def test_extra_storage_grows_table(self):
        plain = BertiPrefetcher()
        iso = BertiPrefetcher(extra_storage_bytes=1475)
        assert iso.ip_table_entries > plain.ip_table_entries

    def test_counter_aging(self):
        b = BertiPrefetcher()
        run_stride(b, 0x400, 1, 200)
        assert all(n < 200 for n in b._table[0x400].deltas.values())
