"""L2 prefetcher adapters: factory and in-page clamping."""

import pytest

from repro.prefetch.l2_adapters import BopL2, IpcpL2, NoL2Prefetcher, SppL2, make_l2_prefetcher
from repro.vm.address import LINES_PER_PAGE_4K


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_l2_prefetcher("none"), NoL2Prefetcher)
        assert isinstance(make_l2_prefetcher("spp"), SppL2)
        assert isinstance(make_l2_prefetcher("bop"), BopL2)
        assert isinstance(make_l2_prefetcher("IPCP"), IpcpL2)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_l2_prefetcher("berti")


class TestClamping:
    def test_no_prefetcher_emits_nothing(self):
        p = NoL2Prefetcher()
        assert p.on_access(123, 0.0) == []

    def test_adapted_engines_stay_in_page(self):
        for adapter in (BopL2(), IpcpL2(), SppL2()):
            emitted = []
            for i in range(3000):
                line = 9 * LINES_PER_PAGE_4K + (i % LINES_PER_PAGE_4K)
                emitted.extend(adapter.on_access(line, float(i)))
            assert emitted is not None
            for target in emitted:
                assert target // LINES_PER_PAGE_4K == 9, type(adapter).__name__

    def test_bop_l2_produces_prefetches_on_stream(self):
        adapter = BopL2()
        emitted = []
        # stream across many pages: in-page portions still produce targets
        for i in range(5000):
            emitted.extend(adapter.on_access(i, float(i)))
        assert emitted


class TestNextLine:
    def test_next_line_prefetcher(self):
        from repro.prefetch.next_line import NextLinePrefetcher

        p = NextLinePrefetcher(degree=2)
        assert p.on_fetch(100) == [101, 102]
        assert p.on_fetch(100) == []  # same line: no re-issue
        assert p.on_fetch(101) == [102, 103]
