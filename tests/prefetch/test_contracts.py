"""Contract tests every L1D prefetcher must satisfy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prefetch import make_l1d_prefetcher
from repro.vm.address import LINE_SHIFT

PREFETCHERS = ("berti", "ipcp", "bop", "stride", "next-line")

access_lists = st.lists(
    st.tuples(
        st.integers(min_value=0x400, max_value=0x40F),       # pc
        st.integers(min_value=0, max_value=(1 << 24) - 1),   # line
    ),
    min_size=1,
    max_size=150,
)


@pytest.mark.parametrize("name", PREFETCHERS)
class TestContracts:
    def test_request_geometry(self, name):
        """vaddr must equal trigger + delta lines, delta nonzero, meta >= 0."""
        p = make_l1d_prefetcher(name)
        t = 0.0
        for i in range(300):
            trigger = (1000 + i * 3) << LINE_SHIFT
            for req in p.on_access(0x400, trigger, False, t):
                assert req.delta != 0
                assert req.vaddr == trigger + (req.delta << LINE_SHIFT)
                assert req.meta >= 0
                assert req.pc == 0x400
            t += 50.0

    def test_deterministic(self, name):
        def run():
            p = make_l1d_prefetcher(name)
            out = []
            for i in range(200):
                out.extend(
                    (r.vaddr, r.delta)
                    for r in p.on_access(0x400 + i % 3, (i * 5) << LINE_SHIFT, False, float(i))
                )
            return out

        assert run() == run()

    @given(accesses=access_lists)
    @settings(max_examples=10, deadline=None)
    def test_never_crashes_on_arbitrary_streams(self, name, accesses):
        p = make_l1d_prefetcher(name)
        for i, (pc, line) in enumerate(accesses):
            requests = p.on_access(pc, line << LINE_SHIFT, bool(i % 2), float(i))
            assert isinstance(requests, list)

    def test_none_prefetcher_always_empty(self, name):
        p = make_l1d_prefetcher("none")
        assert p.on_access(0x400, 0x1000, False, 0.0) == []
