"""Berti measured-latency variant."""

from repro.prefetch import make_l1d_prefetcher
from repro.prefetch.berti_timely import BertiTimelyPrefetcher
from repro.vm.address import LINE_SHIFT


def run_stream(p, count, spacing, pc=0x400):
    requests = []
    t = 0.0
    for i in range(count):
        requests = p.on_access(pc, (i * 2) << LINE_SHIFT, False, t)
        t += spacing
    return requests


class TestLatencyCalibration:
    def test_default_horizon_used_before_fills(self):
        p = BertiTimelyPrefetcher()
        entry = p._entry(0x400)
        assert entry.avg_latency == 120.0

    def test_on_fill_moves_average(self):
        p = BertiTimelyPrefetcher(latency_smoothing=0.5)
        p.on_access(0x400, 0x1000, False, 0.0)
        p.on_fill(0x1000, 200.0)
        assert p._table[0x400].avg_latency == 0.5 * 120.0 + 0.5 * 200.0

    def test_fill_before_any_access_is_safe(self):
        p = BertiTimelyPrefetcher()
        p.on_fill(0x1000, 200.0)  # no table entry yet: must not crash


class TestTimeliness:
    def test_slow_stream_learns(self):
        p = BertiTimelyPrefetcher()
        requests = run_stream(p, 100, spacing=150.0)  # slower than the horizon
        assert requests, "widely spaced accesses leave timely anchors"

    def test_fast_stream_stays_quiet(self):
        p = BertiTimelyPrefetcher()
        requests = run_stream(p, 100, spacing=5.0)  # whole history within horizon
        assert requests == []

    def test_lower_measured_latency_unlocks_prefetching(self):
        p = BertiTimelyPrefetcher(latency_smoothing=1.0)
        p.on_access(0x400, 0, False, 0.0)
        p.on_fill(0, 20.0)  # cheap fills -> short horizon
        requests = run_stream(p, 100, spacing=25.0)
        assert requests


class TestFactoryAndEngine:
    def test_registered(self):
        assert make_l1d_prefetcher("berti-timely").name == "berti-timely"

    def test_simulates_end_to_end(self):
        from repro.core.policies import PermitPgc
        from repro.cpu.simulator import SimConfig, simulate
        from repro.workloads import by_name

        config = SimConfig(
            prefetcher="berti-timely", policy_factory=PermitPgc,
            warmup_instructions=4_000, sim_instructions=12_000,
        )
        result = simulate(by_name("libquantum"), config)
        assert result.prefetcher == "berti-timely"
        assert result.prefetch_fills > 0
