"""IPCP: CS / CPLX / GS classification behaviour."""

from repro.prefetch.ipcp import IpcpPrefetcher
from repro.vm.address import LINE_SHIFT


def access(p, pc, line, t=0.0):
    return p.on_access(pc, line << LINE_SHIFT, False, t)


class TestConstantStride:
    def test_cs_class_after_confirmation(self):
        p = IpcpPrefetcher()
        requests = []
        for i in range(6):
            requests = access(p, 0x400, i * 7)
        assert len(requests) == p.cs_degree
        deltas = [r.delta for r in requests]
        assert deltas == [7, 14, 21]

    def test_negative_stride(self):
        p = IpcpPrefetcher()
        for i in range(6):
            requests = access(p, 0x400, 10_000 - i * 3)
        assert [r.delta for r in requests] == [-3, -6, -9]

    def test_repeated_stride_changes_reset_confidence(self):
        p = IpcpPrefetcher()
        for i in range(6):
            access(p, 0x400, i * 7)
        # one deviation only dents confidence; a burst of them clears CS
        for line in (1_000, 5_000, 2_000, 9_000):
            access(p, 0x400, line)
        assert p._table[0x400].conf < 2


class TestComplex:
    def test_cplx_learns_repeating_delta_pattern(self):
        p = IpcpPrefetcher(cs_degree=3)
        pattern = [3, 1, 4, 1, 5]  # non-constant, repeating
        line = 0
        requests = []
        for _ in range(30):
            for d in pattern:
                line += d
                requests = access(p, 0x400, line)
        assert requests, "CPLX should predict a repeating delta sequence"

    def test_cplx_table_bounded(self):
        p = IpcpPrefetcher(cplx_table_entries=16)
        line = 0
        for i in range(500):
            line += (i % 13) + 1
            access(p, 0x400, line)
        assert len(p._cplx) <= 16


class TestGlobalStream:
    def test_gs_detects_global_direction(self):
        p = IpcpPrefetcher()
        requests = []
        # interleave two IPs walking the same +1 stream: each IP's local
        # stride is 2, but the global stream advances +1 per access
        for i in range(20):
            requests = access(p, 0x400 + (i % 2), i)
        assert p._gs_conf > 0

    def test_ip_table_bounded(self):
        p = IpcpPrefetcher(ip_table_entries=4)
        for pc in range(50):
            access(p, pc, pc)
        assert len(p._table) <= 4
