"""SPP at L2: signature learning, lookahead, in-page restriction."""

from repro.prefetch.spp import SppPrefetcher
from repro.vm.address import LINES_PER_PAGE_4K


def run_page_stream(p: SppPrefetcher, page: int, deltas, repeats=10):
    targets = []
    offset = 0
    for _ in range(repeats):
        offset = 0
        for d in deltas:
            offset += d
            if not 0 <= offset < LINES_PER_PAGE_4K:
                break
            targets = p.on_access(page * LINES_PER_PAGE_4K + offset, 0.0)
    return targets


class TestLearning:
    def test_predicts_constant_delta(self):
        p = SppPrefetcher()
        targets = run_page_stream(p, 5, [2] * 20, repeats=5)
        assert targets, "SPP should predict a constant +2 pattern"

    def test_lookahead_produces_multiple_targets(self):
        p = SppPrefetcher(lookahead_depth=3, confidence_threshold=0.2)
        targets = run_page_stream(p, 5, [1] * 30, repeats=5)
        assert len(targets) >= 2

    def test_pattern_shared_across_pages(self):
        p = SppPrefetcher()
        run_page_stream(p, 5, [3] * 15, repeats=5)
        # a fresh page with the same signature path predicts immediately
        targets = run_page_stream(p, 9, [3] * 3, repeats=1)
        assert targets


class TestInPageRestriction:
    def test_never_crosses_page(self):
        p = SppPrefetcher(confidence_threshold=0.1)
        collected = []
        for rep in range(20):
            for off in range(0, LINES_PER_PAGE_4K, 4):
                collected.extend(p.on_access(7 * LINES_PER_PAGE_4K + off, 0.0))
        for line in collected:
            assert line // LINES_PER_PAGE_4K == 7

    def test_prediction_stops_at_page_edge(self):
        p = SppPrefetcher(confidence_threshold=0.1)
        targets = []
        for rep in range(10):
            for off in range(0, LINES_PER_PAGE_4K, 16):
                targets = p.on_access(3 * LINES_PER_PAGE_4K + off, 0.0)
        last_off = LINES_PER_PAGE_4K - 16
        final = p.on_access(3 * LINES_PER_PAGE_4K + last_off, 0.0)
        for line in final:
            assert line % LINES_PER_PAGE_4K > last_off


class TestTables:
    def test_signature_table_bounded(self):
        p = SppPrefetcher(signature_table_entries=8)
        for page in range(50):
            p.on_access(page * LINES_PER_PAGE_4K, 0.0)
        assert len(p._pages) <= 8

    def test_pattern_table_bounded(self):
        p = SppPrefetcher(pattern_table_entries=8)
        for i in range(500):
            p.on_access((i * 17) % (64 * LINES_PER_PAGE_4K), 0.0)
        assert len(p._patterns) <= 8
