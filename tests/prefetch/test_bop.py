"""BOP: offset scoring, phase ends, best-offset selection."""

from repro.prefetch.bop import BopPrefetcher, DEFAULT_OFFSETS
from repro.vm.address import LINE_SHIFT


def run_stream(p: BopPrefetcher, count: int, stride: int = 1, start: int = 0):
    requests = []
    for i in range(count):
        requests = p.on_access(0x400, (start + i * stride) << LINE_SHIFT, False, float(i))
    return requests


class TestLearning:
    def test_learns_offset_on_stream(self):
        p = BopPrefetcher()
        run_stream(p, 2000)
        assert p.best_offset != 0

    def test_learned_offset_positive_for_ascending_stream(self):
        p = BopPrefetcher()
        run_stream(p, 2000)
        assert p.best_offset > 0

    def test_no_offset_on_random(self):
        p = BopPrefetcher(round_max=5)
        lines = [(i * 48271 + 11) % (1 << 20) for i in range(3000)]
        for i, line in enumerate(lines):
            p.on_access(0x400, line << LINE_SHIFT, False, float(i))
        assert p.best_offset == 0

    def test_score_max_ends_phase_early(self):
        p = BopPrefetcher(score_max=4, round_max=1000)
        run_stream(p, 1500)
        assert p.best_offset != 0

    def test_round_max_ends_phase(self):
        p = BopPrefetcher(round_max=2)
        lines = [(i * 48271 + 11) % (1 << 20) for i in range(2 * len(DEFAULT_OFFSETS) + 5)]
        for i, line in enumerate(lines):
            p.on_access(0x400, line << LINE_SHIFT, False, float(i))
        # after two full sweeps without evidence the phase resets with no offset
        assert p.best_offset == 0
        assert p._round == 0


class TestRequests:
    def test_requests_use_best_offset(self):
        p = BopPrefetcher(degree=2)
        requests = run_stream(p, 2000)
        assert len(requests) == 2
        assert requests[1].delta == 2 * requests[0].delta

    def test_no_requests_before_learning(self):
        p = BopPrefetcher()
        requests = p.on_access(0x400, 0x1000, False, 0.0)
        assert requests == []

    def test_offsets_list_is_michaud_style(self):
        # products of 2^i 3^j 5^k only (for the positive side)
        for offset in DEFAULT_OFFSETS:
            n = abs(offset)
            for factor in (2, 3, 5):
                while n % factor == 0:
                    n //= factor
            assert n == 1, offset


class TestRrTable:
    def test_rr_size_power_of_two(self):
        assert BopPrefetcher(rr_entries=64).rr_entries == 64
        assert BopPrefetcher(rr_entries=100).rr_entries == 64

    def test_extra_storage_grows_rr(self):
        assert BopPrefetcher(extra_storage_bytes=1475).rr_entries > BopPrefetcher().rr_entries
