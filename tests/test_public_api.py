"""Public API surface: __all__ consistency and top-level re-exports."""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.core",
    "repro.cpu",
    "repro.mem",
    "repro.vm",
    "repro.prefetch",
    "repro.workloads",
    "repro.experiments",
    "repro.obs",
    "repro.validate",
)


class TestAllLists:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_has_no_duplicates(self, package):
        module = importlib.import_module(package)
        names = list(getattr(module, "__all__", ()))
        assert len(names) == len(set(names))


class TestTopLevel:
    def test_headline_entry_points(self):
        import repro

        for name in ("simulate", "simulate_mix", "SimConfig", "SimResult",
                     "make_dripper", "make_ppf", "by_name", "DEFAULT_PARAMS",
                     "PermitPgc", "DiscardPgc", "DiscardPtw",
                     "Observability", "TimelineRecorder", "RunJournal", "Probe"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_quickstart_flow_types(self):
        """The README's promised flow type-checks end to end."""
        from repro import DiscardPgc, SimConfig, by_name

        config = SimConfig(prefetcher="berti", policy_factory=DiscardPgc)
        workload = by_name("astar")
        assert callable(config.policy_factory)
        assert hasattr(workload, "generate")
