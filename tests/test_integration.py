"""Integration tests: the paper's headline behaviours on small runs.

These run real simulations (a few seconds total) and assert the *shape* of
the results — the same shapes the benchmarks reproduce at larger scale.
"""

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.core.dripper import make_dripper
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads import by_name


def run(workload_name, policy_factory, prefetcher="berti", warm=8_000, sim=24_000):
    config = SimConfig(
        prefetcher=prefetcher, policy_factory=policy_factory,
        warmup_instructions=warm, sim_instructions=sim,
    )
    return simulate(by_name(workload_name), config)


@pytest.fixture(scope="module")
def friendly():
    """libquantum: a pure stream — page-cross prefetching is all upside."""
    return {
        "discard": run("libquantum", DiscardPgc),
        "permit": run("libquantum", PermitPgc),
        "dripper": run("libquantum", lambda: make_dripper("berti")),
    }


@pytest.fixture(scope="module")
def hostile():
    """fotonik3d_s: page-tiled — page-cross prefetching is all downside."""
    return {
        "discard": run("fotonik3d_s", DiscardPgc),
        "permit": run("fotonik3d_s", PermitPgc),
        "dripper": run("fotonik3d_s", lambda: make_dripper("berti")),
    }


class TestFriendlyWorkload:
    def test_permit_beats_discard(self, friendly):
        assert friendly["permit"].ipc > friendly["discard"].ipc * 1.02

    def test_permit_reduces_l1d_mpki(self, friendly):
        assert friendly["permit"].l1d_mpki < friendly["discard"].l1d_mpki * 0.8

    def test_permit_reduces_dtlb_mpki(self, friendly):
        assert friendly["permit"].dtlb_mpki < friendly["discard"].dtlb_mpki

    def test_page_cross_prefetches_are_useful(self, friendly):
        r = friendly["permit"]
        assert r.pgc_useful > 10 * max(1, r.pgc_useless)

    def test_dripper_tracks_permit(self, friendly):
        assert friendly["dripper"].ipc >= friendly["permit"].ipc * 0.97

    def test_dripper_issues_most_candidates(self, friendly):
        r = friendly["dripper"]
        assert r.pgc_issued > 0.8 * (r.pgc_issued + r.pgc_discarded)

    def test_speculative_walks_warm_the_tlb(self, friendly):
        assert friendly["permit"].speculative_walks > 0
        assert friendly["permit"].tlb_prefetch_hits > 0


class TestHostileWorkload:
    def test_discard_beats_permit(self, hostile):
        assert hostile["discard"].ipc > hostile["permit"].ipc * 1.05

    def test_page_cross_prefetches_are_useless(self, hostile):
        r = hostile["permit"]
        assert r.pgc_useless > 10 * max(1, r.pgc_useful)

    def test_dripper_tracks_discard(self, hostile):
        assert hostile["dripper"].ipc >= hostile["discard"].ipc * 0.99

    def test_dripper_filters_nearly_everything(self, hostile):
        r = hostile["dripper"]
        assert r.pgc_discarded > 0.9 * (r.pgc_issued + r.pgc_discarded)

    def test_permit_wastes_dram_traffic(self, hostile):
        assert hostile["permit"].dram_reads > hostile["discard"].dram_reads


class TestDripperAcrossPrefetchers:
    @pytest.mark.parametrize("prefetcher", ["berti", "bop", "ipcp"])
    def test_dripper_never_loses_badly_on_hostile(self, prefetcher):
        discard = run("sphinx3", DiscardPgc, prefetcher, warm=5_000, sim=15_000)
        dripper = run("sphinx3", lambda: make_dripper(prefetcher), prefetcher, warm=5_000, sim=15_000)
        assert dripper.ipc >= discard.ipc * 0.98


class TestConservationProperties:
    def test_pgc_accounting_consistent(self, friendly, hostile):
        for r in (*friendly.values(), *hostile.values()):
            assert r.pgc_useful + r.pgc_useless <= r.pgc_issued
            assert r.pgc_discarded + r.pgc_issued <= r.pgc_candidates + r.pgc_issued

    def test_discard_never_walks_speculatively(self, friendly):
        assert friendly["discard"].speculative_walks == 0
