"""Documentation consistency: files exist, code samples actually run."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestFilesExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "docs/architecture.md", "docs/api.md", "LICENSE"])
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 200


class TestReadme:
    def test_mentions_paper_artifacts(self):
        text = (ROOT / "README.md").read_text()
        for term in ("MOKA", "DRIPPER", "Berti", "IPCP", "BOP", "page-cross"):
            assert term in text

    def test_quickstart_snippet_runs(self):
        """The first python block in the README must execute as written."""
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README has no python example"
        snippet = blocks[0]
        # shrink the simulation so the doc test stays fast
        snippet = snippet.replace(
            "SimConfig(prefetcher=\"berti\", policy_factory=factory)",
            "SimConfig(prefetcher=\"berti\", policy_factory=factory, "
            "warmup_instructions=1_000, sim_instructions=3_000)",
        )
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102


class TestDesignDoc:
    def test_per_experiment_index_covers_benches(self):
        """Every figure bench present on disk is referenced from DESIGN.md."""
        design = (ROOT / "DESIGN.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("test_fig*.py")):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md index"

    def test_table_rows_for_paper_exhibits(self):
        design = (ROOT / "DESIGN.md").read_text()
        for exhibit in ("Fig. 2", "Fig. 9", "Fig. 19", "Table V", "Table III"):
            assert exhibit in design
