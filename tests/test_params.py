"""Table IV system configuration tests."""

import pytest

from repro.params import CacheParams, DEFAULT_PARAMS, SystemParams, TlbParams


class TestTableIV:
    """The default configuration must match the paper's Table IV."""

    def test_core(self):
        core = DEFAULT_PARAMS.core
        assert core.rob_entries == 352
        assert core.issue_width == 6

    def test_dtlb(self):
        assert DEFAULT_PARAMS.dtlb.entries == 64
        assert DEFAULT_PARAMS.dtlb.ways == 4
        assert DEFAULT_PARAMS.dtlb.latency == 1

    def test_stlb(self):
        assert DEFAULT_PARAMS.stlb.entries == 1536
        assert DEFAULT_PARAMS.stlb.ways == 12
        assert DEFAULT_PARAMS.stlb.latency == 8

    def test_psc_sizes(self):
        psc = DEFAULT_PARAMS.psc
        assert psc.entries_for_level(5) == 1
        assert psc.entries_for_level(4) == 2
        assert psc.entries_for_level(3) == 8
        assert psc.entries_for_level(2) == 32

    def test_l1i(self):
        l1i = DEFAULT_PARAMS.l1i
        assert l1i.size_bytes == 32 * 1024
        assert l1i.ways == 8
        assert l1i.latency == 4

    def test_l1d(self):
        l1d = DEFAULT_PARAMS.l1d
        assert l1d.size_bytes == 48 * 1024
        assert l1d.ways == 12
        assert l1d.latency == 5
        assert l1d.mshr_entries == 16

    def test_l2c(self):
        l2c = DEFAULT_PARAMS.l2c
        assert l2c.size_bytes == 512 * 1024
        assert l2c.ways == 8
        assert l2c.latency == 10

    def test_llc(self):
        llc = DEFAULT_PARAMS.llc
        assert llc.size_bytes == 2 * 1024 * 1024
        assert llc.ways == 16
        assert llc.latency == 20


class TestCacheParams:
    def test_sets_computed(self):
        p = CacheParams("x", 64 * 1024, 8, 4, 8)
        assert p.sets == 128

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheParams("x", 48 * 1024 + 64, 12, 5, 16)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheParams("x", 3 * 64 * 8, 1, 1, 1)


class TestTlbParams:
    def test_sets(self):
        assert TlbParams("t", 64, 4, 1).sets == 16

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError, match="not divisible"):
            TlbParams("t", 65, 4, 1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            TlbParams("t", 24, 4, 1)


class TestScaledLlc:
    def test_llc_scales_with_cores(self):
        scaled = DEFAULT_PARAMS.scaled_llc(8)
        assert scaled.llc.size_bytes == 8 * DEFAULT_PARAMS.llc.size_bytes
        assert scaled.llc.mshr_entries == 8 * DEFAULT_PARAMS.llc.mshr_entries

    def test_private_levels_unchanged(self):
        scaled = DEFAULT_PARAMS.scaled_llc(8)
        assert scaled.l1d == DEFAULT_PARAMS.l1d
        assert scaled.l2c == DEFAULT_PARAMS.l2c

    def test_original_untouched(self):
        before = DEFAULT_PARAMS.llc.size_bytes
        DEFAULT_PARAMS.scaled_llc(4)
        assert DEFAULT_PARAMS.llc.size_bytes == before

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.core.rob_entries = 1  # type: ignore[misc]
