"""Mutation self-test: the checker must catch the re-introduced MSHR bug."""

from repro.mem.cache import Cache
from repro.params import CacheParams
from repro.validate import reintroduce_stale_mshr_bug
from repro.validate.differential import check_mutation_detected


def cache_with_completed_fill() -> Cache:
    c = Cache(CacheParams("test", 4 * 2 * 64, 2, 5, 8))
    c.register_miss(1, 0.0, 100.0)  # completed by t=200
    c.register_miss(2, 0.0, 300.0)  # still in flight at t=200
    return c


class TestShim:
    def test_shim_restores_stale_counting(self):
        c = cache_with_completed_fill()
        assert c.in_flight_misses(200.0) == 1
        with reintroduce_stale_mshr_bug():
            assert c.in_flight_misses(200.0) == 2  # counts the completed fill

    def test_shim_undone_on_exit(self):
        original = Cache.in_flight_misses
        with reintroduce_stale_mshr_bug():
            assert Cache.in_flight_misses is not original
        assert Cache.in_flight_misses is original

    def test_shim_undone_on_exception(self):
        original = Cache.in_flight_misses
        try:
            with reintroduce_stale_mshr_bug():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert Cache.in_flight_misses is original


class TestDetection:
    def test_checker_catches_reintroduced_bug(self):
        outcome = check_mutation_detected("astar", prefetcher="berti",
                                          warmup=500, sim=1500)
        assert outcome.passed, outcome.detail
        assert "mutation caught" in outcome.detail
