"""Differential suite: result diffing and the metamorphic checks themselves."""

from dataclasses import replace

from repro.cpu.simulator import simulate
from repro.validate.differential import (
    CheckOutcome,
    check_determinism,
    check_discard_source_equivalence,
    check_epoch_invariance,
    check_invariants_clean,
    result_diff,
    run_validation_suite,
)
from repro.experiments.runner import RunSpec
from repro.workloads.registry import by_name

WARMUP, SIM = 500, 1500


def sample_result(**overrides):
    workload = by_name("hmmer")
    spec = RunSpec(prefetcher="berti", policy="permit",
                   warmup_instructions=WARMUP, sim_instructions=SIM)
    result = simulate(workload, spec.config_for(workload))
    return replace(result, **overrides) if overrides else result


class TestResultDiff:
    def test_identical_results_empty_diff(self):
        result = sample_result()
        assert result_diff(result, result) == {}

    def test_differing_field_reported_with_both_values(self):
        a = sample_result()
        b = replace(a, prefetch_fills=a.prefetch_fills + 5)
        diffs = result_diff(a, b)
        assert diffs == {"prefetch_fills": (a.prefetch_fills, a.prefetch_fills + 5)}

    def test_ignore_suppresses_named_fields(self):
        a = sample_result()
        b = replace(a, pgc_candidates=a.pgc_candidates + 1)
        assert result_diff(a, b, ignore=("pgc_candidates",)) == {}


class TestMetamorphicChecks:
    def test_determinism(self):
        outcome = check_determinism("hmmer", prefetcher="berti", policy="permit",
                                    warmup=WARMUP, sim=SIM)
        assert outcome.passed, outcome.detail

    def test_discard_source_equivalence(self):
        outcome = check_discard_source_equivalence("astar", prefetcher="berti",
                                                   warmup=WARMUP, sim=SIM)
        assert outcome.passed, outcome.detail

    def test_epoch_invariance(self):
        outcome = check_epoch_invariance("hmmer", prefetcher="berti",
                                         warmup=WARMUP, sim=SIM)
        assert outcome.passed, outcome.detail

    def test_invariants_clean_per_policy(self):
        outcomes = check_invariants_clean(
            ["hmmer"], policies=("discard", "permit", "dripper"),
            prefetcher="berti", warmup=WARMUP, sim=SIM,
        )
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert outcome.passed, f"{outcome.name}: {outcome.detail}"


class TestSuiteDriver:
    def test_full_suite_passes_and_reports_progress(self):
        seen: list[CheckOutcome] = []
        outcomes = run_validation_suite(
            ["hmmer"], policies=("discard", "permit"), prefetcher="berti",
            warmup=WARMUP, sim=SIM, fuzz_cells=2, jobs=2,
            progress=seen.append,
        )
        assert seen == outcomes
        failed = [o for o in outcomes if not o.passed]
        assert not failed, "; ".join(f"{o.name}: {o.detail}" for o in failed)
