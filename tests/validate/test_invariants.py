"""InvariantChecker: attachment seams, conservation laws, violation structure."""

import json
import pickle
from types import SimpleNamespace

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, build_engine, collect_result, drive
from repro.experiments.runner import policy_factory
from repro.obs.journal import RunJournal
from repro.validate import InvariantChecker, InvariantViolation
from repro.validate.invariants import VIOLATION_SCHEMA
from repro.workloads.registry import by_name


def tiny_config(policy_factory=PermitPgc, **overrides) -> SimConfig:
    return SimConfig(
        prefetcher="berti",
        policy_factory=policy_factory,
        warmup_instructions=500,
        sim_instructions=1500,
        **overrides,
    )


def checked_run(workload_name: str, config: SimConfig) -> InvariantChecker:
    workload = by_name(workload_name)
    engine = build_engine(config)
    checker = InvariantChecker(workload=workload.name)
    checker.attach(engine)
    drive(engine, workload, config)
    result = collect_result(engine, workload.name, config)
    checker.check_final(engine, result)
    return checker


class TestCleanRuns:
    @pytest.mark.parametrize(
        "factory",
        [DiscardPgc, PermitPgc, policy_factory("dripper", "berti")],
        ids=["discard", "permit", "dripper"],
    )
    def test_conservation_laws_hold_end_to_end(self, factory):
        checker = checked_run("hmmer", tiny_config(factory))
        assert checker.violations == 0
        assert checker.checks > 1  # at least one epoch pass plus the final pass

    def test_validated_run_matches_unvalidated(self):
        from repro.cpu.simulator import simulate
        from repro.validate.differential import result_diff

        workload = by_name("astar")
        plain = simulate(workload, tiny_config())
        validated = simulate(workload, tiny_config(validate=True))
        assert result_diff(plain, validated) == {}

    def test_unattached_engine_untouched(self):
        engine = build_engine(tiny_config())
        assert engine.epoch_listener is None


class TestViolationStructure:
    def force_violation(self, obs=None) -> InvariantViolation:
        engine = build_engine(tiny_config())
        checker = InvariantChecker(obs=obs, workload="unit")
        checker.attach(engine)
        engine.hierarchy.l1d.stats.hits += 1  # break hits + misses == accesses
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_epoch(engine)
        assert checker.violations == 1
        return excinfo.value

    def test_carries_structured_context(self):
        violation = self.force_violation()
        assert violation.invariant == "hit-miss-conservation"
        assert violation.workload == "unit"
        assert violation.scope.startswith("epoch@")
        assert violation.snapshot["hits"] == 1
        assert "hit-miss-conservation" in str(violation)

    def test_is_an_assertion_error(self):
        assert issubclass(InvariantViolation, AssertionError)

    def test_to_record_is_json_serialisable(self):
        record = self.force_violation().to_record()
        assert record["schema"] == VIOLATION_SCHEMA
        assert record["kind"] == "invariant_violation"
        assert record["invariant"] == "hit-miss-conservation"
        json.dumps(record)  # must not raise

    def test_pickle_round_trip(self):
        violation = self.force_violation()
        clone = pickle.loads(pickle.dumps(violation))
        assert clone.invariant == violation.invariant
        assert clone.snapshot == violation.snapshot
        assert clone.workload == violation.workload

    def test_violation_journaled_before_raise(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        self.force_violation(obs=SimpleNamespace(journal=journal))
        journal.close()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "invariant_violation"
        assert record["invariant"] == "hit-miss-conservation"


class TestIndividualLaws:
    def attach(self):
        engine = build_engine(tiny_config())
        checker = InvariantChecker()
        checker.attach(engine)
        return engine, checker

    def test_fill_ready_in_past_detected(self):
        engine, _ = self.attach()
        with pytest.raises(InvariantViolation) as excinfo:
            engine.hierarchy.l1d.fill(1, 10.0, 5.0)
        assert excinfo.value.invariant == "fill-ready-monotonic"

    def test_fill_wrap_preserves_normal_fills(self):
        engine, _ = self.attach()
        engine.hierarchy.l1d.fill(1, 10.0, 15.0, prefetched=True, pcb=True)
        block = engine.hierarchy.l1d.probe(1)
        assert block is not None and block.pcb

    def test_stalled_instruction_count_detected(self):
        engine, checker = self.attach()
        checker.check_epoch(engine)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_epoch(engine)  # instructions did not advance
        assert excinfo.value.invariant == "instructions-monotonic"

    def test_pgc_conservation_breakage_detected(self):
        engine, checker = self.attach()
        engine.pgc.candidates += 3  # issued + discarded no longer add up
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_epoch(engine)
        assert excinfo.value.invariant == "pgc-conservation"

    def test_mshr_accounting_breakage_detected(self):
        engine, checker = self.attach()
        l1d = engine.hierarchy.l1d
        l1d.register_miss(7, 0.0, 50.0)
        l1d._outstanding[99] = 1e9  # phantom in-flight miss with no heap entry
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_epoch(engine)
        assert excinfo.value.invariant == "mshr-accounting"

    def test_epoch_listener_chained_not_replaced(self):
        engine = build_engine(tiny_config())
        calls = []
        engine.epoch_listener = lambda eng, epoch: calls.append(epoch)
        checker = InvariantChecker()
        checker.attach(engine)
        engine.epoch_listener(engine, "marker")
        assert calls == ["marker"]
        assert checker.checks == 1
