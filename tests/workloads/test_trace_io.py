"""Trace file I/O: native format round-trips and ChampSim import."""

import gc
import struct
import warnings

import pytest

from repro.workloads.trace import BRANCH, LOAD, STORE, TAKEN
from repro.workloads.trace_io import (
    ChampsimWorkload,
    FileWorkload,
    convert_champsim,
    read_trace,
    snapshot_workload,
    write_trace,
)
from repro.workloads import by_name

RECORDS = [
    (0x400000, 0x10000, LOAD, 3),
    (0x400004, 0x20040, STORE, 0),
    (0x400008, 0x10040, LOAD | BRANCH | TAKEN, 7),
]


class TestNativeFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.rptr"
        assert write_trace(RECORDS, path, name="demo") == 3
        name, records = read_trace(path)
        assert name == "demo"
        assert list(records) == RECORDS

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "t.rptr.gz"
        write_trace(RECORDS, path, name="demo")
        _, records = read_trace(path)
        assert list(records) == RECORDS

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.rptr"
        path.write_bytes(b"NOPE" + b"\0" * 60)
        with pytest.raises(ValueError, match="bad magic"):
            read_trace(path)

    def test_file_workload_restartable(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(RECORDS, path, name="demo")
        w = FileWorkload(path)
        assert w.name == "demo"
        assert list(w.generate()) == list(w.generate()) == RECORDS

    def test_multibyte_name_truncates_on_character_boundary(self, tmp_path):
        # 31 ASCII bytes + a 2-byte character: byte 32 lands mid-character,
        # which a naive encode()[:32] would cut through, leaving a header
        # the reader cannot decode
        path = tmp_path / "t.rptr"
        name = "a" * 31 + "é"
        write_trace(RECORDS, path, name=name)
        loaded_name, records = read_trace(path)
        assert loaded_name == "a" * 31
        assert list(records) == RECORDS

    def test_wide_character_name_truncates_cleanly(self, tmp_path):
        # 3-byte characters: 32 bytes falls inside the 11th character, so
        # the cut must back off to the 10-character (30-byte) boundary
        path = tmp_path / "t.rptr"
        write_trace(RECORDS, path, name="✓" * 12)
        loaded_name, _ = read_trace(path)
        assert loaded_name == "✓" * 10

    def test_file_workload_construction_emits_no_resource_warning(self, tmp_path):
        # constructing a FileWorkload reads only the header; the old code
        # obtained (and dropped) read_trace's record generator, whose open
        # handle was then closed by the GC with a ResourceWarning
        path = tmp_path / "t.rptr"
        write_trace(RECORDS, path, name="demo")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            FileWorkload(path)
            gc.collect()
        assert not [w for w in caught if issubclass(w.category, ResourceWarning)]

    def test_snapshot_workload_bounds_instructions(self, tmp_path):
        path = tmp_path / "snap.rptr"
        snapshot_workload(by_name("hmmer"), path, instructions=500)
        _, records = read_trace(path)
        total = sum(1 + r[3] for r in records)
        assert 500 <= total <= 560

    def test_snapshot_replays_in_simulator(self, tmp_path):
        from repro.core.policies import DiscardPgc
        from repro.cpu.simulator import SimConfig, simulate

        path = tmp_path / "snap.rptr"
        snapshot_workload(by_name("hmmer"), path, instructions=6_000)
        w = FileWorkload(path)
        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=1_000, sim_instructions=4_000)
        direct = simulate(by_name("hmmer"), config)
        replayed = simulate(w, config)
        assert replayed.ipc == pytest.approx(direct.ipc)


def champsim_instr(ip, *, branch=0, taken=0, src=(), dst=()):
    src = tuple(src) + (0,) * (4 - len(src))
    dst = tuple(dst) + (0,) * (2 - len(dst))
    return struct.pack("<Q2B6B6Q", ip, branch, taken, 0, 0, 0, 0, 0, 0, *dst, *src)


class TestChampsimImport:
    def write_trace(self, tmp_path, instrs):
        path = tmp_path / "t.champsim"
        path.write_bytes(b"".join(instrs))
        return path

    def test_loads_and_stores_extracted(self, tmp_path):
        path = self.write_trace(tmp_path, [
            champsim_instr(0x400000, src=[0x1000]),
            champsim_instr(0x400004, dst=[0x2000]),
        ])
        records = list(ChampsimWorkload(path).generate())
        assert records == [
            (0x400000, 0x1000, LOAD, 0),
            (0x400004, 0x2000, STORE, 0),
        ]

    def test_memory_free_instructions_fold_into_gap(self, tmp_path):
        path = self.write_trace(tmp_path, [
            champsim_instr(0x1),          # no memory
            champsim_instr(0x2),          # no memory
            champsim_instr(0x3, src=[0x5000]),
        ])
        records = list(ChampsimWorkload(path).generate())
        assert records == [(0x3, 0x5000, LOAD, 2)]

    def test_branch_rides_next_record(self, tmp_path):
        path = self.write_trace(tmp_path, [
            champsim_instr(0x1, branch=1, taken=1),
            champsim_instr(0x2, src=[0x5000]),
        ])
        (record,) = ChampsimWorkload(path).generate()
        assert record[2] & BRANCH
        assert record[2] & TAKEN
        assert record[3] == 1

    def test_consecutive_memory_free_branches_both_emitted(self, tmp_path):
        # two memory-free branches in a row: the second used to overwrite
        # the first's pending direction, silently dropping a branch from the
        # predictor's training stream
        path = self.write_trace(tmp_path, [
            champsim_instr(0x10, branch=1, taken=1),
            champsim_instr(0x20, branch=1, taken=0),
            champsim_instr(0x30, src=[0x5000]),
        ])
        records = list(ChampsimWorkload(path).generate())
        assert records == [
            (0x10, 0, BRANCH | TAKEN, 0),
            (0x30, 0x5000, LOAD | BRANCH, 1),
        ]
        # instruction count is conserved (3 instructions in, 3 accounted)
        assert sum(1 + r[3] for r in records) == 3

    def test_branch_run_conserves_instruction_count(self, tmp_path):
        # a longer run of memory-free branches: every direction survives and
        # the gap bookkeeping never double-spends an instruction
        path = self.write_trace(tmp_path, [
            champsim_instr(0x10, branch=1, taken=1),
            champsim_instr(0x20, branch=1, taken=1),
            champsim_instr(0x30, branch=1, taken=0),
            champsim_instr(0x40, src=[0x6000]),
        ])
        records = list(ChampsimWorkload(path).generate())
        assert [r[0] for r in records] == [0x10, 0x20, 0x40]
        assert all(r[2] & BRANCH for r in records)
        assert sum(1 + r[3] for r in records) == 4

    def test_multi_operand_instruction(self, tmp_path):
        path = self.write_trace(tmp_path, [
            champsim_instr(0x1, src=[0x1000, 0x2000], dst=[0x3000]),
        ])
        records = list(ChampsimWorkload(path).generate())
        assert [(r[1], r[2] & (LOAD | STORE)) for r in records] == [
            (0x1000, LOAD), (0x2000, LOAD), (0x3000, STORE),
        ]

    def test_convert_to_native(self, tmp_path):
        src = self.write_trace(tmp_path, [
            champsim_instr(0x1, src=[0x1000]),
            champsim_instr(0x2, dst=[0x2000]),
        ])
        dst = tmp_path / "out.rptr"
        assert convert_champsim(src, dst) == 2
        _, records = read_trace(dst)
        assert len(list(records)) == 2

    def test_imported_trace_simulates(self, tmp_path):
        from repro.core.policies import DiscardPgc
        from repro.cpu.simulator import SimConfig, simulate

        instrs = []
        for i in range(4000):
            instrs.append(champsim_instr(0x400000 + (i % 16) * 4, src=[0x100000 + i * 64]))
        path = self.write_trace(tmp_path, instrs)
        w = ChampsimWorkload(path, name="imported")
        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=500, sim_instructions=2_000)
        result = simulate(w, config)
        assert result.workload == "imported"
        assert result.ipc > 0


import os
import tempfile

from hypothesis import given, settings, strategies as st

record_strategy = st.tuples(
    st.integers(min_value=0, max_value=(1 << 64) - 1),  # pc
    st.integers(min_value=0, max_value=(1 << 64) - 1),  # vaddr
    st.integers(min_value=0, max_value=63),             # flags
    st.integers(min_value=0, max_value=(1 << 32) - 1),  # gap
)


class TestRoundtripProperties:
    @given(st.lists(record_strategy, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_any_record_list_roundtrips(self, records):
        fd, path = tempfile.mkstemp(suffix=".rptr")
        os.close(fd)
        try:
            write_trace(records, path, name="prop")
            _, loaded = read_trace(path)
            assert list(loaded) == records
        finally:
            os.unlink(path)

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_ascii_names_truncate_to_32_bytes(self, name):
        fd, path = tempfile.mkstemp(suffix=".rptr")
        os.close(fd)
        try:
            write_trace([], path, name=name)
            loaded_name, _ = read_trace(path)
            assert loaded_name == name[:32].rstrip("\x00")
        finally:
            os.unlink(path)
