"""Workload registry: paper-matching counts, splits, sampling, mixes."""

import pytest

from repro.workloads.registry import (
    by_name,
    make_mixes,
    motivation_workloads,
    non_intensive_workloads,
    seen_workloads,
    stratified_sample,
    unseen_workloads,
)


class TestCounts:
    def test_218_seen(self):
        """Section IV-A: 218 workloads used during development."""
        assert len(seen_workloads()) == 218

    def test_178_unseen(self):
        """Section IV-A: 178 unseen workloads."""
        assert len(unseen_workloads()) == 178

    def test_396_total(self):
        assert len(seen_workloads()) + len(unseen_workloads()) == 396

    def test_all_names_unique(self):
        names = [w.name for w in seen_workloads() + unseen_workloads() + non_intensive_workloads()]
        assert len(names) == len(set(names))

    def test_seen_unseen_disjoint(self):
        seen = {w.name for w in seen_workloads()}
        unseen = {w.name for w in unseen_workloads()}
        assert not seen & unseen

    def test_suites_represented(self):
        suites = {w.suite for w in seen_workloads()}
        assert suites == {"SPEC", "GAP", "LIGRA", "PARSEC", "GKB5", "QMM_INT", "QMM_FP"}


class TestFigure2Names:
    def test_named_workloads_exist(self):
        for name in ("astar", "cc.road", "MIS.road", "vips", "qmm_int_365",
                     "gkb5_101", "sphinx3", "fotonik3d_s", "bc.web", "pr.web",
                     "qmm_int_859", "qmm_fp_44", "gkb5_310", "tc.road", "qmm_int_13"):
            assert by_name(name) is not None

    def test_motivation_set_is_seen(self):
        seen = {w.name for w in seen_workloads()}
        for w in motivation_workloads():
            assert w.name in seen

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            by_name("doom_eternal")


class TestSampling:
    def test_sample_size(self):
        assert len(stratified_sample(seen_workloads(), 20, seed=1)) == 20

    def test_sample_deterministic(self):
        a = [w.name for w in stratified_sample(seen_workloads(), 20, seed=1)]
        b = [w.name for w in stratified_sample(seen_workloads(), 20, seed=1)]
        assert a == b

    def test_sample_covers_suites(self):
        sample = stratified_sample(seen_workloads(), 21, seed=2)
        assert len({w.suite for w in sample}) >= 5

    def test_oversized_sample_returns_all(self):
        assert len(stratified_sample(non_intensive_workloads(), 999)) == len(non_intensive_workloads())


class TestMixes:
    def test_mix_count_and_size(self):
        mixes = make_mixes(10, 8, seed=1)
        assert len(mixes) == 10
        assert all(len(m) == 8 for m in mixes)

    def test_mixes_deterministic(self):
        a = [[w.name for w in m] for m in make_mixes(5, 8, seed=7)]
        b = [[w.name for w in m] for m in make_mixes(5, 8, seed=7)]
        assert a == b

    def test_mixes_drawn_from_seen(self):
        seen = {w.name for w in seen_workloads()}
        for mix in make_mixes(5, 8):
            for w in mix:
                assert w.name in seen

    def test_no_duplicate_within_mix(self):
        for mix in make_mixes(10, 8):
            names = [w.name for w in mix]
            assert len(names) == len(set(names))


class TestNonIntensive:
    def test_low_intensity_traits(self):
        for w in non_intensive_workloads():
            assert w.mean_gap >= 8.0


class TestEveryWorkloadGenerates:
    """All 436 registered workloads must produce valid records."""

    @staticmethod
    def _validate(workload, n=200):
        from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN

        valid_mask = LOAD | STORE | MISPREDICT | DEPENDS | BRANCH | TAKEN
        count = 0
        for pc, vaddr, flags, gap in workload.generate():
            assert pc > 0 and vaddr > 0
            assert flags & (LOAD | STORE), workload.name
            assert not (flags & LOAD and flags & STORE), workload.name
            assert flags & ~valid_mask == 0, workload.name
            assert 0 <= gap < 1000, workload.name
            count += 1
            if count >= n:
                break
        assert count == n, f"{workload.name} trace ended early"

    def test_all_seen_generate(self):
        for workload in seen_workloads():
            self._validate(workload)

    def test_all_unseen_generate(self):
        for workload in unseen_workloads():
            self._validate(workload)

    def test_all_non_intensive_generate(self):
        for workload in non_intensive_workloads():
            self._validate(workload)
