"""Packed trace buffers: generator equality, window sizing, caching, replay."""

import gc

import pytest

from repro.core.policies import DiscardPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.validate import result_diff
from repro.workloads import by_name
from repro.workloads.packed import (
    PackedTrace,
    PackedWorkload,
    _capacity_from_env,
    clear_pack_cache,
    get_packed,
    pack_cache_stats,
    set_pack_cache_capacity,
)
from repro.workloads import packed as packed_module
from repro.workloads.trace_io import FileWorkload, snapshot_workload


class HighGapWorkload:
    """Records whose gaps overshoot the warm-up boundary (window edge case)."""

    name = "highgap"
    suite = "TEST"

    def __init__(self, records=60, gap=999):
        self.records = records
        self.gap = gap

    def generate(self):
        for i in range(self.records):
            yield 0x400, 0x1000 + (i % 8) * 64, 1, self.gap


class TestPackedTrace:
    def test_records_match_generator_prefix(self):
        w = by_name("astar")
        packed = PackedTrace.from_workload(w, 2_000, 6_000)
        gen = w.generate()
        assert len(packed) > 0
        for record in packed.records():
            assert record == tuple(next(gen))

    def test_packing_is_deterministic(self):
        w = by_name("astar")
        a = PackedTrace.from_workload(w, 2_000, 6_000)
        b = PackedTrace.from_workload(w, 2_000, 6_000)
        assert a.pcs == b.pcs
        assert a.vaddrs == b.vaddrs
        assert a.flags == b.flags
        assert a.gaps == b.gaps

    def test_window_covers_warmup_overshoot(self):
        # each record spans 1000 instructions, so the warm-up boundary is
        # overshot by 500: measurement starts at 2000, not 1500, and the
        # pack must reach 2000 + sim, not warmup + sim
        w = HighGapWorkload()
        packed = PackedTrace.from_workload(w, 1_500, 3_000)
        assert packed.complete
        assert packed.instructions >= 2_000 + 3_000

    def test_incomplete_pack_flagged(self):
        packed = PackedTrace.from_workload(HighGapWorkload(records=3), 1_500, 9_000)
        assert not packed.complete

    def test_replay_is_restartable(self):
        packed = PackedTrace.from_workload(by_name("astar"), 1_000, 2_000)
        replay = packed.replay()
        assert isinstance(replay, PackedWorkload)
        assert list(replay.generate()) == list(replay.generate())

    def test_snapshot_pack_roundtrip(self, tmp_path):
        # snapshot to the native on-disk format, reload, pack: the packed
        # columns must reproduce the file's records exactly
        path = tmp_path / "snap.rptr"
        snapshot_workload(by_name("hmmer"), path, instructions=4_000)
        w = FileWorkload(path)
        packed = PackedTrace.from_workload(w, 500, 2_000)
        assert list(packed.records()) == list(w.generate())[: len(packed)]


class SlottedWorkload:
    """No seed/path and no ``__weakref__`` slot: cannot be pinned to the
    cache, so :func:`get_packed` must serve it uncached."""

    __slots__ = ("records", "gap")
    name = "slotted"
    suite = "TEST"

    def __init__(self, records=60, gap=999):
        self.records = records
        self.gap = gap

    def generate(self):
        for i in range(self.records):
            yield 0x400, 0x1000 + (i % 8) * 64, 1, self.gap


class TestAnonymousPackIdentity:
    def test_entry_dies_with_workload(self):
        clear_pack_cache()
        w = HighGapWorkload()
        get_packed(w, 1_500, 3_000)
        assert pack_cache_stats()["size"] == 1
        del w
        gc.collect()
        assert pack_cache_stats()["size"] == 0
        assert packed_module._ANON_REFS == {}
        clear_pack_cache()

    def test_recycled_id_cannot_serve_stale_pack(self):
        # id-keyed entries must die with their workload: when CPython hands
        # the freed id to a *different* workload, get_packed must re-pack
        # instead of serving the dead object's (larger) pack
        clear_pack_cache()
        w = HighGapWorkload(records=60)
        stale = get_packed(w, 1_500, 3_000)
        addr = id(w)
        del w
        gc.collect()
        for _ in range(256):
            candidate = HighGapWorkload(records=3)
            if id(candidate) == addr:
                break
            candidate = None
        else:
            pytest.skip("allocator did not recycle the object id")
        repacked = get_packed(candidate, 1_500, 3_000)
        assert repacked is not stale
        assert len(repacked) == 3
        clear_pack_cache()

    def test_unweakrefable_workload_served_uncached(self):
        clear_pack_cache()
        w = SlottedWorkload()
        first = get_packed(w, 1_500, 3_000)
        assert pack_cache_stats()["size"] == 0
        assert get_packed(w, 1_500, 3_000) is not first
        assert len(first) > 0
        clear_pack_cache()


class TestBytesGauge:
    def _gauge_value(self):
        from repro.obs.metrics import get_metrics

        return get_metrics().gauge("pack_cache.bytes").value()

    def _resident_bytes(self):
        return sum(p.nbytes() for p in packed_module._PACK_CACHE.values())

    def test_gauge_tracks_insert_evict_resize_clear(self, bounded_cache):
        w = by_name("astar")
        get_packed(w, 1_000, 2_000)
        assert self._gauge_value() == self._resident_bytes() > 0
        get_packed(w, 1_000, 3_000)
        assert self._gauge_value() == self._resident_bytes()
        get_packed(w, 1_000, 4_000)  # capacity 2: evicts the oldest
        assert self._gauge_value() == self._resident_bytes()
        set_pack_cache_capacity(1)  # shrink evicts immediately
        assert self._gauge_value() == self._resident_bytes()
        clear_pack_cache()
        assert self._gauge_value() == 0
        assert packed_module._CACHE_BYTES == 0

    def test_anonymous_death_updates_gauge(self):
        clear_pack_cache()
        w = HighGapWorkload()
        get_packed(w, 1_500, 3_000)
        assert self._gauge_value() == self._resident_bytes() > 0
        del w
        gc.collect()
        assert self._gauge_value() == 0
        clear_pack_cache()


class TestPackCache:
    def test_get_packed_caches_by_window(self):
        clear_pack_cache()
        w = by_name("astar")
        first = get_packed(w, 1_000, 2_000)
        assert get_packed(w, 1_000, 2_000) is first
        assert get_packed(w, 1_000, 3_000) is not first
        clear_pack_cache()
        assert get_packed(w, 1_000, 2_000) is not first


@pytest.fixture
def bounded_cache():
    """Shrinkable cache capacity, restored (with a clean cache) afterwards."""
    previous = set_pack_cache_capacity(2)
    clear_pack_cache()
    yield
    set_pack_cache_capacity(previous)
    clear_pack_cache()


class TestPackCacheCapacity:
    def test_lru_eviction_at_capacity(self, bounded_cache):
        w = by_name("astar")
        before = pack_cache_stats()["evictions"]
        oldest = get_packed(w, 1_000, 2_000)
        get_packed(w, 1_000, 3_000)
        get_packed(w, 1_000, 4_000)  # capacity 2: evicts the oldest window
        stats = pack_cache_stats()
        assert stats["size"] == 2
        assert stats["capacity"] == 2
        assert stats["evictions"] == before + 1
        assert get_packed(w, 1_000, 2_000) is not oldest  # was evicted

    def test_recent_use_protects_from_eviction(self, bounded_cache):
        w = by_name("astar")
        first = get_packed(w, 1_000, 2_000)
        get_packed(w, 1_000, 3_000)
        assert get_packed(w, 1_000, 2_000) is first  # moves to MRU
        get_packed(w, 1_000, 4_000)  # evicts the 3_000 window instead
        assert get_packed(w, 1_000, 2_000) is first

    def test_capacity_keyword_resizes(self, bounded_cache):
        w = by_name("astar")
        get_packed(w, 1_000, 2_000)
        get_packed(w, 1_000, 3_000)
        get_packed(w, 1_000, 4_000, capacity=1)
        assert pack_cache_stats()["size"] == 1
        assert pack_cache_stats()["capacity"] == 1

    def test_shrinking_evicts_immediately(self, bounded_cache):
        w = by_name("astar")
        get_packed(w, 1_000, 2_000)
        get_packed(w, 1_000, 3_000)
        before = pack_cache_stats()["evictions"]
        set_pack_cache_capacity(1)
        stats = pack_cache_stats()
        assert stats["size"] == 1
        assert stats["evictions"] == before + 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            set_pack_cache_capacity(0)

    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACK_CACHE_CAPACITY", raising=False)
        assert _capacity_from_env() == 32
        monkeypatch.setenv("REPRO_PACK_CACHE_CAPACITY", "5")
        assert _capacity_from_env() == 5
        for bad in ("zero", "0", "-3"):
            monkeypatch.setenv("REPRO_PACK_CACHE_CAPACITY", bad)
            with pytest.raises(ValueError, match="REPRO_PACK_CACHE_CAPACITY"):
                _capacity_from_env()

    def test_eviction_emits_obs_event(self, bounded_cache, caplog):
        import logging

        w = by_name("astar")
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            get_packed(w, 1_000, 2_000)
            get_packed(w, 1_000, 3_000)
            get_packed(w, 1_000, 4_000)
        events = [r for r in caplog.records if "pack-cache-eviction" in r.message]
        assert len(events) == 1
        assert "'workload': 'astar'" in events[0].message


class TestPackedSimulation:
    def test_packed_drive_matches_generator(self):
        w = by_name("astar")
        base = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=4_000, sim_instructions=10_000
        )
        packed = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=4_000, sim_instructions=10_000,
            packed=True,
        )
        assert result_diff(simulate(w, base), simulate(w, packed)) == {}

    def test_packed_drive_matches_generator_high_gap(self):
        # gap overshoot exercises the fast path's epoch/measurement seams
        base = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=1_500, sim_instructions=3_000
        )
        packed = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=1_500, sim_instructions=3_000,
            packed=True,
        )
        gen_result = simulate(HighGapWorkload(), base)
        packed_result = simulate(HighGapWorkload(), packed)
        assert result_diff(gen_result, packed_result) == {}

    def test_packed_replay_through_generator_drive_matches(self):
        # a PackedWorkload pushed through the *generator* drive loop must
        # also reproduce the original run (the pack is a faithful prefix)
        w = by_name("astar")
        config = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=2_000, sim_instructions=6_000
        )
        packed = get_packed(w, 2_000, 6_000)
        assert result_diff(simulate(w, config), simulate(packed.replay(), config)) == {}
