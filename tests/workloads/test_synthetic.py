"""SyntheticWorkload assembly: determinism, flags, phases, intensity."""

import pytest

from repro.workloads.patterns import Gather, Stream
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import DEPENDS, LOAD, MISPREDICT, STORE, instructions_in


def take(workload, n):
    out = []
    for record in workload.generate():
        out.append(record)
        if len(out) >= n:
            break
    return out


def two_phase(seed=1, **kwargs):
    return SyntheticWorkload(
        "w", "TEST", seed,
        [
            (lambda: Stream(0, stride_lines=1, footprint_pages=8), 500),
            (lambda: Gather(1, footprint_pages=8), 500),
        ],
        **kwargs,
    )


class TestDeterminism:
    def test_replay_identical(self):
        w = two_phase()
        assert take(w, 500) == take(w, 500)

    def test_different_seeds_differ(self):
        a = take(two_phase(seed=1), 200)
        b = take(two_phase(seed=2), 200)
        assert a != b

    def test_concurrent_iterators_independent(self):
        w = two_phase()
        it1, it2 = w.generate(), w.generate()
        first = [next(it1) for _ in range(100)]
        second = [next(it2) for _ in range(100)]
        assert first == second


class TestRecords:
    def test_every_record_is_memory_op(self):
        for pc, vaddr, flags, gap in take(two_phase(), 300):
            assert flags & (LOAD | STORE)
            assert not (flags & LOAD and flags & STORE)
            assert gap >= 0
            assert vaddr > 0
            assert pc > 0

    def test_store_fraction_respected(self):
        records = take(two_phase(store_fraction=0.5), 2000)
        stores = sum(1 for r in records if r[2] & STORE)
        assert 0.4 < stores / len(records) < 0.6

    def test_zero_store_fraction(self):
        records = take(two_phase(store_fraction=0.0), 500)
        assert not any(r[2] & STORE for r in records)

    def test_mispredict_rate(self):
        records = take(two_phase(mispredict_rate=0.2), 3000)
        rate = sum(1 for r in records if r[2] & MISPREDICT) / len(records)
        assert 0.15 < rate < 0.25

    def test_mean_gap_controls_intensity(self):
        dense = take(two_phase(mean_gap=1.0), 2000)
        sparse = take(two_phase(mean_gap=10.0), 2000)
        avg = lambda rs: sum(r[3] for r in rs) / len(rs)  # noqa: E731
        assert avg(sparse) > 3 * avg(dense)

    def test_instructions_in(self):
        assert instructions_in((0, 0, LOAD, 5)) == 6


class TestPhases:
    def test_phases_cycle_through_regions(self):
        w = two_phase()
        records = take(w, 1500)
        regions = {r[1] >> 30 for r in records}
        assert len(regions) == 2

    def test_dependent_flag_from_pattern(self):
        from repro.workloads.patterns import PointerChase

        w = SyntheticWorkload(
            "chase", "TEST", 3, [(lambda: PointerChase(0), 1 << 30)],
        )
        assert all(r[2] & DEPENDS for r in take(w, 100))

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWorkload("bad", "TEST", 1, [])


class TestPcs:
    def test_load_pcs_stable_and_few(self):
        records = take(two_phase(), 2000)
        pcs = {r[0] for r in records}
        assert len(pcs) <= 8  # pcs_per_pattern per phase

    def test_code_lines_spread_pcs(self):
        wide = take(two_phase(code_lines=2048, pcs_per_pattern=16), 2000)
        lines = {r[0] >> 6 for r in wide}
        assert len(lines) > 8
