"""Pattern primitives: footprints, shapes, flavour behaviour."""

import random

import pytest

from repro.vm.address import LINES_PER_PAGE_4K, PAGE_4K_SHIFT
from repro.workloads.patterns import (
    Gather,
    GraphCsr,
    PageTiled,
    PointerChase,
    REGION_BYTES,
    Stream,
    Strided,
)


def collect(pattern, n, seed=1):
    rng = random.Random(seed)
    return [pattern.next_access(rng) for _ in range(n)]


class TestRegions:
    def test_regions_disjoint(self):
        a = Stream(0, footprint_pages=1 << 18)
        b = Stream(1, footprint_pages=1 << 18)
        assert abs(a.base - b.base) >= REGION_BYTES

    def test_addresses_stay_in_region(self):
        p = Gather(3, footprint_pages=128)
        for vaddr, _, _ in collect(p, 500):
            assert 0 <= vaddr - p.base < REGION_BYTES


class TestStream:
    def test_monotone_until_wrap(self):
        p = Stream(0, stride_lines=1, footprint_pages=4)
        addrs = [v for v, _, _ in collect(p, 100)]
        diffs = [b - a for a, b in zip(addrs, addrs[1:])]
        assert all(d == 64 for d in diffs if d > 0)

    def test_wraps_at_footprint(self):
        p = Stream(0, stride_lines=1, footprint_pages=1)
        addrs = [v for v, _, _ in collect(p, 200)]
        pages = {v >> PAGE_4K_SHIFT for v in addrs}
        assert len(pages) == 1

    def test_no_dependencies(self):
        p = Stream(0)
        assert not any(dep for _, dep, _ in collect(p, 50))


class TestStrided:
    def test_stride_respected(self):
        p = Strided(0, stride_lines=40, footprint_pages=1024)
        addrs = [v for v, _, _ in collect(p, 50)]
        diffs = {(b - a) >> 6 for a, b in zip(addrs, addrs[1:])}
        assert 40 in diffs

    def test_crosses_pages_frequently(self):
        p = Strided(0, stride_lines=40, footprint_pages=1024)
        addrs = [v for v, _, _ in collect(p, 200)]
        crossings = sum(
            1 for a, b in zip(addrs, addrs[1:]) if a >> PAGE_4K_SHIFT != b >> PAGE_4K_SHIFT
        )
        assert crossings > 80


class TestPageTiled:
    def test_bursts_sequential_within_page(self):
        p = PageTiled(0, footprint_pages=1024, burst_lines=16)
        rng = random.Random(1)
        prev = None
        sequential = 0
        in_page = 0
        for _ in range(400):
            vaddr, _, _ = p.next_access(rng)
            if prev is not None and prev >> PAGE_4K_SHIFT == vaddr >> PAGE_4K_SHIFT:
                in_page += 1
                if vaddr - prev == 64:
                    sequential += 1
            prev = vaddr
        # a jump can land in the page it left, so allow a small remainder
        assert in_page > 300
        assert sequential >= 0.95 * in_page

    def test_bursts_end_at_page_edge(self):
        p = PageTiled(0, footprint_pages=64, burst_lines=16, start_offset_jitter=0)
        rng = random.Random(1)
        offsets = [(v >> 6) & 63 for v, _, _ in (p.next_access(rng) for _ in range(160))]
        assert max(offsets) == LINES_PER_PAGE_4K - 1

    def test_page_jumps_unpredictable(self):
        p = PageTiled(0, footprint_pages=1024, burst_lines=8)
        rng = random.Random(1)
        pages = []
        for _ in range(400):
            vaddr, _, _ = p.next_access(rng)
            page = vaddr >> PAGE_4K_SHIFT
            if not pages or pages[-1] != page:
                pages.append(page)
        sequential = sum(1 for a, b in zip(pages, pages[1:]) if b == a + 1)
        assert sequential < len(pages) // 4


class TestPointerChase:
    def test_all_dependent(self):
        p = PointerChase(0)
        assert all(dep for _, dep, _ in collect(p, 50))

    def test_deterministic_chain(self):
        a = collect(PointerChase(0), 50)
        b = collect(PointerChase(0), 50)
        assert a == b


class TestGraphCsr:
    def test_unknown_flavour_raises(self):
        with pytest.raises(KeyError):
            GraphCsr(0, flavour="mesh")

    def test_two_streams_emitted(self):
        p = GraphCsr(0, flavour="road")
        streams = {s for _, _, s in collect(p, 300)}
        assert streams == {0, 1}

    def test_road_neighbours_local(self):
        p = GraphCsr(0, flavour="road", nodes_pages=1024)
        rng = random.Random(1)
        max_span = 0
        node_line = None
        for _ in range(500):
            vaddr, _, stream = p.next_access(rng)
            line = (vaddr - p.base) >> 6
            if stream == 0:
                node_line = line - p._edge_base
            elif node_line is not None and 0 <= line < p.prop_lines:
                span = abs(line - node_line)
                max_span = max(max_span, min(span, p.prop_lines - span))
        assert max_span <= p.locality

    def test_web_neighbours_scattered(self):
        p = GraphCsr(0, flavour="web", nodes_pages=1024)
        rng = random.Random(1)
        lines = [
            (v - p.base) >> 6
            for v, _, s in (p.next_access(rng) for _ in range(2000))
            if s == 1
        ]
        non_hub = [l for l in lines if l >= 256]
        assert len(set(l >> 6 for l in non_hub)) > 100  # many distinct pages

    def test_road_offsets_stream_sequential(self):
        p = GraphCsr(0, flavour="road")
        rng = random.Random(1)
        offsets = [
            (v - p.base) >> 6
            for v, _, s in (p.next_access(rng) for _ in range(2000))
            if s == 0
        ]
        diffs = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(d == 1 for d in diffs if d > 0)

    def test_web_offsets_stream_jumps_pages(self):
        p = GraphCsr(0, flavour="web", nodes_pages=1024)
        rng = random.Random(1)
        offset_pages = []
        for _ in range(5000):
            vaddr, _, s = p.next_access(rng)
            if s == 0:
                offset_pages.append((vaddr - p.base) >> PAGE_4K_SHIFT)
        transitions = [
            (a, b) for a, b in zip(offset_pages, offset_pages[1:]) if a != b
        ]
        sequential = sum(1 for a, b in transitions if b == a + 1)
        assert transitions and sequential < len(transitions)
