"""Per-suite workload builders."""

import pytest

from repro.workloads.suites import (
    GAP_ALGORITHMS,
    GRAPH_FLAVOURS,
    PARSEC_BENCHMARKS,
    SPEC_BENCHMARKS,
    gkb5,
    graph,
    non_intensive,
    parsec,
    qmm,
    spec,
)


def first_records(workload, n=50):
    out = []
    for record in workload.generate():
        out.append(record)
        if len(out) >= n:
            break
    return out


class TestSpec:
    def test_all_benchmarks_construct(self):
        for name in SPEC_BENCHMARKS:
            w = spec(name)
            assert w.suite == "SPEC"
            assert first_records(w)

    def test_simpoints_differ(self):
        assert first_records(spec("mcf", 0)) != first_records(spec("mcf", 1))

    def test_simpoint_naming(self):
        assert spec("mcf", 0).name == "mcf"
        assert spec("mcf", 2).name == "mcf.2"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            spec("doom")

    def test_builders_deterministic_across_calls(self):
        assert first_records(spec("astar", 1)) == first_records(spec("astar", 1))

    def test_branch_profiles_assigned(self):
        assert spec("gcc").branch_profile[0] == "mixed"
        assert spec("lbm").branch_profile[0] == "loop"


class TestGraph:
    def test_all_combinations_construct(self):
        for algorithm in GAP_ALGORITHMS:
            for flavour in GRAPH_FLAVOURS:
                w = graph(algorithm, flavour, "GAP")
                assert w.name == f"{algorithm}.{flavour}"

    def test_seed_changes_trace(self):
        a = first_records(graph("bfs", "road", "GAP", seed=0))
        b = first_records(graph("bfs", "road", "GAP", seed=1))
        assert a != b

    def test_suite_label(self):
        assert graph("MIS", "road", "LIGRA").suite == "LIGRA"


class TestParsec:
    def test_all_construct(self):
        for name in PARSEC_BENCHMARKS:
            assert first_records(parsec(name))


class TestGkb5:
    def test_indices_give_distinct_workloads(self):
        assert first_records(gkb5(7)) != first_records(gkb5(19))

    def test_forced_profiles(self):
        from repro.workloads.patterns import PageTiled, Stream

        friendly = gkb5(101)
        hostile = gkb5(310)
        assert isinstance(friendly.phases[0][0](), Stream)
        assert isinstance(hostile.phases[0][0](), PageTiled)

    def test_deterministic(self):
        assert first_records(gkb5(42)) == first_records(gkb5(42))


class TestQmm:
    def test_kinds(self):
        assert qmm("int", 100).suite == "QMM_INT"
        assert qmm("fp", 200).suite == "QMM_FP"

    def test_bad_kind_raises(self):
        with pytest.raises(ValueError):
            qmm("vector", 1)

    def test_forced_figure2_profiles(self):
        from repro.workloads.patterns import PageTiled, Stream

        assert isinstance(qmm("int", 13).phases[0][0](), Stream)
        assert isinstance(qmm("int", 859).phases[0][0](), PageTiled)
        assert isinstance(qmm("fp", 44).phases[0][0](), PageTiled)


class TestNonIntensive:
    def test_construct_and_sparse(self):
        w = non_intensive(3)
        assert w.mean_gap >= 10.0
        records = first_records(w, 100)
        footprint_lines = {r[1] >> 6 for r in records}
        assert len(footprint_lines) <= 8 * 64  # stays tiny
