"""Shared-memory pack store: publish/attach equality, spill, lifecycle."""

import pytest

from repro.core.policies import DiscardPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.validate import result_diff
from repro.workloads import by_name
from repro.workloads.packed import clear_pack_cache, get_packed, pack_cache_stats
from repro.workloads.shm import (
    SharedPackStore,
    attach_pack,
    detach_all,
    install_attachments,
    live_segments,
)
from repro.workloads.trace_io import FileWorkload, snapshot_workload


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    detach_all()
    clear_pack_cache()


class _AnonymousWorkload:
    """No seed, no path: keyed by object id, never publishable."""

    name = "anon"
    suite = "TEST"

    def generate(self):  # pragma: no cover - never run
        return iter(())


class _EmptyWorkload:
    """Seeded (publishable key) but yields nothing: an empty pack."""

    name = "empty"
    suite = "TEST"
    seed = 7

    def generate(self):
        return iter(())


class TestPublish:
    def test_attached_pack_matches_local_pack(self):
        with SharedPackStore() as store:
            w = by_name("astar")
            handle = store.publish(w, 1_000, 2_000)
            assert handle is not None and handle.kind == "shm"
            local = get_packed(w, 1_000, 2_000)
            attached = attach_pack(handle)
            assert list(attached.pcs) == list(local.pcs)
            assert list(attached.vaddrs) == list(local.vaddrs)
            assert list(attached.flags) == list(local.flags)
            assert list(attached.gaps) == list(local.gaps)
            assert (attached.instructions, attached.complete) == (
                local.instructions, local.complete)
            detach_all()

    def test_publish_dedupes_by_identity(self):
        with SharedPackStore() as store:
            w = by_name("astar")
            first = store.publish(w, 1_000, 2_000)
            assert store.publish(w, 1_000, 2_000) is first
            assert store.publish(w, 1_000, 3_000) is not first
            assert len(store.handles()) == 2

    def test_anonymous_workload_not_published(self):
        with SharedPackStore() as store:
            assert store.publish(_AnonymousWorkload(), 100, 200) is None
            assert store.handles() == []

    def test_empty_pack_not_published(self):
        with SharedPackStore() as store:
            assert store.publish(_EmptyWorkload(), 100, 200) is None

    def test_spill_file_roundtrip(self, tmp_path):
        # spill_bytes=0 forces every pack onto the mmap-file path
        with SharedPackStore(spill_bytes=0, spill_dir=str(tmp_path)) as store:
            w = by_name("astar")
            handle = store.publish(w, 1_000, 2_000)
            assert handle.kind == "file"
            local = get_packed(w, 1_000, 2_000)
            attached = attach_pack(handle)
            assert list(attached.records()) == list(local.records())
            detach_all()
        assert list(tmp_path.glob("repro-pack-*")) == []  # close() unlinked

    def test_close_unlinks_segments_and_rejects_publish(self):
        store = SharedPackStore()
        handle = store.publish(by_name("astar"), 1_000, 2_000)
        assert handle.ref in live_segments()
        store.close()
        store.close()  # idempotent
        assert live_segments() == []
        with pytest.raises(RuntimeError, match="closed"):
            store.publish(by_name("astar"), 1_000, 2_000)


class TestSharedProvider:
    def test_attachments_bypass_local_cache(self):
        with SharedPackStore() as store:
            w = by_name("astar")
            handle = store.publish(w, 1_000, 2_000)
            clear_pack_cache()  # publish() itself warmed the local cache
            install_attachments([handle])
            before = pack_cache_stats()
            packed = get_packed(w, 1_000, 2_000)
            after = pack_cache_stats()
            assert packed is attach_pack(handle)
            assert after["size"] == 0  # never entered the local LRU
            assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])
            detach_all()

    def test_detach_uninstalls_provider(self):
        with SharedPackStore() as store:
            w = by_name("astar")
            handle = store.publish(w, 1_000, 2_000)
            clear_pack_cache()
            install_attachments([handle])
            shared = get_packed(w, 1_000, 2_000)
            detach_all()
            local = get_packed(w, 1_000, 2_000)
            assert local is not shared  # packed locally again
            assert pack_cache_stats()["size"] == 1


class TestShmSimulation:
    """Satellite: finite traces behave identically on all three replay paths."""

    def _file_workload(self, tmp_path, instructions):
        path = tmp_path / "trace.rptr"
        snapshot_workload(by_name("astar"), path, instructions=instructions)
        return FileWorkload(path)

    def _config(self, warmup, sim, packed=False):
        return SimConfig(policy_factory=DiscardPgc, warmup_instructions=warmup,
                         sim_instructions=sim, packed=packed)

    def test_complete_window_identical_on_all_paths(self, tmp_path):
        w = self._file_workload(tmp_path, instructions=12_000)
        generator = simulate(w, self._config(1_000, 3_000))
        packed = simulate(w, self._config(1_000, 3_000, packed=True))
        assert result_diff(generator, packed) == {}
        with SharedPackStore() as store:
            handle = store.publish(w, 1_000, 3_000)
            assert handle is not None  # path-keyed, hence publishable
            clear_pack_cache()
            install_attachments([handle])
            shared = simulate(w, self._config(1_000, 3_000, packed=True))
            assert result_diff(generator, shared) == {}
            detach_all()

    def test_truncated_window_same_error_on_all_paths(self, tmp_path):
        # the snapshot ends mid-measurement: every path must raise the same
        # truncation error, not silently under-measure
        w = self._file_workload(tmp_path, instructions=4_000)
        with pytest.raises(ValueError, match="truncating") as generator:
            simulate(w, self._config(2_000, 6_000))
        with pytest.raises(ValueError, match="truncating") as packed:
            simulate(w, self._config(2_000, 6_000, packed=True))
        assert str(packed.value) == str(generator.value)
        with SharedPackStore() as store:
            handle = store.publish(w, 2_000, 6_000)
            assert handle is not None and not handle.complete
            clear_pack_cache()
            install_attachments([handle])
            with pytest.raises(ValueError, match="truncating") as shared:
                simulate(w, self._config(2_000, 6_000, packed=True))
            assert str(shared.value) == str(generator.value)
            detach_all()


class TestStaleReaper:
    """Segments orphaned by a SIGKILLed owner are reclaimed, live ones kept."""

    def test_dead_owner_segment_is_reaped(self):
        from multiprocessing import shared_memory

        from repro.workloads.shm import live_segments, reap_stale_segments

        # fabricate an orphan: no process can own pid 2**22+1 on this box
        # (beyond default pid_max ordering is irrelevant — just not alive)
        dead_pid = 2 ** 22 + 1
        name = f"repro-pack-{dead_pid}-0"
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        seg.close()
        try:
            assert name in live_segments()
            assert reap_stale_segments() >= 1
            assert name not in live_segments()
        finally:
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    def test_live_owner_segment_survives(self):
        import os
        from multiprocessing import shared_memory

        from repro.workloads.shm import live_segments, reap_stale_segments

        name = f"repro-pack-{os.getpid()}-999999"
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        seg.close()
        try:
            reap_stale_segments()
            assert name in live_segments()
        finally:
            seg.unlink()

    def test_store_creation_sweeps_orphans(self):
        from multiprocessing import shared_memory

        from repro.workloads.shm import SharedPackStore, live_segments

        name = f"repro-pack-{2 ** 22 + 2}-0"
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        seg.close()
        try:
            with SharedPackStore():
                assert name not in live_segments()
        finally:
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
