"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "astar"])
        args2 = build_parser().parse_args(["compare", "--workload", "astar"])
        assert args.policy == "dripper"
        assert args2.policies == ["discard", "permit", "dripper"]

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "astar", "--policy", "magic"])


class TestCommands:
    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "pub" in out

    def test_features(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "55 program features" in out
        assert "6 system features" in out

    def test_workloads_filtered(self, capsys):
        assert main(["workloads", "--set", "seen", "--suite", "GAP"]) == 0
        out = capsys.readouterr().out
        assert "cc.road" in out
        assert "astar" not in out

    def test_workloads_unknown_suite_errors(self):
        with pytest.raises(SystemExit) as err:
            main(["workloads", "--set", "seen", "--suite", "BOGUS"])
        message = str(err.value)
        assert "BOGUS" in message
        assert "GAP" in message and "SPEC" in message  # lists the known suites

    def test_run_small(self, capsys):
        code = main([
            "run", "--workload", "hmmer", "--policy", "discard",
            "--warmup", "1000", "--sim", "3000",
        ])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--workload", "hmmer", "--policies", "discard", "permit",
            "--warmup", "1000", "--sim", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "permit-pgc" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--workload", "nope", "--warmup", "100", "--sim", "100"])


class TestObservabilityFlags:
    _FAST = ["--warmup", "1000", "--sim", "4000"]

    def test_run_with_timeline_journal_profile(self, tmp_path, capsys):
        timeline = tmp_path / "timeline.jsonl"
        journal = tmp_path / "journal.jsonl"
        code = main([
            "run", "--workload", "astar", "--policy", "dripper", *self._FAST,
            "--timeline-out", str(timeline), "--journal", str(journal), "--profile",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "profile breakdown" in captured.out
        assert "cache.load" in captured.out

        rows = [json.loads(line) for line in timeline.read_text().splitlines()]
        assert len(rows) >= 2  # 5000 instructions / 2048-instruction epochs
        assert all("threshold" in r and "permit_rate" in r for r in rows)
        assert all(r["permit_rate"] is not None for r in rows)

        rec = json.loads(journal.read_text().splitlines()[0])
        assert rec["config"]["policy"] == "dripper[berti]"
        assert rec["wall_seconds"] > 0
        assert rec["context"]["spec"]["policy"] == "dripper"

    def test_run_json_output(self, capsys):
        code = main(["run", "--workload", "hmmer", "--policy", "discard",
                     *self._FAST, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "hmmer"
        assert payload["result"]["ipc"] > 0
        assert "prefetch_coverage" in payload["derived"]
        assert payload["spec"]["policy"] == "discard"

    def test_json_with_profile_stays_parseable(self, capsys):
        code = main(["run", "--workload", "hmmer", "--policy", "discard",
                     *self._FAST, "--json", "--profile"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cache.load" in payload["profile"]

    def test_compare_json(self, capsys):
        code = main(["compare", "--workload", "hmmer", "--policies", "discard", "permit",
                     *self._FAST, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "discard"
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["speedup_pct"] == 0.0

    def test_compare_timeline_csv(self, tmp_path, capsys):
        timeline = tmp_path / "timeline.csv"
        code = main(["compare", "--workload", "hmmer", "--policies", "discard", "permit",
                     *self._FAST, "--timeline-out", str(timeline)])
        assert code == 0
        lines = timeline.read_text().splitlines()
        assert lines[0].startswith("run,workload,epoch")
        # both runs contribute rows, tagged 0 and 1
        assert any(line.startswith("0,hmmer") for line in lines[1:])
        assert any(line.startswith("1,hmmer") for line in lines[1:])


class TestParallelAndCacheFlags:
    _FAST = ["--warmup", "1000", "--sim", "3000"]

    def test_compare_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["compare", "--workload", "hmmer", "--policies", "discard", "permit",
                *self._FAST, "--jobs", "2", "--cache-dir", str(cache_dir), "--json"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        first = json.loads(captured.out)
        assert "2 store(s)" in captured.err
        # second invocation: a fresh process-equivalent run, all cache hits
        assert main(argv) == 0
        captured = capsys.readouterr()
        second = json.loads(captured.out)
        assert "2 hit(s)" in captured.err and "0 store(s)" in captured.err
        assert second == first

    def test_compare_cached_journals_simulated_runs_only(self, tmp_path):
        cache_dir, journal = tmp_path / "cache", tmp_path / "runs.jsonl"
        argv = ["compare", "--workload", "hmmer", "--policies", "discard", "permit",
                *self._FAST, "--cache-dir", str(cache_dir), "--journal", str(journal)]
        assert main(argv) == 0
        assert main(argv) == 0
        records = [json.loads(line) for line in journal.read_text().splitlines()]
        assert len(records) == 2  # second invocation was served from the cache

    def test_sweep_table(self, capsys):
        code = main(["sweep", "--param", "dram-latency", "--values", "120", "360",
                     "--workloads", "hmmer", "--policies", "permit", *self._FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep dram-latency" in out
        assert "120" in out and "360" in out

    def test_sweep_epoch_json(self, capsys):
        code = main(["sweep", "--param", "epoch", "--values", "512", "2048",
                     "--workloads", "hmmer", *self._FAST, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["points"]) == {"512", "2048"}
        assert all("dripper" in point for point in payload["points"].values())

    def test_sweep_rejects_invalid_tlb_size(self):
        with pytest.raises(ValueError, match="multiple of its 12 ways"):
            main(["sweep", "--param", "stlb", "--values", "100",
                  "--workloads", "hmmer", *self._FAST])

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "astar", "--jobs", "0"])


class TestInspect:
    def test_inspect_dripper(self, capsys):
        code = main(["inspect", "--workload", "astar",
                     "--warmup", "1000", "--sim", "4000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dripper[berti]" in out
        assert "T_a=" in out

    def test_inspect_json(self, capsys):
        code = main(["inspect", "--workload", "astar", "--json",
                     "--warmup", "1000", "--sim", "4000"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["filter"]["name"] == "dripper[berti]"
        assert "threshold" in payload["filter"]

    def test_inspect_static_policy_fails_cleanly(self, capsys):
        code = main(["inspect", "--workload", "astar", "--policy", "discard",
                     "--warmup", "1000", "--sim", "4000"])
        assert code == 1
        assert "not a perceptron filter" in capsys.readouterr().err


class TestTraceCommands:
    def test_snapshot_and_replay(self, tmp_path, capsys):
        out = tmp_path / "snap.rptr"
        assert main(["snapshot", "--workload", "hmmer", "--out", str(out), "--instructions", "2000"]) == 0
        assert out.exists()
        code = main([
            "run", "--trace-file", str(out), "--policy", "discard",
            "--warmup", "500", "--sim", "1000",
        ])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_workload_and_trace_file_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "run", "--workload", "astar", "--trace-file", "x.rptr",
            ])


class TestPrefetcherChoices:
    def test_all_registered_prefetchers_accepted(self):
        for name in ("berti", "berti-timely", "ipcp", "bop", "stride", "next-line", "none"):
            args = build_parser().parse_args(["run", "--workload", "astar", "--prefetcher", name])
            assert args.prefetcher == name


class TestValidate:
    def test_validate_flag_off_by_default(self):
        args = build_parser().parse_args(["run", "--workload", "astar"])
        assert args.validate is False

    def test_run_with_validate(self, capsys):
        code = main([
            "run", "--workload", "hmmer", "--policy", "permit",
            "--warmup", "500", "--sim", "1500", "--validate",
        ])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_validate_subcommand_table(self, capsys):
        code = main([
            "validate", "--workloads", "hmmer", "--policies", "discard",
            "--warmup", "500", "--sim", "1500", "--fuzz", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "validation suite" in out
        assert "FAIL" not in out

    def test_validate_subcommand_json(self, capsys):
        code = main([
            "validate", "--workloads", "hmmer", "--policies", "discard", "permit",
            "--warmup", "500", "--sim", "1500", "--fuzz", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        assert payload["passed"] == len(payload["checks"])
        names = {check["name"] for check in payload["checks"]}
        assert any(name.startswith("determinism") for name in names)
        assert any(name.startswith("mutation-detected") for name in names)


class TestMixCommand:
    FAST = ["--mixes", "1", "--cores", "2", "--warmup", "500", "--sim", "1500"]

    def test_mix_table(self, capsys):
        code = main(["mix", *self.FAST, "--policies", "discard", "dripper"])
        assert code == 0
        out = capsys.readouterr().out
        assert "weighted speedup over discard" in out
        assert "dripper" in out

    def test_mix_json_jobs2_journal(self, tmp_path, capsys):
        journal = tmp_path / "mix.jsonl"
        code = main(["mix", *self.FAST, "--policies", "discard", "permit",
                     "--jobs", "2", "--json", "--journal", str(journal)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "discard"
        assert len(payload["policies"]["permit"]["per_mix_pct"]) == 1
        from repro.obs import read_journal

        records = read_journal(journal)
        mix_records = [r for r in records
                       if (r.get("context") or {}).get("mix") is not None]
        assert len(mix_records) == 2 * 2  # 2 policies x 2 cores
        capsys.readouterr()
        assert main(["status", "--journal", str(journal)]) == 0
        assert "mix work" in capsys.readouterr().out

    def test_mix_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "--policies", "bogus"])


class TestTelemetryFlags:
    FAST = ["--warmup", "1000", "--sim", "3000"]

    def test_run_metrics_out_prometheus(self, tmp_path, capsys):
        out = tmp_path / "m.prom"
        code = main(["run", "--workload", "astar", "--policy", "discard",
                     *self.FAST, "--packed", "--metrics-out", str(out)])
        assert code == 0
        from repro.obs.metrics import parse_prometheus, summarize

        samples = parse_prometheus(out.read_text())
        assert summarize(samples, "sim_drives_total") >= 1
        assert f"-> {out}" in capsys.readouterr().err

    def test_run_metrics_out_json(self, tmp_path):
        out = tmp_path / "m.json"
        assert main(["run", "--workload", "astar", "--policy", "discard",
                     *self.FAST, "--metrics-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert {s["name"] for s in doc["samples"]} >= {"sim.drives"}

    def test_run_trace_out_chrome_json(self, tmp_path, capsys):
        from repro.workloads.packed import clear_pack_cache

        clear_pack_cache()  # a warm cache would skip the "pack" span
        out = tmp_path / "t.json"
        code = main(["run", "--workload", "astar", "--policy", "discard",
                     *self.FAST, "--packed", "--trace-out", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert {"pack", "drive", "collect"} <= names
        assert "span(s)" in capsys.readouterr().err

    def test_trace_out_does_not_leak_into_later_commands(self, tmp_path):
        from repro.obs.tracing import current_tracer

        out = tmp_path / "t.json"
        main(["run", "--workload", "astar", "--policy", "discard",
              *self.FAST, "--trace-out", str(out)])
        assert current_tracer() is None  # uninstalled after emitting

    def test_compare_progress_lines(self, capsys):
        code = main(["compare", "--workload", "astar",
                     "--policies", "discard", "dripper", *self.FAST,
                     "--jobs", "2", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "grid: 2 cell(s)" in err
        assert "grid: done in" in err


class TestStatusCommand:
    FAST = ["--warmup", "1000", "--sim", "3000"]

    def _journal(self, tmp_path):
        journal = tmp_path / "runs.jsonl"
        main(["compare", "--workload", "astar",
              "--policies", "discard", "dripper", *self.FAST,
              "--journal", str(journal)])
        return journal

    def test_status_table(self, tmp_path, capsys):
        journal = self._journal(tmp_path)
        capsys.readouterr()
        assert main(["status", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "runs" in out and "astar" in out
        assert "per policy" in out

    def test_status_json_with_metrics(self, tmp_path, capsys):
        journal = tmp_path / "runs.jsonl"
        metrics = tmp_path / "m.prom"
        main(["compare", "--workload", "astar",
              "--policies", "discard", "dripper", *self.FAST,
              "--journal", str(journal), "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["status", "--journal", str(journal),
                     "--metrics", str(metrics), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["runs"] == 2
        assert payload["summary"]["workloads"] == ["astar"]
        assert payload["summary"]["instructions"] > 0
        assert any(k.startswith("sim_drives_total") for k in payload["metrics"])

    def test_status_empty_journal_fails(self, tmp_path, capsys):
        journal = tmp_path / "empty.jsonl"
        journal.write_text("")
        assert main(["status", "--journal", str(journal)]) == 1
        assert "no records" in capsys.readouterr().err
