"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "astar"])
        args2 = build_parser().parse_args(["compare", "--workload", "astar"])
        assert args.policy == "dripper"
        assert args2.policies == ["discard", "permit", "dripper"]

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "astar", "--policy", "magic"])


class TestCommands:
    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "pub" in out

    def test_features(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "55 program features" in out
        assert "6 system features" in out

    def test_workloads_filtered(self, capsys):
        assert main(["workloads", "--set", "seen", "--suite", "GAP"]) == 0
        out = capsys.readouterr().out
        assert "cc.road" in out
        assert "astar" not in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--workload", "hmmer", "--policy", "discard",
            "--warmup", "1000", "--sim", "3000",
        ])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--workload", "hmmer", "--policies", "discard", "permit",
            "--warmup", "1000", "--sim", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "permit-pgc" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--workload", "nope", "--warmup", "100", "--sim", "100"])


class TestTraceCommands:
    def test_snapshot_and_replay(self, tmp_path, capsys):
        out = tmp_path / "snap.rptr"
        assert main(["snapshot", "--workload", "hmmer", "--out", str(out), "--instructions", "2000"]) == 0
        assert out.exists()
        code = main([
            "run", "--trace-file", str(out), "--policy", "discard",
            "--warmup", "500", "--sim", "1000",
        ])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_workload_and_trace_file_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "run", "--workload", "astar", "--trace-file", "x.rptr",
            ])


class TestPrefetcherChoices:
    def test_all_registered_prefetchers_accepted(self):
        for name in ("berti", "berti-timely", "ipcp", "bop", "stride", "next-line", "none"):
            args = build_parser().parse_args(["run", "--workload", "astar", "--prefetcher", name])
            assert args.prefetcher == name
