"""Filter introspection helpers."""

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.dripper import make_dripper, make_dripper_sf
from repro.core.introspect import (
    filter_state,
    format_filter_state,
    quick_state,
    top_weights,
    weight_summary,
)
from repro.core.system_state import SystemState


def trained_dripper():
    d = make_dripper("berti")
    ctx = FeatureContext()
    ctx.update(0x400, 0x7F000000)
    state = SystemState()
    for delta in (8, 16, 70):
        dec = d.decide(PrefetchRequest(0x7F000000 + (delta << 6), 0x400, delta), ctx, state)
        for _ in range(4):
            d._train(dec.record, positive=True)
    return d


class TestWeightSummary:
    def test_counts_nonzero(self):
        d = trained_dripper()
        summary = weight_summary(d)
        assert summary["Delta"]["nonzero"] >= 2
        assert summary["Delta"]["max"] > 0

    def test_system_weights_included(self):
        summary = weight_summary(trained_dripper())
        assert "system:sTLB MPKI" in summary


class TestTopWeights:
    def test_ranked_by_magnitude(self):
        tops = top_weights(trained_dripper(), n=5)
        magnitudes = [abs(w) for _, w in tops]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert all(w != 0 for _, w in tops)


class TestFilterState:
    def test_snapshot_fields(self):
        state = filter_state(trained_dripper())
        assert state["name"] == "dripper[berti]"
        assert state["predictions"] == 3
        assert 0.0 <= state["permit_rate"] <= 1.0
        assert state["positive_updates"] == 12
        assert "epochs_seen" in state  # adaptive threshold extras

    def test_format_renders(self):
        text = format_filter_state(trained_dripper())
        assert "dripper[berti]" in text
        assert "Delta" in text
        assert "vUB" in text

    def test_format_renders_system_only_filter(self):
        """dripper-sf has no program features; formatting must still work."""
        text = format_filter_state(make_dripper_sf("berti"))
        assert "dripper-sf[berti]" in text
        assert "system:sTLB MPKI" in text

    def test_untrained_filter_state_is_all_zero(self):
        state = filter_state(make_dripper("berti"))
        assert state["predictions"] == 0
        assert state["permit_rate"] == 0.0
        assert state["weights"]["Delta"]["nonzero"] == 0


class TestQuickState:
    def test_matches_filter_state_on_shared_fields(self):
        d = trained_dripper()
        quick = quick_state(d)
        full = filter_state(d)
        for key in ("threshold", "predictions", "permits", "permit_rate",
                    "vub_occupancy", "pub_occupancy"):
            assert quick[key] == full[key], key

    def test_no_weight_tables(self):
        """quick_state is the per-epoch sampler: it must stay O(1)-small."""
        assert "weights" not in quick_state(trained_dripper())

    def test_untrained(self):
        quick = quick_state(make_dripper("berti"))
        assert quick["predictions"] == 0
        assert quick["permit_rate"] == 0.0
