"""PPF comparator: the Section VI differences from DRIPPER must hold."""

from repro.core.ppf import PPF_FEATURES, make_ppf, make_ppf_dthr
from repro.core.thresholds import AdaptiveThreshold, StaticThreshold


class TestPpfShape:
    def test_no_system_features(self):
        """Difference (i): PPF uses only program features."""
        assert not make_ppf().sys_specs

    def test_static_threshold(self):
        """Difference (iii): PPF uses a static activation threshold."""
        assert isinstance(make_ppf().threshold, StaticThreshold)

    def test_no_delta_feature(self):
        """PPF's converted feature set keeps SPP-independent features only;
        crucially it lacks the Delta-based features DRIPPER selects."""
        assert "Delta" not in PPF_FEATURES
        assert "PC^Delta" not in PPF_FEATURES

    def test_prefetcher_independent_features_present(self):
        assert "PC" in PPF_FEATURES
        assert "CacheLineOffset" in PPF_FEATURES

    def test_feature_count(self):
        assert len(PPF_FEATURES) == 6
        assert len(make_ppf().features) == 6


class TestPpfDthr:
    def test_adaptive_threshold(self):
        assert isinstance(make_ppf_dthr().threshold, AdaptiveThreshold)

    def test_same_features_as_ppf(self):
        plain = [f.name for f in make_ppf().features]
        dthr = [f.name for f in make_ppf_dthr().features]
        assert plain == dthr

    def test_names(self):
        assert make_ppf().name == "ppf"
        assert make_ppf_dthr().name == "ppf+dthr"
