"""Perceptron storage: saturating counters and weight tables."""

import pytest
from hypothesis import given, strategies as st

from repro.core.perceptron import SaturatingCounter, WeightTable


class TestSaturatingCounter:
    def test_five_bit_range(self):
        c = SaturatingCounter(bits=5)
        assert (c.lo, c.hi) == (-16, 15)

    def test_saturates_high(self):
        c = SaturatingCounter(bits=5)
        for _ in range(40):
            c.increment()
        assert c.value == 15

    def test_saturates_low(self):
        c = SaturatingCounter(bits=5)
        for _ in range(40):
            c.decrement()
        assert c.value == -16

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=3, initial=100)

    @given(st.lists(st.booleans(), max_size=100))
    def test_bounded_under_any_sequence(self, ops):
        c = SaturatingCounter(bits=4)
        for up in ops:
            c.increment() if up else c.decrement()
            assert c.lo <= c.value <= c.hi


class TestWeightTable:
    def test_initial_zero(self):
        t = WeightTable(entries=16, bits=5)
        assert all(w == 0 for w in t.weights)

    def test_train_positive_negative(self):
        t = WeightTable(entries=16)
        t.train(3, positive=True)
        t.train(3, positive=True)
        t.train(3, positive=False)
        assert t.read(3) == 1

    def test_saturation(self):
        t = WeightTable(entries=16, bits=5)
        for _ in range(50):
            t.train(0, positive=True)
            t.train(1, positive=False)
        assert t.read(0) == 15
        assert t.read(1) == -16

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            WeightTable(entries=100)

    def test_index_bits(self):
        assert WeightTable(entries=512).index_bits == 9

    def test_storage_bits(self):
        assert WeightTable(entries=512, bits=5).storage_bits() == 512 * 5

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15), st.booleans()), max_size=200))
    def test_weights_always_in_range(self, ops):
        t = WeightTable(entries=16, bits=5)
        for idx, positive in ops:
            t.train(idx, positive)
        assert all(-16 <= w <= 15 for w in t.weights)
