"""Offline feature selection (Section III-D3) on a tiny scale."""

import pytest

from repro.core.selection import select_features
from repro.workloads import by_name


@pytest.fixture(scope="module")
def report():
    workloads = [by_name("libquantum"), by_name("fotonik3d_s")]
    return select_features(
        "berti",
        workloads,
        program_candidates=("Delta", "PC"),
        system_candidates=("sTLB Miss Rate",),
        warmup_instructions=3_000,
        sim_instructions=9_000,
    )


class TestSelection:
    def test_scores_all_candidates(self, report):
        assert {s.name for s in report.scores} == {"Delta", "PC", "sTLB Miss Rate"}

    def test_scores_sorted_descending(self, report):
        speedups = [s.speedup for s in report.scores]
        assert speedups == sorted(speedups, reverse=True)

    def test_selects_something(self, report):
        assert report.selected_program or report.selected_system

    def test_final_speedup_not_worse_than_baseline(self, report):
        assert report.final_speedup >= 0.99

    def test_system_flag_correct(self, report):
        kinds = {s.name: s.is_system for s in report.scores}
        assert kinds["sTLB Miss Rate"] is True
        assert kinds["Delta"] is False

    def test_prefetcher_recorded(self, report):
        assert report.prefetcher == "berti"
