"""PerceptronFilter + AdaptiveThreshold interplay (epoch-driven behaviour)."""

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.dripper import make_dripper
from repro.core.system_state import EpochStats, SystemState
from repro.core.thresholds import AdaptiveThreshold


def ctx():
    c = FeatureContext()
    c.update(0x400, 0x7F000000)
    return c


def request(delta=70):
    return PrefetchRequest(0x7F000000 + (delta << 6), 0x400, delta)


def accurate_epoch():
    return EpochStats(instructions=2048, cycles=2048.0, ipc=1.0, pgc_useful=20, pgc_useless=1)


def inaccurate_epoch():
    return EpochStats(instructions=2048, cycles=2048.0, ipc=1.0, pgc_useful=1, pgc_useless=20)


class TestPhaseBehaviour:
    def test_saturated_weights_blocked_by_high_threshold(self):
        """After an inaccurate epoch, even a fully-confident program weight
        alone cannot pass T_a = t_high (the ladder spans the weight range)."""
        dripper = make_dripper("berti")
        state = SystemState(stlb_mpki=50.0, stlb_miss_rate=0.0)  # both system features inactive
        dec = dripper.decide(request(), ctx(), state)
        for _ in range(20):  # saturate the delta weight
            dripper._train(dec.record, positive=True)
        assert dripper.decide(request(), ctx(), state).issue
        dripper.on_epoch(inaccurate_epoch())
        assert dripper.threshold.current == dripper.threshold.config.t_high
        assert not dripper.decide(request(), ctx(), state).issue

    def test_recovery_after_accurate_epochs(self):
        dripper = make_dripper("berti")
        state = SystemState(stlb_mpki=50.0, stlb_miss_rate=0.0)
        dec = dripper.decide(request(), ctx(), state)
        for _ in range(20):
            dripper._train(dec.record, positive=True)
        dripper.on_epoch(inaccurate_epoch())
        assert not dripper.decide(request(), ctx(), state).issue
        for _ in range(10):
            dripper.on_epoch(accurate_epoch())
        assert dripper.decide(request(), ctx(), state).issue

    def test_system_features_lift_borderline_sums(self):
        """With system features active and trained, a modest program weight
        clears thresholds that it could not clear alone."""
        dripper = make_dripper("berti")
        inactive = SystemState(stlb_mpki=50.0, stlb_miss_rate=0.0)
        active = SystemState(stlb_mpki=0.0, stlb_miss_rate=0.9)  # both active
        dec = dripper.decide(request(), ctx(), active)
        for _ in range(3):
            dripper._train(dec.record, positive=True)
        dripper.on_epoch(EpochStats(instructions=2048, cycles=2048.0, ipc=1.0,
                                    pgc_useful=5, pgc_useless=7))  # accuracy < 0.5 -> t_medium
        assert not dripper.decide(request(), ctx(), inactive).issue
        assert dripper.decide(request(), ctx(), active).issue


class TestThresholdScaling:
    def test_ladder_within_weight_reach(self):
        """t_high must be reachable by program weight + system weights."""
        t = AdaptiveThreshold()
        max_sum = 15 + 15 + 15  # one program + two system features, 5-bit
        assert t.config.t_high < max_sum
        assert t.config.t_high > 15  # a lone program weight must not suffice
