"""PerceptronFilter: prediction (Fig. 6) and training (Fig. 7) flows."""

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.filter import FilterConfig, PerceptronFilter, single_feature_filter
from repro.core.system_state import SystemState


def make_filter(**overrides) -> PerceptronFilter:
    config = FilterConfig(
        program_features=("Delta",),
        system_features=("sTLB MPKI", "sTLB Miss Rate"),
        adaptive=False,
        static_threshold=0,
        **overrides,
    )
    return PerceptronFilter(config)


def request(delta=70, vaddr=0x7F002000, pc=0x400100):
    return PrefetchRequest(vaddr, pc, delta)


def ctx():
    c = FeatureContext()
    c.update(0x400100, 0x7F001000)
    return c


def quiet_state():
    # sTLB MPKI = 0 < threshold -> that system feature is active
    return SystemState()


class TestPrediction:
    def test_untrained_filter_discards(self):
        f = make_filter()
        assert not f.decide(request(), ctx(), quiet_state()).issue

    def test_record_contains_indexes_and_active_features(self):
        f = make_filter()
        record = f.decide(request(), ctx(), quiet_state()).record
        assert len(record.program_indexes) == 1
        assert "sTLB MPKI" in record.system_features  # 0 < low-pressure bar

    def test_inactive_system_feature_excluded(self):
        f = make_filter()
        state = quiet_state()
        state.stlb_mpki = 50.0  # above the '<' threshold -> inactive
        record = f.decide(request(), ctx(), quiet_state()).record
        record_hi = f.decide(request(), ctx(), state).record
        assert "sTLB MPKI" in record.system_features
        assert "sTLB MPKI" not in record_hi.system_features

    def test_positive_weight_passes_threshold(self):
        f = make_filter()
        dec = f.decide(request(), ctx(), quiet_state())
        f._train(dec.record, positive=True)
        assert f.decide(request(), ctx(), quiet_state()).issue

    def test_different_delta_not_affected(self):
        f = make_filter()
        dec = f.decide(request(delta=70), ctx(), quiet_state())
        for _ in range(5):
            f._train(dec.record, positive=True)
        # system weights are shared, so compare against a far-away delta with
        # the system features inactive
        state = quiet_state()
        state.stlb_mpki = 50.0
        state.stlb_miss_rate = 0.0
        assert not f.decide(request(delta=-33), ctx(), state).issue

    def test_prediction_counters(self):
        f = make_filter()
        f.decide(request(), ctx(), quiet_state())
        assert f.predictions == 1


class TestVubTraining:
    def test_discard_then_demand_miss_trains_positive(self):
        f = make_filter()
        dec = f.decide(request(vaddr=0x7F002000), ctx(), quiet_state())
        assert not dec.issue
        f.on_discarded(0x7F002000 >> 6, dec.record)
        f.on_demand_miss(0x7F002000 >> 6)
        assert f.positive_updates == 1

    def test_vub_matches_at_page_granularity(self):
        f = make_filter()
        dec = f.decide(request(vaddr=0x7F002000), ctx(), quiet_state())
        f.on_discarded(0x7F002000 >> 6, dec.record)
        # a miss to a *different line in the same page* still matches
        f.on_demand_miss((0x7F002000 + 0x840) >> 6)
        assert f.positive_updates == 1

    def test_vub_no_match_other_page(self):
        f = make_filter()
        dec = f.decide(request(), ctx(), quiet_state())
        f.on_discarded(0x7F002000 >> 6, dec.record)
        f.on_demand_miss(0x7F009000 >> 6)
        assert f.positive_updates == 0

    def test_vub_entry_consumed_once(self):
        f = make_filter()
        dec = f.decide(request(), ctx(), quiet_state())
        f.on_discarded(0x7F002000 >> 6, dec.record)
        f.on_demand_miss(0x7F002000 >> 6)
        f.on_demand_miss(0x7F002000 >> 6)
        assert f.positive_updates == 1


class TestPubTraining:
    def test_issue_then_hit_trains_positive(self):
        f = make_filter()
        dec = f.decide(request(), ctx(), quiet_state())
        f.on_issued(500, dec.record)
        f.on_pcb_hit(500)
        assert f.positive_updates == 1

    def test_issue_then_unused_eviction_trains_negative(self):
        f = make_filter()
        dec = f.decide(request(), ctx(), quiet_state())
        f.on_issued(500, dec.record)
        f.on_pcb_evict_unused(500)
        assert f.negative_updates == 1

    def test_hit_consumes_entry_before_eviction(self):
        f = make_filter()
        dec = f.decide(request(), ctx(), quiet_state())
        f.on_issued(500, dec.record)
        f.on_pcb_hit(500)
        f.on_pcb_evict_unused(500)
        assert f.negative_updates == 0

    def test_system_weights_trained_only_when_active(self):
        f = make_filter()
        state = quiet_state()
        state.stlb_mpki = 50.0
        state.stlb_miss_rate = 0.5  # miss-rate feature active instead
        dec = f.decide(request(), ctx(), state)
        f.on_issued(500, dec.record)
        f.on_pcb_hit(500)
        assert f.sys_weights["sTLB MPKI"].value == 0
        assert f.sys_weights["sTLB Miss Rate"].value == 1


class TestLearningConvergence:
    def test_negative_training_closes_the_gate(self):
        f = make_filter()
        for _ in range(20):
            dec = f.decide(request(), ctx(), quiet_state())
            if dec.issue:
                f.on_issued(500, dec.record)
                f.on_pcb_evict_unused(500)
            else:
                f.on_discarded(0x7F002000 >> 6, dec.record)
                f.on_demand_miss(0x7F002000 >> 6)  # bootstrap open first
        # now hammer with negative evidence
        for _ in range(40):
            dec = f.decide(request(), ctx(), quiet_state())
            if dec.issue:
                f.on_issued(500, dec.record)
                f.on_pcb_evict_unused(500)
        assert not f.decide(request(), ctx(), quiet_state()).issue


class TestStorage:
    def test_storage_scales_with_features(self):
        one = single_feature_filter("Delta")
        two = PerceptronFilter(FilterConfig(program_features=("Delta", "PC")))
        assert two.storage_bits() > one.storage_bits()

    def test_single_feature_filter_system(self):
        f = single_feature_filter("sTLB MPKI", system=True)
        assert not f.features
        assert len(f.sys_specs) == 1
