"""Adaptive thresholding scheme (Figure 8)."""

from repro.core.system_state import EpochStats, SystemState
from repro.core.thresholds import DISABLE, AdaptiveThreshold, StaticThreshold, ThresholdConfig


def epoch(useful=10, useless=0, ipc=1.0, llc_rate=0.1, llc_mpki=1.0, l1i_mpki=0.0, rob=0.0):
    return EpochStats(
        instructions=1000, cycles=1000 / ipc, ipc=ipc,
        pgc_useful=useful, pgc_useless=useless,
        llc_miss_rate=llc_rate, llc_mpki=llc_mpki,
        l1i_mpki=l1i_mpki, rob_stall_fraction=rob,
    )


def quiet_state():
    return SystemState()


class TestStaticThreshold:
    def test_constant(self):
        t = StaticThreshold(3)
        assert t.effective(quiet_state()) == 3
        t.on_epoch_end(epoch())
        assert t.effective(quiet_state()) == 3


class TestEpochAccuracy:
    def test_low_accuracy_forces_high(self):
        t = AdaptiveThreshold()
        t.on_epoch_end(epoch(useful=1, useless=9))
        assert t.current == t.config.t_high

    def test_medium_accuracy_forces_at_least_medium(self):
        t = AdaptiveThreshold()
        t.on_epoch_end(epoch(useful=4, useless=6))
        assert t.current >= t.config.t_medium

    def test_high_accuracy_keeps_default(self):
        t = AdaptiveThreshold()
        t.on_epoch_end(epoch(useful=10, useless=0))
        assert t.current <= t.config.t_default + 1

    def test_no_pgc_epoch_counts_as_accurate(self):
        assert epoch(useful=0, useless=0).pgc_accuracy == 1.0

    def test_accuracy_trend_moves_threshold(self):
        """Accuracy increase (decrease) between epochs moves T_a up (down)."""
        t = AdaptiveThreshold()
        t.on_epoch_end(epoch(useful=6, useless=4))
        mid = t.current
        t.on_epoch_end(epoch(useful=9, useless=1))
        assert t.current == mid + 1

    def test_threshold_clamped(self):
        t = AdaptiveThreshold()
        for _ in range(30):
            t.on_epoch_end(epoch(useful=1, useless=9))
        assert t.config.t_low <= t.current <= t.config.t_high


class TestIpcRule:
    def test_ipc_drop_with_poor_accuracy_forces_medium(self):
        cfg = ThresholdConfig(t_default=-4)
        t = AdaptiveThreshold(cfg)
        t.on_epoch_end(epoch(ipc=1.0, useful=4, useless=6))
        t.on_epoch_end(epoch(ipc=0.8, useful=4, useless=6))
        assert t.current >= cfg.t_medium

    def test_ipc_drop_with_accurate_pgc_not_blamed(self):
        """Contention noise must not throttle an accurate filter (mixes)."""
        cfg = ThresholdConfig(t_default=-4)
        t = AdaptiveThreshold(cfg)
        t.on_epoch_end(epoch(ipc=1.0, useful=10, useless=0))
        t.on_epoch_end(epoch(ipc=0.8, useful=10, useless=0))
        assert t.current < cfg.t_medium

    def test_stable_ipc_no_forcing(self):
        cfg = ThresholdConfig(t_default=-4)
        t = AdaptiveThreshold(cfg)
        t.on_epoch_end(epoch(ipc=1.0))
        t.on_epoch_end(epoch(ipc=1.0))
        assert t.current < cfg.t_medium


class TestInEpochOverrides:
    def test_llc_pressure_with_bad_accuracy_disables(self):
        t = AdaptiveThreshold()
        state = quiet_state()
        state.llc_miss_rate = 0.95
        state.llc_mpki = 100.0
        state.last_epoch = epoch(useful=1, useless=9)
        assert t.effective(state) == DISABLE
        assert t.disable_events == 1

    def test_llc_pressure_with_good_accuracy_does_not_disable(self):
        t = AdaptiveThreshold()
        state = quiet_state()
        state.llc_miss_rate = 0.95
        state.llc_mpki = 100.0
        state.last_epoch = epoch(useful=9, useless=1)
        assert t.effective(state) != DISABLE

    def test_rob_pressure_with_inflight_misses_forces_high(self):
        t = AdaptiveThreshold()
        state = quiet_state()
        state.rob_stall_fraction = 0.9
        state.l1d_inflight_misses = 16
        assert t.effective(state) == t.config.t_high

    def test_rob_pressure_alone_insufficient(self):
        t = AdaptiveThreshold()
        state = quiet_state()
        state.rob_stall_fraction = 0.9
        state.l1d_inflight_misses = 0
        assert t.effective(state) == t.config.t_default

    def test_low_recent_accuracy_forces_high(self):
        t = AdaptiveThreshold()
        state = quiet_state()
        state.last_epoch = epoch(useful=0, useless=10)
        assert t.effective(state) == t.config.t_high

    def test_l1i_pressure_forces_medium(self):
        t = AdaptiveThreshold()
        state = quiet_state()
        state.l1i_mpki = 20.0
        assert t.effective(state) == t.config.t_medium

    def test_quiet_state_uses_base(self):
        t = AdaptiveThreshold()
        assert t.effective(quiet_state()) == t.config.t_default
