"""DRIPPER prototypes: Table II features and Table III storage."""

import pytest

from repro.core.dripper import (
    DRIPPER_FEATURES,
    dripper_config,
    make_dripper,
    make_dripper_sf,
    storage_breakdown_bits,
    storage_overhead_kib,
)


class TestTableII:
    def test_berti_uses_delta(self):
        program, system = DRIPPER_FEATURES["berti"]
        assert program == "Delta"
        assert system == ("sTLB MPKI", "sTLB Miss Rate")

    def test_bop_and_ipcp_use_pc_xor_delta(self):
        for prefetcher in ("bop", "ipcp"):
            program, system = DRIPPER_FEATURES[prefetcher]
            assert program == "PC^Delta"
            assert system == ("sTLB MPKI", "sTLB Miss Rate")

    def test_instances_wired_accordingly(self):
        d = make_dripper("berti")
        assert [f.name for f in d.features] == ["Delta"]
        assert sorted(d.sys_weights) == ["sTLB MPKI", "sTLB Miss Rate"]

    def test_case_insensitive(self):
        assert make_dripper("Berti").name == "dripper[berti]"

    def test_unknown_prefetcher_raises(self):
        with pytest.raises(KeyError, match="no DRIPPER prototype"):
            make_dripper("spp")

    def test_adaptive_thresholding_enabled(self):
        from repro.core.thresholds import AdaptiveThreshold

        assert isinstance(make_dripper("berti").threshold, AdaptiveThreshold)


class TestTableIII:
    def test_storage_overhead_order_of_table_iii(self):
        """Table III reports 1.44KB; our literal accounting of the same
        structures (512x5b weights + 2x5b system weights + 4- and 128-entry
        48-bit buffers) is ~1.1 KiB."""
        kib = storage_overhead_kib("berti")
        assert 1.0 <= kib <= 1.5

    def test_same_budget_for_all_prefetchers(self):
        budgets = {storage_overhead_kib(p) for p in ("berti", "bop", "ipcp")}
        assert len(budgets) == 1

    def test_breakdown_matches_table_rows(self):
        bits = storage_breakdown_bits()
        assert bits["program_feature_tables"] == 512 * 5
        assert bits["system_feature_weights"] == 2 * 5
        assert bits["vub"] == 4 * 48
        assert bits["pub"] == 128 * 48


class TestDripperSf:
    def test_no_program_features(self):
        sf = make_dripper_sf("berti")
        assert not sf.features
        assert sorted(sf.sys_weights) == ["sTLB MPKI", "sTLB Miss Rate"]

    def test_config_copies_geometry(self):
        base = dripper_config("berti")
        sf = make_dripper_sf("berti")
        assert sf.config.pub_entries == base.pub_entries
        assert sf.config.vub_entries == base.vub_entries


class TestBertiTimelyAlias:
    def test_berti_timely_shares_berti_features(self):
        from repro.core.dripper import DRIPPER_FEATURES

        assert DRIPPER_FEATURES["berti-timely"] == DRIPPER_FEATURES["berti"]

    def test_make_dripper_accepts_alias(self):
        d = make_dripper("berti-timely")
        assert [f.name for f in d.features] == ["Delta"]
        assert d.name == "dripper[berti-timely]"
