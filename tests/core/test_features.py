"""Program feature library: the Table I set and the 55-feature space."""

from hypothesis import given, strategies as st

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.features import FEATURES, TABLE_I_FEATURES, fold_hash, get_feature

import pytest


def ctx_with(pc=0x400100, vaddr=0x7F001234, history=()):
    ctx = FeatureContext()
    for hpc, hva in history:
        ctx.update(hpc, hva)
    ctx.update(pc, vaddr)
    return ctx


REQ = PrefetchRequest(vaddr=0x7F002000, pc=0x400100, delta=70)


class TestRegistry:
    def test_exactly_55_features(self):
        """Section III-D1: 'In total, MOKA contains 55 program features'."""
        assert len(FEATURES) == 55

    def test_table_i_has_19_program_features(self):
        assert len(TABLE_I_FEATURES) == 19

    def test_table_i_features_flagged(self):
        for name in TABLE_I_FEATURES:
            assert FEATURES[name].table_i

    def test_delta_feature_present_for_dripper(self):
        assert "Delta" in FEATURES
        assert "PC^Delta" in FEATURES

    def test_get_feature_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown program feature"):
            get_feature("bogus")

    def test_all_features_compute_ints(self):
        ctx = ctx_with(history=[(0x400080, 0x7F000100), (0x400090, 0x7F000200)])
        for feature in FEATURES.values():
            value = feature.value(REQ, ctx)
            assert isinstance(value, int), feature.name


class TestSemantics:
    def test_va_is_trigger_address(self):
        ctx = ctx_with(vaddr=0xABCDE)
        assert get_feature("VA").value(REQ, ctx) == 0xABCDE

    def test_va_shifts(self):
        ctx = ctx_with(vaddr=0xABCDE000)
        assert get_feature("VA>>12").value(REQ, ctx) == 0xABCDE
        assert get_feature("VA>>21").value(REQ, ctx) == 0xABCDE000 >> 21

    def test_pc_is_request_pc(self):
        ctx = ctx_with()
        assert get_feature("PC").value(REQ, ctx) == REQ.pc

    def test_cache_line_offset(self):
        ctx = ctx_with(vaddr=0x7F000000 + 5 * 64)
        assert get_feature("CacheLineOffset").value(REQ, ctx) == 5

    def test_delta_feature_uses_request_delta(self):
        ctx = ctx_with()
        positive = PrefetchRequest(0, 0, 70)
        negative = PrefetchRequest(0, 0, -70)
        f = get_feature("Delta")
        assert f.value(positive, ctx) != f.value(negative, ctx)

    def test_pc_xor_delta(self):
        ctx = ctx_with()
        f = get_feature("PC^Delta")
        assert f.value(REQ, ctx) == REQ.pc ^ (REQ.delta & 0xFFF)

    def test_va_history_xor(self):
        ctx = ctx_with(history=[(1, 0x111000), (2, 0x222000)])
        f = get_feature("VA_i-2^VA_i-1^VA_i")
        assert f.value(REQ, ctx) == 0x111000 ^ 0x222000 ^ ctx.last_vaddr

    def test_first_page_access_changes_value(self):
        f = get_feature("PC^FirstPageAccess")
        fresh = ctx_with(vaddr=0x7F009000)
        assert fresh.first_page_access
        revisit = ctx_with(history=[(1, 0x7F009000)], vaddr=0x7F009040)
        assert not revisit.first_page_access
        assert f.value(REQ, fresh) != f.value(REQ, revisit)


class TestHashing:
    @given(st.integers(min_value=0, max_value=(1 << 60) - 1), st.integers(min_value=4, max_value=12))
    def test_fold_hash_in_range(self, value, bits):
        assert 0 <= fold_hash(value, bits) < (1 << bits)

    def test_fold_hash_deterministic(self):
        assert fold_hash(123456789, 9) == fold_hash(123456789, 9)

    def test_fold_hash_spreads(self):
        indexes = {fold_hash(i << 12, 9) for i in range(512)}
        assert len(indexes) > 256

    def test_index_uses_table_bits(self):
        ctx = ctx_with()
        idx = get_feature("PC").index(REQ, ctx, 9)
        assert 0 <= idx < 512


class TestFeatureContext:
    def test_history_shifts(self):
        ctx = FeatureContext()
        for i in range(1, 5):
            ctx.update(i, i * 0x1000)
        assert ctx.pc_history == [4, 3, 2]
        assert ctx.va_history == [0x4000, 0x3000, 0x2000]

    def test_first_page_access_tracking(self):
        ctx = FeatureContext()
        ctx.update(1, 0x5000)
        assert ctx.first_page_access
        ctx.update(2, 0x5040)
        assert not ctx.first_page_access
        ctx.update(3, 0x9000)
        assert ctx.first_page_access

    def test_seen_pages_bounded(self):
        ctx = FeatureContext(seen_pages_capacity=4)
        for i in range(20):
            ctx.update(1, i << 12)
        assert len(ctx._seen_pages) <= 4

    def test_line_offset(self):
        ctx = FeatureContext()
        assert ctx.line_offset(0x1000 + 3 * 64) == 3
