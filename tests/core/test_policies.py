"""Static page-cross policies and the policy interface contract."""

import pytest

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.policies import Decision, DiscardPgc, DiscardPtw, PageCrossPolicy, PermitPgc
from repro.core.system_state import EpochStats, SystemState

REQ = PrefetchRequest(0x7F002000, 0x400, 70)
CTX = FeatureContext()
STATE = SystemState()


class TestStaticPolicies:
    def test_permit_always_issues(self):
        assert PermitPgc().decide(REQ, CTX, STATE).issue

    def test_discard_never_issues(self):
        assert not DiscardPgc().decide(REQ, CTX, STATE).issue

    def test_discard_ptw_issues_but_requires_translation(self):
        policy = DiscardPtw()
        assert policy.decide(REQ, CTX, STATE).issue
        assert policy.requires_translation_hit

    def test_others_do_not_require_translation(self):
        assert not PermitPgc().requires_translation_hit
        assert not DiscardPgc().requires_translation_hit

    def test_static_policies_have_no_training_record(self):
        for policy in (PermitPgc(), DiscardPgc(), DiscardPtw()):
            assert policy.decide(REQ, CTX, STATE).record is None

    def test_zero_storage(self):
        for policy in (PermitPgc(), DiscardPgc(), DiscardPtw()):
            assert policy.storage_bits() == 0

    def test_names(self):
        assert PermitPgc().name == "permit-pgc"
        assert DiscardPgc().name == "discard-pgc"
        assert DiscardPtw().name == "discard-ptw"


class TestInterfaceContract:
    def test_base_decide_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PageCrossPolicy().decide(REQ, CTX, STATE)

    def test_hooks_are_safe_no_ops(self):
        policy = PermitPgc()
        policy.on_discarded(1, None)
        policy.on_issued(1, None)
        policy.on_demand_miss(1)
        policy.on_pcb_hit(1)
        policy.on_pcb_evict_unused(1)
        policy.on_epoch(EpochStats())

    def test_decision_dataclass(self):
        d = Decision(True)
        assert d.issue and d.record is None
