"""vUB / pUB: capacity, FIFO eviction, pop semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.update_buffers import TrainingRecord, UpdateBuffer

REC = TrainingRecord((1, 2), ("sTLB MPKI",))
REC2 = TrainingRecord((3,), ())


class TestBasics:
    def test_insert_and_pop(self):
        ub = UpdateBuffer(4)
        ub.insert(100, REC)
        assert ub.pop(100) == REC
        assert ub.pop(100) is None

    def test_peek_does_not_remove(self):
        ub = UpdateBuffer(4)
        ub.insert(100, REC)
        assert ub.peek(100) == REC
        assert 100 in ub

    def test_miss_returns_none(self):
        ub = UpdateBuffer(4)
        assert ub.pop(1) is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            UpdateBuffer(0)


class TestEviction:
    def test_fifo_eviction_at_capacity(self):
        ub = UpdateBuffer(2)
        ub.insert(1, REC)
        ub.insert(2, REC)
        ub.insert(3, REC)
        assert 1 not in ub
        assert 2 in ub and 3 in ub

    def test_reinsert_refreshes_position(self):
        ub = UpdateBuffer(2)
        ub.insert(1, REC)
        ub.insert(2, REC)
        ub.insert(1, REC2)  # refresh 1; 2 is now oldest
        ub.insert(3, REC)
        assert 2 not in ub
        assert ub.peek(1) == REC2

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    def test_length_bounded(self, keys):
        ub = UpdateBuffer(4)
        for key in keys:
            ub.insert(key, REC)
            assert len(ub) <= 4

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
    def test_most_recent_key_present(self, keys):
        ub = UpdateBuffer(4)
        for key in keys:
            ub.insert(key, REC)
        assert keys[-1] in ub


class TestTrainingRecord:
    def test_frozen(self):
        with pytest.raises(Exception):
            REC.program_indexes = (9,)  # type: ignore[misc]

    def test_paper_sizes(self):
        """Table III: vUB has 4 entries, pUB has 128."""
        from repro.core.dripper import make_dripper

        dripper = make_dripper("berti")
        assert dripper.vub.capacity == 4
        assert dripper.pub.capacity == 128
