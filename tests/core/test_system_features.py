"""System features: Table I set, activation directions."""

import pytest

from repro.core.system_features import SYSTEM_FEATURES, get_system_feature
from repro.core.system_state import SystemState


class TestRegistry:
    def test_exactly_six(self):
        """Table I lists 6 system features."""
        assert len(SYSTEM_FEATURES) == 6

    def test_names_match_table_i(self):
        assert set(SYSTEM_FEATURES) == {
            "L1D MPKI", "L1D Miss Rate", "LLC MPKI",
            "LLC Miss Rate", "sTLB MPKI", "sTLB Miss Rate",
        }

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_system_feature("DRAM BW")


class TestActivation:
    def test_stlb_mpki_active_below_threshold(self):
        """Section III-E: sTLB MPKI targets *low*-pressure phases."""
        spec = get_system_feature("sTLB MPKI")
        low, high = SystemState(stlb_mpki=0.1), SystemState(stlb_mpki=50.0)
        assert spec.active(low)
        assert not spec.active(high)

    def test_stlb_miss_rate_active_above_threshold(self):
        """Section III-E: sTLB Miss Rate targets *high*-pressure phases."""
        spec = get_system_feature("sTLB Miss Rate")
        assert spec.active(SystemState(stlb_miss_rate=0.9))
        assert not spec.active(SystemState(stlb_miss_rate=0.01))

    def test_complementary_coverage(self):
        """The two selected features split phases: low-MPKI vs high-missrate."""
        mpki = get_system_feature("sTLB MPKI")
        rate = get_system_feature("sTLB Miss Rate")
        calm = SystemState(stlb_mpki=0.0, stlb_miss_rate=0.0)
        stormy = SystemState(stlb_mpki=100.0, stlb_miss_rate=0.9)
        assert mpki.active(calm) and not rate.active(calm)
        assert rate.active(stormy) and not mpki.active(stormy)

    def test_threshold_override(self):
        spec = get_system_feature("sTLB MPKI")
        state = SystemState(stlb_mpki=5.0)
        assert not spec.active(state)
        assert spec.active(state, threshold=10.0)

    def test_all_getters_read_state(self):
        state = SystemState(
            l1d_mpki=1.0, l1d_miss_rate=0.2, llc_mpki=3.0,
            llc_miss_rate=0.4, stlb_mpki=5.0, stlb_miss_rate=0.6,
        )
        values = {name: spec.getter(state) for name, spec in SYSTEM_FEATURES.items()}
        assert values == {
            "L1D MPKI": 1.0, "L1D Miss Rate": 0.2, "LLC MPKI": 3.0,
            "LLC Miss Rate": 0.4, "sTLB MPKI": 5.0, "sTLB Miss Rate": 0.6,
        }
