"""Specialized (prefetcher-metadata) features — the Section III-D1 extension."""

import pytest

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.features import FEATURES, get_feature
from repro.core.filter import FilterConfig, PerceptronFilter
from repro.core.specialized import SPECIALIZED_FEATURES, attach_degree_metadata
from repro.core.system_state import SystemState


def ctx():
    c = FeatureContext()
    c.update(0x400, 0x7F000000)
    return c


class TestMetadata:
    def test_requests_default_to_zero_meta(self):
        assert PrefetchRequest(0, 0, 1).meta == 0

    def test_attach_degree_metadata(self):
        requests = [PrefetchRequest(0, 0, k) for k in (1, 2, 3)]
        attach_degree_metadata(requests)
        assert [r.meta for r in requests] == [1, 2, 3]


class TestFeatures:
    def test_degree_index_reads_meta(self):
        f = SPECIALIZED_FEATURES["DegreeIndex"]
        assert f.value(PrefetchRequest(0, 0, 1, meta=3), ctx()) == 3

    def test_fallback_when_meta_absent(self):
        f = SPECIALIZED_FEATURES["DegreeIndex"]
        assert f.value(PrefetchRequest(0, 0, 1), ctx()) == 0

    def test_delta_degree_composite_distinguishes_depth(self):
        f = SPECIALIZED_FEATURES["Delta+DegreeIndex"]
        shallow = f.value(PrefetchRequest(0, 0, 8, meta=1), ctx())
        deep = f.value(PrefetchRequest(0, 0, 8, meta=3), ctx())
        assert shallow != deep


class TestFilterIntegration:
    def test_specialized_features_stay_out_of_the_registry(self):
        """MOKA's shipped set is prefetcher-independent by design."""
        assert "DegreeIndex" not in FEATURES
        with pytest.raises(KeyError):
            get_feature("DegreeIndex")

    def test_filter_accepts_feature_objects(self):
        config = FilterConfig(
            program_features=("Delta", SPECIALIZED_FEATURES["Delta+DegreeIndex"]),
            adaptive=False,
        )
        f = PerceptronFilter(config, name="specialized")
        decision = f.decide(PrefetchRequest(0x7F002000, 0x400, 70, meta=2), ctx(), SystemState())
        assert len(decision.record.program_indexes) == 2

    def test_degree_aware_filter_can_learn_depth_specific_policy(self):
        """Train positive for degree-1, negative for degree-3: the filter
        should split its verdicts by depth (what prefetcher-independent
        features cannot express for a fixed delta/PC)."""
        config = FilterConfig(
            program_features=(SPECIALIZED_FEATURES["Delta+DegreeIndex"],),
            adaptive=False,
        )
        f = PerceptronFilter(config, name="depth-aware")
        shallow = PrefetchRequest(0x7F002000, 0x400, 8, meta=1)
        deep = PrefetchRequest(0x7F002040, 0x400, 8, meta=3)
        state = SystemState()
        for _ in range(5):
            f._train(f.decide(shallow, ctx(), state).record, positive=True)
            f._train(f.decide(deep, ctx(), state).record, positive=False)
        assert f.decide(shallow, ctx(), state).issue
        assert not f.decide(deep, ctx(), state).issue
