"""Report formatting helpers."""

from repro.experiments.report import (
    format_distribution,
    format_pct,
    format_scheme_comparison,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len({line.index("value") == lines[0].index("value") for line in lines[:1]})

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table V")
        assert out.splitlines()[0] == "Table V"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatPct:
    def test_sign_always_shown(self):
        assert format_pct(1.7) == "+1.70%"
        assert format_pct(-0.8) == "-0.80%"


class TestSchemeComparison:
    def test_renders_all_cells(self):
        data = {"berti": {"permit": -0.8, "dripper": 1.7}, "bop": {"permit": -0.5, "dripper": 0.9}}
        out = format_scheme_comparison(data, "Figure 9")
        assert "berti" in out and "dripper" in out and "+1.70%" in out


class TestDistribution:
    def test_deciles(self):
        out = format_distribution(list(range(100)))
        assert len(out.split()) == 11

    def test_empty(self):
        assert format_distribution([]) == "(no data)"
