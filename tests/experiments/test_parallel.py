"""Parallel/cached grid execution: serial equivalence, caching, journaling."""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    Cell,
    _affine_groups,
    cell_for,
    chunk_cost,
    grid_session,
    policy_cost_weight,
    run_cells,
)
from repro.experiments.runner import RunSpec, run_many, run_policies
from repro.experiments.sweep import sweep_epoch_length, sweep_parameter
from repro.obs import Observability, RunJournal, read_journal
from repro.workloads import by_name

FAST = RunSpec(warmup_instructions=1_000, sim_instructions=3_000)
GRID_WORKLOADS = ("astar", "hmmer", "mcf", "lbm")


def _workloads(names=GRID_WORKLOADS):
    return [by_name(name) for name in names]


class TestCellBasics:
    def test_cell_for_registry_workload_carries_name_only(self):
        cell = cell_for(by_name("astar"), FAST)
        assert cell.workload == "astar"
        assert cell.workload_obj is None
        assert cell.resolve_workload() is by_name("astar")

    def test_cell_for_foreign_workload_carries_object(self):
        class Custom:
            name = "astar"  # shadows a registry name but is a different object

            def generate(self):  # pragma: no cover - never run
                return iter(())

        custom = Custom()
        cell = cell_for(custom, FAST)
        assert cell.workload_obj is custom
        assert cell.resolve_workload() is custom

    def test_cells_are_picklable(self):
        import pickle

        cell = cell_for(by_name("astar"), FAST, policy="permit",
                        context={"sweep": {"value": 1}})
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell

    def test_run_cells_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells([cell_for(by_name("astar"), FAST)], jobs=0)


class TestSerialParallelEquivalence:
    def test_policy_grid_identical_under_jobs4(self):
        # the acceptance grid: 2 policies x 4 workloads
        workloads = _workloads()
        serial = run_policies(workloads, ["discard", "permit"], base_spec=FAST)
        parallel = run_policies(workloads, ["discard", "permit"], base_spec=FAST, jobs=4)
        assert parallel == serial  # SimResult dataclass equality, field-exact

    def test_run_many_order_preserved(self):
        workloads = _workloads()
        serial = run_many(workloads, FAST)
        parallel = run_many(workloads, FAST, jobs=3)
        assert parallel == serial
        assert [r.workload for r in parallel] == list(GRID_WORKLOADS)

    def test_progress_fires_per_cell(self):
        seen = []
        run_many(_workloads(("astar", "hmmer")), FAST, jobs=2,
                 progress=lambda name, result: seen.append(name))
        assert sorted(seen) == ["astar", "hmmer"]

    def test_sweep_parameter_identical_under_jobs(self):
        from repro.experiments.sweep import dram_latency_transform

        workloads = _workloads(("astar", "hmmer"))
        serial = sweep_parameter(workloads, dram_latency_transform, (100, 300),
                                 policies=("permit",), base_spec=FAST)
        parallel = sweep_parameter(workloads, dram_latency_transform, (100, 300),
                                   policies=("permit",), base_spec=FAST, jobs=2)
        assert parallel == serial

    def test_parallel_rejects_in_process_instruments(self):
        from repro.obs import Probe

        obs = Observability(probe=Probe())
        with pytest.raises(ValueError, match="in-process"):
            run_cells([cell_for(w, FAST) for w in _workloads()], jobs=2, obs=obs)


class TestCacheBehaviour:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        workloads = _workloads(("astar", "hmmer"))
        cache = ResultCache(tmp_path)
        first = run_policies(workloads, ["discard", "permit"], base_spec=FAST, cache=cache)
        assert cache.stats == {"hits": 0, "misses": 4, "stores": 4}
        second = run_policies(workloads, ["discard", "permit"], base_spec=FAST, cache=cache)
        assert second == first
        assert cache.stats == {"hits": 4, "misses": 4, "stores": 4}

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_many(_workloads(("astar",)), FAST, cache=cache)
        assert cache.stats["stores"] == 1
        from dataclasses import replace

        run_many(_workloads(("astar",)), replace(FAST, sim_instructions=4_000), cache=cache)
        assert cache.stats["stores"] == 2  # different fingerprint -> re-simulated

    def test_cache_shared_across_parallel_and_serial(self, tmp_path):
        workloads = _workloads(("astar", "hmmer"))
        cache = ResultCache(tmp_path)
        parallel = run_many(workloads, FAST, jobs=2, cache=cache)
        serial = run_many(workloads, FAST, cache=ResultCache(tmp_path))
        assert serial == parallel


class TestSharedBaseline:
    def test_epoch_sweep_simulates_discard_once(self, tmp_path):
        # the discard baseline is epoch-independent: one cell in the batch
        journal = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(journal))
        cache = ResultCache(tmp_path / "cache")
        sweep_epoch_length(_workloads(("hmmer",)), (512, 1024, 4096),
                           base_spec=FAST, obs=obs, cache=cache)
        obs.close()
        records = read_journal(journal)
        discard = [r for r in records if r["context"]["sweep"]["policy"] == "discard"]
        assert len(discard) == 1
        assert len(records) == 4  # 1 baseline + 3 epoch points
        assert cache.stats["stores"] == 4

    def test_value_invariant_sweep_simulates_discard_once(self, tmp_path):
        # a transform that leaves the baseline's config unchanged across >= 3
        # values collapses every policy to one simulation per workload
        journal = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(journal))
        cache = ResultCache(tmp_path / "cache")
        data = sweep_parameter(
            _workloads(("hmmer",)), lambda params, value: params, (1, 2, 3),
            policies=("permit",), base_spec=FAST, obs=obs, cache=cache,
        )
        obs.close()
        records = read_journal(journal)
        discard = [r for r in records if r["context"]["sweep"]["policy"] == "discard"]
        assert len(discard) == 1
        assert cache.stats["stores"] == 2  # discard once + permit once
        assert set(data) == {1, 2, 3}

    def test_repeated_sweep_is_free(self, tmp_path):
        from repro.experiments.sweep import dram_latency_transform

        cache = ResultCache(tmp_path)
        first = sweep_parameter(_workloads(("hmmer",)), dram_latency_transform,
                                (120, 240, 360), policies=("permit",),
                                base_spec=FAST, cache=cache)
        stores_after_first = cache.stats["stores"]
        again = sweep_parameter(_workloads(("hmmer",)), dram_latency_transform,
                                (120, 240, 360), policies=("permit",),
                                base_spec=FAST, cache=cache)
        assert again == first
        assert cache.stats["stores"] == stores_after_first  # nothing re-simulated


class TestMergedJournal:
    def test_jobs2_journal_is_complete(self, tmp_path):
        journal = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(journal))
        workloads = _workloads(("astar", "hmmer"))
        run_policies(workloads, ["discard", "permit"], base_spec=FAST, jobs=2, obs=obs)
        obs.close()
        records = read_journal(journal)
        assert len(records) == 4
        assert obs.runs == 4
        coords = {(r["workload"]["name"], r["context"]["spec"]["policy"]) for r in records}
        assert coords == {(w, p) for w in ("astar", "hmmer") for p in ("discard", "permit")}
        # full config + params survived the shard round-trip
        assert all("stlb" in r["config"]["params"] for r in records)

    def test_scoped_context_does_not_leak(self, tmp_path):
        # regression: a sweep used to leave context['sweep'] on the bundle,
        # mislabelling every later run's journal record
        journal = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(journal))
        sweep_epoch_length(_workloads(("hmmer",)), (512,), base_spec=FAST, obs=obs)
        assert obs.context == {}
        from repro.experiments.runner import run_one

        run_one(by_name("astar"), FAST, obs=obs)
        assert obs.context == {}
        obs.close()
        last = read_journal(journal)[-1]
        assert last["workload"]["name"] == "astar"
        assert "sweep" not in last["context"]


class TestAffineScheduling:
    def test_groups_by_workload_and_window(self):
        cells = [
            cell_for(by_name(w), FAST, policy=p)
            for p in ("discard", "permit")
            for w in ("astar", "hmmer")
        ]
        groups = _affine_groups(cells, range(len(cells)))
        assert [(idx, w.name) for idx, w, _, _ in groups] == [
            ([0, 2], "astar"), ([1, 3], "hmmer"),
        ]
        assert all((warm, sim) == (1_000, 3_000) for _, _, warm, sim in groups)

    def test_window_splits_groups(self):
        from dataclasses import replace

        longer = replace(FAST, sim_instructions=4_000)
        cells = [cell_for(by_name("astar"), spec) for spec in (FAST, longer, FAST)]
        groups = _affine_groups(cells, range(len(cells)))
        assert [idx for idx, _, _, _ in groups] == [[0, 2], [1]]


class TestCostAwareScheduling:
    def test_policy_weights_ordered_by_heaviness(self):
        assert policy_cost_weight("discard") == 1.0
        assert policy_cost_weight("DRIPPER") > policy_cost_weight("permit") > \
            policy_cost_weight("discard")
        assert policy_cost_weight("ppf") > policy_cost_weight("dripper")
        assert policy_cost_weight("never-heard-of-it") == 1.0

    def test_chunk_cost_scales_with_records_and_policy(self):
        cells = [cell_for(by_name("astar"), FAST, policy=p)
                 for p in ("discard", "dripper")]
        cheap = chunk_cost(cells, [0], records=1_000)
        heavy_policy = chunk_cost(cells, [1], records=1_000)
        long_pack = chunk_cost(cells, [0], records=10_000)
        both_cells = chunk_cost(cells, [0, 1], records=1_000)
        assert cheap == 1_000.0
        assert heavy_policy > cheap
        assert long_pack == 10 * cheap
        assert both_cells == pytest.approx(cheap + heavy_policy)

    def test_skewed_grid_parallel_matches_serial(self):
        # one workload has a 5x window and the heavyweight policy — the
        # costliest-first dispatch must not perturb results or their order
        from dataclasses import replace

        long_spec = replace(FAST, sim_instructions=15_000)
        cells = [cell_for(by_name("hmmer"), FAST, policy=p)
                 for p in ("discard", "permit")]
        cells += [cell_for(by_name("astar"), long_spec, policy="dripper")]
        cells += [cell_for(by_name("mcf"), FAST, policy="discard")]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert [r.__dict__ for r in parallel] == [r.__dict__ for r in serial]


class TestSharedMemoryGrid:
    def test_shm_grid_matches_serial_without_leaks(self):
        from repro.workloads.shm import live_segments

        cells = [
            cell_for(by_name(w), FAST, policy=p)
            for w in ("astar", "hmmer")
            for p in ("discard", "dripper")
        ]
        serial = run_cells(cells, jobs=1)
        shared = run_cells(cells, jobs=2, shm=True)
        assert shared == serial
        assert live_segments() == []

    def test_session_reuses_store_across_batches(self):
        from repro.workloads.shm import live_segments

        cells = [cell_for(by_name("astar"), FAST, policy=p)
                 for p in ("discard", "permit")]
        serial = run_cells(cells, jobs=1)
        with grid_session(2, True) as session:
            first = run_cells(cells, jobs=2)
            second = run_cells(cells, jobs=2)
            assert len(session.store.handles()) == 1  # published once
        assert first == serial and second == serial
        assert live_segments() == []

    def test_no_shm_still_matches_serial(self):
        cells = [cell_for(by_name(w), FAST) for w in ("astar", "hmmer")]
        assert run_cells(cells, jobs=2, shm=False) == run_cells(cells, jobs=1)

    def test_run_policies_shm_matches_serial(self):
        workloads = _workloads(("astar", "hmmer"))
        serial = run_policies(workloads, ["discard", "permit"], base_spec=FAST)
        shared = run_policies(workloads, ["discard", "permit"], base_spec=FAST,
                              jobs=2, shm=True)
        assert shared == serial

    def test_persistent_session_journal_not_double_counted(self, tmp_path):
        journal = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(journal))
        cells = [cell_for(by_name("astar"), FAST, policy=p)
                 for p in ("discard", "permit")]
        with grid_session(2, True):
            run_cells(cells, jobs=2, obs=obs)
            run_cells(cells, jobs=2, obs=obs)
        obs.close()
        assert len(read_journal(journal)) == 4  # 2 batches x 2 cells, once each
        assert obs.runs == 4


class TestRunPoliciesPrefetcherFix:
    def test_base_spec_prefetcher_preserved(self):
        # regression: the default prefetcher kwarg used to clobber base_spec
        spec = RunSpec(prefetcher="bop", warmup_instructions=1_000, sim_instructions=2_000)
        out = run_policies(_workloads(("astar",)), ["discard"], base_spec=spec)
        assert out["discard"][0].prefetcher == "bop"

    def test_explicit_prefetcher_still_overrides(self):
        spec = RunSpec(prefetcher="bop", warmup_instructions=1_000, sim_instructions=2_000)
        out = run_policies(_workloads(("astar",)), ["discard"], prefetcher="berti",
                           base_spec=spec)
        assert out["discard"][0].prefetcher == "berti"


class TestGridTelemetry:
    def test_worker_metric_deltas_merge_into_parent(self):
        from repro.obs.metrics import get_metrics

        cells = [cell_for(w, FAST) for w in _workloads(("astar", "hmmer"))] * 2
        grid_cells = get_metrics().counter("grid.cells")
        before = {key: v for key, v in grid_cells._values.items()}
        run_cells(cells, jobs=2)
        landed = {
            key: v - before.get(key, 0)
            for key, v in grid_cells._values.items()
            if v != before.get(key, 0)
        }
        assert sum(landed.values()) == len(cells)
        # the cells ran in worker processes: their pids, not the parent's
        import os

        parent = (("pid", str(os.getpid())),)
        assert parent not in landed
        assert len(landed) >= 1  # at least one worker pid lane

    def test_worker_spans_absorbed_with_worker_pids(self, tmp_path):
        import json
        import os

        from repro.obs.tracing import Tracer, install_tracer

        tracer = Tracer(role="parent")
        previous = install_tracer(tracer)
        try:
            cells = [cell_for(w, FAST) for w in _workloads(("astar", "hmmer"))]
            run_cells(cells, jobs=2)
        finally:
            install_tracer(previous)
        out = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(out)
        assert count >= len(cells)  # at least one span per cell
        doc = json.loads(out.read_text())
        span_pids = {e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert os.getpid() not in span_pids or len(span_pids) > 1
        assert any(pid != os.getpid() for pid in span_pids)
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert "cell" in names and "drive" in names

    def test_telemetry_off_results_bit_identical(self):
        from repro.obs.tracing import Tracer, install_tracer

        cells = [cell_for(w, FAST) for w in _workloads(("astar",))]
        plain = run_cells(cells, jobs=1)
        tracer = Tracer(role="parent")
        previous = install_tracer(tracer)
        try:
            traced = run_cells(cells, jobs=1)
        finally:
            install_tracer(previous)
        assert plain == traced  # dataclass equality, field-exact

    def test_parallel_identical_with_and_without_tracer(self, tmp_path):
        from repro.obs.tracing import Tracer, install_tracer

        cells = [cell_for(w, FAST) for w in _workloads(("astar", "hmmer"))]
        plain = run_cells(cells, jobs=2)
        previous = install_tracer(Tracer(role="parent"))
        try:
            traced = run_cells(cells, jobs=2)
        finally:
            install_tracer(previous)
        assert plain == traced
