"""Phase-sampled simulation: profiling, clustering, stitched runs, rebuild."""

import numpy as np
import pytest

from repro.cpu.simulator import SimConfig, simulate
from repro.experiments.parallel import cell_fingerprint, cell_for
from repro.experiments.runner import RunSpec, policy_factory, run_one
from repro.experiments.sampling import (
    SIGNATURE_FEATURES,
    PhasePlan,
    SamplingConfig,
    _kmeans,
    _measured_bounds,
    plan_phases,
    signatures,
    simulate_sampled,
)
from repro.obs.metrics import get_metrics
from repro.validate import result_diff
from repro.workloads.packed import get_packed
from repro.workloads.registry import by_name

WARM, SIM = 8_000, 60_000
TOY = SamplingConfig(intervals=16, phases=4, warmup_fraction=0.5)


def _spec(**overrides) -> RunSpec:
    base = dict(warmup_instructions=WARM, sim_instructions=SIM,
                policy="dripper", packed=True, sampling=TOY)
    base.update(overrides)
    return RunSpec(**base)


def _config(**overrides) -> SimConfig:
    base = dict(warmup_instructions=WARM, sim_instructions=SIM,
                policy_factory=policy_factory("dripper", "berti"),
                packed=True, sampling=TOY)
    base.update(overrides)
    return SimConfig(**base)


class TestSamplingConfig:
    def test_defaults_valid(self):
        cfg = SamplingConfig()
        assert cfg.intervals == 64 and cfg.phases == 8

    @pytest.mark.parametrize("kwargs", [
        dict(intervals=1),
        dict(phases=0),
        dict(warmup_fraction=-0.1),
        dict(warmup_fraction=5.0),
        dict(confidence=0.4),
        dict(confidence=1.0),
        dict(resamples=0),
        dict(max_rel_error=0.0),
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SamplingConfig(**kwargs)


class TestSignatures:
    def test_shape_and_partition(self):
        packed = get_packed(by_name("mcf"), WARM, SIM)
        features, starts, ends, inst = signatures(packed, WARM, SIM, 16)
        assert features.shape == (len(starts), len(SIGNATURE_FEATURES))
        assert np.all(np.isfinite(features))
        # intervals tile the measured region exactly: contiguous in record
        # space and summing to the measured instruction span
        first, last = _measured_bounds(packed, WARM, SIM)
        assert starts[0] == first and ends[-1] == last
        assert np.all(starts[1:] == ends[:-1])
        cum = packed.index().cum
        measured = int(cum[last - 1]) - int(cum[first - 1])
        assert int(inst.sum()) == measured

    def test_window_too_large_raises(self):
        packed = get_packed(by_name("mcf"), WARM, SIM)
        with pytest.raises(ValueError, match="fewer than"):
            signatures(packed, WARM, 10 * SIM, 16)


class TestKmeans:
    def test_deterministic_and_dense(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(40, 5))
        a1, r1 = _kmeans(features, 4, seed=9)
        a2, r2 = _kmeans(features, 4, seed=9)
        assert np.array_equal(a1, a2) and r1 == r2
        # dense ids 0..k-1, every representative belongs to its cluster
        assert sorted(set(int(c) for c in a1)) == list(range(len(r1)))
        for c, rep in enumerate(r1):
            assert a1[rep] == c

    def test_collapses_identical_signatures(self):
        features = np.ones((10, 3))
        assignment, reps = _kmeans(features, 4, seed=0)
        assert len(reps) == 1 and np.all(assignment == 0)


class TestPlanPhases:
    def test_plan_accounts_every_interval(self):
        packed = get_packed(by_name("mcf"), WARM, SIM)
        plan = plan_phases(packed, WARM, SIM, TOY)
        assert isinstance(plan, PhasePlan)
        assert 1 <= len(plan.phases) <= TOY.phases
        assert len(plan.assignment) == plan.n_intervals
        covered = sorted(i for p in plan.phases for i in p.members)
        assert covered == list(range(plan.n_intervals))
        assert sum(p.instructions for p in plan.phases) == plan.total_instructions
        assert 0 < plan.simulated_instructions() < plan.total_instructions

    def test_same_seed_same_plan(self):
        packed = get_packed(by_name("mcf"), WARM, SIM)
        assert plan_phases(packed, WARM, SIM, TOY) == \
            plan_phases(packed, WARM, SIM, TOY)


class TestSimulateSampled:
    def test_deterministic_per_seed(self):
        wl = by_name("mcf")
        r1 = simulate(wl, _config())
        r2 = simulate(wl, _config())
        assert result_diff(r1, r2) == {}

    def test_result_carries_sampling_metadata(self):
        result = simulate(by_name("mcf"), _config())
        assert result.sampled_intervals == TOY.intervals
        assert 1 <= result.sampled_phases <= TOY.phases
        assert result.ipc_ci_lo <= result.ipc <= result.ipc_ci_hi
        assert result.ipc_ci_lo < result.ipc_ci_hi

    def test_tracks_full_run(self):
        wl = by_name("mcf")
        full = simulate(wl, _config(sampling=None))
        sampled = simulate(wl, _config())
        assert sampled.ipc == pytest.approx(full.ipc, rel=0.10)
        assert sampled.instructions == pytest.approx(full.instructions, rel=0.01)

    def test_increments_sampled_drive_counter(self):
        counter = get_metrics().counter("sim.drives", "")
        before = counter.value(mode="sampled")
        simulate(by_name("mcf"), _config())
        assert counter.value(mode="sampled") == before + 1

    def test_vectorized_and_auto_kernels_accepted(self):
        wl = by_name("mcf")
        fused = simulate(wl, _config())
        for kernel in ("vectorized", "auto"):
            alt = simulate(wl, _config(kernel=kernel))
            assert alt.sampled_phases == fused.sampled_phases

    def test_requires_sampling_config(self):
        with pytest.raises(ValueError, match="config.sampling"):
            simulate_sampled(by_name("mcf"), _config(sampling=None))

    def test_runspec_round_trip(self):
        result = run_one(by_name("mcf"), _spec())
        assert result.sampled_intervals == TOY.intervals


class TestFingerprint:
    def test_sampling_enters_fingerprint(self):
        wl = by_name("mcf")
        plain = cell_fingerprint(cell_for(wl, _spec(sampling=None)))
        sampled = cell_fingerprint(cell_for(wl, _spec()))
        other = cell_fingerprint(cell_for(wl, _spec(
            sampling=SamplingConfig(intervals=16, phases=4,
                                    warmup_fraction=0.5, seed=1))))
        assert plain != sampled
        assert sampled != other
        assert sampled == cell_fingerprint(cell_for(wl, _spec()))

    def test_unsampled_fingerprint_unchanged_by_field(self):
        # sampling=None must not perturb pre-existing cache keys: the dump
        # drops the key entirely rather than serialising a null
        wl = by_name("mcf")
        spec = _spec(sampling=None)
        a = cell_fingerprint(cell_for(wl, spec))
        b = cell_fingerprint(cell_for(wl, RunSpec(
            warmup_instructions=WARM, sim_instructions=SIM,
            policy="dripper", packed=True)))
        assert a == b
