"""ResultCache: fingerprinting, round-trips, invalidation, corruption."""

import json
from dataclasses import replace

from repro.experiments.cache import CACHE_SCHEMA, ResultCache, canonical_json, fingerprint
from repro.experiments.parallel import cell_for, cell_fingerprint
from repro.experiments.runner import RunSpec, run_one
from repro.experiments.sweep import dram_latency_transform, stlb_size_transform
from repro.params import DEFAULT_PARAMS
from repro.workloads import by_name

FAST = RunSpec(warmup_instructions=1_000, sim_instructions=3_000)


class TestFingerprint:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_stable_across_calls(self):
        cell = cell_for(by_name("astar"), FAST)
        assert cell_fingerprint(cell) == cell_fingerprint(cell)

    def test_workload_changes_key(self):
        assert cell_fingerprint(cell_for(by_name("astar"), FAST)) != \
            cell_fingerprint(cell_for(by_name("hmmer"), FAST))

    def test_any_spec_field_changes_key(self):
        base = cell_fingerprint(cell_for(by_name("astar"), FAST))
        for change in (
            dict(policy="permit"),
            dict(prefetcher="bop"),
            dict(sim_instructions=4_000),
            dict(warmup_instructions=2_000),
            dict(large_page_fraction=0.5),
            dict(l2_prefetcher="spp"),
            dict(filter_at_native_boundary=True),
        ):
            assert cell_fingerprint(cell_for(by_name("astar"), replace(FAST, **change))) != base

    def test_params_override_changes_key(self):
        w = by_name("astar")
        base = cell_fingerprint(cell_for(w, FAST))
        resized = cell_for(w, FAST, params=stlb_size_transform(DEFAULT_PARAMS, 768))
        relat = cell_for(w, FAST, params=dram_latency_transform(DEFAULT_PARAMS, 300))
        assert len({base, cell_fingerprint(resized), cell_fingerprint(relat)}) == 3

    def test_default_params_and_explicit_default_collide(self):
        # same effective config -> same key: this is what shares baselines
        w = by_name("astar")
        implicit = cell_for(w, FAST)
        explicit = cell_for(w, FAST, params=DEFAULT_PARAMS)
        assert cell_fingerprint(implicit) == cell_fingerprint(explicit)

    def test_epoch_override_changes_key(self):
        w = by_name("hmmer")
        assert cell_fingerprint(cell_for(w, FAST, epoch_instructions=512)) != \
            cell_fingerprint(cell_for(w, FAST))


class TestResultCache:
    def test_miss_then_roundtrip_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        result = run_one(by_name("astar"), FAST)
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded == result  # dataclass equality: every field, floats exact
        assert cache.stats == {"hits": 1, "misses": 1, "stores": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_one(by_name("astar"), FAST)
        key = "cd" + "0" * 62
        cache.put(key, result)
        cache._path(key).write_text("not json{")
        assert cache.get(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_one(by_name("astar"), FAST)
        key = "ef" + "0" * 62
        cache.put(key, result)
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_unknown_result_field_is_a_miss(self, tmp_path):
        # entries written by a future SimResult layout must not crash
        cache = ResultCache(tmp_path)
        result = run_one(by_name("astar"), FAST)
        key = "01" + "0" * 62
        cache.put(key, result)
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["result"]["field_from_the_future"] = 1
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None
