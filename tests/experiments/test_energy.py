"""Dynamic-energy accounting."""

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.experiments.energy import (
    EnergyEstimate,
    energy_delay_product,
    energy_per_ki,
    estimate_energy,
)
from repro.workloads import by_name


@pytest.fixture(scope="module")
def runs():
    out = {}
    for name, factory in (("discard", DiscardPgc), ("permit", PermitPgc)):
        config = SimConfig(
            prefetcher="berti", policy_factory=factory,
            warmup_instructions=6_000, sim_instructions=18_000,
        )
        out[name] = simulate(by_name("fotonik3d_s"), config)
    return out


class TestEstimate:
    def test_components_nonnegative(self, runs):
        e = estimate_energy(runs["discard"])
        for value in (e.demand_pj, e.prefetch_pj, e.speculative_walk_pj, e.dram_pj):
            assert value >= 0.0
        assert e.total_pj > 0.0

    def test_discard_spends_nothing_on_speculative_walks(self, runs):
        assert estimate_energy(runs["discard"]).speculative_walk_pj == 0.0

    def test_useless_page_crossing_costs_energy(self, runs):
        """On a hostile workload, Permit burns more energy than Discard."""
        hostile_permit = estimate_energy(runs["permit"])
        hostile_discard = estimate_energy(runs["discard"])
        assert hostile_permit.speculative_walk_pj > 0.0
        assert hostile_permit.total_pj > hostile_discard.total_pj

    def test_custom_costs_scale(self, runs):
        base = estimate_energy(runs["permit"]).dram_pj
        doubled = estimate_energy(runs["permit"], {"dram_read": 4000.0, "dram_write": 4000.0}).dram_pj
        assert doubled == pytest.approx(2 * base)

    def test_per_ki_positive(self, runs):
        assert energy_per_ki(runs["discard"]) > 0.0

    def test_edp_punishes_hostile_permitting(self, runs):
        """Hostile page-crossing loses on energy AND time: EDP is worse."""
        assert energy_delay_product(runs["permit"]) > energy_delay_product(runs["discard"])

    def test_estimate_dataclass_frozen(self):
        e = EnergyEstimate(1.0, 2.0, 3.0, 4.0)
        assert e.total_pj == 10.0
        with pytest.raises(Exception):
            e.demand_pj = 0.0  # type: ignore[misc]
