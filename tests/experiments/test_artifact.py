"""Artifact report generation (tiny scale)."""

import pytest

from repro.experiments.artifact import EXPERIMENTS, _fmt, _render, main, run_artifact
from repro.experiments.figures import Scale

TINY = Scale(n_workloads=4, warmup_instructions=2_000, sim_instructions=6_000, seed=2)


class TestRendering:
    def test_fmt_float(self):
        assert _fmt(1.234) == "+1.23"
        assert _fmt(-0.5) == "-0.50"

    def test_fmt_long_list_truncated(self):
        out = _fmt(list(range(50)))
        assert "(50 values)" in out

    def test_render_nested_dict(self):
        lines = _render({"a": {"b": 1.0}, "c": 2})
        assert any("**a**" in line for line in lines)
        assert any("**b**" in line for line in lines)


class TestExperimentTable:
    def test_covers_all_exhibits(self):
        names = [name for name, _, _ in EXPERIMENTS]
        for n in (2, 3, 4, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18):
            assert f"Figure {n}" in names
        assert "Table V" in names


@pytest.mark.slow
class TestRunArtifact:
    def test_single_exhibit_report(self):
        report = run_artifact(TINY, only=["Figure 15"])
        assert "## Figure 15" in report
        assert "*Paper:*" in report
        assert "## Figure 9" not in report

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main([
            "--out", str(out), "--workloads", "4",
            "--warmup", "2000", "--sim", "6000", "--only", "15",
        ])
        assert code == 0
        assert out.exists()
        assert "Figure 15" in out.read_text()
