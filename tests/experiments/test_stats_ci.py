"""Bootstrap confidence intervals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.stats_ci import (
    BootstrapInterval,
    bootstrap_geomean,
    bootstrap_statistic,
    paired_difference_ci,
)

speedup_lists = st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=3, max_size=30)


class TestBootstrapGeomean:
    def test_point_matches_geomean(self):
        ci = bootstrap_geomean([1.1, 1.1, 1.1, 1.1])
        assert ci.point_pct == pytest.approx(10.0, abs=1e-9)

    def test_degenerate_sample_zero_width(self):
        ci = bootstrap_geomean([1.05] * 10)
        assert ci.width_pct == pytest.approx(0.0, abs=1e-9)

    def test_interval_contains_point(self):
        ci = bootstrap_geomean([0.9, 1.0, 1.1, 1.3, 0.95, 1.2])
        assert ci.lo_pct <= ci.point_pct <= ci.hi_pct

    def test_clear_effect_excludes_zero(self):
        ci = bootstrap_geomean([1.1, 1.15, 1.2, 1.12, 1.18, 1.09])
        assert ci.excludes_zero()

    def test_noisy_effect_includes_zero(self):
        ci = bootstrap_geomean([0.8, 1.25, 0.85, 1.2, 0.9, 1.15])
        assert not ci.excludes_zero()

    def test_deterministic_given_seed(self):
        data = [0.9, 1.1, 1.05, 1.2]
        a = bootstrap_geomean(data, seed=7)
        b = bootstrap_geomean(data, seed=7)
        assert (a.lo_pct, a.hi_pct) == (b.lo_pct, b.hi_pct)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            bootstrap_geomean([])
        with pytest.raises(ValueError):
            bootstrap_geomean([1.0, 0.0])

    @given(speedup_lists)
    @settings(max_examples=20, deadline=None)
    def test_interval_ordered(self, speedups):
        ci = bootstrap_geomean(speedups, resamples=200)
        assert ci.lo_pct <= ci.hi_pct

    @given(speedup_lists)
    @settings(max_examples=10, deadline=None)
    def test_wider_confidence_wider_interval(self, speedups):
        narrow = bootstrap_geomean(speedups, confidence=0.80, resamples=500)
        wide = bootstrap_geomean(speedups, confidence=0.99, resamples=500)
        assert wide.width_pct >= narrow.width_pct - 1e-9


class TestPairedDifference:
    def test_identical_policies_zero(self):
        a = [1.0, 1.1, 0.9]
        ci = paired_difference_ci(a, a)
        assert ci.point_pct == pytest.approx(0.0, abs=1e-9)

    def test_consistent_winner_resolved(self):
        a = [1.10, 1.21, 0.99, 1.32]
        b = [1.00, 1.10, 0.90, 1.20]  # a is ~10% faster on every workload
        ci = paired_difference_ci(a, b)
        assert ci.excludes_zero()
        assert ci.point_pct == pytest.approx(10.0, abs=0.5)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            paired_difference_ci([1.0], [1.0, 1.0])

    def test_sign_convention_a_over_b(self):
        # positive point = A faster; swapping the arguments flips the sign
        a, b = [1.2, 1.3, 1.25], [1.0, 1.1, 1.05]
        fwd = paired_difference_ci(a, b)
        rev = paired_difference_ci(b, a)
        assert fwd.point_pct > 0 > rev.point_pct
        # geomean ratios invert exactly: (1+fwd)(1+rev) == 1
        assert (1 + fwd.point_pct / 100) * (1 + rev.point_pct / 100) == \
            pytest.approx(1.0, abs=1e-9)


class TestBootstrapStatistic:
    @staticmethod
    def _ipc(pairs):
        cycles = sum(c for _, c in pairs)
        return sum(i for i, _ in pairs) / cycles if cycles else 0.0

    def test_point_is_plugin_estimate(self):
        pairs = [(100, 400.0), (100, 200.0), (50, 300.0)]
        ci = bootstrap_statistic(pairs, self._ipc)
        assert ci.point == pytest.approx(250 / 900)
        assert ci.lo <= ci.point <= ci.hi

    def test_single_sample_zero_width(self):
        ci = bootstrap_statistic([(10, 40.0)], self._ipc)
        assert ci.lo == ci.hi == ci.point == pytest.approx(0.25)
        assert ci.width == 0.0 and ci.rel_width() == 0.0

    def test_zero_variance_zero_width(self):
        ci = bootstrap_statistic([(10, 40.0)] * 8, self._ipc)
        assert ci.width == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_given_seed(self):
        pairs = [(100, 400.0), (80, 200.0), (50, 300.0), (120, 500.0)]
        a = bootstrap_statistic(pairs, self._ipc, seed=5)
        b = bootstrap_statistic(pairs, self._ipc, seed=5)
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_wider_confidence_wider_interval(self):
        pairs = [(100, 400.0), (80, 200.0), (50, 300.0), (120, 500.0)]
        narrow = bootstrap_statistic(pairs, self._ipc, confidence=0.80)
        wide = bootstrap_statistic(pairs, self._ipc, confidence=0.99)
        assert wide.width >= narrow.width - 1e-12

    def test_rejects_empty_and_bad_resamples(self):
        with pytest.raises(ValueError):
            bootstrap_statistic([], self._ipc)
        with pytest.raises(ValueError):
            bootstrap_statistic([(1, 1.0)], self._ipc, resamples=0)

    def test_interval_helpers(self):
        ci = BootstrapInterval(point=0.5, lo=0.4, hi=0.6, confidence=0.95)
        assert ci.width == pytest.approx(0.2)
        assert ci.rel_width() == pytest.approx(0.4)
        assert ci.contains(0.4) and ci.contains(0.6) and not ci.contains(0.61)
        assert BootstrapInterval(0.0, 0.0, 0.0, 0.95).rel_width() == 0.0
