"""Bootstrap confidence intervals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.stats_ci import bootstrap_geomean, paired_difference_ci

speedup_lists = st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=3, max_size=30)


class TestBootstrapGeomean:
    def test_point_matches_geomean(self):
        ci = bootstrap_geomean([1.1, 1.1, 1.1, 1.1])
        assert ci.point_pct == pytest.approx(10.0, abs=1e-9)

    def test_degenerate_sample_zero_width(self):
        ci = bootstrap_geomean([1.05] * 10)
        assert ci.width_pct == pytest.approx(0.0, abs=1e-9)

    def test_interval_contains_point(self):
        ci = bootstrap_geomean([0.9, 1.0, 1.1, 1.3, 0.95, 1.2])
        assert ci.lo_pct <= ci.point_pct <= ci.hi_pct

    def test_clear_effect_excludes_zero(self):
        ci = bootstrap_geomean([1.1, 1.15, 1.2, 1.12, 1.18, 1.09])
        assert ci.excludes_zero()

    def test_noisy_effect_includes_zero(self):
        ci = bootstrap_geomean([0.8, 1.25, 0.85, 1.2, 0.9, 1.15])
        assert not ci.excludes_zero()

    def test_deterministic_given_seed(self):
        data = [0.9, 1.1, 1.05, 1.2]
        a = bootstrap_geomean(data, seed=7)
        b = bootstrap_geomean(data, seed=7)
        assert (a.lo_pct, a.hi_pct) == (b.lo_pct, b.hi_pct)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            bootstrap_geomean([])
        with pytest.raises(ValueError):
            bootstrap_geomean([1.0, 0.0])

    @given(speedup_lists)
    @settings(max_examples=20, deadline=None)
    def test_interval_ordered(self, speedups):
        ci = bootstrap_geomean(speedups, resamples=200)
        assert ci.lo_pct <= ci.hi_pct

    @given(speedup_lists)
    @settings(max_examples=10, deadline=None)
    def test_wider_confidence_wider_interval(self, speedups):
        narrow = bootstrap_geomean(speedups, confidence=0.80, resamples=500)
        wide = bootstrap_geomean(speedups, confidence=0.99, resamples=500)
        assert wide.width_pct >= narrow.width_pct - 1e-9


class TestPairedDifference:
    def test_identical_policies_zero(self):
        a = [1.0, 1.1, 0.9]
        ci = paired_difference_ci(a, a)
        assert ci.point_pct == pytest.approx(0.0, abs=1e-9)

    def test_consistent_winner_resolved(self):
        a = [1.10, 1.21, 0.99, 1.32]
        b = [1.00, 1.10, 0.90, 1.20]  # a is ~10% faster on every workload
        ci = paired_difference_ci(a, b)
        assert ci.excludes_zero()
        assert ci.point_pct == pytest.approx(10.0, abs=0.5)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            paired_difference_ci([1.0], [1.0, 1.0])
