"""Sampling helpers inside the figure experiments."""

from repro.experiments.figures import Scale, _motivation_sample, _sample_seen
from repro.workloads import motivation_workloads


class TestMotivationSample:
    def test_stride_sample_keeps_both_behaviours(self):
        """The motivation list is friendly-first; any sample size must keep
        representatives of both sides for the Figure 2/3 shapes to appear."""
        names = [w.name for w in motivation_workloads()]
        friendly_half = set(names[: len(names) // 2])
        hostile_half = set(names[len(names) // 2:])
        for n in (8, 10, 13, 20):
            sample = {w.name for w in _motivation_sample(Scale(n_workloads=n))}
            assert sample & friendly_half, f"n={n}: no friendly workloads"
            assert sample & hostile_half, f"n={n}: no hostile workloads"

    def test_oversized_returns_all(self):
        sample = _motivation_sample(Scale(n_workloads=999))
        assert len(sample) == len(motivation_workloads())

    def test_deterministic(self):
        a = [w.name for w in _motivation_sample(Scale(n_workloads=10))]
        b = [w.name for w in _motivation_sample(Scale(n_workloads=10))]
        assert a == b


class TestSeenSample:
    def test_size_and_determinism(self):
        scale = Scale(n_workloads=12, seed=3)
        a = [w.name for w in _sample_seen(scale)]
        b = [w.name for w in _sample_seen(scale)]
        assert a == b
        assert len(a) == 12

    def test_seed_changes_sample(self):
        a = {w.name for w in _sample_seen(Scale(n_workloads=12, seed=1))}
        b = {w.name for w in _sample_seen(Scale(n_workloads=12, seed=2))}
        assert a != b
