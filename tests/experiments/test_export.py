"""CSV/JSON result export."""

import csv

import pytest

from repro.core.policies import DiscardPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.experiments.export import read_json, result_to_dict, write_csv, write_json
from repro.workloads import by_name


@pytest.fixture(scope="module")
def results():
    config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=1_000, sim_instructions=3_000)
    return [simulate(by_name("hmmer"), config), simulate(by_name("gobmk"), config)]


class TestResultToDict:
    def test_contains_fields_and_derived(self, results):
        row = result_to_dict(results[0])
        assert row["workload"] == "hmmer"
        assert "ipc" in row
        assert "prefetch_accuracy" in row
        assert "pgc_useful_pki" in row


class TestCsv:
    def test_roundtrip(self, results, tmp_path):
        path = write_csv(results, tmp_path / "out.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["workload"] == "hmmer"
        assert float(rows[0]["ipc"]) == pytest.approx(results[0].ipc)

    def test_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "out.csv")


class TestJson:
    def test_roundtrip(self, results, tmp_path):
        path = write_json(results, tmp_path / "out.json")
        rows = read_json(path)
        assert len(rows) == 2
        assert rows[1]["workload"] == "gobmk"
        assert rows[1]["ipc"] == pytest.approx(results[1].ipc)

    def test_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_json([], tmp_path / "out.json")
