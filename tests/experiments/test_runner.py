"""Experiment runner: policy factories, run specs, QMM trace halving."""

import pytest

from repro.core.filter import PerceptronFilter
from repro.core.policies import DiscardPgc, DiscardPtw, PermitPgc
from repro.experiments.runner import ISO_STORAGE_BYTES, RunSpec, policy_factory, run_one
from repro.workloads import by_name


class TestPolicyFactory:
    def test_static_policies(self):
        assert isinstance(policy_factory("discard", "berti")(), DiscardPgc)
        assert isinstance(policy_factory("permit", "berti")(), PermitPgc)
        assert isinstance(policy_factory("discard-ptw", "berti")(), DiscardPtw)

    def test_dripper_bound_to_prefetcher(self):
        dripper = policy_factory("dripper", "bop")()
        assert dripper.name == "dripper[bop]"

    def test_ppf_variants(self):
        assert policy_factory("ppf", "berti")().name == "ppf"
        assert policy_factory("ppf+dthr", "berti")().name == "ppf+dthr"

    def test_fresh_instance_per_call(self):
        factory = policy_factory("dripper", "berti")
        assert factory() is not factory()

    def test_iso_maps_to_permit(self):
        assert isinstance(policy_factory("iso", "berti")(), PermitPgc)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            policy_factory("yolo", "berti")


class TestRunSpec:
    def test_qmm_traces_halved(self):
        spec = RunSpec(warmup_instructions=10_000, sim_instructions=30_000)
        qmm = spec.config_for(by_name("qmm_int_13"))
        spec_w = spec.config_for(by_name("astar"))
        assert qmm.warmup_instructions == 5_000
        assert qmm.sim_instructions == 15_000
        assert spec_w.warmup_instructions == 10_000

    def test_iso_storage_flows_to_prefetcher(self):
        spec = RunSpec(policy="iso")
        config = spec.config_for(by_name("astar"))
        assert config.prefetcher_extra_storage == ISO_STORAGE_BYTES

    def test_non_iso_no_extra_storage(self):
        config = RunSpec(policy="dripper").config_for(by_name("astar"))
        assert config.prefetcher_extra_storage == 0

    def test_native_boundary_flag_wraps_factory(self):
        spec = RunSpec(policy="dripper", filter_at_native_boundary=True)
        policy = spec.config_for(by_name("astar")).policy_factory()
        assert isinstance(policy, PerceptronFilter)
        assert policy.filter_at_native_boundary is True


class TestRunOne:
    def test_runs_quickly_scaled(self):
        spec = RunSpec(warmup_instructions=1_000, sim_instructions=3_000)
        result = run_one(by_name("hmmer"), spec)
        assert result.instructions >= 3_000
