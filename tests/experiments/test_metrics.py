"""Aggregate metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.experiments.metrics import average, geomean, speedup_percent, weighted_speedup


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_scale_invariance(self, values):
        g = geomean(values)
        assert geomean([v * 2 for v in values]) == pytest.approx(2 * g, rel=1e-9)


class TestSpeedupPercent:
    def test_identity_is_zero(self):
        assert speedup_percent(1.0) == 0.0

    def test_positive_and_negative(self):
        assert speedup_percent(1.017) == pytest.approx(1.7)
        assert speedup_percent(0.99) == pytest.approx(-1.0)


class TestWeightedSpeedup:
    def test_formula(self):
        assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_zero_isolation_raises(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestAverage:
    def test_basic(self):
        assert average([1.0, 2.0, 3.0]) == 2.0

    def test_empty_is_zero(self):
        assert average([]) == 0.0

    def test_generator_input(self):
        assert average(x for x in (2.0, 4.0)) == 3.0


class TestGeomeanSpeedup:
    def test_against_baselines(self):
        from dataclasses import replace

        from repro.experiments.metrics import geomean_speedup

        base = _result("w", 1.0)
        fast = replace(base, ipc=1.21)
        assert geomean_speedup([fast], [base]) == pytest.approx(1.21)

    def test_length_mismatch(self):
        from repro.experiments.metrics import geomean_speedup

        with pytest.raises(ValueError):
            geomean_speedup([], [_result("w", 1.0)])


def _result(workload: str, ipc: float):
    from repro.cpu.simulator import SimResult

    return SimResult(
        workload=workload, prefetcher="berti", policy="p",
        instructions=1000, cycles=1000 / ipc, ipc=ipc,
        dtlb_mpki=0, itlb_mpki=0, stlb_mpki=0, l1i_mpki=0, l1d_mpki=0,
        l2c_mpki=0, llc_mpki=0, l1d_miss_rate=0, llc_miss_rate=0,
        stlb_miss_rate=0, prefetch_fills=0, prefetch_useful=0,
        prefetch_useless=0, prefetch_late=0, pgc_candidates=0, pgc_issued=0,
        pgc_discarded=0, pgc_useful=0, pgc_useless=0, demand_walks=0,
        speculative_walks=0, tlb_prefetch_hits=0, dram_reads=0, dram_writes=0,
    )
