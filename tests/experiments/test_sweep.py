"""Parameter-sweep helpers."""

import pytest

from repro.experiments.runner import RunSpec
from repro.experiments.sweep import (
    dram_latency_transform,
    dtlb_size_transform,
    stlb_size_transform,
    sweep_epoch_length,
    sweep_parameter,
)
from repro.params import DEFAULT_PARAMS
from repro.workloads import by_name

TINY_SPEC = RunSpec(warmup_instructions=2_000, sim_instructions=6_000)


class TestTransforms:
    def test_stlb_size(self):
        p = stlb_size_transform(DEFAULT_PARAMS, 768)
        assert p.stlb.entries == 768
        assert p.stlb.ways == DEFAULT_PARAMS.stlb.ways
        assert p.dtlb == DEFAULT_PARAMS.dtlb

    def test_dtlb_size(self):
        p = dtlb_size_transform(DEFAULT_PARAMS, 128)
        assert p.dtlb.entries == 128

    def test_dram_latency(self):
        p = dram_latency_transform(DEFAULT_PARAMS, 300)
        assert p.dram.access_latency == 300
        assert p.dram.transfer_cycles == DEFAULT_PARAMS.dram.transfer_cycles

    def test_transforms_do_not_mutate_default(self):
        stlb_size_transform(DEFAULT_PARAMS, 768)
        assert DEFAULT_PARAMS.stlb.entries == 1536

    def test_stlb_size_must_divide_ways(self):
        # 100 entries over 12 ways would make a fractional-set TLB
        with pytest.raises(ValueError, match="multiple of its 12 ways"):
            stlb_size_transform(DEFAULT_PARAMS, 100)

    def test_dtlb_size_must_divide_ways(self):
        with pytest.raises(ValueError, match="multiple of its 4 ways"):
            dtlb_size_transform(DEFAULT_PARAMS, 130)

    def test_tlb_size_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            stlb_size_transform(DEFAULT_PARAMS, 0)


@pytest.mark.slow
class TestSweeps:
    def test_sweep_parameter_shape(self):
        workloads = [by_name("hmmer")]
        data = sweep_parameter(
            workloads, stlb_size_transform, (768, 1536),
            policies=("permit",), base_spec=TINY_SPEC,
        )
        assert set(data) == {768, 1536}
        assert set(data[768]) == {"permit"}

    def test_sweep_epoch_length_shape(self):
        workloads = [by_name("hmmer")]
        data = sweep_epoch_length(workloads, (512, 2048), base_spec=TINY_SPEC)
        assert set(data) == {512, 2048}
