"""Smoke tests for the figure experiment functions (tiny scales).

Full-scale shape assertions live in benchmarks/; these verify structure,
keys, and basic sanity so a broken experiment fails fast in the test suite.
"""

import pytest

from repro.experiments import Scale, fig2_motivation_ipc, fig4_mpki_split, fig15_dripper_sf

TINY = Scale(n_workloads=4, warmup_instructions=3_000, sim_instructions=8_000, seed=2)


@pytest.mark.slow
class TestFigureStructure:
    def test_fig2_structure(self):
        data = fig2_motivation_ipc(TINY, prefetchers=("berti",))
        assert set(data) == {"berti"}
        block = data["berti"]
        assert len(block["per_workload_pct"]) >= 8
        for name, pct in block["per_workload_pct"]:
            assert isinstance(name, str)
            # tiny traces can see multi-x swings; just require sane bounds
            assert -100 < pct < 1000

    def test_fig4_structure(self):
        data = fig4_mpki_split(TINY)
        assert set(data) == {"permit_wins", "discard_wins"}
        total = len(data["permit_wins"]["workloads"]) + len(data["discard_wins"]["workloads"])
        assert total >= 8

    def test_fig15_structure(self):
        data = fig15_dripper_sf(TINY)
        assert set(data) == {"dripper_pct", "dripper_sf_pct"}

    def test_fig13_structure(self):
        from repro.experiments import fig13_pgc_pki

        data = fig13_pgc_pki(TINY)
        for policy in ("permit", "dripper"):
            assert len(data[policy]["useful_pki"]) == len(data[policy]["useless_pki"])
            assert data[policy]["avg_useful_pki"] >= 0.0

    def test_fig18_structure(self):
        from repro.experiments import fig18_unseen

        data = fig18_unseen(TINY)
        assert set(data) == {"permit_pct", "dripper_pct", "per_workload_dripper_pct"}
        assert data["per_workload_dripper_pct"] == sorted(data["per_workload_dripper_pct"])
