"""Mix-affine scheduling: serial equivalence, pack sharing, fig19 at scale."""

import pytest

from repro.experiments.parallel import (
    build_mix_config,
    grid_session,
    mix_cell_for,
    run_mix_cells,
)
from repro.experiments.runner import RunSpec
from repro.obs import Observability, RunJournal, read_journal
from repro.workloads import by_name, make_mixes

FAST = RunSpec(warmup_instructions=1_000, sim_instructions=3_000)


def _mix(names=("astar", "hmmer", "mcf", "lbm")):
    return [by_name(name) for name in names]


class TestMixCellBasics:
    def test_mix_cell_carries_registry_names(self):
        cell = mix_cell_for(_mix(), FAST, policy="permit", mix_id=3)
        assert cell.workloads == ("astar", "hmmer", "mcf", "lbm")
        assert [w.name for w in cell.resolve_workloads()] == list(cell.workloads)
        assert cell.label() == "mix-3"

    def test_mix_cells_are_picklable(self):
        import pickle

        cell = mix_cell_for(_mix(), FAST, policy="dripper", mix_id=0)
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_build_mix_config_applies_policy_override(self):
        plain = build_mix_config(mix_cell_for(_mix(), FAST))
        overridden = build_mix_config(mix_cell_for(_mix(), FAST, policy="permit"))
        assert plain.policy_factory is not overridden.policy_factory
        # nominal windows: per-core QMM halving is simulate_mix's job
        assert overridden.warmup_instructions == FAST.warmup_instructions

    def test_run_mix_cells_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_mix_cells([mix_cell_for(_mix(), FAST)], jobs=0)


class TestMixSerialParallelEquivalence:
    def test_mix_grid_identical_under_jobs2(self):
        # mixes drawn from the real registry (includes QMM halved-budget
        # cores); every policy of every mix must match the serial run
        mixes = make_mixes(2, 4, seed=11)
        cells = [
            mix_cell_for(mix, FAST, policy=policy, mix_id=i)
            for i, mix in enumerate(mixes)
            for policy in ("discard", "dripper")
        ]
        serial = run_mix_cells(cells, jobs=1)
        with grid_session(2, True):
            parallel = run_mix_cells(cells, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.results == b.results

    def test_on_result_fires_in_input_positions(self):
        seen = {}
        cells = [mix_cell_for(_mix(), FAST, mix_id=i) for i in range(2)]
        run_mix_cells(cells, jobs=1,
                      on_result=lambda i, r, cached: seen.setdefault(i, r))
        assert sorted(seen) == [0, 1]

    def test_jobs2_journal_tags_every_core(self, tmp_path):
        journal = tmp_path / "mixes.jsonl"
        obs = Observability(journal=RunJournal(journal))
        cells = [mix_cell_for(_mix(), FAST, mix_id=i) for i in range(2)]
        run_mix_cells(cells, jobs=2, obs=obs)
        obs.close()
        records = read_journal(journal)
        assert len(records) == 2 * 4
        by_mix = {}
        for record in records:
            by_mix.setdefault(record["context"]["mix"], []).append(
                record["context"]["core"])
        assert {mix: sorted(cores) for mix, cores in by_mix.items()} == {
            0: [0, 1, 2, 3], 1: [0, 1, 2, 3]}


class TestFig19:
    def test_fig19_parallel_equals_serial(self):
        from repro.experiments.figures import fig19_multicore

        kwargs = dict(n_mixes=2, cores=2, warmup_instructions=1_000,
                      sim_instructions=3_000, seed=3)
        serial = fig19_multicore(**kwargs)
        parallel = fig19_multicore(**kwargs, jobs=2, packed=True)
        assert serial == parallel
        assert set(serial) == {"permit", "dripper"}
        assert len(serial["dripper"]["per_mix_pct"]) == 2

    def test_fig19_cache_dedupes_isolation_runs(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.experiments.figures import fig19_multicore

        kwargs = dict(n_mixes=2, cores=2, warmup_instructions=1_000,
                      sim_instructions=3_000, seed=3)
        cache = ResultCache(tmp_path / "cache")
        first = fig19_multicore(**kwargs, cache=cache)
        stored = cache.stats["stores"]
        assert stored > 0
        second = fig19_multicore(**kwargs, cache=cache)
        assert second == first
        # the second invocation re-simulates no isolation cell
        assert cache.stats["stores"] == stored
        assert cache.stats["hits"] >= stored

    def test_fig19_rejects_degenerate_policy_list(self):
        from repro.experiments.figures import fig19_multicore

        with pytest.raises(ValueError, match="baseline"):
            fig19_multicore(n_mixes=1, cores=2, policies=("discard",))
