"""Core engine: timing model, ROB, page-cross plumbing (with test doubles)."""

from repro.core.context import PrefetchRequest
from repro.core.policies import Decision, DiscardPgc, DiscardPtw, PageCrossPolicy, PermitPgc
from repro.cpu.simulator import SimConfig, build_engine
from repro.prefetch.base import L1dPrefetcher
from repro.workloads.trace import DEPENDS, LOAD, MISPREDICT, STORE


class ScriptedPrefetcher(L1dPrefetcher):
    """Emits a fixed delta on every access."""

    name = "scripted"

    def __init__(self, delta_lines: int):
        super().__init__()
        self.delta = delta_lines

    def on_access(self, pc, vaddr, hit, t):
        target = vaddr + (self.delta << 6)
        return [PrefetchRequest(target, pc, self.delta)]


class RecordingPolicy(PageCrossPolicy):
    name = "recording"

    def __init__(self, issue=True):
        self.issue = issue
        self.decisions = 0
        self.discards: list[int] = []
        self.issues: list[int] = []
        self.demand_misses = 0

    def decide(self, req, ctx, state):
        self.decisions += 1
        return Decision(self.issue)

    def on_discarded(self, line, record):
        self.discards.append(line)

    def on_issued(self, line, record):
        self.issues.append(line)

    def on_demand_miss(self, line):
        self.demand_misses += 1


def engine_with(prefetcher=None, policy=None):
    config = SimConfig(policy_factory=lambda: policy or DiscardPgc())
    return build_engine(config, prefetcher=prefetcher or L1dPrefetcherStub())


class L1dPrefetcherStub(L1dPrefetcher):
    name = "stub"

    def on_access(self, pc, vaddr, hit, t):
        return []


class TestTimingModel:
    def test_time_advances(self):
        e = engine_with()
        e.step(0x400, 0x1000, LOAD, 2)
        t1 = e.retire_t
        e.step(0x404, 0x2000, LOAD, 2)
        assert e.retire_t > t1

    def test_instruction_counting_includes_gap(self):
        e = engine_with()
        e.step(0x400, 0x1000, LOAD, 9)
        assert e.instructions == 10

    def test_cache_hit_faster_than_miss(self):
        miss = engine_with()
        miss.step(0x400, 0x1000, LOAD, 0)
        cold = miss.retire_t
        hit = engine_with()
        hit.step(0x400, 0x1000, LOAD, 0)
        hit.step(0x404, 0x1040, LOAD, 0)  # warm TLB/PTEs nearby
        before = hit.retire_t
        hit.step(0x408, 0x1000, LOAD, 0)
        assert hit.retire_t - before < cold

    def test_mispredict_stalls_frontend(self):
        plain = engine_with()
        plain.step(0x400, 0x1000, LOAD, 0)
        plain.step(0x404, 0x1040, LOAD, 0)
        flagged = engine_with()
        flagged.step(0x400, 0x1000, LOAD | MISPREDICT, 0)
        flagged.step(0x404, 0x1040, LOAD, 0)
        assert flagged.fetch_t > plain.fetch_t

    def test_dependent_load_serialises(self):
        def run(flags):
            e = engine_with()
            e.step(0x400, 0x1000, LOAD, 0)  # warm the page translation
            start = e.retire_t
            for i in range(8):
                e.step(0x400, 0x1040 + i * 64, flags, 0)
            return e.retire_t - start

        free = run(LOAD)  # independent misses overlap in the MSHRs
        chained = run(LOAD | DEPENDS)  # pointer chase pays full latency each
        assert chained > free * 2

    def test_store_does_not_block(self):
        e = engine_with()
        e.step(0x400, 0x1000, STORE, 0)
        store_t = e.retire_t
        e2 = engine_with()
        e2.step(0x400, 0x1000, LOAD, 0)
        assert store_t < e2.retire_t

    def test_retire_monotone(self):
        e = engine_with()
        last = 0.0
        for i in range(50):
            e.step(0x400 + i % 3, 0x1000 + i * 64, LOAD, 1)
            assert e.retire_t >= last
            last = e.retire_t


class TestRobModel:
    def test_rob_stall_accumulates_under_dependent_misses(self):
        e = engine_with()
        for i in range(600):
            e.step(0x400, 0x100000 + i * 0x100000, LOAD | DEPENDS, 0)
        assert e.rob_stall_cycles > 0


class TestPrefetchPlumbing:
    def test_in_page_prefetch_bypasses_policy(self):
        policy = RecordingPolicy()
        e = engine_with(ScriptedPrefetcher(1), policy)
        e.step(0x400, 0x1000, LOAD, 0)  # offset 0 -> +1 line stays in page
        assert policy.decisions == 0
        assert e.pgc.candidates == 0

    def test_page_cross_consults_policy(self):
        policy = RecordingPolicy()
        e = engine_with(ScriptedPrefetcher(70), policy)
        e.step(0x400, 0x1000, LOAD, 0)
        assert policy.decisions == 1
        assert e.pgc.candidates == 1
        assert e.pgc.issued == 1
        assert policy.issues

    def test_discard_policy_blocks_issue(self):
        policy = RecordingPolicy(issue=False)
        e = engine_with(ScriptedPrefetcher(70), policy)
        e.step(0x400, 0x1000, LOAD, 0)
        assert e.pgc.issued == 0
        assert e.pgc.discarded == 1
        assert policy.discards == [(0x1000 + 70 * 64) >> 6]

    def test_issued_prefetch_triggers_speculative_walk(self):
        e = engine_with(ScriptedPrefetcher(70), RecordingPolicy())
        e.step(0x400, 0x1000, LOAD, 0)
        assert e.walker.speculative_walks == 1

    def test_discard_ptw_skips_walk(self):
        e = engine_with(ScriptedPrefetcher(70), DiscardPtw())
        e.step(0x400, 0x1000, LOAD, 0)
        assert e.walker.speculative_walks == 0
        assert e.pgc.discarded_no_translation == 1

    def test_discard_ptw_issues_on_tlb_hit(self):
        e = engine_with(ScriptedPrefetcher(64), DiscardPtw())
        e.step(0x400, 0x2000, LOAD, 0)  # touches page 2; walks
        e.step(0x404, 0x1000, LOAD, 0)  # prefetch targets page 2: TLB hit
        assert e.pgc.issued >= 1

    def test_pcb_set_on_page_cross_fill(self):
        e = engine_with(ScriptedPrefetcher(70), PermitPgc())
        e.step(0x400, 0x1000, LOAD, 0)
        filled = [b for s in e.hierarchy.l1d._sets for b in s.values() if b.pcb]
        assert len(filled) == 1

    def test_demand_miss_reaches_policy(self):
        policy = RecordingPolicy()
        e = engine_with(ScriptedPrefetcher(70), policy)
        e.step(0x400, 0x1000, LOAD, 0)
        assert policy.demand_misses == 1


class TestEpochs:
    def test_epoch_updates_system_state(self):
        config = SimConfig(policy_factory=DiscardPgc, epoch_instructions=64)
        e = build_engine(config, prefetcher=L1dPrefetcherStub())
        for i in range(200):
            e.step(0x400, 0x1000 + i * 4096, LOAD, 0)
        assert e.system_state.last_epoch.instructions > 0
        assert e.system_state.l1d_mpki > 0

    def test_epoch_reaches_policy(self):
        class EpochCounter(RecordingPolicy):
            epochs = 0

            def on_epoch(self, epoch):
                self.epochs += 1

        policy = EpochCounter()
        config = SimConfig(policy_factory=lambda: policy, epoch_instructions=64)
        e = build_engine(config, prefetcher=L1dPrefetcherStub())
        for i in range(200):
            e.step(0x400, 0x1000 + i * 64, LOAD, 0)
        assert policy.epochs >= 2


class TestMeasurement:
    def test_begin_measurement_resets_counters(self):
        e = engine_with()
        for i in range(50):
            e.step(0x400, 0x1000 + i * 4096, LOAD, 0)
        e.begin_measurement()
        assert e.measured_instructions == 0
        e.step(0x400, 0x900000, LOAD, 4)
        assert e.measured_instructions == 5
        assert e.measured_cycles > 0
