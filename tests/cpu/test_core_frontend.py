"""Core engine front-end: instruction fetch, iTLB, L1I pressure, epochs."""

from repro.core.policies import DiscardPgc
from repro.cpu.simulator import SimConfig, build_engine
from repro.prefetch.base import NoPrefetcher
from repro.workloads.trace import LOAD


def make_engine(epoch=2048):
    config = SimConfig(policy_factory=DiscardPgc, epoch_instructions=epoch)
    return build_engine(config, prefetcher=NoPrefetcher())


class TestInstructionSide:
    def test_repeated_pc_fetches_once(self):
        e = make_engine()
        for i in range(20):
            e.step(0x400000, 0x1000 + i * 64, LOAD, 0)
        assert e.hierarchy.l1i.stats.accesses == 1

    def test_new_lines_fetch(self):
        e = make_engine()
        for i in range(10):
            e.step(0x400000 + i * 64, 0x1000, LOAD, 0)
        assert e.hierarchy.l1i.demand_stats.accesses == 10

    def test_itlb_populated(self):
        e = make_engine()
        e.step(0x400000, 0x1000, LOAD, 0)
        assert e.itlb.stats.misses == 1
        e.step(0x400040, 0x1040, LOAD, 0)
        assert e.itlb.stats.hits == 1

    def test_instruction_walks_counted_as_demand(self):
        e = make_engine()
        e.step(0x400000, 0x1000, LOAD, 0)
        assert e.walker.demand_walks == 2  # one I-side, one D-side

    def test_long_gaps_fetch_extra_code_lines(self):
        tight = make_engine()
        tight.step(0x400000, 0x1000, LOAD, 0)
        loose = make_engine()
        loose.step(0x400000, 0x1000, LOAD, 120)  # ~480B of straight-line code
        assert loose.hierarchy.l1i.stats.accesses > tight.hierarchy.l1i.stats.accesses

    def test_l1i_prefetcher_fills_next_lines(self):
        e = make_engine()
        e.step(0x400000, 0x1000, LOAD, 0)
        prefetched = [
            b for s in e.hierarchy.l1i._sets for b in s.values() if b.prefetched
        ]
        assert prefetched

    def test_big_code_footprint_creates_l1i_misses(self):
        # walk 1024 distinct code lines (64KB > 32KB L1I), twice
        e = make_engine(epoch=512)
        for rep in range(2):
            for i in range(1024):
                e.step(0x400000 + i * 64, 0x1000, LOAD, 0)
        assert e.system_state.l1i_mpki > 0


class TestStraightLineRunClamp:
    def record_ifetches(self, engine):
        fetched = []
        real = engine._mem_ifetch

        def recording(paddr, t):
            fetched.append(paddr)
            return real(paddr, t)

        engine._mem_ifetch = recording
        return fetched

    def test_gap_run_clamped_at_page_boundary(self):
        # pc sits in the last line of its 4 KB page, so a long gap's
        # straight-line code run has zero room: the translation only covers
        # this page, and the old unclamped run fetched up to 8 lines into a
        # physical frame the translation never mapped
        e = make_engine()
        fetched = self.record_ifetches(e)
        e.step(0x400000 + 0xFC0, 0x1000, LOAD, 200)
        frames = {paddr >> 12 for paddr in fetched}
        assert len(frames) == 1

    def test_gap_run_within_page_still_fetches_extra_lines(self):
        # mid-page, the run proceeds (clamped at 8 lines) without crossing
        e = make_engine()
        fetched = self.record_ifetches(e)
        e.step(0x400000, 0x1000, LOAD, 200)
        assert len(fetched) == 9  # base line + 8 extra
        assert {paddr >> 12 for paddr in fetched} == {fetched[0] >> 12}


class TestEpochBookkeeping:
    def test_ipc_tracked_per_epoch(self):
        e = make_engine(epoch=128)
        for i in range(400):
            e.step(0x400000, 0x1000 + (i % 4) * 64, LOAD, 1)
        assert e.system_state.ipc > 0

    def test_rob_stall_fraction_bounded(self):
        e = make_engine(epoch=128)
        for i in range(600):
            e.step(0x400000, 0x100000 * (i + 1), LOAD, 0)
        assert 0.0 <= e.system_state.rob_stall_fraction <= 1.0
