"""Large-page (2MB) behaviour of the page-cross plumbing (Figure 16 path)."""

import pytest

from repro.core.context import PrefetchRequest
from repro.core.policies import Decision, PageCrossPolicy, PermitPgc
from repro.cpu.simulator import SimConfig, build_engine
from repro.prefetch.base import L1dPrefetcher
from repro.workloads.trace import LOAD


class FixedDeltaPrefetcher(L1dPrefetcher):
    name = "fixed"

    def __init__(self, delta_lines: int):
        super().__init__()
        self.delta = delta_lines

    def on_access(self, pc, vaddr, hit, t):
        return [PrefetchRequest(vaddr + (self.delta << 6), pc, self.delta)]


class CountingPolicy(PageCrossPolicy):
    name = "counting"

    def __init__(self, issue=True):
        self.issue = issue
        self.consultations = 0

    def decide(self, req, ctx, state):
        self.consultations += 1
        return Decision(self.issue)


def engine_with(prefetcher, policy, large_fraction):
    config = SimConfig(
        policy_factory=lambda: policy,
        large_page_fraction=large_fraction,
    )
    return build_engine(config, prefetcher=prefetcher)


class TestSmallPages:
    def test_4k_cross_consults_policy(self):
        policy = CountingPolicy()
        e = engine_with(FixedDeltaPrefetcher(70), policy, 0.0)
        e.step(0x400, 0x1000, LOAD, 0)
        assert policy.consultations == 1


class TestLargePages:
    def test_4k_cross_within_2m_page_still_filtered_by_default(self):
        """DRIPPER filters at 4KB boundaries regardless of page size."""
        policy = CountingPolicy()
        e = engine_with(FixedDeltaPrefetcher(70), policy, 1.0)
        e.step(0x400, 0x1000, LOAD, 0)
        assert policy.consultations == 1
        assert e.pgc.same_translation == 1

    def test_native_boundary_policy_skips_within_translation_crossers(self):
        """DRIPPER(filter@2MB) only filters true translation crossers."""
        policy = CountingPolicy()
        policy.filter_at_native_boundary = True
        e = engine_with(FixedDeltaPrefetcher(70), policy, 1.0)
        e.step(0x400, 0x1000, LOAD, 0)  # +70 lines stays inside the 2MB page
        assert policy.consultations == 0
        assert e.pgc.issued == 1  # issued unfiltered

    def test_native_boundary_policy_still_filters_2m_crossers(self):
        policy = CountingPolicy()
        policy.filter_at_native_boundary = True
        e = engine_with(FixedDeltaPrefetcher(70), policy, 1.0)
        near_edge = (1 << 21) - 0x100  # last lines of the first 2MB page
        e.step(0x400, near_edge, LOAD, 0)
        assert policy.consultations == 1

    def test_within_2m_cross_needs_no_walk(self):
        """A 4KB-cross inside a 2MB page reuses the trigger's translation."""
        e = engine_with(FixedDeltaPrefetcher(70), PermitPgc(), 1.0)
        e.step(0x400, 0x1000, LOAD, 0)
        assert e.pgc.issued == 1
        assert e.walker.speculative_walks == 0

    def test_true_2m_cross_walks(self):
        e = engine_with(FixedDeltaPrefetcher(70), PermitPgc(), 1.0)
        near_edge = (1 << 21) - 0x100
        e.step(0x400, near_edge, LOAD, 0)
        assert e.walker.speculative_walks == 1

    def test_2m_pages_reduce_demand_walk_depth(self):
        small = engine_with(FixedDeltaPrefetcher(1), CountingPolicy(False), 0.0)
        large = engine_with(FixedDeltaPrefetcher(1), CountingPolicy(False), 1.0)
        for e in (small, large):
            for i in range(64):
                e.step(0x400, i << 12, LOAD, 0)  # one access per 4KB page
        # 2MB pages: one walk covers 512 pages -> far fewer demand walks
        assert large.walker.demand_walks < small.walker.demand_walks / 4


class TestSimulatedLargePages:
    @pytest.mark.slow
    def test_fig16_variant_runs_end_to_end(self):
        from repro.experiments.runner import RunSpec, run_one
        from repro.workloads import by_name

        spec = RunSpec(
            policy="dripper", warmup_instructions=4_000, sim_instructions=12_000,
            large_page_fraction=0.5, filter_at_native_boundary=True,
        )
        result = run_one(by_name("libquantum"), spec)
        assert result.instructions > 0
