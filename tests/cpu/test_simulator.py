"""Single-core simulation driver."""

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads.patterns import Stream
from repro.workloads.synthetic import SyntheticWorkload


def stream_workload(seed=1, pages=512):
    return SyntheticWorkload(
        "stream", "TEST", seed,
        [(lambda: Stream(0, stride_lines=1, footprint_pages=pages), 1 << 30)],
        mean_gap=2.0,
    )


def quick_config(**kwargs):
    defaults = dict(
        prefetcher="berti", policy_factory=DiscardPgc,
        warmup_instructions=2_000, sim_instructions=6_000,
    )
    defaults.update(kwargs)
    return SimConfig(**defaults)


class TestSimulate:
    def test_produces_result(self):
        result = simulate(stream_workload(), quick_config())
        assert result.instructions >= 6_000
        assert result.cycles > 0
        assert 0 < result.ipc < 6.0
        assert result.workload == "stream"
        assert result.prefetcher == "berti"
        assert result.policy == "discard-pgc"

    def test_deterministic(self):
        a = simulate(stream_workload(), quick_config())
        b = simulate(stream_workload(), quick_config())
        assert a.ipc == b.ipc
        assert a.l1d_mpki == b.l1d_mpki

    def test_policy_changes_outcome(self):
        discard = simulate(stream_workload(), quick_config())
        permit = simulate(stream_workload(), quick_config(policy_factory=PermitPgc))
        assert permit.pgc_issued > 0
        assert discard.pgc_issued == 0
        assert discard.pgc_discarded > 0

    def test_mpkis_nonnegative(self):
        r = simulate(stream_workload(), quick_config())
        for value in (r.dtlb_mpki, r.stlb_mpki, r.l1d_mpki, r.l1i_mpki, r.l2c_mpki, r.llc_mpki):
            assert value >= 0.0

    def test_accuracy_and_coverage_in_unit_range(self):
        r = simulate(stream_workload(), quick_config(policy_factory=PermitPgc))
        assert 0.0 <= r.prefetch_accuracy <= 1.0
        assert 0.0 <= r.prefetch_coverage <= 1.0
        assert 0.0 <= r.pgc_accuracy <= 1.0

    def test_speedup_over(self):
        a = simulate(stream_workload(), quick_config())
        b = simulate(stream_workload(), quick_config(policy_factory=PermitPgc))
        assert b.speedup_over(a) == pytest.approx(b.ipc / a.ipc)

    def test_speedup_over_rejects_zero_ipc_baseline(self):
        import dataclasses

        a = simulate(stream_workload(), quick_config())
        broken = dataclasses.replace(a, ipc=0.0)
        with pytest.raises(ValueError, match="IPC is zero"):
            a.speedup_over(broken)

    def test_coverage_uses_raw_measured_misses(self):
        r = simulate(stream_workload(), quick_config(policy_factory=PermitPgc))
        # the raw count is carried on the result, not reconstructed from MPKI
        assert r.l1d_demand_misses == round(r.l1d_mpki * r.instructions / 1000.0)
        would_be = r.prefetch_useful + r.l1d_demand_misses
        assert r.prefetch_coverage == (r.prefetch_useful / would_be if would_be else 0.0)

    def test_speedup_over_rejects_workload_mismatch(self):
        a = simulate(stream_workload(), quick_config())
        other = SyntheticWorkload(
            "other", "TEST", 2,
            [(lambda: Stream(0, footprint_pages=64), 1 << 30)],
        )
        b = simulate(other, quick_config())
        with pytest.raises(ValueError):
            b.speedup_over(a)

    def test_large_pages_reduce_walk_pressure(self):
        small = simulate(stream_workload(pages=2048), quick_config())
        large = simulate(
            stream_workload(pages=2048), quick_config(large_page_fraction=1.0)
        )
        assert large.stlb_mpki < small.stlb_mpki

    def test_pgc_counters_consistent(self):
        r = simulate(stream_workload(), quick_config(policy_factory=PermitPgc))
        assert r.pgc_issued + r.pgc_discarded <= r.pgc_candidates + r.pgc_issued
        assert r.pgc_useful + r.pgc_useless <= r.pgc_issued

    def test_pki_properties(self):
        r = simulate(stream_workload(), quick_config(policy_factory=PermitPgc))
        assert r.pgc_useful_pki == pytest.approx(1000.0 * r.pgc_useful / r.instructions)


class TestMeasurementWindow:
    def test_warmup_excluded_from_instructions(self):
        r = simulate(stream_workload(), quick_config())
        assert 6_000 <= r.instructions < 6_000 + 100  # one record of slack

    def test_l2_prefetcher_option(self):
        r = simulate(stream_workload(), quick_config(l2_prefetcher="spp"))
        assert r.instructions > 0
