"""Multi-core mix simulation."""

import pytest

from repro.core.policies import DiscardPgc
from repro.cpu.multicore import MixResult, isolation_ipc, simulate_mix
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads.patterns import Gather, Stream
from repro.workloads.synthetic import SyntheticWorkload


def workload(name, seed, pattern=Stream, **kwargs):
    return SyntheticWorkload(
        name, "TEST", seed,
        [(lambda: pattern(0, **kwargs), 1 << 30)],
        mean_gap=2.0,
    )


def quick_config():
    return SimConfig(
        prefetcher="berti", policy_factory=DiscardPgc,
        warmup_instructions=1_000, sim_instructions=4_000,
    )


class TestSimulateMix:
    def test_all_cores_finish(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=256) for i in range(4)]
        result = simulate_mix(mix, quick_config())
        assert len(result.results) == 4
        for r in result.results:
            # warm-up may overshoot by one record's gap
            assert r.instructions >= 4_000 - 50
            assert r.ipc > 0

    def test_results_match_workload_order(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        result = simulate_mix(mix, quick_config())
        assert [r.workload for r in result.results] == ["w0", "w1"]

    def test_contention_slows_cores_down(self):
        """Memory-hog co-runners must reduce a core's IPC vs isolation."""
        victim = workload("victim", 1, footprint_pages=2048)
        hogs = [workload(f"hog{i}", i + 2, Gather, footprint_pages=8192) for i in range(3)]
        iso = isolation_ipc(victim, quick_config(), cores=4)
        mixed = simulate_mix([victim, *hogs], quick_config())
        assert mixed.results[0].ipc < iso

    def test_deterministic(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        a = simulate_mix(mix, quick_config())
        b = simulate_mix(mix, quick_config())
        assert [r.ipc for r in a.results] == [r.ipc for r in b.results]


class TestWeightedIpc:
    def test_weighted_ipc_formula(self):
        results = simulate_mix(
            [workload("a", 1, footprint_pages=128), workload("b", 2, footprint_pages=128)],
            quick_config(),
        )
        isolation = [1.0, 2.0]
        expected = results.results[0].ipc / 1.0 + results.results[1].ipc / 2.0
        assert results.weighted_ipc(isolation) == pytest.approx(expected)

    def test_weighted_ipc_rejects_mismatch(self):
        result = MixResult([])
        with pytest.raises(ValueError):
            result.weighted_ipc([1.0])

    def test_weighted_ipc_rejects_zero_isolation(self):
        results = simulate_mix(
            [workload("a", 1, footprint_pages=128), workload("b", 2, footprint_pages=128)],
            quick_config(),
        )
        with pytest.raises(ValueError, match="isolation IPC for core 1"):
            results.weighted_ipc([1.0, 0.0])


class TestPerCoreBudgets:
    def test_qmm_core_journals_halved_budget(self):
        # QMM workloads run half-length traces; the per-core config handed
        # to collect_result must carry the halved budget so the journaled
        # requested_instructions matches what the core measured
        qmm = SyntheticWorkload(
            "qmmish", "QMM_INT", 5,
            [(lambda: Stream(0, footprint_pages=128), 1 << 30)],
            mean_gap=2.0,
        )
        plain = workload("plain", 6, footprint_pages=128)
        result = simulate_mix([qmm, plain], quick_config())
        per_core = {r.workload: r for r in result.results}
        assert per_core["qmmish"].requested_instructions == 2_000
        assert per_core["plain"].requested_instructions == 4_000
        assert per_core["qmmish"].instructions >= 2_000


class TestIsolation:
    def test_isolation_uses_scaled_llc(self):
        w = workload("solo", 3, footprint_pages=700)
        single = simulate(w, quick_config()).ipc
        scaled = isolation_ipc(w, quick_config(), cores=8)
        # 8x LLC capacity on a 700-page footprint: misses drop, IPC rises
        assert scaled >= single


class TestPerCoreLlcStats:
    def test_shared_llc_stats_do_not_leak_into_core_results(self):
        """Each core's LLC MPKI must reflect only its own demand traffic."""
        mix = [workload(f"w{i}", i + 1, Gather, footprint_pages=4096) for i in range(4)]
        result = simulate_mix(mix, quick_config())
        total_shared = sum(r.llc_mpki * r.instructions / 1000 for r in result.results)
        for r in result.results:
            own = r.llc_mpki * r.instructions / 1000
            assert own < 0.5 * total_shared + 1, (
                "a single core reported most of the shared LLC's misses"
            )

    def test_single_core_unchanged_by_accounting(self):
        w = workload("solo", 9, footprint_pages=1024)
        r = simulate(w, quick_config())
        # in single-core runs the per-core view covers all demand traffic
        assert r.llc_mpki > 0
