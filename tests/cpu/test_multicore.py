"""Multi-core mix simulation."""

from dataclasses import replace

import pytest

from repro.core.policies import DiscardPgc
from repro.cpu.multicore import (
    MixResult,
    isolation_ipc,
    simulate_mix,
    weighted_speedup,
)
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads.patterns import Gather, Stream
from repro.workloads.synthetic import SyntheticWorkload


def workload(name, seed, pattern=Stream, **kwargs):
    return SyntheticWorkload(
        name, "TEST", seed,
        [(lambda: pattern(0, **kwargs), 1 << 30)],
        mean_gap=2.0,
    )


def quick_config():
    return SimConfig(
        prefetcher="berti", policy_factory=DiscardPgc,
        warmup_instructions=1_000, sim_instructions=4_000,
    )


class TestSimulateMix:
    def test_all_cores_finish(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=256) for i in range(4)]
        result = simulate_mix(mix, quick_config())
        assert len(result.results) == 4
        for r in result.results:
            # warm-up may overshoot by one record's gap
            assert r.instructions >= 4_000 - 50
            assert r.ipc > 0

    def test_results_match_workload_order(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        result = simulate_mix(mix, quick_config())
        assert [r.workload for r in result.results] == ["w0", "w1"]

    def test_contention_slows_cores_down(self):
        """Memory-hog co-runners must reduce a core's IPC vs isolation."""
        victim = workload("victim", 1, footprint_pages=2048)
        hogs = [workload(f"hog{i}", i + 2, Gather, footprint_pages=8192) for i in range(3)]
        iso = isolation_ipc(victim, quick_config(), cores=4)
        mixed = simulate_mix([victim, *hogs], quick_config())
        assert mixed.results[0].ipc < iso

    def test_deterministic(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        a = simulate_mix(mix, quick_config())
        b = simulate_mix(mix, quick_config())
        assert [r.ipc for r in a.results] == [r.ipc for r in b.results]


class TestWeightedIpc:
    def test_weighted_ipc_formula(self):
        results = simulate_mix(
            [workload("a", 1, footprint_pages=128), workload("b", 2, footprint_pages=128)],
            quick_config(),
        )
        isolation = [1.0, 2.0]
        expected = results.results[0].ipc / 1.0 + results.results[1].ipc / 2.0
        assert results.weighted_ipc(isolation) == pytest.approx(expected)

    def test_weighted_ipc_rejects_mismatch(self):
        result = MixResult([])
        with pytest.raises(ValueError):
            result.weighted_ipc([1.0])

    def test_weighted_ipc_rejects_zero_isolation(self):
        results = simulate_mix(
            [workload("a", 1, footprint_pages=128), workload("b", 2, footprint_pages=128)],
            quick_config(),
        )
        with pytest.raises(ValueError, match="isolation IPC for core 1"):
            results.weighted_ipc([1.0, 0.0])


def qmm_workload(name="qmmish", seed=5):
    """A QMM-suite workload: simulate_mix halves its per-core budgets."""
    return SyntheticWorkload(
        name, "QMM_INT", seed,
        [(lambda: Stream(0, footprint_pages=128), 1 << 30)],
        mean_gap=2.0,
    )


class TestConfigKnobs:
    """simulate_mix used to silently ignore kernel/packed/validate."""

    def test_unknown_kernel_rejected(self):
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        with pytest.raises(ValueError, match="unknown packed kernel tier"):
            simulate_mix(mix, replace(quick_config(), kernel="bogus"))

    def test_packed_matches_generator(self):
        # include a QMM core: its halved budget makes it finish early and
        # replay, pushing the packed loop through the overflow seam
        mix = [qmm_workload(), *(workload(f"w{i}", i + 1, footprint_pages=128)
                                 for i in range(3))]
        generator = simulate_mix(mix, quick_config())
        packed = simulate_mix(mix, replace(quick_config(), packed=True))
        for a, b in zip(generator.results, packed.results):
            assert a == b

    def test_vectorized_kernel_implies_packed(self, monkeypatch):
        import repro.cpu.multicore as mc

        calls = []
        real = mc._drive_mix_packed

        def spy(*args, **kwargs):
            calls.append(True)
            return real(*args, **kwargs)

        monkeypatch.setattr(mc, "_drive_mix_packed", spy)
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        result = simulate_mix(mix, replace(quick_config(), kernel="vectorized"))
        assert calls and len(result.results) == 2

    def test_validate_attaches_checker_per_core(self, monkeypatch):
        from repro.validate import InvariantChecker

        attached = []
        real_attach = InvariantChecker.attach

        def spy(self, engine):
            attached.append(engine)
            return real_attach(self, engine)

        monkeypatch.setattr(InvariantChecker, "attach", spy)
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        simulate_mix(mix, replace(quick_config(), validate=True))
        assert len(attached) == 2

    def test_validate_passes_on_clean_mix(self):
        mix = [qmm_workload(), workload("plain", 6, footprint_pages=128)]
        clean = simulate_mix(mix, replace(quick_config(), validate=True))
        plain = simulate_mix(mix, quick_config())
        # validation is observational: identical results either way
        assert [r.ipc for r in clean.results] == [r.ipc for r in plain.results]


class TestHeapOrder:
    def test_identical_cores_tie_break_deterministically(self):
        # all cores share one retire clock, so every heap pop is decided by
        # the core-index tie-break; any instability would desynchronise the
        # shared LLC and show up as cross-run IPC jitter
        mix = [workload("same", 7, footprint_pages=256) for _ in range(4)]
        a = simulate_mix(mix, quick_config())
        b = simulate_mix(mix, quick_config())
        assert [r.ipc for r in a.results] == [r.ipc for r in b.results]
        packed = simulate_mix(mix, replace(quick_config(), packed=True))
        assert [r.ipc for r in packed.results] == [r.ipc for r in a.results]


class TestWeightedSpeedupCanonical:
    def test_metrics_delegates_to_multicore(self):
        from repro.experiments.metrics import weighted_speedup as via_metrics

        assert via_metrics([1.0, 2.0], [0.5, 1.0]) == weighted_speedup(
            [1.0, 2.0], [0.5, 1.0]) == 4.0

    def test_negative_isolation_rejected_everywhere(self):
        # the two copies used to disagree: MixResult raised only on iso == 0
        from repro.experiments.metrics import weighted_speedup as via_metrics

        with pytest.raises(ValueError, match="core 1"):
            weighted_speedup([1.0, 1.0], [1.0, -0.5])
        with pytest.raises(ValueError, match="core 1"):
            via_metrics([1.0, 1.0], [1.0, -0.5])

    def test_labels_name_the_offending_core(self):
        with pytest.raises(ValueError, match="'b'"):
            weighted_speedup([1.0, 1.0], [1.0, 0.0], labels=["a", "b"])


class TestMixTelemetry:
    def test_drives_counter_labels_mix_modes(self):
        from repro.obs.metrics import get_metrics

        def mode_count(snap, mode):
            metric = snap.counters.get("sim.drives", {"series": {}})
            return sum(value for labels, value in metric["series"].items()
                       if dict(labels).get("mode") == mode)

        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        before = get_metrics().snapshot()
        simulate_mix(mix, quick_config())
        simulate_mix(mix, replace(quick_config(), packed=True))
        after = get_metrics().snapshot()
        assert mode_count(after, "mix-generator") == mode_count(before, "mix-generator") + 1
        assert mode_count(after, "mix-packed") == mode_count(before, "mix-packed") + 1

    def test_journal_tags_mix_and_core(self, tmp_path):
        from repro.obs import Observability, RunJournal
        from repro.obs.journal import read_journal

        path = tmp_path / "mix.jsonl"
        obs = Observability(journal=RunJournal(path))
        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        simulate_mix(mix, quick_config(), obs=obs, mix_id=17)
        obs.close()
        records = read_journal(path)
        assert len(records) == 2
        assert [r["context"]["mix"] for r in records] == [17, 17]
        assert sorted(r["context"]["core"] for r in records) == [0, 1]

    def test_timeline_rejected(self):
        from repro.obs import Observability, TimelineRecorder

        mix = [workload(f"w{i}", i + 1, footprint_pages=128) for i in range(2)]
        with pytest.raises(ValueError, match="single-core"):
            simulate_mix(mix, quick_config(),
                         obs=Observability(timeline=TimelineRecorder()))


class TestPerCoreBudgets:
    def test_qmm_core_journals_halved_budget(self):
        # QMM workloads run half-length traces; the per-core config handed
        # to collect_result must carry the halved budget so the journaled
        # requested_instructions matches what the core measured
        qmm = SyntheticWorkload(
            "qmmish", "QMM_INT", 5,
            [(lambda: Stream(0, footprint_pages=128), 1 << 30)],
            mean_gap=2.0,
        )
        plain = workload("plain", 6, footprint_pages=128)
        result = simulate_mix([qmm, plain], quick_config())
        per_core = {r.workload: r for r in result.results}
        assert per_core["qmmish"].requested_instructions == 2_000
        assert per_core["plain"].requested_instructions == 4_000
        assert per_core["qmmish"].instructions >= 2_000


class TestIsolation:
    def test_isolation_uses_scaled_llc(self):
        w = workload("solo", 3, footprint_pages=700)
        single = simulate(w, quick_config()).ipc
        scaled = isolation_ipc(w, quick_config(), cores=8)
        # 8x LLC capacity on a 700-page footprint: misses drop, IPC rises
        assert scaled >= single


class TestPerCoreLlcStats:
    def test_shared_llc_stats_do_not_leak_into_core_results(self):
        """Each core's LLC MPKI must reflect only its own demand traffic."""
        mix = [workload(f"w{i}", i + 1, Gather, footprint_pages=4096) for i in range(4)]
        result = simulate_mix(mix, quick_config())
        total_shared = sum(r.llc_mpki * r.instructions / 1000 for r in result.results)
        for r in result.results:
            own = r.llc_mpki * r.instructions / 1000
            assert own < 0.5 * total_shared + 1, (
                "a single core reported most of the shared LLC's misses"
            )

    def test_single_core_unchanged_by_accounting(self):
        w = workload("solo", 9, footprint_pages=1024)
        r = simulate(w, quick_config())
        # in single-core runs the per-core view covers all demand traffic
        assert r.llc_mpki > 0


class TestOverflowTailCache:
    """The memoised overflow stream serves the exact uncached records."""

    def setup_method(self):
        from repro.cpu import fastpath_mix
        fastpath_mix.clear_overflow_tails()

    def test_cached_stream_matches_fresh_iterator(self):
        from itertools import islice
        from repro.cpu.fastpath_mix import (
            _TAIL_CACHE, _overflow_iterator, _tail_records,
        )
        w = workload("tailed", 21)
        want = list(islice(_overflow_iterator(w, 100), 500))
        # cold pass populates the cache, warm pass replays it
        assert list(islice(_tail_records(w, 100), 500)) == want
        assert len(_TAIL_CACHE) == 1
        (tail,) = _TAIL_CACHE.values()
        assert len(tail.records) >= 500
        assert list(islice(_tail_records(w, 100), 500)) == want
        # a second consumer interleaved mid-stream stays consistent too
        a, b = _tail_records(w, 100), _tail_records(w, 100)
        got = [next(a), next(b), next(a), next(b)]
        assert got == [want[0], want[0], want[1], want[1]]

    def test_seedless_workloads_are_not_cached(self):
        from itertools import islice
        from repro.cpu.fastpath_mix import _TAIL_CACHE, _tail_records

        class Anon:
            name = "anon"
            def generate(self):
                return iter([(i, i, 0, 0) for i in range(10)])

        assert list(islice(_tail_records(Anon(), 4), 3)) == [
            (4, 4, 0, 0), (5, 5, 0, 0), (6, 6, 0, 0)]
        assert not _TAIL_CACHE

    def test_cap_falls_back_to_private_stream(self, monkeypatch):
        from itertools import islice
        from repro.cpu import fastpath_mix
        monkeypatch.setattr(fastpath_mix, "_TAIL_RECORD_CAP", 8)
        w = workload("capped", 22)
        want = list(islice(fastpath_mix._overflow_iterator(w, 10), 40))
        assert list(islice(fastpath_mix._tail_records(w, 10), 40)) == want
        (tail,) = fastpath_mix._TAIL_CACHE.values()
        assert len(tail.records) == 8

    def test_mix_results_identical_with_warm_tails(self):
        mix = [workload(f"m{i}", i + 40) for i in range(3)] + [qmm_workload()]
        cold = simulate_mix(mix, quick_config())
        warm = simulate_mix(mix, quick_config())
        assert [r.ipc for r in cold.results] == [r.ipc for r in warm.results]
