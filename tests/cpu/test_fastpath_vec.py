"""Vectorized span-skipping kernel tier: equality, gating, metrics, shm."""

import gc
from dataclasses import replace

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.obs.metrics import get_metrics
from repro.params import DEFAULT_PARAMS
from repro.validate import result_diff
from repro.workloads import by_name
from repro.workloads.packed import clear_pack_cache, install_shared_provider
from repro.workloads.shm import SharedPackStore, detach_all, install_attachments


def config(**overrides):
    base = dict(
        prefetcher="none", policy_factory=DiscardPgc,
        warmup_instructions=2_000, sim_instructions=6_000, packed=True,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestVectorizedEquality:
    @pytest.mark.parametrize("name", ["hot_0", "hot_3", "astar"])
    def test_matches_fused(self, name):
        w = by_name(name)
        fused = simulate(w, config())
        vec = simulate(w, config(kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_matches_fused_across_short_epochs(self):
        # spans run across many rollovers; the deferred per-segment commit
        # must feed each epoch hook boundary-exact counters
        w = by_name("hot_0")
        fused = simulate(w, config(epoch_instructions=512))
        vec = simulate(w, config(epoch_instructions=512, kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_matches_fused_with_epoch_listener(self):
        # validate=True chains an epoch_listener: spans must clip at epoch
        # boundaries and the residency proofs must drop after each rollover
        w = by_name("hot_0")
        fused = simulate(w, config(validate=True))
        vec = simulate(w, config(validate=True, kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_matches_fused_with_permit_policy(self):
        w = by_name("hot_1")
        fused = simulate(w, config(policy_factory=PermitPgc))
        vec = simulate(w, config(policy_factory=PermitPgc, kernel="vectorized"))
        assert result_diff(fused, vec) == {}


class TestDelegation:
    def test_real_prefetcher_delegates_to_fused(self):
        w = by_name("astar")
        fused = simulate(w, config(prefetcher="berti"))
        vec = simulate(w, config(prefetcher="berti", kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_non_lru_replacement_delegates(self):
        params = replace(DEFAULT_PARAMS,
                         l1d=replace(DEFAULT_PARAMS.l1d, replacement="srrip"))
        w = by_name("hot_0")
        fused = simulate(w, config(params=params))
        vec = simulate(w, config(params=params, kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel tier"):
            simulate(by_name("hot_0"), config(kernel="turbo"))


class TestDriveMetric:
    def test_vectorized_mode_counted(self):
        drives = get_metrics().counter("sim.drives")
        before = drives.value(mode="vectorized")
        simulate(by_name("hot_0"), config(kernel="vectorized"))
        assert drives.value(mode="vectorized") == before + 1

    def test_delegated_run_counts_tier_selection(self):
        # the metric records tier *selection*: a delegating run increments
        # the vectorized series, not the fused one
        drives = get_metrics().counter("sim.drives")
        before_vec = drives.value(mode="vectorized")
        before_fused = drives.value(mode="fused")
        simulate(by_name("hot_0"),
                 config(prefetcher="berti", kernel="vectorized"))
        assert drives.value(mode="vectorized") == before_vec + 1
        assert drives.value(mode="fused") == before_fused


class TestShmAttachedPacks:
    def test_vectorized_over_attached_pack_matches(self):
        w = by_name("hot_0")
        local = simulate(w, config(kernel="vectorized"))
        try:
            with SharedPackStore() as store:
                handle = store.publish(w, 2_000, 6_000)
                assert handle is not None
                clear_pack_cache()
                install_attachments([handle])
                attached = simulate(w, config(kernel="vectorized"))
        finally:
            install_shared_provider(None)
            clear_pack_cache()
            # the attached PackedTrace can sit in a reference cycle; its
            # column views must be collected before the segment closes
            gc.collect()
            detach_all()
        assert result_diff(local, attached) == {}
