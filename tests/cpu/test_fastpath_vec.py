"""Vectorized span-skipping kernel tier: equality, gating, metrics, shm."""

import gc
from dataclasses import replace

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.obs.metrics import get_metrics
from repro.params import DEFAULT_PARAMS
from repro.validate import result_diff
from repro.workloads import by_name
from repro.workloads.packed import clear_pack_cache, install_shared_provider
from repro.workloads.shm import SharedPackStore, detach_all, install_attachments


def config(**overrides):
    base = dict(
        prefetcher="none", policy_factory=DiscardPgc,
        warmup_instructions=2_000, sim_instructions=6_000, packed=True,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestVectorizedEquality:
    @pytest.mark.parametrize("name", ["hot_0", "hot_3", "astar"])
    def test_matches_fused(self, name):
        w = by_name(name)
        fused = simulate(w, config())
        vec = simulate(w, config(kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_matches_fused_across_short_epochs(self):
        # spans run across many rollovers; the deferred per-segment commit
        # must feed each epoch hook boundary-exact counters
        w = by_name("hot_0")
        fused = simulate(w, config(epoch_instructions=512))
        vec = simulate(w, config(epoch_instructions=512, kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_matches_fused_with_epoch_listener(self):
        # validate=True chains an epoch_listener: spans must clip at epoch
        # boundaries and the residency proofs must drop after each rollover
        w = by_name("hot_0")
        fused = simulate(w, config(validate=True))
        vec = simulate(w, config(validate=True, kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_matches_fused_with_permit_policy(self):
        w = by_name("hot_1")
        fused = simulate(w, config(policy_factory=PermitPgc))
        vec = simulate(w, config(policy_factory=PermitPgc, kernel="vectorized"))
        assert result_diff(fused, vec) == {}


class TestDelegation:
    def test_real_prefetcher_delegates_to_fused(self):
        w = by_name("astar")
        fused = simulate(w, config(prefetcher="berti"))
        vec = simulate(w, config(prefetcher="berti", kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_non_lru_replacement_delegates(self):
        params = replace(DEFAULT_PARAMS,
                         l1d=replace(DEFAULT_PARAMS.l1d, replacement="srrip"))
        w = by_name("hot_0")
        fused = simulate(w, config(params=params))
        vec = simulate(w, config(params=params, kernel="vectorized"))
        assert result_diff(fused, vec) == {}

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel tier"):
            simulate(by_name("hot_0"), config(kernel="turbo"))


class TestDriveMetric:
    def test_vectorized_mode_counted(self):
        drives = get_metrics().counter("sim.drives")
        before = drives.value(mode="vectorized")
        simulate(by_name("hot_0"), config(kernel="vectorized"))
        assert drives.value(mode="vectorized") == before + 1

    def test_delegated_run_counts_tier_selection(self):
        # the metric records tier *selection*: a delegating run increments
        # the vectorized series, not the fused one
        drives = get_metrics().counter("sim.drives")
        before_vec = drives.value(mode="vectorized")
        before_fused = drives.value(mode="fused")
        simulate(by_name("hot_0"),
                 config(prefetcher="berti", kernel="vectorized"))
        assert drives.value(mode="vectorized") == before_vec + 1
        assert drives.value(mode="fused") == before_fused


class TestAutoKernel:
    def test_probe_predicts_by_event_density(self):
        from repro.cpu.fastpath_vec import predict_vec_win
        from repro.workloads.packed import get_packed

        # hot_0 is a near-pure hot loop (≈0 event density, 5.75x on the
        # span kernel per BENCH_0006); astar is event-dense (0.61x)
        assert predict_vec_win(get_packed(by_name("hot_0"), 2_000, 6_000))
        assert not predict_vec_win(get_packed(by_name("astar"), 2_000, 6_000))

    def test_empty_pack_reports_false(self):
        from repro.cpu.fastpath_vec import predict_vec_win
        from repro.workloads.packed import PackedTrace, get_packed

        p = get_packed(by_name("hot_0"), 2_000, 6_000)
        empty = PackedTrace(p.name, p.suite, p.pcs[:0], p.vaddrs[:0],
                            p.flags[:0], p.gaps[:0], warmup=0, sim=0,
                            instructions=0, complete=False)
        assert not predict_vec_win(empty)

    @pytest.mark.parametrize("name", ["hot_0", "astar"])
    def test_auto_matches_fused(self, name):
        # both probe outcomes: hot_0 routes vectorized, astar routes fused
        w = by_name(name)
        fused = simulate(w, config())
        auto = simulate(w, config(kernel="auto"))
        assert result_diff(fused, auto) == {}

    def test_auto_counts_tier_actually_chosen(self):
        drives = get_metrics().counter("sim.drives")

        before = drives.value(mode="vectorized")
        simulate(by_name("hot_0"), config(kernel="auto"))
        assert drives.value(mode="vectorized") == before + 1

        before = drives.value(mode="fused")
        simulate(by_name("astar"), config(kernel="auto"))
        assert drives.value(mode="fused") == before + 1

    def test_auto_respects_engine_capability(self):
        # a winning pack still runs fused when the engine disqualifies
        # (berti is a real L1D prefetcher, so the span predicate is unsound)
        drives = get_metrics().counter("sim.drives")
        before_vec = drives.value(mode="vectorized")
        before_fused = drives.value(mode="fused")
        simulate(by_name("hot_0"), config(prefetcher="berti", kernel="auto"))
        assert drives.value(mode="vectorized") == before_vec
        assert drives.value(mode="fused") == before_fused + 1


class TestShmAttachedPacks:
    def test_vectorized_over_attached_pack_matches(self):
        w = by_name("hot_0")
        local = simulate(w, config(kernel="vectorized"))
        try:
            with SharedPackStore() as store:
                handle = store.publish(w, 2_000, 6_000)
                assert handle is not None
                clear_pack_cache()
                install_attachments([handle])
                attached = simulate(w, config(kernel="vectorized"))
        finally:
            install_shared_provider(None)
            clear_pack_cache()
            # the attached PackedTrace can sit in a reference cycle; its
            # column views must be collected before the segment closes
            gc.collect()
            detach_all()
        assert result_diff(local, attached) == {}
