"""Simulator driver edge cases and configuration variants."""

import pytest

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads.patterns import Stream
from repro.workloads.synthetic import SyntheticWorkload


class FiniteWorkload:
    """A workload whose trace ends (tests the too-short error path)."""

    name = "finite"
    suite = "TEST"

    def __init__(self, records: int):
        self.records = records

    def generate(self):
        for i in range(self.records):
            yield 0x400, 0x1000 + i * 64, 1, 0


class TestShortTraces:
    def test_trace_shorter_than_warmup_raises(self):
        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=1_000, sim_instructions=1_000)
        with pytest.raises(ValueError, match="before the .* warm-up"):
            simulate(FiniteWorkload(100), config)

    def test_trace_ending_mid_measurement_raises(self):
        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=100, sim_instructions=10_000)
        with pytest.raises(ValueError, match="truncating the measured region"):
            simulate(FiniteWorkload(800), config)

    def test_trace_covering_both_regions_records_requested(self):
        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=100, sim_instructions=500)
        result = simulate(FiniteWorkload(800), config)
        assert result.requested_instructions == 500
        assert result.instructions >= 500


class HighGapWorkload:
    """Every record spans 1000 instructions (gap overshoot edge cases)."""

    name = "highgap"
    suite = "TEST"

    def generate(self):
        for i in range(60):
            yield 0x400, 0x1000 + (i % 8) * 64, 1, 999


class TestMeasurementWindow:
    def test_gap_overshoot_still_measures_full_region(self):
        # warm-up ends at the first record boundary >= 1500, which the
        # 1000-instruction records overshoot to 2000; the drive loop must
        # keep going until the *measured* region spans sim_instructions
        # (the old loop broke at the raw warmup+sim total and silently
        # under-measured by the overshoot)
        config = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=1_500, sim_instructions=3_000
        )
        result = simulate(HighGapWorkload(), config)
        assert result.instructions >= 3_000

    def test_gap_overshoot_matches_packed_path(self):
        config = SimConfig(
            policy_factory=DiscardPgc, warmup_instructions=1_500, sim_instructions=3_000,
            packed=True,
        )
        result = simulate(HighGapWorkload(), config)
        assert result.instructions >= 3_000


class TestConfigVariants:
    def make_workload(self):
        return SyntheticWorkload(
            "w", "TEST", 3,
            [(lambda: Stream(0, stride_lines=1, footprint_pages=512), 1 << 30)],
            mean_gap=2.0,
        )

    def test_no_prefetcher_never_produces_pgc(self):
        config = SimConfig(
            prefetcher="none", policy_factory=PermitPgc,
            warmup_instructions=1_000, sim_instructions=4_000,
        )
        result = simulate(self.make_workload(), config)
        assert result.pgc_candidates == 0
        assert result.prefetch_fills == 0

    def test_epoch_length_configurable(self):
        for epoch in (256, 8192):
            config = SimConfig(
                policy_factory=DiscardPgc, epoch_instructions=epoch,
                warmup_instructions=1_000, sim_instructions=4_000,
            )
            assert simulate(self.make_workload(), config).instructions > 0

    def test_asid_changes_physical_layout_not_behaviour(self):
        results = []
        for asid in (0, 3):
            config = SimConfig(
                policy_factory=DiscardPgc, asid=asid,
                warmup_instructions=1_000, sim_instructions=4_000,
            )
            results.append(simulate(self.make_workload(), config))
        # different frames, same access pattern: IPCs track closely
        assert results[0].ipc == pytest.approx(results[1].ipc, rel=0.05)

    def test_prefetcher_extra_storage_accepted(self):
        config = SimConfig(
            prefetcher="berti", policy_factory=DiscardPgc,
            prefetcher_extra_storage=1475,
            warmup_instructions=1_000, sim_instructions=4_000,
        )
        assert simulate(self.make_workload(), config).instructions > 0
