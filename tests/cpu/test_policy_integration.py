"""End-to-end policy integration properties on randomized short workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DiscardPtw, make_dripper, make_ppf, make_ppf_dthr
from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads.patterns import Gather, PageTiled, Stream, Strided
from repro.workloads.synthetic import SyntheticWorkload

PATTERNS = (
    lambda: Stream(0, stride_lines=1, footprint_pages=512),
    lambda: Strided(0, stride_lines=40, footprint_pages=512),
    lambda: PageTiled(0, footprint_pages=512, burst_lines=48),
    lambda: Gather(0, footprint_pages=512),
)

POLICY_FACTORIES = {
    "permit": PermitPgc,
    "discard": DiscardPgc,
    "discard-ptw": DiscardPtw,
    "dripper": lambda: make_dripper("berti"),
    "ppf": make_ppf,
    "ppf+dthr": make_ppf_dthr,
}


def run(pattern_index: int, seed: int, policy_name: str):
    workload = SyntheticWorkload(
        f"pi-{pattern_index}-{seed}", "TEST", seed,
        [(PATTERNS[pattern_index], 1 << 30)],
        mean_gap=2.5,
    )
    config = SimConfig(
        prefetcher="berti",
        policy_factory=POLICY_FACTORIES[policy_name],
        warmup_instructions=2_000,
        sim_instructions=6_000,
    )
    return simulate(workload, config)


class TestEveryPolicyOnEveryPattern:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("pattern_index", range(len(PATTERNS)))
    def test_runs_and_accounts_consistently(self, policy_name, pattern_index):
        r = run(pattern_index, seed=3, policy_name=policy_name)
        assert r.ipc > 0
        assert r.pgc_useful + r.pgc_useless <= r.pgc_issued + 768
        if policy_name == "discard":
            assert r.pgc_issued == 0
            assert r.speculative_walks == 0
        if policy_name == "permit" and r.pgc_candidates:
            assert r.pgc_issued == r.pgc_candidates
        if policy_name == "discard-ptw":
            assert r.speculative_walks == 0

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_dripper_bounded_between_statics(self, pattern_index, seed):
        """DRIPPER's IPC stays within a band around the better static policy
        on single-pattern workloads (it cannot invent new behaviour)."""
        permit = run(pattern_index, seed, "permit")
        discard = run(pattern_index, seed, "discard")
        dripper = run(pattern_index, seed, "dripper")
        low = min(permit.ipc, discard.ipc)
        high = max(permit.ipc, discard.ipc)
        assert dripper.ipc >= low * 0.93
        assert dripper.ipc <= high * 1.07
