"""Property-based invariants of the core engine and end-to-end accounting."""

from hypothesis import given, settings, strategies as st

from repro.core.policies import DiscardPgc, PermitPgc
from repro.cpu.simulator import SimConfig, build_engine, simulate
from repro.prefetch.base import NoPrefetcher
from repro.workloads.patterns import Gather, Stream
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, STORE, TAKEN

record_strategy = st.tuples(
    st.integers(min_value=0x400000, max_value=0x400FFF),  # pc
    st.integers(min_value=0, max_value=(1 << 30) - 1),    # vaddr
    st.sampled_from([LOAD, STORE, LOAD | DEPENDS, LOAD | BRANCH | TAKEN, LOAD | BRANCH]),
    st.integers(min_value=0, max_value=12),               # gap
)


class TestEngineInvariants:
    @given(st.lists(record_strategy, min_size=1, max_size=120))
    @settings(max_examples=20, deadline=None)
    def test_clocks_monotone_and_consistent(self, records):
        engine = build_engine(SimConfig(policy_factory=DiscardPgc), prefetcher=NoPrefetcher())
        last_retire = 0.0
        for record in records:
            engine.step(*record)
            assert engine.retire_t >= last_retire
            last_retire = engine.retire_t
        assert engine.instructions == sum(1 + r[3] for r in records)
        assert engine.retire_t >= engine.instructions / (6 * 2)  # width bound

    @given(st.lists(record_strategy, min_size=1, max_size=120))
    @settings(max_examples=20, deadline=None)
    def test_ipc_never_exceeds_width(self, records):
        engine = build_engine(SimConfig(policy_factory=DiscardPgc), prefetcher=NoPrefetcher())
        for record in records:
            engine.step(*record)
        ipc = engine.instructions / engine.retire_t
        assert ipc <= 6.0 + 1e-9

    @given(st.lists(record_strategy, min_size=1, max_size=100))
    @settings(max_examples=15, deadline=None)
    def test_same_trace_same_timeline(self, records):
        def run():
            engine = build_engine(SimConfig(policy_factory=DiscardPgc), prefetcher=NoPrefetcher())
            for record in records:
                engine.step(*record)
            return engine.retire_t

        assert run() == run()


class TestAccountingInvariants:
    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=6, deadline=None)
    def test_pgc_counters_conserve(self, seed):
        workload = SyntheticWorkload(
            f"inv{seed}", "TEST", seed,
            [
                (lambda: Stream(0, stride_lines=1, footprint_pages=256), 4_000),
                (lambda: Gather(1, footprint_pages=256), 4_000),
            ],
            mean_gap=2.0,
        )
        config = SimConfig(
            prefetcher="berti", policy_factory=PermitPgc,
            warmup_instructions=2_000, sim_instructions=8_000,
        )
        r = simulate(workload, config)
        assert r.pgc_issued + r.pgc_discarded <= r.pgc_candidates + 1
        # prefetches filled during warm-up may resolve (hit / evict unused)
        # inside the measured window, so the outcome counts can exceed the
        # window's fills by at most the L1D's capacity in blocks
        l1d_blocks = 48 * 1024 // 64
        assert r.pgc_useful + r.pgc_useless <= r.pgc_issued + l1d_blocks
        assert r.prefetch_useful + r.prefetch_useless <= r.prefetch_fills + l1d_blocks
        assert r.dram_reads >= 0 and r.cycles > 0
