"""Hashed perceptron branch predictor."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.branch import HashedPerceptronBranchPredictor


def run_outcomes(bp, outcomes, pc=0x400):
    correct = 0
    for taken in outcomes:
        correct += bp.predict_and_train(pc, taken)
    return correct / len(outcomes)


class TestLearning:
    def test_always_taken_learned(self):
        bp = HashedPerceptronBranchPredictor()
        accuracy = run_outcomes(bp, [True] * 500)
        assert accuracy > 0.95

    def test_always_not_taken_learned(self):
        bp = HashedPerceptronBranchPredictor()
        accuracy = run_outcomes(bp, [False] * 500)
        assert accuracy > 0.95

    def test_loop_pattern_learned_via_history(self):
        """taken^(k-1), not-taken — periodic; history tables crack it."""
        bp = HashedPerceptronBranchPredictor()
        outcomes = ([True] * 7 + [False]) * 200
        run_outcomes(bp, outcomes[:800])
        late = run_outcomes(bp, outcomes[800:])
        assert late > 0.9

    def test_random_branches_near_chance(self):
        bp = HashedPerceptronBranchPredictor()
        rng = random.Random(7)
        outcomes = [rng.random() < 0.5 for _ in range(3000)]
        accuracy = run_outcomes(bp, outcomes)
        assert 0.4 < accuracy < 0.62

    def test_biased_branches_learn_bias(self):
        bp = HashedPerceptronBranchPredictor()
        rng = random.Random(3)
        outcomes = [rng.random() < 0.9 for _ in range(2000)]
        accuracy = run_outcomes(bp, outcomes)
        assert accuracy > 0.82

    def test_distinct_pcs_distinct_behaviour(self):
        bp = HashedPerceptronBranchPredictor()
        for _ in range(300):
            bp.predict_and_train(0x100, True)
            bp.predict_and_train(0x200, False)
        base = bp.mispredictions
        for _ in range(50):
            bp.predict_and_train(0x100, True)
            bp.predict_and_train(0x200, False)
        assert bp.mispredictions - base <= 2


class TestBookkeeping:
    def test_counters(self):
        bp = HashedPerceptronBranchPredictor()
        run_outcomes(bp, [True, False, True])
        assert bp.predictions == 3
        assert 0 <= bp.mispredictions <= 3
        assert 0.0 <= bp.mispredict_rate <= 1.0

    def test_snapshot(self):
        bp = HashedPerceptronBranchPredictor()
        run_outcomes(bp, [True] * 10)
        bp.snapshot()
        run_outcomes(bp, [True] * 5)
        assert bp.measured_predictions == 5

    def test_rejects_bad_table_size(self):
        with pytest.raises(ValueError):
            HashedPerceptronBranchPredictor(table_entries=100)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=25)
    def test_weights_stay_bounded(self, outcomes):
        bp = HashedPerceptronBranchPredictor(table_entries=64, weight_bits=4)
        run_outcomes(bp, outcomes)
        for table in bp.tables:
            assert all(bp.weight_lo <= w <= bp.weight_hi for w in table)


class TestEngineIntegration:
    def test_loop_profile_beats_random_profile(self):
        from repro.core.policies import DiscardPgc
        from repro.cpu.simulator import SimConfig, simulate
        from repro.workloads.patterns import Stream
        from repro.workloads.synthetic import SyntheticWorkload

        def workload(profile):
            # cache-resident footprint: both traces hit the L1D after warm-up,
            # so the IPC gap isolates the branch penalty instead of riding on
            # incidental memory-timing differences between the two traces
            return SyntheticWorkload(
                f"bw-{profile[0]}", "TEST", 3,
                [(lambda: Stream(0, footprint_pages=8), 1 << 30)],
                branch_profile=profile,
            )

        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=2_000, sim_instructions=8_000)
        loop = simulate(workload(("loop", 16)), config)
        noisy = simulate(workload(("biased", 0.55)), config)
        assert loop.branches > 0 and noisy.branches > 0
        assert loop.branch_mispredict_rate < 0.05
        assert noisy.branch_mispredict_rate > 0.2
        assert loop.ipc > noisy.ipc

    def test_legacy_mispredict_flag_still_works(self):
        from repro.core.policies import DiscardPgc
        from repro.cpu.simulator import SimConfig, simulate
        from repro.workloads.patterns import Stream
        from repro.workloads.synthetic import SyntheticWorkload

        w = SyntheticWorkload(
            "legacy", "TEST", 3,
            [(lambda: Stream(0, footprint_pages=64), 1 << 30)],
            mispredict_rate=0.2,
        )
        config = SimConfig(policy_factory=DiscardPgc, warmup_instructions=2_000, sim_instructions=6_000)
        r = simulate(w, config)
        assert r.branches == 0  # no perceptron-predicted branches in the trace
