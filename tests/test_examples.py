"""Example scripts: importable, documented, runnable shape."""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


class TestExampleHygiene:
    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_parses_and_has_main_guard(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_docstring_has_usage_line(self, path):
        doc = ast.get_docstring(ast.parse(path.read_text()))
        assert "Usage" in doc, f"{path.name} docstring lacks a Usage section"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_imports_resolve(self, path):
        """Compile and execute only the import statements of each example."""
        tree = ast.parse(path.read_text())
        imports = [node for node in tree.body if isinstance(node, (ast.Import, ast.ImportFrom))]
        module = ast.Module(body=imports, type_ignores=[])
        exec(compile(module, str(path), "exec"), {})  # noqa: S102

    def test_quickstart_is_first_example_in_readme(self):
        readme = (Path(__file__).resolve().parent.parent / "README.md").read_text()
        for path in EXAMPLES:
            assert path.name in readme, f"{path.name} not mentioned in README"
