"""DRAM latency + bandwidth model."""

import pytest

from repro.mem.dram import Dram
from repro.params import DramParams


def make_dram(channels=2, latency=100, transfer=8):
    return Dram(DramParams(access_latency=latency, transfer_cycles=transfer, channels=channels))


class TestReads:
    def test_idle_read_costs_access_latency(self):
        d = make_dram()
        assert d.read(0, 0.0) == 100.0

    def test_back_to_back_reads_queue(self):
        d = make_dram(channels=1)
        d.read(0, 0.0)
        assert d.read(1, 0.0) == 108.0  # waits one transfer slot

    def test_channels_independent(self):
        d = make_dram(channels=2)
        d.read(0, 0.0)  # channel 0
        assert d.read(1, 0.0) == 100.0  # channel 1, no queueing

    def test_queue_drains(self):
        d = make_dram(channels=1)
        d.read(0, 0.0)
        assert d.read(1, 50.0) == 100.0

    def test_deep_queue_accumulates(self):
        d = make_dram(channels=1, transfer=10)
        for k in range(5):
            d.read(0, 0.0)
        assert d.read(0, 0.0) == 150.0  # behind 5 transfers


class TestWrites:
    def test_writes_consume_bandwidth(self):
        d = make_dram(channels=1)
        d.write(0, 0.0)
        assert d.read(1, 0.0) == 108.0

    def test_counters(self):
        d = make_dram()
        d.read(0, 0.0)
        d.write(1, 0.0)
        d.write(3, 0.0)
        assert d.reads == 1
        assert d.writes == 2

    def test_snapshot(self):
        d = make_dram()
        d.read(0, 0.0)
        d.snapshot()
        d.read(0, 1.0)
        assert d.measured_reads == 1
        assert d.measured_writes == 0


class TestValidation:
    def test_rejects_non_power_of_two_channels(self):
        with pytest.raises(ValueError):
            Dram(DramParams(channels=3))


class TestRowBuffer:
    def make(self):
        return Dram(DramParams(
            access_latency=100, transfer_cycles=8, channels=2,
            row_buffer=True, row_hit_latency=60, lines_per_row=128,
        ))

    def test_first_access_is_row_miss(self):
        d = self.make()
        assert d.read(0, 0.0) == 100.0
        assert d.row_misses == 1

    def test_same_row_hits(self):
        d = self.make()
        d.read(0, 0.0)
        assert d.read(2, 1000.0) == 60.0  # same channel, same row
        assert d.row_hits == 1

    def test_far_line_misses_row(self):
        d = self.make()
        d.read(0, 0.0)
        assert d.read(1 << 12, 1000.0) == 100.0

    def test_rejects_bad_bank_count(self):
        with pytest.raises(ValueError):
            Dram(DramParams(row_buffer=True, banks_per_channel=3))

    def test_streaming_mostly_row_hits(self):
        d = self.make()
        t = 0.0
        for line in range(512):
            d.read(line, t)
            t += 100.0
        assert d.row_hits > d.row_misses * 3
