"""Memory hierarchy: access paths, fills, timeliness, writeback chain."""

from repro.mem.hierarchy import MemoryHierarchy
from repro.params import DEFAULT_PARAMS


def make_hierarchy():
    return MemoryHierarchy(DEFAULT_PARAMS)


class TestLoadPath:
    def test_cold_load_misses_all_levels(self):
        h = make_hierarchy()
        latency, hit = h.load(0x1000, 0.0)
        assert not hit
        # at least L1D + L2 + LLC + DRAM latencies
        assert latency >= 5 + 10 + 20 + DEFAULT_PARAMS.dram.access_latency

    def test_cold_load_fills_all_levels(self):
        h = make_hierarchy()
        h.load(0x1000, 0.0)
        line = 0x1000 >> 6
        assert h.l1d.probe(line) is not None
        assert h.l2c.probe(line) is not None
        assert h.llc.probe(line) is not None

    def test_warm_load_hits_l1d(self):
        h = make_hierarchy()
        h.load(0x1000, 0.0)
        latency, hit = h.load(0x1000, 10_000.0)
        assert hit
        assert latency == 5.0

    def test_l2_hit_cheaper_than_dram(self):
        h = make_hierarchy()
        h.load(0x1000, 0.0)
        h.l1d.invalidate(0x1000 >> 6)
        latency, hit = h.load(0x1000, 10_000.0)
        assert not hit
        assert latency == 5 + 10  # L1D lookup + L2 hit

    def test_demand_merge_into_outstanding_miss(self):
        h = make_hierarchy()
        lat1, _ = h.load(0x1000, 0.0)
        h.l1d.invalidate(0x1000 >> 6)  # force re-lookup while still in MSHR
        lat2, hit = h.load(0x1000, 1.0)
        assert not hit
        assert lat2 <= lat1  # merged: waits only the residual


class TestMergedLatencyFloor:
    """Merging into an almost-complete fill still costs a tag lookup.

    The pre-fix paths returned the bare residual `merged - t`, which
    approached zero as the fill neared completion — cheaper than an L1 hit.
    """

    def test_load_merge_clamped_to_l1d_latency(self):
        h = make_hierarchy()
        ready, _ = h.load(0x1000, 0.0)
        h.l1d.invalidate(0x1000 >> 6)
        latency, hit = h.load(0x1000, ready - 1.0)  # residual of 1 cycle
        assert not hit
        assert latency == DEFAULT_PARAMS.l1d.latency

    def test_ifetch_merge_clamped_to_l1i_latency(self):
        h = make_hierarchy()
        ready = h.ifetch(0x400000, 0.0)
        h.l1i.invalidate(0x400000 >> 6)
        assert h.ifetch(0x400000, ready - 1.0) == DEFAULT_PARAMS.l1i.latency

    def test_l2_merge_clamped_to_l2_latency(self):
        h = make_hierarchy()
        ready = h.ptw_read(0x5000, 0.0, speculative=False)
        h.l2c.invalidate(0x5000 >> 6)
        assert h.ptw_read(0x5000, ready - 1.0, speculative=False) == DEFAULT_PARAMS.l2c.latency

    def test_llc_merge_clamped_to_llc_latency(self):
        h = make_hierarchy()
        line = 0x7000 >> 6
        ready = h._read_llc(line, 0.0, demand=True)
        h.llc.invalidate(line)
        assert h._read_llc(line, ready - 1.0, demand=True) == DEFAULT_PARAMS.llc.latency


class TestPrefetchPath:
    def test_prefetch_fill_sets_pcb(self):
        h = make_hierarchy()
        ready = h.prefetch_l1d(0x1000, 0.0, pcb=True)
        assert ready is not None
        block = h.l1d.probe(0x1000 >> 6)
        assert block.pcb and block.prefetched

    def test_prefetch_dropped_when_resident(self):
        h = make_hierarchy()
        h.load(0x1000, 0.0)
        assert h.prefetch_l1d(0x1000, 1.0) is None

    def test_prefetch_dropped_when_in_flight(self):
        h = make_hierarchy()
        h.prefetch_l1d(0x1000, 0.0)
        h.l1d.invalidate(0x1000 >> 6)
        assert h.prefetch_l1d(0x1000, 1.0) is None

    def test_late_prefetch_pays_residual(self):
        h = make_hierarchy()
        ready = h.prefetch_l1d(0x1000, 0.0, pcb=True)
        latency, hit = h.load(0x1000, 10.0)
        assert hit
        assert latency == ready - 10.0
        assert latency > 5

    def test_timely_prefetch_full_hit(self):
        h = make_hierarchy()
        h.prefetch_l1d(0x1000, 0.0)
        latency, hit = h.load(0x1000, 10_000.0)
        assert hit
        assert latency == 5.0
        assert h.l1d.prefetch_late == 0

    def test_late_prefetch_counted(self):
        h = make_hierarchy()
        h.prefetch_l1d(0x1000, 0.0)
        h.load(0x1000, 10.0)
        assert h.l1d.prefetch_late == 1

    def test_l2_prefetch_fills_l2_not_l1(self):
        h = make_hierarchy()
        h.prefetch_l2(0x1000, 0.0)
        line = 0x1000 >> 6
        assert h.l1d.probe(line) is None
        assert h.l2c.probe(line) is not None


class TestPtwPath:
    def test_ptw_read_fills_l2_and_llc_not_l1(self):
        h = make_hierarchy()
        h.ptw_read(0x5000, 0.0, speculative=False)
        line = 0x5000 >> 6
        assert h.l2c.probe(line) is not None
        assert h.llc.probe(line) is not None
        assert h.l1d.probe(line) is None

    def test_warm_ptw_read_is_cheap(self):
        h = make_hierarchy()
        cold = h.ptw_read(0x5000, 0.0, speculative=False)
        warm = h.ptw_read(0x5000, 10_000.0, speculative=False)
        assert warm == 10.0
        assert cold > warm


class TestIfetchPath:
    def test_ifetch_fills_l1i_not_l1d(self):
        h = make_hierarchy()
        h.ifetch(0x400000, 0.0)
        line = 0x400000 >> 6
        assert h.l1i.probe(line) is not None
        assert h.l1d.probe(line) is None

    def test_l1i_prefetch(self):
        h = make_hierarchy()
        h.prefetch_l1i(0x400040, 0.0)
        block = h.l1i.probe(0x400040 >> 6)
        assert block is not None and block.prefetched


class TestWritebackChain:
    def test_store_marks_dirty(self):
        h = make_hierarchy()
        h.store(0x1000, 0.0)
        assert h.l1d.probe(0x1000 >> 6).dirty

    def test_dirty_l1_eviction_lands_in_l2(self):
        h = make_hierarchy()
        h.store(0x1000, 0.0)
        line = 0x1000 >> 6
        h.l2c.invalidate(line)
        # force eviction: fill the same L1D set beyond capacity
        ways = DEFAULT_PARAMS.l1d.ways
        sets = DEFAULT_PARAMS.l1d.sets
        for k in range(1, ways + 1):
            h.l1d.fill(line + k * sets, 10.0, 10.0)
        assert h.l1d.probe(line) is None
        assert h.l2c.probe(line) is not None
        assert h.l2c.probe(line).dirty

    def test_dram_write_traffic_from_llc_eviction(self):
        h = make_hierarchy()
        h.store(0x1000, 0.0)
        line = 0x1000 >> 6
        block = h.llc.probe(line)
        block.dirty = True
        sets = DEFAULT_PARAMS.llc.sets
        for k in range(1, DEFAULT_PARAMS.llc.ways + 1):
            h.llc.fill(line + k * sets, 10.0, 10.0)
        assert h.dram.writes >= 1


class TestSharedLlc:
    def test_two_hierarchies_share_llc(self):
        from repro.mem.cache import Cache
        from repro.mem.dram import Dram

        dram = Dram(DEFAULT_PARAMS.dram)
        llc = Cache(DEFAULT_PARAMS.llc, writeback=dram.write)
        h1 = MemoryHierarchy(DEFAULT_PARAMS, shared_llc=llc, shared_dram=dram)
        h2 = MemoryHierarchy(DEFAULT_PARAMS, shared_llc=llc, shared_dram=dram)
        h1.load(0x1000, 0.0)
        latency, hit = h2.load(0x1000, 10_000.0)
        assert not hit  # private L1/L2 miss...
        assert latency <= 5 + 10 + 20  # ...but the shared LLC hits


class TestPerCoreLlcView:
    def test_core_stats_track_own_demand_only(self):
        from repro.mem.cache import Cache
        from repro.mem.dram import Dram

        dram = Dram(DEFAULT_PARAMS.dram)
        llc = Cache(DEFAULT_PARAMS.llc, writeback=dram.write)
        a = MemoryHierarchy(DEFAULT_PARAMS, shared_llc=llc, shared_dram=dram)
        b = MemoryHierarchy(DEFAULT_PARAMS, shared_llc=llc, shared_dram=dram)
        for i in range(10):
            a.load(0x100000 + i * 0x1000, float(i))
        b.load(0x900000, 100.0)
        assert a.llc_core_stats.accesses == 10
        assert b.llc_core_stats.accesses == 1
        assert llc.stats.accesses == 11

    def test_prefetch_traffic_not_in_core_demand_view(self):
        h = MemoryHierarchy(DEFAULT_PARAMS)
        h.prefetch_l1d(0x1000, 0.0)
        assert h.llc_core_stats.accesses == 0
        h.load(0x2000, 1.0)
        assert h.llc_core_stats.accesses == 1
