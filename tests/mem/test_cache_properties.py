"""Additional property-based cache invariants (stateful-style sequences)."""

from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache
from repro.params import CacheParams

ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "pfill", "invalidate"]),
        st.integers(min_value=0, max_value=127),
    ),
    max_size=300,
)


def run_sequence(cache: Cache, sequence) -> None:
    t = 0.0
    for op, line in sequence:
        if op == "lookup":
            cache.lookup(line, t)
        elif op == "fill":
            cache.fill(line, t, t)
        elif op == "pfill":
            cache.fill(line, t, t + 100.0, prefetched=True, pcb=bool(line & 1))
        else:
            cache.invalidate(line)
        t += 1.0


class TestSequenceInvariants:
    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_occupancy_and_stats_consistent(self, sequence):
        cache = Cache(CacheParams("t", 8 * 2 * 64, 2, 1, 4))
        run_sequence(cache, sequence)
        assert cache.occupancy() <= 16
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
        assert cache.demand_stats.accesses <= cache.stats.accesses

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_usefulness_never_exceeds_fills(self, sequence):
        cache = Cache(CacheParams("t", 8 * 2 * 64, 2, 1, 4))
        run_sequence(cache, sequence)
        cache.finalize()
        assert cache.prefetch_useful + cache.prefetch_useless <= cache.prefetch_fills
        assert cache.pgc_useful + cache.pgc_useless <= cache.pgc_fills

    @given(ops)
    @settings(max_examples=25, deadline=None)
    def test_fill_then_probe_always_resident(self, sequence):
        cache = Cache(CacheParams("t", 8 * 2 * 64, 2, 1, 4))
        t = 0.0
        for op, line in sequence:
            if op in ("fill", "pfill"):
                cache.fill(line, t, t)
                assert cache.probe(line) is not None
            elif op == "lookup":
                cache.lookup(line, t)
            else:
                cache.invalidate(line)
                assert cache.probe(line) is None
            t += 1.0
