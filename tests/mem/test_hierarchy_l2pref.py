"""L2 prefetch path and miscellaneous hierarchy behaviour."""

from repro.mem.hierarchy import MemoryHierarchy
from repro.params import DEFAULT_PARAMS


def make():
    return MemoryHierarchy(DEFAULT_PARAMS)


class TestL2PrefetchPath:
    def test_dropped_when_l2_resident(self):
        h = make()
        h.load(0x1000, 0.0)
        assert h.prefetch_l2(0x1000, 10.0) is None

    def test_dropped_when_in_flight(self):
        h = make()
        h.prefetch_l2(0x1000, 0.0)
        h.l2c.invalidate(0x1000 >> 6)
        assert h.prefetch_l2(0x1000, 1.0) is None

    def test_l2_prefetch_hits_llc_cheaply(self):
        h = make()
        h.load(0x1000, 0.0)           # fills all levels
        h.l2c.invalidate(0x1000 >> 6)
        ready = h.prefetch_l2(0x1000, 10_000.0)
        assert ready is not None
        assert ready - 10_000.0 <= 10 + 20 + 5  # L2 + LLC latencies only

    def test_demand_after_l2_prefetch_misses_l1_hits_l2(self):
        h = make()
        h.prefetch_l2(0x1000, 0.0)
        latency, hit = h.load(0x1000, 10_000.0)
        assert not hit
        assert latency == 5 + 10


class TestPrefetchUsefulnessAtL2:
    def test_l2_prefetch_usefulness_tracked(self):
        h = make()
        h.prefetch_l2(0x1000, 0.0)
        h.l1d.invalidate(0x1000 >> 6)
        h.load(0x1000, 10_000.0)  # demand L2 access hits the prefetched block
        assert h.l2c.prefetch_useful == 1


class TestMshrPressureVisibility:
    def test_in_flight_count_rises_with_misses(self):
        h = make()
        for i in range(6):
            h.load(0x100000 * (i + 1), 0.0)
        assert h.l1d.in_flight_misses(0.0) == 6

    def test_in_flight_count_drops_after_fills_complete(self):
        h = make()
        for i in range(6):
            h.load(0x100000 * (i + 1), 0.0)
        assert h.l1d.in_flight_misses(1e9) == 0
