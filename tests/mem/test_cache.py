"""Cache model: residency, LRU, MSHRs, PCB events, usefulness accounting."""

from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache
from repro.params import CacheParams


def small_cache(sets=4, ways=2, mshr=4, writeback=None) -> Cache:
    params = CacheParams("test", sets * ways * 64, ways, 5, mshr)
    return Cache(params, writeback=writeback)


class Listener:
    def __init__(self):
        self.hits: list[int] = []
        self.evictions: list[int] = []

    def on_pcb_hit(self, line):
        self.hits.append(line)

    def on_pcb_evict_unused(self, line):
        self.evictions.append(line)


class TestResidency:
    def test_miss_then_hit_after_fill(self):
        c = small_cache()
        assert c.lookup(1, 0.0) is None
        c.fill(1, 0.0, 5.0)
        assert c.lookup(1, 1.0) is not None

    def test_probe_does_not_perturb(self):
        c = small_cache()
        c.probe(1)
        assert c.stats.accesses == 0

    def test_lru_eviction_within_set(self):
        c = small_cache(sets=4, ways=2)
        a, b, d = 0, 4, 8  # same set
        c.fill(a, 0.0, 0.0)
        c.fill(b, 0.0, 0.0)
        c.lookup(a, 1.0)  # b becomes LRU
        c.fill(d, 2.0, 2.0)
        assert c.probe(a) is not None
        assert c.probe(b) is None

    def test_refill_keeps_earliest_ready(self):
        c = small_cache()
        c.fill(1, 0.0, 100.0)
        c.fill(1, 0.0, 50.0)
        assert c.probe(1).ready == 50.0
        c.fill(1, 0.0, 200.0)
        assert c.probe(1).ready == 50.0

    def test_invalidate(self):
        c = small_cache()
        c.fill(1, 0.0, 0.0)
        c.invalidate(1)
        assert c.probe(1) is None

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = small_cache(sets=4, ways=2)
        for line in lines:
            c.fill(line, 0.0, 0.0)
            assert c.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_most_recent_fill_always_resident(self, lines):
        c = small_cache(sets=4, ways=2)
        for line in lines:
            c.fill(line, 0.0, 0.0)
        assert c.probe(lines[-1]) is not None


class TestMshr:
    def test_merge_returns_ready_time(self):
        c = small_cache()
        c.register_miss(1, 0.0, 100.0)
        assert c.outstanding_ready(1, 50.0) == 100.0

    def test_merge_expires(self):
        c = small_cache()
        c.register_miss(1, 0.0, 100.0)
        assert c.outstanding_ready(1, 150.0) is None

    def test_no_delay_under_capacity(self):
        c = small_cache(mshr=4)
        for line in range(3):
            c.register_miss(line, 0.0, 100.0)
        assert c.mshr_delay(1.0) == 0.0

    def test_delay_when_full(self):
        c = small_cache(mshr=2)
        c.register_miss(1, 0.0, 100.0)
        c.register_miss(2, 0.0, 120.0)
        assert c.mshr_delay(10.0) == 90.0  # waits for the 100-cycle entry

    def test_full_mshr_drains_over_time(self):
        c = small_cache(mshr=2)
        c.register_miss(1, 0.0, 100.0)
        c.register_miss(2, 0.0, 120.0)
        assert c.mshr_delay(130.0) == 0.0

    def test_in_flight_count(self):
        c = small_cache(mshr=8)
        for line in range(5):
            c.register_miss(line, 0.0, 100.0)
        assert c.in_flight_misses(50.0) == 5

    def test_in_flight_excludes_completed_fills(self):
        # the pre-fix implementation reported the raw heap length, which
        # kept counting entries whose fill had already completed
        c = small_cache(mshr=8)
        c.register_miss(1, 0.0, 100.0)
        c.register_miss(2, 0.0, 300.0)
        assert c.in_flight_misses(200.0) == 1
        assert c.in_flight_misses(300.0) == 0

    def test_in_flight_dedupes_reregistered_lines(self):
        c = small_cache(mshr=8)
        c.register_miss(1, 0.0, 100.0)
        assert c.outstanding_ready(1, 150.0) is None  # expires the first fetch
        c.register_miss(1, 150.0, 400.0)
        assert c.in_flight_misses(200.0) == 1



class TestPcbEvents:
    def test_first_demand_hit_fires_listener_once(self):
        c = small_cache()
        c.listener = listener = Listener()
        c.fill(1, 0.0, 0.0, prefetched=True, pcb=True)
        c.lookup(1, 1.0)
        c.lookup(1, 2.0)
        assert listener.hits == [1]

    def test_unused_pcb_eviction_fires_listener(self):
        c = small_cache(sets=4, ways=1)
        c.listener = listener = Listener()
        c.fill(0, 0.0, 0.0, prefetched=True, pcb=True)
        c.fill(4, 1.0, 1.0)  # same set, evicts the PCB block
        assert listener.evictions == [0]

    def test_used_pcb_eviction_silent(self):
        c = small_cache(sets=4, ways=1)
        c.listener = listener = Listener()
        c.fill(0, 0.0, 0.0, prefetched=True, pcb=True)
        c.lookup(0, 1.0)
        c.fill(4, 2.0, 2.0)
        assert listener.evictions == []

    def test_non_pcb_prefetch_does_not_fire_listener(self):
        c = small_cache(sets=4, ways=1)
        c.listener = listener = Listener()
        c.fill(0, 0.0, 0.0, prefetched=True, pcb=False)
        c.fill(4, 1.0, 1.0)
        assert listener.evictions == []
        assert c.prefetch_useless == 1


class TestUsefulnessAccounting:
    def test_useful_counted_on_first_hit(self):
        c = small_cache()
        c.fill(1, 0.0, 0.0, prefetched=True, pcb=True)
        c.lookup(1, 1.0)
        assert c.prefetch_useful == 1
        assert c.pgc_useful == 1

    def test_useless_counted_on_eviction(self):
        c = small_cache(sets=4, ways=1)
        c.fill(0, 0.0, 0.0, prefetched=True, pcb=True)
        c.fill(4, 1.0, 1.0)
        assert c.prefetch_useless == 1
        assert c.pgc_useless == 1

    def test_finalize_counts_resident_unused(self):
        c = small_cache()
        c.fill(1, 0.0, 0.0, prefetched=True, pcb=True)
        c.fill(2, 0.0, 0.0, prefetched=True)
        c.finalize()
        assert c.prefetch_useless == 2
        assert c.pgc_useless == 1

    def test_finalize_idempotent(self):
        c = small_cache()
        c.fill(1, 0.0, 0.0, prefetched=True)
        c.finalize()
        c.finalize()
        assert c.prefetch_useless == 1

    def test_measured_prefetch_respects_snapshot(self):
        c = small_cache()
        c.fill(1, 0.0, 0.0, prefetched=True)
        c.snapshot()
        c.fill(2, 0.0, 0.0, prefetched=True)
        assert c.measured_prefetch["fills"] == 1


class TestWriteback:
    def test_dirty_eviction_invokes_callback(self):
        written = []
        c = small_cache(sets=4, ways=1, writeback=lambda line, t: written.append(line))
        c.fill(0, 0.0, 0.0)
        c.probe(0).dirty = True
        c.fill(4, 1.0, 1.0)
        assert written == [0]

    def test_clean_eviction_no_callback(self):
        written = []
        c = small_cache(sets=4, ways=1, writeback=lambda line, t: written.append(line))
        c.fill(0, 0.0, 0.0)
        c.fill(4, 1.0, 1.0)
        assert written == []


class TestDemandStats:
    def test_prefetch_lookup_not_in_demand_stats(self):
        c = small_cache()
        c.lookup(1, 0.0, demand=False)
        assert c.stats.accesses == 1
        assert c.demand_stats.accesses == 0
