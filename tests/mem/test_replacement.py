"""Replacement policies: LRU, prefetch-aware LRU, SRRIP/BRRIP, random."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import Block, Cache
from repro.mem.replacement import (
    BrripPolicy,
    LruPolicy,
    PrefetchAwareLruPolicy,
    RandomPolicy,
    SrripPolicy,
    make_replacement_policy,
)
from repro.params import CacheParams


def blocks(n):
    return {i: Block(i, 0, 0.0, False, False) for i in range(n)}


class TestFactory:
    def test_known_names(self):
        for name, cls in (
            ("lru", LruPolicy), ("pa-lru", PrefetchAwareLruPolicy),
            ("srrip", SrripPolicy), ("brrip", BrripPolicy), ("random", RandomPolicy),
        ):
            assert isinstance(make_replacement_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_replacement_policy("LRU"), LruPolicy)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_replacement_policy("belady")


class TestLru:
    def test_victim_is_least_recent(self):
        p = LruPolicy()
        bs = blocks(3)
        for i in (0, 1, 2):
            p.on_fill(bs[i], False)
        p.on_hit(bs[0])
        assert p.victim(bs) == 1

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_most_recent_never_victim(self, touches):
        p = LruPolicy()
        bs = blocks(4)
        for b in bs.values():
            p.on_fill(b, False)
        for i in touches:
            p.on_hit(bs[i])
        assert p.victim(bs) != touches[-1]


class TestPrefetchAwareLru:
    def test_prefetched_block_evicted_first(self):
        p = PrefetchAwareLruPolicy()
        bs = blocks(3)
        p.on_fill(bs[0], False)
        p.on_fill(bs[1], True)  # prefetched, inserted at LRU end
        p.on_fill(bs[2], False)
        assert p.victim(bs) == 1

    def test_hit_promotes_prefetched_block(self):
        p = PrefetchAwareLruPolicy()
        bs = blocks(3)
        p.on_fill(bs[0], False)
        p.on_fill(bs[1], True)
        p.on_fill(bs[2], False)
        p.on_hit(bs[1])
        assert p.victim(bs) == 0


class TestSrrip:
    def test_hit_protects(self):
        p = SrripPolicy()
        bs = blocks(2)
        p.on_fill(bs[0], False)
        p.on_fill(bs[1], False)
        p.on_hit(bs[0])
        assert p.victim(bs) == 1

    def test_always_terminates(self):
        p = SrripPolicy()
        bs = blocks(8)
        for b in bs.values():
            p.on_fill(b, False)
            p.on_hit(b)
        assert p.victim(bs) in bs


class TestBrrip:
    def test_most_fills_inserted_distant(self):
        p = BrripPolicy()
        bs = blocks(32)
        for b in bs.values():
            p.on_fill(b, False)
        distant = sum(1 for b in bs.values() if b.lru == 3)
        assert distant >= 30


class TestRandom:
    def test_deterministic_sequence(self):
        a, b = RandomPolicy(seed=5), RandomPolicy(seed=5)
        bs = blocks(8)
        assert [a.victim(bs) for _ in range(10)] == [b.victim(bs) for _ in range(10)]

    def test_victims_spread(self):
        p = RandomPolicy()
        bs = blocks(8)
        assert len({p.victim(bs) for _ in range(100)}) > 3


class TestCacheIntegration:
    def make_cache(self, replacement):
        params = CacheParams("t", 4 * 2 * 64, 2, 1, 4, replacement=replacement)
        return Cache(params)

    @pytest.mark.parametrize("policy", ["lru", "pa-lru", "srrip", "brrip", "random"])
    def test_cache_works_with_every_policy(self, policy):
        c = self.make_cache(policy)
        for i in range(50):
            c.lookup(i % 12, float(i))
            c.fill(i % 12, float(i), float(i))
        assert c.occupancy() <= 8

    def test_pa_lru_protects_demand_blocks(self):
        c = self.make_cache("pa-lru")
        c.fill(0, 0.0, 0.0)               # demand
        c.lookup(0, 0.5)
        c.fill(4, 1.0, 1.0, prefetched=True)   # same set, prefetched
        c.fill(8, 2.0, 2.0)               # forces an eviction
        assert c.probe(0) is not None
        assert c.probe(4) is None
