"""HitMissStats behaviour, including the warm-up snapshot semantics."""

from hypothesis import given, strategies as st

from repro.stats import HitMissStats


class TestRecording:
    def test_initial_state(self):
        s = HitMissStats()
        assert s.accesses == 0
        assert s.miss_rate == 0.0
        assert s.mpki(1000) == 0.0

    def test_hit_and_miss_counts(self):
        s = HitMissStats()
        s.record(True)
        s.record(False)
        s.record(False)
        assert s.accesses == 3
        assert s.hits == 1
        assert s.misses == 2

    def test_miss_rate(self):
        s = HitMissStats()
        for hit in (True, False, False, False):
            s.record(hit)
        assert s.miss_rate == 0.75

    def test_mpki(self):
        s = HitMissStats()
        for _ in range(5):
            s.record(False)
        assert s.mpki(1000) == 5.0
        assert s.mpki(0) == 0.0


class TestSnapshot:
    def test_snapshot_excludes_warmup(self):
        s = HitMissStats()
        for _ in range(10):
            s.record(False)
        s.snapshot()
        for _ in range(3):
            s.record(False)
        s.record(True)
        assert s.measured_accesses == 4
        assert s.measured_misses == 3
        assert s.measured_hits == 1
        assert s.miss_rate == 0.75

    def test_totals_still_cumulative(self):
        s = HitMissStats()
        s.record(False)
        s.snapshot()
        s.record(False)
        assert s.misses == 2
        assert s.measured_misses == 1

    def test_resnapshot_moves_the_boundary(self):
        s = HitMissStats()
        s.record(False)
        s.snapshot()
        s.record(False)
        s.record(True)
        s.snapshot()
        assert s.measured_accesses == 0
        assert s.measured_misses == 0
        s.record(False)
        assert s.measured_misses == 1
        assert s.misses == 3

    def test_mpki_uses_measured_misses_only(self):
        s = HitMissStats()
        for _ in range(7):
            s.record(False)
        s.snapshot()
        for _ in range(2):
            s.record(False)
        assert s.mpki(1000) == 2.0

    def test_snapshot_before_any_access_is_identity(self):
        s = HitMissStats()
        s.snapshot()
        s.record(False)
        assert s.measured_accesses == s.accesses == 1
        assert s.measured_misses == s.misses == 1

    @given(st.lists(st.booleans(), max_size=60), st.lists(st.booleans(), max_size=60))
    def test_measured_equals_post_snapshot_events(self, warmup, measured):
        s = HitMissStats()
        for hit in warmup:
            s.record(hit)
        s.snapshot()
        for hit in measured:
            s.record(hit)
        assert s.measured_accesses == len(measured)
        assert s.measured_hits == sum(measured)
        assert s.measured_misses == len(measured) - sum(measured)
