"""Span tracing: recording, shard flush/absorb, Chrome trace export."""

import json

from repro.obs.tracing import (
    Tracer,
    current_tracer,
    install_tracer,
    trace_span,
    write_chrome_trace,
)


class TestTracerSlot:
    def test_trace_span_is_a_noop_without_a_tracer(self):
        assert current_tracer() is None
        with trace_span("anything", workload="astar"):
            pass  # must not raise, must not record anywhere

    def test_install_returns_previous(self):
        t = Tracer()
        assert install_tracer(t) is None
        try:
            assert current_tracer() is t
        finally:
            assert install_tracer(None) is t

    def test_trace_span_records_on_installed_tracer(self):
        t = Tracer(role="parent")
        install_tracer(t)
        try:
            with trace_span("pack", category="pack", workload="astar"):
                pass
        finally:
            install_tracer(None)
        (event,) = t.chrome_events()[1:]  # [0] is process_name metadata
        assert event["name"] == "pack"
        assert event["ph"] == "X"
        assert event["args"]["workload"] == "astar"
        assert event["dur"] >= 1


class TestShardRoundTrip:
    def test_flush_empty_buffer_writes_nothing(self, tmp_path):
        t = Tracer()
        assert t.flush_shard(tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_flush_and_absorb_preserves_events_and_roles(self, tmp_path):
        worker = Tracer(role="worker")
        # simulate a genuinely distinct worker process (same-pid tests would
        # collapse both lanes onto one process_name entry)
        worker.pid = 99_999
        worker._roles = {worker.pid: "worker"}
        with worker.span("drive", workload="astar"):
            pass
        with worker.span("collect", workload="astar"):
            pass
        shard = worker.flush_shard(tmp_path)
        assert shard is not None and shard.name.startswith("spans-")
        assert len(worker) == 0  # buffer cleared

        parent = Tracer(role="parent")
        absorbed = parent.absorb_shards(tmp_path)
        assert absorbed == 2
        assert list(tmp_path.glob("spans-*.jsonl")) == []  # consumed
        names = [e["name"] for e in parent.chrome_events() if e["ph"] == "X"]
        assert names == ["drive", "collect"]
        # worker's pid appears as its own named process lane
        metadata = [e for e in parent.chrome_events() if e["ph"] == "M"]
        lanes = {e["args"]["name"] for e in metadata}
        assert any(name.startswith("repro-worker-") for name in lanes)
        assert any(name.startswith("repro-parent-") for name in lanes)

    def test_absorb_without_consume_keeps_shards(self, tmp_path):
        t = Tracer()
        with t.span("x"):
            pass
        t.flush_shard(tmp_path)
        parent = Tracer()
        assert parent.absorb_shards(tmp_path, consume=False) == 1
        assert len(list(tmp_path.glob("spans-*.jsonl"))) == 1

    def test_multiple_chunks_produce_sequenced_shards(self, tmp_path):
        t = Tracer()
        for _ in range(3):
            with t.span("chunk"):
                pass
            t.flush_shard(tmp_path)
        shards = sorted(p.name for p in tmp_path.glob("spans-*.jsonl"))
        assert len(shards) == 3
        assert shards == sorted(shards)


class TestChromeExport:
    def test_written_file_is_loadable_chrome_trace_json(self, tmp_path):
        t = Tracer(role="parent")
        with t.span("drive", workload="astar", mode="packed"):
            pass
        t.instant("cell-finish", index=0)
        out = tmp_path / "trace.json"
        count = t.write_chrome_trace(out)
        assert count == 2
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid"} <= set(e)

    def test_write_chrome_trace_counts_only_real_events(self, tmp_path):
        events = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {}},
            {"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
        ]
        assert write_chrome_trace(events, tmp_path / "t.json") == 1
