"""Probe / ScopedTimer behaviour."""

import time

from repro.obs.profiling import NULL_PROBE, Probe, ScopedTimer


class TestTimedWrapper:
    def test_counts_calls_and_accumulates_time(self):
        probe = Probe()
        fn = probe.timed("work", lambda x: x * 2)
        assert fn(3) == 6
        assert fn(4) == 8
        assert probe.counts["work"] == 2
        assert probe.totals["work"] >= 0.0

    def test_return_value_and_exceptions_pass_through(self):
        probe = Probe()

        def boom():
            raise RuntimeError("boom")

        wrapped = probe.timed("boom", boom)
        try:
            wrapped()
        except RuntimeError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("exception swallowed")
        # the failing call is still charged
        assert probe.counts["boom"] == 1

    def test_disabled_probe_returns_original_function(self):
        def fn():
            return 1

        assert NULL_PROBE.timed("x", fn) is fn
        assert NULL_PROBE.totals == {}


class TestScopedTimer:
    def test_times_a_block(self):
        probe = Probe()
        with probe.timer("sleep"):
            time.sleep(0.002)
        assert probe.totals["sleep"] >= 0.001
        assert probe.counts["sleep"] == 1

    def test_noop_when_disabled(self):
        with ScopedTimer(NULL_PROBE, "x"):
            pass
        assert "x" not in NULL_PROBE.totals

    def test_noop_without_probe(self):
        with ScopedTimer(None, "x"):
            pass  # must not raise


class TestBreakdown:
    def _loaded_probe(self):
        probe = Probe()
        probe.add("slow", 0.3, calls=10)
        probe.add("fast", 0.1, calls=1000)
        return probe

    def test_sorted_by_time_descending(self):
        bd = self._loaded_probe().breakdown()
        assert list(bd) == ["slow", "fast"]
        assert bd["fast"]["calls"] == 1000
        assert abs(bd["slow"]["us_per_call"] - 30_000) < 1e-6

    def test_format_includes_wall_share(self):
        text = self._loaded_probe().format_breakdown(wall_seconds=0.8)
        assert "profile breakdown" in text
        assert "slow" in text and "fast" in text
        assert "50%" in text  # 0.4s instrumented of 0.8s wall

    def test_format_empty(self):
        assert "no instrumented calls" in Probe().format_breakdown()

    def test_reset(self):
        probe = self._loaded_probe()
        probe.reset()
        assert probe.instrumented_seconds == 0.0
        assert probe.breakdown() == {}


class TestEngineIntegration:
    def test_profiled_run_covers_hot_paths_without_perturbing_results(self):
        from repro.core.dripper import make_dripper
        from repro.cpu.simulator import SimConfig, simulate
        from repro.obs import Observability
        from repro.workloads import by_name

        config = SimConfig(
            prefetcher="berti",
            policy_factory=lambda: make_dripper("berti"),
            warmup_instructions=1_000,
            sim_instructions=3_000,
        )
        plain = simulate(by_name("astar"), config)
        probe = Probe()
        profiled = simulate(by_name("astar"), config, obs=Observability(probe=probe))
        # instrumentation observes, never perturbs, the simulated machine
        assert profiled.ipc == plain.ipc
        assert profiled.l1d_mpki == plain.l1d_mpki
        assert set(probe.totals) >= {"cache.load", "cache.ifetch", "prefetcher",
                                     "policy.decide", "page_walk"}
        assert probe.counts["cache.load"] > 0
        assert probe.counts["page_walk"] > 0
