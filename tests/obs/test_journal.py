"""RunJournal: record schema, JSON round-trip, runner/sweep integration."""

import json

from repro.core.dripper import make_dripper
from repro.cpu.simulator import SimConfig, simulate
from repro.experiments.runner import RunSpec, run_many, run_one
from repro.obs import Observability, RunJournal, read_journal
from repro.obs.journal import build_run_record, describe_config, host_info
from repro.workloads import by_name

_FAST = dict(warmup_instructions=1_000, sim_instructions=3_000)


def _config(**kw):
    return SimConfig(prefetcher="berti", policy_factory=lambda: make_dripper("berti"),
                     **{**_FAST, **kw})


class TestRecordSchema:
    def test_simulate_emits_full_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(path))
        workload = by_name("astar")
        result = simulate(workload, _config(), obs=obs)
        obs.close()

        (rec,) = read_journal(path)
        assert rec["schema"] == 1
        assert rec["workload"]["name"] == "astar"
        assert rec["workload"]["seed"] is not None
        assert rec["config"]["policy"] == "dripper[berti]"
        assert rec["config"]["warmup_instructions"] == 1_000
        # full hardware parameters are embedded
        assert "stlb" in rec["config"]["params"]
        assert rec["result"]["ipc"] == result.ipc
        assert rec["wall_seconds"] > 0
        assert rec["host"]["python"]

    def test_record_is_json_round_trippable(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(path))
        simulate(by_name("astar"), _config(), obs=obs)
        obs.close()
        line = path.read_text().strip()
        assert json.loads(line)["derived"]["prefetch_accuracy"] >= 0.0

    def test_appends_across_runs(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(path))
        simulate(by_name("astar"), _config(), obs=obs)
        simulate(by_name("hmmer"), _config(), obs=obs)
        obs.close()
        names = [r["workload"]["name"] for r in read_journal(path)]
        assert names == ["astar", "hmmer"]

    def test_build_record_without_journal(self):
        workload = by_name("hmmer")
        config = _config()
        result = simulate(workload, config)
        rec = build_run_record(workload=workload, config=config, result=result,
                               wall_seconds=0.5, extra={"note": "x"})
        assert rec["context"] == {"note": "x"}
        assert rec["instructions_per_second"] == result.instructions / 0.5
        json.dumps(rec)  # must be serialisable

    def test_describe_config_names_factory_without_result(self):
        from repro.core.policies import DiscardPgc

        d = describe_config(SimConfig(policy_factory=DiscardPgc))
        assert d["policy"] == "discard-pgc"  # the class's `name` attribute

    def test_host_info_fields(self):
        info = host_info()
        assert set(info) >= {"hostname", "platform", "python", "pid"}


class TestRunnerIntegration:
    def test_run_one_attaches_spec_context(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(path))
        spec = RunSpec(policy="dripper", warmup_instructions=1_000, sim_instructions=3_000)
        run_one(by_name("astar"), spec, obs=obs)
        obs.close()
        (rec,) = read_journal(path)
        assert rec["context"]["spec"]["policy"] == "dripper"
        assert rec["context"]["spec"]["sim_instructions"] == 3_000

    def test_run_many_journals_every_run(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        obs = Observability(journal=RunJournal(path))
        spec = RunSpec(policy="discard", warmup_instructions=1_000, sim_instructions=2_000)
        workloads = [by_name("astar"), by_name("hmmer")]
        results = run_many(workloads, spec, obs=obs)
        obs.close()
        assert len(results) == 2
        assert len(read_journal(path)) == 2

    def test_sweep_tags_cells(self, tmp_path):
        from repro.experiments.sweep import stlb_size_transform, sweep_parameter

        path = tmp_path / "sweep.jsonl"
        obs = Observability(journal=RunJournal(path))
        spec = RunSpec(warmup_instructions=1_000, sim_instructions=2_000)
        sweep_parameter([by_name("hmmer")], stlb_size_transform, [768],
                        policies=("permit",), base_spec=spec, obs=obs)
        obs.close()
        records = read_journal(path)
        assert len(records) == 2  # discard baseline + permit
        assert {r["context"]["sweep"]["policy"] for r in records} == {"discard", "permit"}
        assert all(r["context"]["sweep"]["value"] == 768 for r in records)


class TestShardMerge:
    def test_append_record_and_merge(self, tmp_path):
        from repro.obs import merge_shards

        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        for shard, names in (("shard-b.jsonl", ["w2", "w3"]), ("shard-a.jsonl", ["w1"])):
            with RunJournal(shard_dir / shard) as j:
                for name in names:
                    j.append_record({"schema": 1, "workload": {"name": name}})
        parent = RunJournal(tmp_path / "runs.jsonl")
        merged = merge_shards(parent, shard_dir)
        parent.close()
        assert merged == 3
        assert parent.records_written == 3
        names = [r["workload"]["name"] for r in read_journal(tmp_path / "runs.jsonl")]
        assert names == ["w1", "w2", "w3"]  # sorted shard order, in-shard order kept

    def test_merge_ignores_non_matching_files(self, tmp_path):
        from repro.obs import merge_shards

        (tmp_path / "notes.txt").write_text("not a shard")
        parent = RunJournal(tmp_path / "runs.jsonl")
        assert merge_shards(parent, tmp_path) == 0

    def test_merge_tolerates_empty_shards(self, tmp_path):
        # a worker whose chunk raised before its first record leaves a
        # zero-byte (or blank-line-only) shard behind
        from repro.obs import merge_shards

        (tmp_path / "shard-a.jsonl").write_text("")
        (tmp_path / "shard-b.jsonl").write_text("\n\n")
        with RunJournal(tmp_path / "shard-c.jsonl") as j:
            j.append_record({"schema": 1, "workload": {"name": "w1"}})
        parent = RunJournal(tmp_path / "runs.jsonl")
        merged = merge_shards(parent, tmp_path, pattern="shard-*.jsonl", consume=True)
        parent.close()
        assert merged == 1
        assert list(tmp_path.glob("shard-*.jsonl")) == []  # empties consumed too

    def test_merge_partial_shard_keeps_complete_records(self, tmp_path):
        # blank lines interspersed with records (flush boundaries) are skipped
        from repro.obs import merge_shards

        lines = ['{"schema": 1, "workload": {"name": "w1"}}', "",
                 '{"schema": 1, "workload": {"name": "w2"}}', ""]
        (tmp_path / "shard-a.jsonl").write_text("\n".join(lines))
        parent = RunJournal(tmp_path / "runs.jsonl")
        assert merge_shards(parent, tmp_path, pattern="shard-*.jsonl") == 2
        parent.close()
        names = [r["workload"]["name"] for r in read_journal(tmp_path / "runs.jsonl")]
        assert names == ["w1", "w2"]

    def test_merge_interleaved_worker_shards(self, tmp_path):
        # two workers flushing per-chunk shards whose sequence numbers
        # interleave: merge order is sorted-filename, in-shard order kept
        from repro.obs import merge_shards

        shards = {
            "shard-00000001-000001.jsonl": ["a1", "a2"],
            "shard-00000002-000001.jsonl": ["b1"],
            "shard-00000001-000002.jsonl": ["a3"],
            "shard-00000002-000002.jsonl": ["b2", "b3"],
        }
        for name, records in shards.items():
            with RunJournal(tmp_path / name) as j:
                for rec in records:
                    j.append_record({"schema": 1, "workload": {"name": rec}})
        parent = RunJournal(tmp_path / "runs.jsonl")
        merged = merge_shards(parent, tmp_path, pattern="shard-*.jsonl", consume=True)
        parent.close()
        assert merged == 6
        names = [r["workload"]["name"] for r in read_journal(tmp_path / "runs.jsonl")]
        assert names == ["a1", "a2", "a3", "b1", "b2", "b3"]
        assert list(tmp_path.glob("shard-*.jsonl")) == []

    def test_merge_twice_without_consume_double_counts(self, tmp_path):
        # documents why persistent sessions must consume: shards left behind
        # are folded in again on the next merge from the same directory
        from repro.obs import merge_shards

        with RunJournal(tmp_path / "shard-a.jsonl") as j:
            j.append_record({"schema": 1, "workload": {"name": "w"}})
        parent = RunJournal(tmp_path / "runs.jsonl")
        assert merge_shards(parent, tmp_path, pattern="shard-*.jsonl") == 1
        assert merge_shards(parent, tmp_path, pattern="shard-*.jsonl") == 1
        parent.close()
        assert len(read_journal(tmp_path / "runs.jsonl")) == 2


class TestObservabilityBundle:
    def test_captures_filter_state_and_wall(self):
        obs = Observability()
        simulate(by_name("astar"), _config(), obs=obs)
        assert obs.runs == 1
        assert obs.last_wall_seconds > 0
        assert obs.last_filter_state is not None
        assert "threshold" in obs.last_filter_state
        assert obs.last_engine is None  # not kept by default

    def test_keep_engine(self):
        obs = Observability(keep_engine=True)
        simulate(by_name("astar"), _config(), obs=obs)
        assert obs.last_engine is not None
        assert obs.last_engine.measuring is True
