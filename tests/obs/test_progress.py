"""Grid progress events: GridProgress bookkeeping and run_cells integration."""

import io

from repro.experiments.parallel import cell_for, run_cells
from repro.experiments.runner import RunSpec
from repro.obs.progress import GridProgress, progress_printer
from repro.workloads import by_name

_FAST = dict(warmup_instructions=1_000, sim_instructions=3_000)


class TestGridProgress:
    def test_event_stream_shape(self):
        events = []
        prog = GridProgress(events.append)
        prog.start(3, 1)
        prog.cell_start(1, "astar", "dripper")
        prog.cell_finish(1, "astar", "dripper", cached=False, instructions=3000)
        prog.cell_finish(2, "astar", "discard", cached=True, instructions=3000)
        prog.end()
        assert [e["event"] for e in events] == [
            "grid-start", "cell-start", "cell-finish", "cell-finish", "grid-end"]
        start, _, first, second, end = events
        assert start["pending"] == 2
        assert first["done"] == 2 and first["cells"] == 3
        assert second["done"] == 3 and second["eta_seconds"] == 0.0
        assert end["cached"] == 2
        assert end["instructions_per_second"] is None or end["instructions_per_second"] > 0

    def test_eta_extrapolates_from_simulated_cells_only(self):
        events = []
        prog = GridProgress(events.append)
        prog.start(4, 0)
        prog.cell_finish(0, "w", "p", cached=False, instructions=100)
        eta = events[-1]["eta_seconds"]
        assert eta is not None and eta > 0

    def test_failed_cells_are_reported(self):
        events = []
        prog = GridProgress(events.append)
        prog.start(2, 0)
        prog.cell_failed([0, 1], RuntimeError("boom"))
        prog.end()
        failed = events[1]
        assert failed["event"] == "cell-failed"
        assert failed["indices"] == [0, 1]
        assert "RuntimeError" in failed["error"]
        assert events[-1]["failed"] == 2

    def test_printer_renders_single_lines(self):
        out = io.StringIO()
        sink = progress_printer(out)
        prog = GridProgress(sink)
        prog.start(1, 0)
        prog.cell_finish(0, "astar", "dripper", cached=False, instructions=3000)
        prog.end()
        text = out.getvalue()
        assert "1 cell(s)" in text
        assert "[1/1] astar/dripper (ran)" in text
        assert "done in" in text


class TestRunCellsIntegration:
    def test_serial_batch_emits_full_stream(self):
        spec = RunSpec(prefetcher="berti", policy="discard", **_FAST)
        cells = [cell_for(by_name("astar"), spec)]
        events = []
        results = run_cells(cells, jobs=1, progress=events.append)
        assert len(results) == 1
        kinds = [e["event"] for e in events]
        assert kinds == ["grid-start", "cell-start", "cell-finish", "grid-end"]
        finish = events[2]
        assert finish["workload"] == "astar"
        assert finish["policy"] == "discard"
        assert finish["instructions"] == results[0].instructions

    def test_cache_hits_counted_in_grid_start(self, tmp_path):
        from repro.experiments.cache import ResultCache

        spec = RunSpec(prefetcher="berti", policy="discard", **_FAST)
        cells = [cell_for(by_name("astar"), spec)]
        cache = ResultCache(tmp_path)
        run_cells(cells, cache=cache)
        events = []
        run_cells(cells, cache=cache, progress=events.append)
        start = events[0]
        assert start["cached"] == 1 and start["pending"] == 0
        assert [e["event"] for e in events] == ["grid-start", "grid-end"]

    def test_coalesced_duplicates_emit_cached_finishes(self, tmp_path):
        from repro.experiments.cache import ResultCache

        spec = RunSpec(prefetcher="berti", policy="discard", **_FAST)
        cells = [cell_for(by_name("astar"), spec) for _ in range(2)]
        events = []
        run_cells(cells, cache=ResultCache(tmp_path), progress=events.append)
        finishes = [e for e in events if e["event"] == "cell-finish"]
        assert [f["cached"] for f in finishes] == [False, True]
