"""MetricsRegistry: instruments, snapshot/delta/merge, exporters."""

import pickle
import random

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    get_metrics,
    parse_prometheus,
    reset_metrics,
    summarize,
    to_json,
    to_prometheus,
)


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("x.hits", "help text")
        c.inc()
        c.inc(2, kind="a")
        c.inc(3, kind="a")
        assert c.value() == 1
        assert c.value(kind="a") == 5
        assert c.total() == 6

    def test_counter_label_order_is_irrelevant(self):
        c = MetricsRegistry().counter("x")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value() == 7
        g.set(2, pid="1")
        assert g.value(pid="1") == 2
        assert g.value() == 7

    def test_histogram_buckets_and_sum(self):
        h = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_reset_keeps_instrument_references_alive(self):
        # instrumented modules cache instrument references; a forked worker's
        # reset_metrics() must not orphan them
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(5)
        reg.reset()
        assert c.value() == 0
        c.inc()
        assert reg.counter("x").value() == 1


class TestSnapshotDelta:
    def test_delta_subtracts_the_mark(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc(2)
        h.observe(0.5)
        mark = reg.snapshot()
        c.inc(3)
        h.observe(2.0)
        delta = reg.snapshot().delta(mark)
        (value,) = delta.counters["c"]["series"].values()
        assert value == 3
        ((counts, count, total),) = delta.histograms["h"]["series"].values()
        assert count == 1 and counts == [0, 1] and total == pytest.approx(2.0)

    def test_unchanged_series_are_dropped_from_the_delta(self):
        reg = MetricsRegistry()
        reg.counter("quiet").inc(7)
        mark = reg.snapshot()
        delta = reg.snapshot().delta(mark)
        assert delta.counters == {} and delta.histograms == {}

    def test_snapshots_are_picklable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, pid="9")
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(0.01)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        assert snap.counters["c"]["series"] == {(("pid", "9"),): 1}


class TestMergeOrderIndependence:
    @staticmethod
    def _worker_delta(seed: int):
        """One synthetic worker's chunk delta."""
        reg = MetricsRegistry()
        rng = random.Random(seed)
        for _ in range(rng.randrange(1, 6)):
            reg.counter("cells").inc(pid=str(seed))
            reg.counter("cells").inc()  # shared unlabelled series
            reg.histogram("secs", buckets=(0.1, 1.0)).observe(rng.random() * 2)
        reg.gauge("bytes").set(rng.randrange(1000), pid=str(seed))
        return reg.snapshot()

    def test_merging_worker_deltas_in_any_order_is_identical(self):
        deltas = [self._worker_delta(seed) for seed in range(5)]
        exports = []
        for order in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0], [2, 0, 4, 1, 3]):
            reg = MetricsRegistry()
            for i in order:
                reg.merge(deltas[i])
            exports.append(to_prometheus(reg.snapshot()))
        assert exports[0] == exports[1] == exports[2]

    def test_merge_is_associative_via_intermediate_registry(self):
        a, b, c = (self._worker_delta(s) for s in (10, 11, 12))
        flat = MetricsRegistry()
        for d in (a, b, c):
            flat.merge(d)
        staged = MetricsRegistry()
        mid = MetricsRegistry()
        mid.merge(b)
        mid.merge(c)
        staged.merge(a)
        staged.merge(mid.snapshot())
        assert to_prometheus(flat.snapshot()) == to_prometheus(staged.snapshot())

    def test_gauge_merge_latest_stamp_wins(self):
        early = MetricsRegistry()
        early.gauge("g").set(100)
        snap_early = early.snapshot()
        late = MetricsRegistry()
        late.gauge("g").set(1)
        snap_late = late.snapshot()
        for order in ((snap_early, snap_late), (snap_late, snap_early)):
            reg = MetricsRegistry()
            for s in order:
                reg.merge(s)
            assert reg.gauge("g").value() == 1  # later stamp, despite lower value


class TestExporters:
    @staticmethod
    def _populated():
        reg = MetricsRegistry()
        reg.counter("pack_cache.hits", "local hits").inc(3)
        reg.counter("grid.cells").inc(2, pid="7")
        reg.gauge("shm.live_bytes").set(4096)
        h = reg.histogram("grid.cell_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(3.0)
        return reg.snapshot()

    def test_prometheus_text_shape(self):
        text = to_prometheus(self._populated())
        assert "# TYPE pack_cache_hits_total counter" in text
        assert "pack_cache_hits_total 3" in text
        assert 'grid_cells_total{pid="7"} 2' in text
        assert "shm_live_bytes 4096" in text
        # cumulative buckets: 1, 2, 3 across the three bounds
        assert 'grid_cell_seconds_bucket{le="0.1"} 1' in text
        assert 'grid_cell_seconds_bucket{le="1.0"} 2' in text
        assert 'grid_cell_seconds_bucket{le="+Inf"} 3' in text
        assert "grid_cell_seconds_count 3" in text

    def test_prometheus_round_trip(self):
        text = to_prometheus(self._populated())
        samples = parse_prometheus(text)
        assert summarize(samples, "pack_cache_hits_total") == 3
        assert summarize(samples, "grid_cells_total", ("pid", "7")) == 2
        by_name = {s["name"] for s in samples}
        assert "grid_cell_seconds_sum" in by_name

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is { not a metric\n")

    def test_json_export(self):
        import json

        doc = json.loads(to_json(self._populated()))
        samples = {s["name"]: s for s in doc["samples"]}
        assert samples["pack_cache.hits"]["value"] == 3
        assert samples["grid.cell_seconds"]["count"] == 3
        assert samples["grid.cell_seconds"]["counts"] == [1, 1, 1]


class TestProcessWideRegistry:
    def test_get_metrics_returns_singleton_and_resets_in_place(self):
        reg = get_metrics()
        marker = reg.counter("test.only.marker")
        marker.inc(41)
        try:
            assert get_metrics() is reg
            reset_metrics()
            assert marker.value() == 0
        finally:
            reset_metrics()
