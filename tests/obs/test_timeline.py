"""TimelineRecorder: epoch sampling, filter fields, CSV/JSONL export."""

import csv
import json

import pytest

from repro.core.dripper import make_dripper
from repro.cpu.simulator import SimConfig, simulate
from repro.obs import Observability, TimelineRecorder
from repro.obs.timeline import TIMELINE_FIELDS
from repro.workloads import by_name

_WARMUP = 2_000
_SIM = 8_000
_EPOCH = 1_024


def _run(policy_factory, recorder, **cfg_kw):
    config = SimConfig(
        prefetcher="berti",
        policy_factory=policy_factory,
        warmup_instructions=_WARMUP,
        sim_instructions=_SIM,
        epoch_instructions=_EPOCH,
        **cfg_kw,
    )
    obs = Observability(timeline=recorder)
    result = simulate(by_name("astar"), config, obs=obs)
    return result, recorder


class TestRecording:
    def test_one_row_per_epoch(self):
        _, rec = _run(lambda: make_dripper("berti"), TimelineRecorder())
        # ~ (warmup + sim) / epoch rows, minus boundary effects
        assert len(rec.rows) >= (_WARMUP + _SIM) // _EPOCH - 1
        assert [r["epoch"] for r in rec.rows] == list(range(1, len(rec.rows) + 1))

    def test_rows_carry_threshold_and_permit_rate_for_dripper(self):
        _, rec = _run(lambda: make_dripper("berti"), TimelineRecorder())
        for row in rec.rows:
            assert row["threshold"] is not None
            assert row["permit_rate"] is not None
            assert 0.0 <= row["permit_rate"] <= 1.0

    def test_static_policy_has_null_filter_fields(self):
        from repro.core.policies import DiscardPgc

        _, rec = _run(DiscardPgc, TimelineRecorder())
        assert all(r["threshold"] is None and r["permit_rate"] is None for r in rec.rows)

    def test_measuring_flag_flips_after_warmup(self):
        _, rec = _run(lambda: make_dripper("berti"), TimelineRecorder())
        flags = [r["measuring"] for r in rec.rows]
        assert flags[0] is False
        assert flags[-1] is True
        # monotone: once measuring, always measuring
        assert flags == sorted(flags)

    def test_progress_counters_monotone(self):
        _, rec = _run(lambda: make_dripper("berti"), TimelineRecorder())
        totals = [r["total_instructions"] for r in rec.rows]
        cycles = [r["cycles"] for r in rec.rows]
        assert totals == sorted(totals)
        assert cycles == sorted(cycles)

    def test_sample_every(self):
        _, every = _run(lambda: make_dripper("berti"), TimelineRecorder())
        _, sparse = _run(lambda: make_dripper("berti"), TimelineRecorder(sample_every=3))
        assert [r["epoch"] for r in sparse.rows] == [r["epoch"] for r in every.rows][::3]

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            TimelineRecorder(sample_every=0)

    def test_multiple_runs_tagged(self):
        rec = TimelineRecorder()
        _run(lambda: make_dripper("berti"), rec)
        _run(lambda: make_dripper("berti"), rec)
        runs = {r["run"] for r in rec.rows}
        assert runs == {0, 1}
        # per-run epoch numbering restarts
        first_of_run1 = next(r for r in rec.rows if r["run"] == 1)
        assert first_of_run1["epoch"] == 1


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        _, rec = _run(lambda: make_dripper("berti"), TimelineRecorder())
        path = tmp_path / "timeline.jsonl"
        count = rec.write(str(path))
        lines = path.read_text().strip().splitlines()
        assert count == len(rec.rows) == len(lines)
        parsed = [json.loads(line) for line in lines]
        assert parsed[0].keys() == rec.rows[0].keys()
        assert set(parsed[0]) == set(TIMELINE_FIELDS)

    def test_csv_by_extension(self, tmp_path):
        _, rec = _run(lambda: make_dripper("berti"), TimelineRecorder())
        path = tmp_path / "timeline.csv"
        rec.write(str(path))
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(rec.rows)
        assert list(rows[0]) == list(TIMELINE_FIELDS)
        assert rows[0]["workload"] == "astar"
