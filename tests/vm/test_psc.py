"""Split page-structure caches."""

from repro.params import PscParams
from repro.vm.psc import PageStructureCache, SplitPsc


class TestPageStructureCache:
    def test_miss_then_hit(self):
        psc = PageStructureCache(2, 4)
        assert not psc.lookup(0x40000000)
        psc.insert(0x40000000)
        assert psc.lookup(0x40000000)

    def test_entry_reach_is_the_cached_node_reach(self):
        # a level-2 PSC entry caches one L1-node pointer: 2MB reach
        psc = PageStructureCache(2, 4)
        psc.insert(0x40000000)
        assert psc.lookup(0x40000000 + (1 << 20))
        assert not psc.lookup(0x40000000 + (1 << 21))

    def test_capacity_lru(self):
        psc = PageStructureCache(2, 2)
        regions = [i << 31 for i in range(3)]
        psc.insert(regions[0])
        psc.insert(regions[1])
        psc.lookup(regions[0])
        psc.insert(regions[2])  # evicts regions[1]
        assert psc.lookup(regions[0])
        assert not psc.lookup(regions[1])

    def test_stats(self):
        psc = PageStructureCache(3, 2)
        psc.lookup(0)
        psc.insert(0)
        psc.lookup(0)
        assert psc.stats.misses == 1
        assert psc.stats.hits == 1


class TestSplitPsc:
    def test_sizes_follow_params(self):
        psc = SplitPsc(PscParams())
        assert psc.levels[5].entries == 1
        assert psc.levels[4].entries == 2
        assert psc.levels[3].entries == 8
        assert psc.levels[2].entries == 32

    def test_full_miss_returns_none(self):
        psc = SplitPsc(PscParams())
        assert psc.best_hit_level(0x12345678) is None

    def test_best_hit_is_lowest_level(self):
        psc = SplitPsc(PscParams())
        vaddr = 0x40000000
        psc.fill(vaddr, 4)
        psc.fill(vaddr, 2)
        assert psc.best_hit_level(vaddr) == 2

    def test_fill_ignores_leaf_level(self):
        psc = SplitPsc(PscParams())
        psc.fill(0x1000, 1)  # level 1 is the leaf; no PSC for it
        assert psc.best_hit_level(0x1000) is None

    def test_higher_levels_have_larger_reach(self):
        psc = SplitPsc(PscParams())
        a = 0x40000000
        far = a + (1 << 32)  # same level-5 region, different level-2 region
        psc.fill(a, 5)
        psc.fill(a, 2)
        assert psc.best_hit_level(far) == 5
