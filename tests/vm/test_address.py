"""Address arithmetic: line/page math and the page-cross predicate."""

from hypothesis import given, strategies as st

from repro.vm import address as addr

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestLineMath:
    def test_line_addr(self):
        assert addr.line_addr(0) == 0
        assert addr.line_addr(63) == 0
        assert addr.line_addr(64) == 1
        assert addr.line_addr(0x1000) == 64

    def test_line_base(self):
        assert addr.line_base(0x1234) == 0x1200
        assert addr.line_base(0x1200) == 0x1200

    def test_line_offset_within_page(self):
        assert addr.line_offset(0) == 0
        assert addr.line_offset(0xFFF) == 63
        assert addr.line_offset(0x1000) == 0

    @given(addresses)
    def test_line_offset_range(self, a):
        assert 0 <= addr.line_offset(a) < addr.LINES_PER_PAGE_4K


class TestPageMath:
    def test_vpn_4k(self):
        assert addr.vpn(0x1FFF) == 1
        assert addr.vpn(0x2000) == 2

    def test_vpn_2m(self):
        assert addr.vpn(0x1FFFFF, addr.PAGE_2M_SHIFT) == 0
        assert addr.vpn(0x200000, addr.PAGE_2M_SHIFT) == 1

    def test_same_page(self):
        assert addr.same_page(0x1000, 0x1FFF)
        assert not addr.same_page(0x1000, 0x2000)

    def test_crosses_page_is_negation_of_same_page(self):
        assert addr.crosses_page(0x1FC0, 0x2000)
        assert not addr.crosses_page(0x1F80, 0x1FC0)

    def test_crosses_2m_boundary(self):
        assert not addr.crosses_page(0x1000, 0x5000, addr.PAGE_2M_SHIFT)
        assert addr.crosses_page(0x1FF000, 0x200000, addr.PAGE_2M_SHIFT)

    @given(addresses, addresses)
    def test_crosses_page_symmetric(self, a, b):
        assert addr.crosses_page(a, b) == addr.crosses_page(b, a)

    @given(addresses)
    def test_never_crosses_to_itself(self, a):
        assert not addr.crosses_page(a, a)


class TestPageTableIndexing:
    def test_pt_index_extracts_nine_bits(self):
        v = 0x1FF << 12  # all ones in the level-1 index
        assert addr.pt_index(v, 1) == 0x1FF
        assert addr.pt_index(v, 2) == 0

    def test_pt_index_levels_disjoint(self):
        v = 0xABC123456789
        indices = [addr.pt_index(v, level) for level in (1, 2, 3, 4, 5)]
        rebuilt = 0
        for level, index in zip((1, 2, 3, 4, 5), indices):
            rebuilt |= index << (12 + 9 * (level - 1))
        assert rebuilt == v & ~0xFFF & ((1 << 57) - 1)

    @given(addresses, st.integers(min_value=1, max_value=5))
    def test_pt_index_range(self, a, level):
        assert 0 <= addr.pt_index(a, level) < 512

    def test_pt_tag_shared_within_node_reach(self):
        # two addresses differing only below level-2 reach share the L2 node
        a = 0x40000000
        b = a + (1 << 20)  # within the same 2MB region? level-2 reach is 2MB
        assert addr.pt_tag(a, 2) == addr.pt_tag(b, 2)
        assert addr.pt_tag(a, 1) != addr.pt_tag(a + (1 << 12) * 512, 1)

    @given(addresses)
    def test_canonical_idempotent(self, a):
        assert addr.canonical(addr.canonical(a)) == addr.canonical(a)
