"""Property-based walker invariants."""

from hypothesis import given, settings, strategies as st

from repro.params import PscParams
from repro.vm.page_table import LargePagePolicy, PageTable
from repro.vm.psc import SplitPsc
from repro.vm.walker import PageWalker

addresses = st.integers(min_value=0, max_value=(1 << 44) - 1)


def make_walker(large_fraction=0.0):
    pt = PageTable(large_pages=LargePagePolicy(large_fraction, seed=5))
    walker = PageWalker(pt, SplitPsc(PscParams()), lambda paddr, t, spec: 10.0)
    return walker, pt


class TestWalkProperties:
    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_walk_matches_page_table(self, vaddr):
        walker, pt = make_walker()
        result = walker.walk(vaddr, 0.0)
        assert result.translation == pt.translate(vaddr)

    @given(addresses)
    @settings(max_examples=60, deadline=None)
    def test_read_count_bounds(self, vaddr):
        walker, _ = make_walker()
        result = walker.walk(vaddr, 0.0)
        assert 1 <= result.memory_reads <= 5

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_repeat_walk_never_reads_more(self, vaddr):
        walker, _ = make_walker()
        first = walker.walk(vaddr, 0.0)
        second = walker.walk(vaddr, 100.0)
        assert second.memory_reads <= first.memory_reads
        assert second.memory_reads == 1  # PSC now covers all non-leaf levels

    @given(st.lists(addresses, min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_walk_sequence_counters_consistent(self, vaddrs):
        walker, _ = make_walker(large_fraction=0.3)
        for i, vaddr in enumerate(vaddrs):
            speculative = bool(i % 2)
            walker.walk(vaddr, float(i), speculative=speculative)
        assert walker.demand_walks + walker.speculative_walks == len(vaddrs)

    @given(addresses)
    @settings(max_examples=40, deadline=None)
    def test_large_page_walks_never_deeper_than_small(self, vaddr):
        small_walker, _ = make_walker(0.0)
        large_walker, _ = make_walker(1.0)
        small = small_walker.walk(vaddr, 0.0)
        large = large_walker.walk(vaddr, 0.0)
        assert large.memory_reads <= small.memory_reads
