"""VM subsystem integration: TLBs + walker + PSCs working together."""

from repro.mem.hierarchy import MemoryHierarchy
from repro.params import DEFAULT_PARAMS
from repro.vm.page_table import LargePagePolicy, PageTable
from repro.vm.psc import SplitPsc
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalker


def make_vm(large_fraction=0.0):
    hierarchy = MemoryHierarchy(DEFAULT_PARAMS)
    pt = PageTable(large_pages=LargePagePolicy(large_fraction, seed=3))
    walker = PageWalker(pt, SplitPsc(DEFAULT_PARAMS.psc), hierarchy.ptw_read)
    dtlb = Tlb(DEFAULT_PARAMS.dtlb)
    stlb = Tlb(DEFAULT_PARAMS.stlb)
    return hierarchy, pt, walker, dtlb, stlb


def translate(dtlb, stlb, walker, vaddr, t):
    """The engine's demand-translation path, reproduced for inspection."""
    tr = dtlb.lookup(vaddr)
    if tr is not None:
        return tr, "dtlb"
    tr = stlb.lookup(vaddr)
    if tr is not None:
        dtlb.insert(tr)
        return tr, "stlb"
    walk = walker.walk(vaddr, t)
    stlb.insert(walk.translation)
    dtlb.insert(walk.translation)
    return walk.translation, "walk"


class TestTranslationPath:
    def test_first_touch_walks_then_hits(self):
        _, _, walker, dtlb, stlb = make_vm()
        _, how1 = translate(dtlb, stlb, walker, 0x5000, 0.0)
        _, how2 = translate(dtlb, stlb, walker, 0x5abc, 1.0)
        assert (how1, how2) == ("walk", "dtlb")

    def test_dtlb_capacity_falls_back_to_stlb(self):
        _, _, walker, dtlb, stlb = make_vm()
        # touch more pages than the 64-entry dTLB holds, then revisit page 0
        for i in range(200):
            translate(dtlb, stlb, walker, i << 12, float(i))
        _, how = translate(dtlb, stlb, walker, 0x0, 1000.0)
        assert how == "stlb"

    def test_stlb_capacity_falls_back_to_walk(self):
        _, _, walker, dtlb, stlb = make_vm()
        for i in range(2000):  # exceeds the 1536-entry sTLB
            translate(dtlb, stlb, walker, i << 12, float(i))
        walks_before = walker.demand_walks
        translate(dtlb, stlb, walker, 0x0, 5000.0)
        assert walker.demand_walks == walks_before + 1

    def test_warm_walks_read_fewer_ptes(self):
        hierarchy, _, walker, dtlb, stlb = make_vm()
        translate(dtlb, stlb, walker, 0x0, 0.0)
        reads_before = hierarchy.dram.reads
        # a neighbouring page: PSC L2 covers the node, PTE line likely cached
        walk = walker.walk(0x1000, 10_000.0)
        assert walk.memory_reads == 1
        assert hierarchy.dram.reads == reads_before  # PTE line already cached

    def test_same_translations_from_tlb_and_walk(self):
        _, pt, walker, dtlb, stlb = make_vm()
        via_walk, _ = translate(dtlb, stlb, walker, 0x9000, 0.0)
        via_tlb, _ = translate(dtlb, stlb, walker, 0x9000, 1.0)
        assert via_walk == via_tlb == pt.translate(0x9000)


class TestMixedPageSizes:
    def test_one_2m_walk_covers_512_small_pages(self):
        _, _, walker, dtlb, stlb = make_vm(large_fraction=1.0)
        for i in range(512):
            translate(dtlb, stlb, walker, i << 12, float(i))
        assert walker.demand_walks == 1

    def test_mixed_system_walk_counts_between_extremes(self):
        def walks(fraction):
            _, _, walker, dtlb, stlb = make_vm(large_fraction=fraction)
            # four 4KB pages in each of 128 distinct 2MB regions
            for region in range(128):
                for k in range(4):
                    translate(dtlb, stlb, walker, (region << 21) | (k << 12), float(region))
            return walker.demand_walks

        all_small, mixed, all_large = walks(0.0), walks(0.5), walks(1.0)
        assert all_small == 512
        assert all_large == 128
        assert all_large < mixed < all_small
