"""Page table: demand allocation, scrambled frames, 2MB pages, node frames."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.address import PAGE_2M_SHIFT, PAGE_4K_SHIFT
from repro.vm.page_table import LargePagePolicy, PageTable


class TestTranslation:
    def test_deterministic(self):
        pt = PageTable()
        first = pt.translate(0x1234)
        second = pt.translate(0x1234)
        assert first == second

    def test_same_page_same_frame(self):
        pt = PageTable()
        assert pt.translate(0x1000).pfn == pt.translate(0x1FFF).pfn

    def test_offset_preserved(self):
        pt = PageTable()
        tr = pt.translate(0x1ABC)
        assert tr.physical(0x1ABC) & 0xFFF == 0xABC

    def test_distinct_pages_distinct_frames(self):
        pt = PageTable()
        frames = {pt.translate(i << PAGE_4K_SHIFT).pfn for i in range(2000)}
        assert len(frames) == 2000

    def test_virtual_contiguity_not_preserved(self):
        """Physically contiguous frames for contiguous VPNs would make
        page-cross prefetching trivially safe; the scrambler must break it."""
        pt = PageTable()
        pfns = [pt.translate(i << PAGE_4K_SHIFT).pfn for i in range(64)]
        contiguous = sum(1 for a, b in zip(pfns, pfns[1:]) if b == a + 1)
        assert contiguous < 4

    def test_different_asids_different_frames(self):
        a, b = PageTable(asid=0), PageTable(asid=1)
        assert a.translate(0x1000).pfn != b.translate(0x1000).pfn

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=50)
    def test_physical_roundtrip_offset(self, vaddr):
        pt = PageTable()
        tr = pt.translate(vaddr)
        page_mask = tr.page_bytes - 1
        assert pt.physical(vaddr) & page_mask == vaddr & page_mask


class TestLargePages:
    def test_fraction_zero_never_large(self):
        policy = LargePagePolicy(0.0)
        assert not any(policy.is_large(i << 21) for i in range(100))

    def test_fraction_one_always_large(self):
        policy = LargePagePolicy(1.0)
        assert all(policy.is_large(i << 21) for i in range(100))

    def test_fraction_half_roughly_half(self):
        policy = LargePagePolicy(0.5, seed=3)
        count = sum(policy.is_large(i << 21) for i in range(1000))
        assert 380 <= count <= 620

    def test_decision_constant_within_region(self):
        policy = LargePagePolicy(0.5, seed=1)
        base = 7 << 21
        decisions = {policy.is_large(base + off) for off in (0, 0x1000, 0x100000, 0x1FFFFF)}
        assert len(decisions) == 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            LargePagePolicy(1.5)

    def test_2m_translation_covers_whole_region(self):
        pt = PageTable(large_pages=LargePagePolicy(1.0))
        tr = pt.translate(0x200000)
        assert tr.page_shift == PAGE_2M_SHIFT
        assert pt.translate(0x200000 + 0x100000).pfn == tr.pfn

    def test_leaf_level(self):
        small = PageTable()
        large = PageTable(large_pages=LargePagePolicy(1.0))
        assert small.leaf_level(0x1000) == 1
        assert large.leaf_level(0x1000) == 2

    def test_2m_frames_do_not_alias_4k_frames(self):
        pt = PageTable(large_pages=LargePagePolicy(0.5, seed=1))
        spans = set()
        for i in range(500):
            tr = pt.translate(i << 21)
            base = tr.pfn << tr.page_shift
            spans.add((base, base + tr.page_bytes))
        for a_start, a_end in spans:
            overlapping = [s for s in spans if s[0] < a_end and a_start < s[1] and s != (a_start, a_end)]
            assert not overlapping


class TestNodeFrames:
    def test_same_region_shares_leaf_node(self):
        pt = PageTable()
        # two VPNs in the same 2MB region share the level-1 node page
        assert pt.node_frame(0x1000, 1) == pt.node_frame(0x2000, 1)

    def test_far_regions_use_distinct_nodes(self):
        pt = PageTable()
        assert pt.node_frame(0x1000, 1) != pt.node_frame(1 << 30, 1)

    def test_adjacent_vpns_share_pte_line(self):
        """8 PTEs fit a 64-byte line: walk locality the paper models."""
        pt = PageTable()
        a = pt.pte_address(0 << PAGE_4K_SHIFT, 1)
        b = pt.pte_address(7 << PAGE_4K_SHIFT, 1)
        assert a >> 6 == b >> 6
        c = pt.pte_address(8 << PAGE_4K_SHIFT, 1)
        assert a >> 6 != c >> 6

    def test_node_frames_do_not_alias_data_frames(self):
        pt = PageTable()
        data = {pt.translate(i << PAGE_4K_SHIFT).pfn for i in range(100)}
        nodes = {pt.node_frame(i << PAGE_4K_SHIFT, lvl) for i in range(100) for lvl in (1, 2)}
        assert not data & nodes

    def test_mapped_counters(self):
        pt = PageTable(large_pages=LargePagePolicy(1.0))
        pt.translate(0)
        pt.translate(1 << 21)
        assert pt.mapped_2m_pages == 2
        assert pt.mapped_4k_pages == 0
