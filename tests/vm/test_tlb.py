"""TLB: lookup/insert, LRU, mixed page sizes, prefetch attribution."""

from hypothesis import given, settings, strategies as st

from repro.params import TlbParams
from repro.vm.address import PAGE_2M_SHIFT, PAGE_4K_SHIFT
from repro.vm.page_table import Translation
from repro.vm.tlb import Tlb


def tr4k(vpn: int, pfn: int = 0) -> Translation:
    return Translation(vpn, pfn or vpn + 100, PAGE_4K_SHIFT)


def tr2m(vpn: int, pfn: int = 0) -> Translation:
    return Translation(vpn, pfn or vpn + 7, PAGE_2M_SHIFT)


def small_tlb(entries=8, ways=2) -> Tlb:
    return Tlb(TlbParams("t", entries, ways, 1))


class TestLookupInsert:
    def test_miss_on_empty(self):
        t = small_tlb()
        assert t.lookup(0x1000) is None
        assert t.stats.misses == 1

    def test_hit_after_insert(self):
        t = small_tlb()
        t.insert(tr4k(1))
        found = t.lookup(0x1ABC)
        assert found is not None
        assert found.pfn == 101
        assert t.stats.hits == 1

    def test_hit_requires_same_page(self):
        t = small_tlb()
        t.insert(tr4k(1))
        assert t.lookup(0x2000) is None

    def test_2m_entry_covers_2m_region(self):
        t = small_tlb()
        t.insert(tr2m(1))
        assert t.lookup((1 << 21) + 0x12345) is not None
        assert t.lookup(0) is None

    def test_mixed_sizes_coexist(self):
        t = small_tlb()
        t.insert(tr4k(5))
        t.insert(tr2m(5))
        assert t.lookup(5 << PAGE_4K_SHIFT).page_shift == PAGE_4K_SHIFT
        assert t.lookup((5 << PAGE_2M_SHIFT) + (1 << 20)).page_shift == PAGE_2M_SHIFT

    def test_speculative_lookup_does_not_touch_stats(self):
        t = small_tlb()
        t.insert(tr4k(1))
        t.lookup(0x1000, speculative=True)
        t.lookup(0x9000, speculative=True)
        assert t.stats.accesses == 0

    def test_reinsert_refreshes_not_duplicates(self):
        t = small_tlb()
        t.insert(tr4k(1))
        t.insert(tr4k(1))
        assert t.occupancy() == 1


class TestReplacement:
    def test_lru_victim_within_set(self):
        t = small_tlb(entries=8, ways=2)  # 4 sets
        sets = 4
        a, b, c = 0, sets, 2 * sets  # same set (vpn % sets == 0)
        t.insert(tr4k(a))
        t.insert(tr4k(b))
        t.lookup(a << PAGE_4K_SHIFT)  # touch a so b becomes LRU
        t.insert(tr4k(c))
        assert t.lookup(a << PAGE_4K_SHIFT) is not None
        assert t.lookup(b << PAGE_4K_SHIFT) is None

    def test_occupancy_bounded_by_capacity(self):
        t = small_tlb(entries=8, ways=2)
        for vpn in range(100):
            t.insert(tr4k(vpn))
        assert t.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=200))
    @settings(max_examples=30)
    def test_occupancy_invariant_under_any_sequence(self, vpns):
        t = small_tlb(entries=8, ways=2)
        for vpn in vpns:
            t.insert(tr4k(vpn))
            assert t.occupancy() <= 8
        for vpn in vpns[-8:]:
            t.lookup(vpn << PAGE_4K_SHIFT)  # never crashes


class TestPrefetchAttribution:
    def test_prefetch_hit_counted_once(self):
        t = small_tlb()
        t.insert(tr4k(1), from_prefetch=True)
        t.lookup(0x1000)
        t.lookup(0x1000)
        assert t.prefetch_hits == 1

    def test_unused_prefetch_eviction_counted(self):
        t = small_tlb(entries=2, ways=1)  # 2 sets, direct mapped
        t.insert(tr4k(0), from_prefetch=True)
        t.insert(tr4k(2))  # same set 0, evicts the unused prefetched entry
        assert t.prefetch_evicted_unused == 1

    def test_used_prefetch_eviction_not_counted(self):
        t = small_tlb(entries=2, ways=1)
        t.insert(tr4k(0), from_prefetch=True)
        t.lookup(0)
        t.insert(tr4k(2))
        assert t.prefetch_evicted_unused == 0

    def test_flush(self):
        t = small_tlb()
        t.insert(tr4k(1))
        t.flush()
        assert t.occupancy() == 0


class TestSnapshot:
    def test_warmup_prefetch_hits_excluded_from_measured(self):
        # the pre-fix snapshot() skipped the prefetch counters, so warm-up
        # prefetch hits leaked into the reported measured region
        t = small_tlb()
        t.insert(tr4k(1), from_prefetch=True)
        t.lookup(0x1000)
        t.snapshot()
        assert t.prefetch_hits == 1
        assert t.measured_prefetch_hits == 0
        t.insert(tr4k(2), from_prefetch=True)
        t.lookup(0x2000)
        assert t.prefetch_hits == 2
        assert t.measured_prefetch_hits == 1

    def test_warmup_evictions_excluded_from_measured(self):
        t = small_tlb(entries=2, ways=1)  # 2 sets, direct mapped
        t.insert(tr4k(0), from_prefetch=True)
        t.insert(tr4k(2))  # evicts the unused warm-up prefetch
        t.snapshot()
        assert t.prefetch_evicted_unused == 1
        assert t.measured_prefetch_evicted_unused == 0
        t.insert(tr4k(4), from_prefetch=True)
        t.insert(tr4k(6))
        assert t.measured_prefetch_evicted_unused == 1

    def test_measured_counters_zero_before_snapshot(self):
        t = small_tlb()
        t.insert(tr4k(1), from_prefetch=True)
        t.lookup(0x1000)
        assert t.measured_prefetch_hits == 1  # no snapshot yet: whole run
