"""Page walker: PSC short-circuiting, walk costs, speculative accounting."""

from repro.params import PscParams
from repro.vm.page_table import LargePagePolicy, PageTable
from repro.vm.psc import SplitPsc
from repro.vm.walker import PageWalker


class RecordingReader:
    """PTE reader stub with a fixed per-read latency."""

    def __init__(self, latency: float = 10.0):
        self.latency = latency
        self.reads: list[tuple[int, float, bool]] = []

    def __call__(self, paddr: int, t: float, speculative: bool) -> float:
        self.reads.append((paddr, t, speculative))
        return self.latency


def make_walker(large=False):
    pt = PageTable(large_pages=LargePagePolicy(1.0 if large else 0.0))
    reader = RecordingReader()
    walker = PageWalker(pt, SplitPsc(PscParams()), reader)
    return walker, reader, pt


class TestWalkCost:
    def test_cold_walk_reads_five_levels(self):
        walker, reader, _ = make_walker()
        result = walker.walk(0x12345678, 0.0)
        assert result.memory_reads == 5
        assert len(reader.reads) == 5

    def test_warm_walk_reads_only_leaf(self):
        walker, reader, _ = make_walker()
        walker.walk(0x12345678, 0.0)
        reader.reads.clear()
        result = walker.walk(0x12345678 + 0x1000, 100.0)
        # PSC L2 covers the region -> only the L1 PTE is read
        assert result.memory_reads == 1

    def test_walk_latency_includes_psc_and_reads(self):
        walker, reader, _ = make_walker()
        result = walker.walk(0x1000, 0.0)
        assert result.latency == 1 + 5 * reader.latency

    def test_reads_are_sequential_in_time(self):
        walker, reader, _ = make_walker()
        walker.walk(0x1000, 0.0)
        times = [t for _, t, _ in reader.reads]
        assert times == sorted(times)
        assert times[1] - times[0] == reader.latency

    def test_distant_address_reuses_upper_levels(self):
        walker, reader, _ = make_walker()
        walker.walk(0x1000, 0.0)
        reader.reads.clear()
        # same level-3 region (512 * 2MB reach), different level-2 region
        result = walker.walk(0x1000 + (1 << 21), 100.0)
        assert 1 < result.memory_reads <= 3

    def test_translation_returned(self):
        walker, _, pt = make_walker()
        result = walker.walk(0xABC123, 0.0)
        assert result.translation == pt.translate(0xABC123)


class TestLargePageWalks:
    def test_2m_walk_stops_at_level_2(self):
        walker, reader, _ = make_walker(large=True)
        result = walker.walk(0x40000000, 0.0)
        assert result.memory_reads == 4  # levels 5..2, no level-1 PTE

    def test_warm_2m_walk(self):
        walker, reader, _ = make_walker(large=True)
        walker.walk(0x40000000, 0.0)
        result = walker.walk(0x40000000 + 0x100000, 50.0)
        # PSC L3 knows the L2 node -> single read of the leaf PMD entry
        assert result.memory_reads == 1


class TestSpeculativeAccounting:
    def test_speculative_flag_propagates_to_reader(self):
        walker, reader, _ = make_walker()
        walker.walk(0x1000, 0.0, speculative=True)
        assert all(spec for _, _, spec in reader.reads)

    def test_counters_split_by_kind(self):
        walker, _, _ = make_walker()
        walker.walk(0x1000, 0.0)
        walker.walk(0x2000000, 1.0, speculative=True)
        walker.walk(0x4000000, 2.0, speculative=True)
        assert walker.demand_walks == 1
        assert walker.speculative_walks == 2

    def test_snapshot_separates_measured_region(self):
        walker, _, _ = make_walker()
        walker.walk(0x1000, 0.0)
        walker.snapshot()
        walker.walk(0x2000000, 1.0)
        walker.walk(0x12000000, 1.0, speculative=True)
        assert walker.measured_demand_walks == 1
        assert walker.measured_speculative_walks == 1
