"""Result export: CSV / JSON dumps of simulation results.

``SimResult`` is a flat dataclass, so exports are mechanical; derived
metrics (accuracy, coverage, PKI rates) are materialised as columns so the
files are self-contained for external plotting.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.cpu.simulator import SimResult

#: derived properties appended to every export row
_DERIVED = (
    "prefetch_accuracy",
    "prefetch_coverage",
    "pgc_accuracy",
    "pgc_useful_pki",
    "pgc_useless_pki",
    "branch_mpki",
    "branch_mispredict_rate",
)


def result_to_dict(result: SimResult) -> dict:
    """Flatten a result (fields + derived metrics) into one dict."""
    row = dataclasses.asdict(result)
    for name in _DERIVED:
        row[name] = getattr(result, name)
    return row


def write_csv(results: Sequence[SimResult], path: str | Path) -> Path:
    """Write results as CSV; returns the path written."""
    if not results:
        raise ValueError("nothing to export")
    path = Path(path)
    rows = [result_to_dict(r) for r in results]
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(results: Iterable[SimResult], path: str | Path, *, indent: int = 2) -> Path:
    """Write results as a JSON array; returns the path written."""
    path = Path(path)
    rows = [result_to_dict(r) for r in results]
    if not rows:
        raise ValueError("nothing to export")
    path.write_text(json.dumps(rows, indent=indent) + "\n")
    return path


def read_json(path: str | Path) -> list[dict]:
    """Load a previously exported JSON result file."""
    return json.loads(Path(path).read_text())
