"""Parallel, cached execution of experiment-grid cells.

Every grid helper (``run_many``/``run_policies``/the sweeps) lowers its loop
nest to a flat list of :class:`Cell`\\ s — picklable descriptions of one
(workload × spec × overrides) point — and hands them to :func:`run_cells`:

* ``jobs=1`` executes the cells in input order, in process, through exactly
  the code path the serial helpers always used;
* ``jobs>1`` dispatches the cells to a :class:`ProcessPoolExecutor` and
  reassembles the results **in input order**, so callers cannot observe the
  scheduling;
* ``cache=`` (a :class:`~repro.experiments.cache.ResultCache`) makes cells
  content-addressed: a cell whose full config + workload seed was already
  simulated — earlier in the same batch, in a previous call, or in a
  previous process — is served from disk instead of re-simulated.

Determinism: a simulation is a pure function of (workload identity + seed,
config) — trace generation, large-page allocation, and every replacement
decision are seeded — so parallel results are identical to serial ones, and
cache hits are identical to re-runs (floats survive JSON round-trips
exactly).

Journaling under ``jobs>1``: the parent's :class:`RunJournal` holds a shared
file handle that is not fork-safe, so each worker appends to its own JSONL
shard (``shard-<pid>.jsonl`` in a temporary directory) and the parent merges
the shards into its journal once the pool drains.  Per-cell grid coordinates
travel *in the cell* (``Cell.context``), never by mutating a shared
``Observability`` — which is also what keeps the serial path's records free
of stale coordinates.  Timelines and profiling probes are in-process
instruments and remain ``jobs=1`` only.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.cpu.simulator import SimConfig, SimResult, simulate
from repro.experiments.cache import CACHE_SCHEMA, ResultCache, fingerprint
from repro.experiments.runner import RunSpec, policy_factory
from repro.obs.journal import describe_config, describe_workload
from repro.params import SystemParams
from repro.workloads.registry import by_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: callback fired as each cell's result lands: (cell index, result, cached?)
ResultHook = Callable[[int, SimResult, bool], None]


@dataclass(frozen=True)
class Cell:
    """One picklable grid cell: workload identity + spec + overrides.

    ``workload`` is a registry name resolved via
    :func:`~repro.workloads.registry.by_name` in whichever process runs the
    cell; non-registry workloads (e.g. a :class:`FileWorkload`) ride along
    as ``workload_obj`` and must themselves be picklable to cross a process
    boundary.  ``policy`` overrides only the policy *factory* (mirroring the
    sweeps' ``replace(config, policy_factory=...)``), leaving every other
    spec-derived knob — e.g. ISO's extra prefetcher storage — untouched.
    """

    workload: str
    spec: RunSpec
    policy: Optional[str] = None
    params: Optional[SystemParams] = None
    epoch_instructions: Optional[int] = None
    #: journal-context entries for this cell (sweep coordinates etc.);
    #: the run's `spec` is always recorded alongside
    context: Optional[dict[str, Any]] = None
    workload_obj: Optional[Any] = None

    def resolve_workload(self) -> Any:
        """The workload object this cell runs (registry lookup by default)."""
        if self.workload_obj is not None:
            return self.workload_obj
        return by_name(self.workload)


def cell_for(workload: Any, spec: RunSpec, **overrides: Any) -> Cell:
    """Build a Cell, carrying the workload by registry name when possible."""
    name = getattr(workload, "name", str(workload))
    try:
        registered = by_name(name) is workload
    except KeyError:
        registered = False
    return Cell(
        workload=name,
        spec=spec,
        workload_obj=None if registered else workload,
        **overrides,
    )


def build_config(cell: Cell, workload: Any) -> SimConfig:
    """Materialise the cell's SimConfig exactly as the serial helpers do."""
    config = cell.spec.config_for(workload)
    overrides: dict[str, Any] = {}
    if cell.params is not None:
        overrides["params"] = cell.params
    if cell.policy is not None:
        overrides["policy_factory"] = policy_factory(cell.policy, cell.spec.prefetcher)
    if cell.epoch_instructions is not None:
        overrides["epoch_instructions"] = cell.epoch_instructions
    return replace(config, **overrides) if overrides else config


def cell_fingerprint(cell: Cell, workload: Optional[Any] = None) -> str:
    """Content hash of everything the cell's result depends on.

    Covers the workload identity (name, suite, seed, generator knobs), the
    declarative spec, and the fully materialised config dump — every
    hardware parameter included — so *any* config change invalidates the
    entry.
    """
    if workload is None:
        workload = cell.resolve_workload()
    config = build_config(cell, workload)
    spec_dump = asdict(cell.spec)
    # validation is observational — a validated run returns the identical
    # result, so validated and unvalidated cells share cache entries; the
    # packed fast path is bit-identical by contract, so it shares them too
    spec_dump.pop("validate", None)
    spec_dump.pop("packed", None)
    identity = describe_workload(workload)
    for knob in ("store_fraction", "code_lines", "mispredict_rate",
                 "branch_profile", "pcs_per_pattern", "path"):
        value = getattr(workload, knob, None)
        if value is not None:
            identity[knob] = value
    return fingerprint({
        "schema": CACHE_SCHEMA,
        "workload": identity,
        "spec": spec_dump,
        "policy": cell.policy,
        "config": describe_config(config, policy_name=cell.policy or cell.spec.policy),
    })


def execute_cell(cell: Cell, *, obs: Optional["Observability"] = None) -> SimResult:
    """Run one cell in the current process (the `jobs=1` path)."""
    workload = cell.resolve_workload()
    config = build_config(cell, workload)
    if obs is not None:
        with obs.scoped(spec=asdict(cell.spec), **(cell.context or {})):
            return simulate(workload, config, obs=obs)
    return simulate(workload, config, obs=obs)


# ---------------------------------------------------------------------------
# worker side (module-level so both fork and spawn start methods can pickle it)

_WORKER_SHARD_DIR: Optional[str] = None
_WORKER_OBS: Optional["Observability"] = None


def _init_worker(shard_dir: Optional[str]) -> None:
    global _WORKER_SHARD_DIR, _WORKER_OBS
    _WORKER_SHARD_DIR = shard_dir
    _WORKER_OBS = None


def _worker_obs() -> Optional["Observability"]:
    """Lazily open this worker's journal shard (one file per process)."""
    global _WORKER_OBS
    if _WORKER_SHARD_DIR is None:
        return None
    if _WORKER_OBS is None:
        from repro.obs import Observability, RunJournal

        shard = Path(_WORKER_SHARD_DIR) / f"shard-{os.getpid()}.jsonl"
        _WORKER_OBS = Observability(journal=RunJournal(shard))
    return _WORKER_OBS


def _run_cell_worker(index: int, cell: Cell) -> tuple[int, SimResult]:
    return index, execute_cell(cell, obs=_worker_obs())


# ---------------------------------------------------------------------------
# parent side


def run_cells(
    cells: Sequence[Cell],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional["Observability"] = None,
    on_result: Optional[ResultHook] = None,
) -> list[SimResult]:
    """Execute a batch of cells; results come back in input order.

    With a cache, cells are first looked up by fingerprint and identical
    in-flight cells are coalesced: the first occurrence simulates, the rest
    are served from the freshly written entry (they count as cache hits).
    Only simulated cells are journaled — the journal stays a log of actual
    simulations, while cache stats account for the saved ones.
    """
    cells = list(cells)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: list[Optional[SimResult]] = [None] * len(cells)
    keys: list[Optional[str]] = [None] * len(cells)
    duplicates: dict[int, list[int]] = {}
    pending: list[int] = []

    if cache is not None:
        primary: dict[str, int] = {}
        for i, cell in enumerate(cells):
            key = cell_fingerprint(cell)
            keys[i] = key
            if key in primary:  # identical in-flight cell: coalesce
                duplicates.setdefault(primary[key], []).append(i)
                continue
            cached = cache.get(key)
            if cached is not None:
                results[i] = cached
                if on_result is not None:
                    on_result(i, cached, True)
            else:
                primary[key] = i
                pending.append(i)
    else:
        pending = list(range(len(cells)))

    def finish(i: int, result: SimResult) -> None:
        results[i] = result
        if cache is not None:
            cache.put(keys[i], result, meta={"workload": cells[i].workload})
        if on_result is not None:
            on_result(i, result, False)
        for dup in duplicates.get(i, ()):
            dup_result = cache.get(keys[dup]) if cache is not None else None
            results[dup] = dup_result if dup_result is not None else result
            if on_result is not None:
                on_result(dup, results[dup], True)

    workers = min(jobs, len(pending))
    if workers <= 1:
        for i in pending:
            finish(i, execute_cell(cells[i], obs=obs))
    else:
        if obs is not None and (obs.timeline is not None or obs.probe is not None):
            raise ValueError(
                "timeline/probe instruments are in-process only; run with jobs=1 "
                "or pass an Observability bundle with just a journal"
            )
        journal = obs.journal if obs is not None else None
        with tempfile.TemporaryDirectory(prefix="repro-shards-") as shard_dir:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(shard_dir if journal is not None else None,),
            ) as pool:
                futures = [pool.submit(_run_cell_worker, i, cells[i]) for i in pending]
                for future in as_completed(futures):
                    i, result = future.result()
                    finish(i, result)
            if journal is not None:
                from repro.obs.journal import merge_shards

                obs.runs += merge_shards(journal, shard_dir)

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - defensive; every path above fills results
        raise RuntimeError(f"cells {missing} produced no result")
    return results  # type: ignore[return-value]
