"""Parallel, cached execution of experiment-grid cells.

Every grid helper (``run_many``/``run_policies``/the sweeps) lowers its loop
nest to a flat list of :class:`Cell`\\ s — picklable descriptions of one
(workload × spec × overrides) point — and hands them to :func:`run_cells`:

* ``jobs=1`` executes the cells in input order, in process, through exactly
  the code path the serial helpers always used;
* ``jobs>1`` dispatches the cells to a :class:`ProcessPoolExecutor` and
  reassembles the results **in input order**, so callers cannot observe the
  scheduling;
* ``cache=`` (a :class:`~repro.experiments.cache.ResultCache`) makes cells
  content-addressed: a cell whose full config + workload seed was already
  simulated — earlier in the same batch, in a previous call, or in a
  previous process — is served from disk instead of re-simulated.

Scheduling is **workload-affine**: pending cells are grouped by workload
identity and pack window, and each worker receives whole per-workload chunks
— so it materialises (or shm-attaches) a workload's pack once and replays it
across all of that workload's (prefetcher × policy × params) cells, instead
of thrashing the pack cache by round-robining across workloads.

Chunks dispatch **costliest-first**: each chunk's wall-clock is estimated as
pack record count × the relative drive-loop weight of its cells' page-cross
policies (:func:`chunk_cost`), and the pool drains the estimates in
descending order.  On skewed grids — one 10×-longer workload window, or a
handful of heavyweight DRIPPER/PPF cells amid cheap discard ones — this
keeps the long poles from landing last and serialising the batch tail; on
uniform grids it degrades to the old largest-chunk-first order.

With ``shm`` enabled (the default for ``jobs>1``) the parent packs each
workload of the grid exactly once and publishes the columns through a
:class:`~repro.workloads.shm.SharedPackStore`; chunks carry their workload's
:class:`~repro.workloads.shm.PackHandle` and the workers replay zero-copy
views instead of repacking per process.  Cells whose workload cannot be
published (no cross-process identity, empty pack) simply run exactly as
before — shm is a pure transport optimisation on top of the bit-identical
packed fast path.

:func:`grid_session` keeps one worker pool (and one pack store) alive across
several ``run_cells`` batches — ``run_policies`` and the sweeps wrap their
batches in it, so a multi-sweep grid forks once instead of once per sweep
point.

Determinism: a simulation is a pure function of (workload identity + seed,
config) — trace generation, large-page allocation, and every replacement
decision are seeded — so parallel results are identical to serial ones, and
cache hits are identical to re-runs (floats survive JSON round-trips
exactly).

Journaling under ``jobs>1``: the parent's :class:`RunJournal` holds a shared
file handle that is not fork-safe, so each worker chunk appends to its own
JSONL shard (``shard-<pid>-<seq>.jsonl``, closed before the chunk returns)
and the parent merges-and-consumes the shards into its journal once the
batch drains — consuming is what keeps a persistent session's shard
directory from double-counting earlier batches.  Per-cell grid coordinates
travel *in the cell* (``Cell.context``), never by mutating a shared
``Observability`` — which is also what keeps the serial path's records free
of stale coordinates.  Timelines and profiling probes are in-process
instruments and remain ``jobs=1`` only.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Sequence

from time import perf_counter

from repro.cpu.simulator import SimConfig, SimResult, simulate
from repro.experiments.cache import CACHE_SCHEMA, ResultCache, fingerprint
from repro.experiments.runner import RunSpec, policy_factory
from repro.obs.journal import describe_config, describe_workload
from repro.obs.metrics import MetricsSnapshot, get_metrics, reset_metrics
from repro.obs.progress import GridProgress, ProgressSink
from repro.obs.tracing import Tracer, current_tracer, install_tracer, trace_span
from repro.params import SystemParams
from repro.workloads.packed import clear_pack_cache
from repro.workloads.registry import by_name
from repro.workloads.shm import PackHandle, SharedPackStore, install_attachments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.multicore import MixResult
    from repro.obs import Observability

#: callback fired as each cell's result lands: (cell index, result, cached?)
ResultHook = Callable[[int, SimResult, bool], None]

#: in-flight duplicate cells served off a primary cell's fresh entry
#: (the third leg of the result-cache story next to hits/misses)
_COALESCED = get_metrics().counter(
    "result_cache.coalesced", "in-flight duplicate cells coalesced onto a primary")


@dataclass(frozen=True)
class Cell:
    """One picklable grid cell: workload identity + spec + overrides.

    ``workload`` is a registry name resolved via
    :func:`~repro.workloads.registry.by_name` in whichever process runs the
    cell; non-registry workloads (e.g. a :class:`FileWorkload`) ride along
    as ``workload_obj`` and must themselves be picklable to cross a process
    boundary.  ``policy`` overrides only the policy *factory* (mirroring the
    sweeps' ``replace(config, policy_factory=...)``), leaving every other
    spec-derived knob — e.g. ISO's extra prefetcher storage — untouched.
    """

    workload: str
    spec: RunSpec
    policy: Optional[str] = None
    params: Optional[SystemParams] = None
    epoch_instructions: Optional[int] = None
    #: journal-context entries for this cell (sweep coordinates etc.);
    #: the run's `spec` is always recorded alongside
    context: Optional[dict[str, Any]] = None
    workload_obj: Optional[Any] = None

    def resolve_workload(self) -> Any:
        """The workload object this cell runs (registry lookup by default)."""
        if self.workload_obj is not None:
            return self.workload_obj
        return by_name(self.workload)


def cell_for(workload: Any, spec: RunSpec, **overrides: Any) -> Cell:
    """Build a Cell, carrying the workload by registry name when possible."""
    name = getattr(workload, "name", str(workload))
    try:
        registered = by_name(name) is workload
    except KeyError:
        registered = False
    return Cell(
        workload=name,
        spec=spec,
        workload_obj=None if registered else workload,
        **overrides,
    )


def build_config(cell: Cell, workload: Any) -> SimConfig:
    """Materialise the cell's SimConfig exactly as the serial helpers do."""
    config = cell.spec.config_for(workload)
    overrides: dict[str, Any] = {}
    if cell.params is not None:
        overrides["params"] = cell.params
    if cell.policy is not None:
        overrides["policy_factory"] = policy_factory(cell.policy, cell.spec.prefetcher)
    if cell.epoch_instructions is not None:
        overrides["epoch_instructions"] = cell.epoch_instructions
    return replace(config, **overrides) if overrides else config


def cell_fingerprint(cell: Cell, workload: Optional[Any] = None) -> str:
    """Content hash of everything the cell's result depends on.

    Covers the workload identity (name, suite, seed, generator knobs), the
    declarative spec, and the fully materialised config dump — every
    hardware parameter included — so *any* config change invalidates the
    entry.
    """
    if workload is None:
        workload = cell.resolve_workload()
    config = build_config(cell, workload)
    spec_dump = asdict(cell.spec)
    # validation is observational — a validated run returns the identical
    # result, so validated and unvalidated cells share cache entries; the
    # packed fast path is bit-identical by contract, so it shares them too
    spec_dump.pop("validate", None)
    spec_dump.pop("packed", None)
    spec_dump.pop("kernel", None)
    # sampling, by contrast, changes the result (a reconstruction, not a
    # bit-identical rerun) and so must stay in the fingerprint when set;
    # popped when None so pre-sampling cache entries remain addressable
    if spec_dump.get("sampling") is None:
        spec_dump.pop("sampling", None)
    identity = describe_workload(workload)
    for knob in ("store_fraction", "code_lines", "mispredict_rate",
                 "branch_profile", "pcs_per_pattern", "path"):
        value = getattr(workload, knob, None)
        if value is not None:
            identity[knob] = value
    return fingerprint({
        "schema": CACHE_SCHEMA,
        "workload": identity,
        "spec": spec_dump,
        "policy": cell.policy,
        "config": describe_config(config, policy_name=cell.policy or cell.spec.policy),
    })


_GRID_METRICS = None


def _grid_metrics():
    """Cached (cells, instructions, wall-seconds, cell-seconds) instruments.

    Labelled by pid so merged grid snapshots still expose per-worker
    throughput; ``reset_metrics`` keeps instrument objects alive, so caching
    the references here is safe across a worker-side registry reset.
    """
    global _GRID_METRICS
    if _GRID_METRICS is None:
        reg = get_metrics()
        _GRID_METRICS = (
            reg.counter("grid.cells", "grid cells simulated, by executing pid"),
            reg.counter("grid.instructions",
                        "simulated (measured-region) instructions, by pid"),
            reg.counter("grid.wall_seconds", "wall seconds inside cells, by pid"),
            reg.histogram("grid.cell_seconds", "wall-seconds per grid cell"),
        )
    return _GRID_METRICS


def execute_cell(cell: Cell, *, obs: Optional["Observability"] = None,
                 force_packed: bool = False) -> SimResult:
    """Run one cell in the current process (the `jobs=1` path).

    ``force_packed`` routes the run through the packed fast path regardless
    of the spec (bit-identical by contract) — set for cells whose chunk
    shipped an shm pack handle, so the worker replays the attached view.
    """
    workload = cell.resolve_workload()
    config = build_config(cell, workload)
    if force_packed and not config.packed:
        config.packed = True
    policy = cell.policy or cell.spec.policy
    start = perf_counter()
    with trace_span("cell", category="grid",
                    workload=cell.workload, policy=policy):
        if obs is not None:
            with obs.scoped(spec=asdict(cell.spec), **(cell.context or {})):
                result = simulate(workload, config, obs=obs)
        else:
            result = simulate(workload, config, obs=obs)
    wall = perf_counter() - start
    cells, instructions, wall_seconds, cell_seconds = _grid_metrics()
    pid = str(os.getpid())
    cells.inc(pid=pid)
    instructions.inc(result.instructions, pid=pid)
    wall_seconds.inc(wall, pid=pid)
    cell_seconds.observe(wall)
    return result


# ---------------------------------------------------------------------------
# worker side (module-level so both fork and spawn start methods can pickle it)

_WORKER_SHARD_DIR: Optional[str] = None
_WORKER_SEQ = 0


def _init_worker(shard_dir: Optional[str], handles: Sequence[PackHandle] = (),
                 trace: bool = False) -> None:
    global _WORKER_SHARD_DIR, _WORKER_SEQ
    _WORKER_SHARD_DIR = shard_dir
    _WORKER_SEQ = 0
    # a forked worker inherits the parent's pack-cache buffers but would
    # repack on first miss anyway (nothing keeps the inherited entries warm
    # across COW); drop them so worker RSS doesn't double
    clear_pack_cache()
    # it also inherits the parent's metric *values* (warm-up packs, earlier
    # batches) — reset them so the per-chunk deltas this worker ships back
    # count only its own work, never the parent's
    reset_metrics()
    # ...and the parent's tracer, whose buffered spans and pid are not this
    # process's; install a fresh worker tracer (or none) in its place
    install_tracer(Tracer(role="worker") if trace else None)
    if handles:
        install_attachments(handles)


def _chunk_obs() -> Optional["Observability"]:
    """A fresh journal shard for one chunk (closed before the chunk returns).

    Per-chunk (not per-process) shards let a persistent session merge *and
    delete* shards after every batch: a long-lived per-process file would
    still be held open by the worker when the parent consumed it.
    """
    global _WORKER_SEQ
    if _WORKER_SHARD_DIR is None:
        return None
    from repro.obs import Observability, RunJournal

    _WORKER_SEQ += 1
    shard = Path(_WORKER_SHARD_DIR) / f"shard-{os.getpid():08d}-{_WORKER_SEQ:06d}.jsonl"
    return Observability(journal=RunJournal(shard))


def _run_chunk_worker(
    items: Sequence[tuple[int, Cell]],
    handles: Sequence[PackHandle],
    use_journal: bool,
    force_packed: bool,
    trace_dir: Optional[str] = None,
) -> tuple[list[tuple[int, SimResult]], MetricsSnapshot]:
    """Run one workload-affine chunk of cells in this worker process.

    Returns the chunk's results plus a metrics *delta* — everything this
    worker's registry accumulated during the chunk, relative to a snapshot
    taken at entry.  Deltas are commutative, so the parent can merge them in
    completion order.  With ``trace_dir`` set, buffered spans are flushed to
    a per-chunk shard there (the parent absorbs them after the batch).
    """
    if handles:
        # the chunk's pack may have been published after this pool started,
        # so handles ride with the chunk (registering twice is a no-op)
        install_attachments(handles)
    if trace_dir is not None and current_tracer() is None:
        # tracing was enabled after this pool forked (persistent session)
        install_tracer(Tracer(role="worker"))
    registry = get_metrics()
    mark = registry.snapshot()
    obs = _chunk_obs() if use_journal else None
    try:
        out = [(i, execute_cell(cell, obs=obs, force_packed=force_packed))
               for i, cell in items]
    finally:
        if obs is not None:
            obs.close()
    delta = registry.snapshot().delta(mark)
    if trace_dir is not None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.flush_shard(trace_dir)
    return out, delta


# ---------------------------------------------------------------------------
# parent side: grid sessions (persistent pool + shared pack store)


class _GridSession:
    """One worker pool + pack store + shard dir, reusable across batches."""

    def __init__(self, jobs: int, shm: bool):
        self.jobs = jobs
        self.shm = shm
        self.store: Optional[SharedPackStore] = SharedPackStore() if shm else None
        self.shard_dir = tempfile.mkdtemp(prefix="repro-shards-")
        # trace shards live in a subdirectory so the journal's shard merge
        # (non-recursive glob over shard_dir) never sees them
        self.trace_dir = os.path.join(self.shard_dir, "trace")
        os.makedirs(self.trace_dir, exist_ok=True)
        self._pool: Optional[ProcessPoolExecutor] = None

    def pool(self) -> ProcessPoolExecutor:
        """The (lazily forked) worker pool; initial handles ride along."""
        if self._pool is None:
            handles = tuple(self.store.handles()) if self.store is not None else ()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.shard_dir, handles, current_tracer() is not None),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down, unlink every shm segment, drop the shard dir."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self.store is not None:
            self.store.close()
        shutil.rmtree(self.shard_dir, ignore_errors=True)


_SESSION: Optional[_GridSession] = None


@contextmanager
def grid_session(jobs: int = 1, shm: Optional[bool] = None) -> Iterator[Optional[_GridSession]]:
    """Reuse one pool/pack store across every ``run_cells`` batch inside.

    ``run_policies`` and the sweeps wrap their batches in this, so a grid
    spanning several sweep points forks its workers once and publishes each
    workload's pack once.  Nesting is a no-op (the outermost session wins),
    as is ``jobs<=1``.  ``shm=None`` means "on for parallel runs".
    """
    global _SESSION
    if _SESSION is not None or jobs <= 1:
        yield _SESSION
        return
    session = _GridSession(jobs, shm if shm is not None else True)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = None
        session.close()


def _affine_groups(
    cells: Sequence[Cell], pending: Sequence[int]
) -> list[tuple[list[int], Any, int, int]]:
    """Group pending cell indices by (workload identity, pack window).

    Returns ``(indices, workload, warmup, sim)`` per group, in first-seen
    order.  The window comes from each cell's *built* config (so per-suite
    adjustments like QMM half-length windows are respected), which is also
    exactly the window ``get_packed`` will be called with inside the run.
    """
    groups: dict[tuple, tuple[list[int], Any, int, int]] = {}
    order: list[tuple] = []
    for i in pending:
        cell = cells[i]
        workload = cell.resolve_workload()
        config = build_config(cell, workload)
        key = (
            cell.workload,
            id(cell.workload_obj) if cell.workload_obj is not None else None,
            config.warmup_instructions,
            config.sim_instructions,
        )
        group = groups.get(key)
        if group is None:
            groups[key] = group = ([], workload, config.warmup_instructions,
                                   config.sim_instructions)
            order.append(key)
        group[0].append(i)
    return [groups[key] for key in order]


#: relative drive-loop cost per page-cross policy, against the discard
#: baseline — adaptive policies run filter lookups and epoch threshold
#: feedback on top of the shared memory-system work, PPF evaluates a
#: perceptron per page-cross candidate.  Coarse by design: scheduling only
#: needs the *ordering* of chunk estimates, not their absolute scale, so
#: unknown names defaulting to 1.0 is safe.
_POLICY_COST = {
    "discard": 1.0, "discard-pgc": 1.0, "discard-ptw": 1.0,
    "permit": 1.1, "permit-pgc": 1.1, "iso": 1.1, "iso-storage": 1.1,
    "dripper": 1.3, "dripper-sf": 1.4,
    "ppf": 1.6, "ppf+dthr": 1.6, "ppf-dthr": 1.6,
}


def policy_cost_weight(name: str) -> float:
    """Relative drive-loop weight of one page-cross policy (1.0 = discard)."""
    return _POLICY_COST.get(name.lower(), 1.0)


def chunk_cost(cells: Sequence[Any], indices: Sequence[int],
               records: int) -> float:
    """Estimated wall-clock weight of one workload-affine chunk.

    ``records`` is the chunk's pack length (every cell replays the whole
    pack, so per-cell work is proportional to it); each cell contributes
    ``records × policy_cost_weight(policy)``.  Used to dispatch chunks
    costliest-first — see the module docstring.
    """
    return float(records) * sum(
        policy_cost_weight(cells[i].policy or cells[i].spec.policy)
        for i in indices)


def run_cells(
    cells: Sequence[Cell],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional["Observability"] = None,
    on_result: Optional[ResultHook] = None,
    shm: Optional[bool] = None,
    progress: Optional[ProgressSink] = None,
) -> list[SimResult]:
    """Execute a batch of cells; results come back in input order.

    With a cache, cells are first looked up by fingerprint and identical
    in-flight cells are coalesced: the first occurrence simulates, the rest
    are served from the freshly written entry (they count as cache hits).
    Only simulated cells are journaled — the journal stays a log of actual
    simulations, while cache stats account for the saved ones.

    ``shm=None`` enables the shared pack store whenever ``jobs>1`` (pass
    ``False`` to force per-worker packing); inside a :func:`grid_session`
    the session's setting wins.

    ``progress`` (see :mod:`repro.obs.progress`) receives one structured
    event per grid milestone: batch start, each landed cell (with ETA and
    aggregate throughput), failed chunks, and batch end.
    """
    cells = list(cells)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: list[Optional[SimResult]] = [None] * len(cells)
    keys: list[Optional[str]] = [None] * len(cells)
    duplicates: dict[int, list[int]] = {}
    pending: list[int] = []

    if cache is not None:
        primary: dict[str, int] = {}
        for i, cell in enumerate(cells):
            key = cell_fingerprint(cell)
            keys[i] = key
            if key in primary:  # identical in-flight cell: coalesce
                duplicates.setdefault(primary[key], []).append(i)
                continue
            cached = cache.get(key)
            if cached is not None:
                results[i] = cached
                if on_result is not None:
                    on_result(i, cached, True)
            else:
                primary[key] = i
                pending.append(i)
    else:
        pending = list(range(len(cells)))

    prog = GridProgress(progress) if progress is not None else None
    if prog is not None:
        prog.start(len(cells), sum(1 for r in results if r is not None))

    def _cell_policy(i: int) -> str:
        return cells[i].policy or cells[i].spec.policy

    def finish(i: int, result: SimResult) -> None:
        results[i] = result
        if cache is not None:
            cache.put(keys[i], result, meta={"workload": cells[i].workload})
        if on_result is not None:
            on_result(i, result, False)
        if prog is not None:
            prog.cell_finish(i, cells[i].workload, _cell_policy(i),
                             cached=False, instructions=result.instructions)
        for dup in duplicates.get(i, ()):
            dup_result = cache.get(keys[dup]) if cache is not None else None
            results[dup] = dup_result if dup_result is not None else result
            _COALESCED.inc()
            if on_result is not None:
                on_result(dup, results[dup], True)
            if prog is not None:
                prog.cell_finish(dup, cells[dup].workload, _cell_policy(dup),
                                 cached=True,
                                 instructions=results[dup].instructions)

    workers = min(jobs, len(pending))
    if workers <= 1:
        for i in pending:
            if prog is not None:
                prog.cell_start(i, cells[i].workload, _cell_policy(i))
            finish(i, execute_cell(cells[i], obs=obs))
    else:
        if obs is not None and (obs.timeline is not None or obs.probe is not None):
            raise ValueError(
                "timeline/probe instruments are in-process only; run with jobs=1 "
                "or pass an Observability bundle with just a journal"
            )
        journal = obs.journal if obs is not None else None
        session = _SESSION
        ephemeral = session is None
        if ephemeral:
            session = _GridSession(workers, shm if shm is not None else True)
        try:
            groups = _affine_groups(cells, pending)
            # split each workload's run into chunks small enough to load-
            # balance, but never split a chunk across workloads
            chunk_size = max(1, -(-len(pending) // (workers * 2)))
            chunks: list[tuple[list[int], Optional[PackHandle], float]] = []
            for indices, workload, warmup, sim in groups:
                handle = None
                if session.store is not None:
                    handle = session.store.publish(workload, warmup, sim)
                # pack length when published; the window is the proxy
                # otherwise (records ≈ instructions for gap-light traces)
                records = handle.n_records if handle is not None else warmup + sim
                for at in range(0, len(indices), chunk_size):
                    piece = indices[at:at + chunk_size]
                    chunks.append((piece, handle, chunk_cost(cells, piece, records)))
            chunks.sort(key=lambda c: -c[2])  # costliest first
            pool = session.pool()
            tracing = current_tracer() is not None
            futures = {
                pool.submit(
                    _run_chunk_worker,
                    [(i, cells[i]) for i in piece],
                    (handle,) if handle is not None else (),
                    journal is not None,
                    handle is not None,
                    session.trace_dir if tracing else None,
                ): piece
                for piece, handle, _cost in chunks
            }
            registry = get_metrics()
            for future in as_completed(futures):
                try:
                    landed, delta = future.result()
                except BaseException as exc:
                    if prog is not None:
                        prog.cell_failed(futures[future], exc)
                    raise
                # deltas are commutative/associative, so completion order —
                # which varies run to run — cannot change the merged totals
                registry.merge(delta)
                for i, result in landed:
                    finish(i, result)
            if journal is not None:
                from repro.obs.journal import merge_shards

                obs.runs += merge_shards(journal, session.shard_dir, consume=True)
        finally:
            tracer = current_tracer()
            if tracer is not None:
                tracer.absorb_shards(session.trace_dir)
            if ephemeral:
                session.close()

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - defensive; every path above fills results
        raise RuntimeError(f"cells {missing} produced no result")
    if prog is not None:
        prog.end()
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# multi-core mixes: one mix = one affine chunk

@dataclass(frozen=True)
class MixCell:
    """One picklable multi-core grid cell: a workload mix + spec + policy.

    ``workloads`` are registry names (mixes come from
    :func:`~repro.workloads.make_mixes`, which draws from the registry), so
    a mix cell crosses process boundaries by name alone.  ``policy``
    overrides only the policy *factory*, exactly like :class:`Cell`.
    """

    workloads: tuple[str, ...]
    spec: RunSpec
    policy: Optional[str] = None
    mix_id: Optional[int] = None

    def resolve_workloads(self) -> list[Any]:
        """The workload objects this mix runs, in core order."""
        return [by_name(name) for name in self.workloads]

    def label(self) -> str:
        """Display label for progress lines (``mix-<id>``)."""
        return f"mix-{self.mix_id}" if self.mix_id is not None else "mix"


def mix_cell_for(mix: Sequence[Any], spec: RunSpec, **overrides: Any) -> MixCell:
    """Build a MixCell from workload objects (carried by registry name)."""
    return MixCell(
        workloads=tuple(getattr(w, "name", str(w)) for w in mix),
        spec=spec,
        **overrides,
    )


def build_mix_config(cell: MixCell) -> SimConfig:
    """Materialise the mix's shared SimConfig (nominal windows; per-core
    QMM halving is ``simulate_mix``'s job)."""
    config = cell.spec.base_config()
    if cell.policy is not None:
        config.policy_factory = policy_factory(cell.policy, cell.spec.prefetcher)
    return config


def execute_mix_cell(
    cell: MixCell, *, obs: Optional["Observability"] = None,
    force_packed: bool = False,
) -> "MixResult":
    """Run one mix cell in the current process (the `jobs=1` path).

    ``force_packed`` routes the mix through the packed drive loop
    (bit-identical by contract; see
    :func:`repro.validate.check_mix_packed_matches_generator`) — set for
    mixes dispatched to workers, so each core replays its shm-attached or
    worker-local pack instead of regenerating records per policy.
    """
    from repro.cpu.multicore import simulate_mix

    workloads = cell.resolve_workloads()
    config = build_mix_config(cell)
    if force_packed and not config.packed:
        config.packed = True
    policy = cell.policy or cell.spec.policy
    start = perf_counter()
    with trace_span("mix-cell", category="grid",
                    mix=cell.mix_id, policy=policy, cores=len(workloads)):
        if obs is not None:
            with obs.scoped(spec=asdict(cell.spec)):
                result = simulate_mix(workloads, config, obs=obs,
                                      mix_id=cell.mix_id)
        else:
            result = simulate_mix(workloads, config, mix_id=cell.mix_id)
    wall = perf_counter() - start
    cells, instructions, wall_seconds, cell_seconds = _grid_metrics()
    pid = str(os.getpid())
    cells.inc(pid=pid)
    instructions.inc(sum(r.instructions for r in result.results), pid=pid)
    wall_seconds.inc(wall, pid=pid)
    cell_seconds.observe(wall)
    return result


def _run_mix_chunk_worker(
    items: Sequence[tuple[int, MixCell]],
    handles: Sequence[PackHandle],
    use_journal: bool,
    force_packed: bool,
    trace_dir: Optional[str] = None,
) -> tuple[list[tuple[int, "MixResult"]], MetricsSnapshot]:
    """Run one mix chunk in this worker process (mirrors _run_chunk_worker)."""
    if handles:
        install_attachments(handles)
    if trace_dir is not None and current_tracer() is None:
        install_tracer(Tracer(role="worker"))
    registry = get_metrics()
    mark = registry.snapshot()
    obs = _chunk_obs() if use_journal else None
    try:
        out = [(i, execute_mix_cell(cell, obs=obs, force_packed=force_packed))
               for i, cell in items]
    finally:
        if obs is not None:
            obs.close()
    delta = registry.snapshot().delta(mark)
    if trace_dir is not None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.flush_shard(trace_dir)
    return out, delta


#: callback fired as each mix's result lands: (cell index, result, cached?)
MixResultHook = Callable[[int, "MixResult", bool], None]


def run_mix_cells(
    cells: Sequence[MixCell],
    *,
    jobs: int = 1,
    obs: Optional["Observability"] = None,
    on_result: Optional[MixResultHook] = None,
    shm: Optional[bool] = None,
    progress: Optional[ProgressSink] = None,
) -> list["MixResult"]:
    """Execute a batch of mix cells; results come back in input order.

    Scheduling is mix-affine: **one mix = one chunk**, so a worker steps all
    eight cores of a mix against their shared LLC+DRAM without interleaving
    other work.  The parent publishes every mix workload's pack (at its
    QMM-halved window where applicable) through the session's shared store
    exactly once — mixes overlap heavily in workloads, so later mixes attach
    the columns the first one paid for.  Worker-dispatched mixes run the
    packed drive loop (bit-identical to the serial generator loop); there is
    no result cache at the mix level — the cacheable unit is the *isolation*
    run, which is an ordinary :class:`Cell`.
    """
    cells = list(cells)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: list[Optional["MixResult"]] = [None] * len(cells)
    prog = GridProgress(progress) if progress is not None else None
    if prog is not None:
        prog.start(len(cells), 0)

    def _policy(i: int) -> str:
        return cells[i].policy or cells[i].spec.policy

    def finish(i: int, result: "MixResult") -> None:
        results[i] = result
        if on_result is not None:
            on_result(i, result, False)
        if prog is not None:
            prog.cell_finish(
                i, cells[i].label(), _policy(i), cached=False,
                instructions=sum(r.instructions for r in result.results))

    workers = min(jobs, len(cells))
    if workers <= 1:
        for i in range(len(cells)):
            if prog is not None:
                prog.cell_start(i, cells[i].label(), _policy(i))
            finish(i, execute_mix_cell(cells[i], obs=obs))
    else:
        if obs is not None and (obs.timeline is not None or obs.probe is not None):
            raise ValueError(
                "timeline/probe instruments are in-process only; run with jobs=1 "
                "or pass an Observability bundle with just a journal"
            )
        journal = obs.journal if obs is not None else None
        session = _SESSION
        ephemeral = session is None
        if ephemeral:
            session = _GridSession(workers, shm if shm is not None else True)
        try:
            chunks: list[tuple[int, tuple[PackHandle, ...], float]] = []
            for i, cell in enumerate(cells):
                handles: list[PackHandle] = []
                config = build_mix_config(cell)
                weight = policy_cost_weight(cell.policy or cell.spec.policy)
                cost = 0.0
                for workload in cell.resolve_workloads():
                    warmup, sim = (config.warmup_instructions,
                                   config.sim_instructions)
                    if workload.suite.startswith("QMM"):
                        warmup, sim = warmup // 2, sim // 2
                    handle = None
                    if session.store is not None:
                        handle = session.store.publish(workload, warmup, sim)
                        if handle is not None:
                            handles.append(handle)
                    records = (handle.n_records if handle is not None
                               else warmup + sim)
                    cost += records * weight
                chunks.append((i, tuple(handles), cost))
            # a mix's wall-clock tracks its total per-core record mass —
            # dispatch the heaviest mixes first so they never land last
            chunks.sort(key=lambda c: -c[2])
            pool = session.pool()
            tracing = current_tracer() is not None
            futures = {
                pool.submit(
                    _run_mix_chunk_worker,
                    [(i, cells[i])],
                    handles,
                    journal is not None,
                    True,  # workers always run the packed mix loop
                    session.trace_dir if tracing else None,
                ): [i]
                for i, handles, _cost in chunks
            }
            registry = get_metrics()
            for future in as_completed(futures):
                try:
                    landed, delta = future.result()
                except BaseException as exc:
                    if prog is not None:
                        prog.cell_failed(futures[future], exc)
                    raise
                registry.merge(delta)
                for i, result in landed:
                    finish(i, result)
            if journal is not None:
                from repro.obs.journal import merge_shards

                obs.runs += merge_shards(journal, session.shard_dir, consume=True)
        finally:
            tracer = current_tracer()
            if tracer is not None:
                tracer.absorb_shards(session.trace_dir)
            if ephemeral:
                session.close()

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - defensive; every path above fills results
        raise RuntimeError(f"mix cells {missing} produced no result")
    if prog is not None:
        prog.end()
    return results  # type: ignore[return-value]
