"""Parallel, cached execution of experiment-grid cells.

Every grid helper (``run_many``/``run_policies``/the sweeps) lowers its loop
nest to a flat list of :class:`Cell`\\ s — picklable descriptions of one
(workload × spec × overrides) point — and hands them to :func:`run_cells`:

* ``jobs=1`` executes the cells in input order, in process, through exactly
  the code path the serial helpers always used;
* ``jobs>1`` dispatches the cells to a :class:`ProcessPoolExecutor` and
  reassembles the results **in input order**, so callers cannot observe the
  scheduling;
* ``cache=`` (a :class:`~repro.experiments.cache.ResultCache`) makes cells
  content-addressed: a cell whose full config + workload seed was already
  simulated — earlier in the same batch, in a previous call, or in a
  previous process — is served from disk instead of re-simulated.

Scheduling is **workload-affine**: pending cells are grouped by workload
identity and pack window, and each worker receives whole per-workload chunks
— so it materialises (or shm-attaches) a workload's pack once and replays it
across all of that workload's (prefetcher × policy × params) cells, instead
of thrashing the pack cache by round-robining across workloads.

With ``shm`` enabled (the default for ``jobs>1``) the parent packs each
workload of the grid exactly once and publishes the columns through a
:class:`~repro.workloads.shm.SharedPackStore`; chunks carry their workload's
:class:`~repro.workloads.shm.PackHandle` and the workers replay zero-copy
views instead of repacking per process.  Cells whose workload cannot be
published (no cross-process identity, empty pack) simply run exactly as
before — shm is a pure transport optimisation on top of the bit-identical
packed fast path.

:func:`grid_session` keeps one worker pool (and one pack store) alive across
several ``run_cells`` batches — ``run_policies`` and the sweeps wrap their
batches in it, so a multi-sweep grid forks once instead of once per sweep
point.

Determinism: a simulation is a pure function of (workload identity + seed,
config) — trace generation, large-page allocation, and every replacement
decision are seeded — so parallel results are identical to serial ones, and
cache hits are identical to re-runs (floats survive JSON round-trips
exactly).

Journaling under ``jobs>1``: the parent's :class:`RunJournal` holds a shared
file handle that is not fork-safe, so each worker chunk appends to its own
JSONL shard (``shard-<pid>-<seq>.jsonl``, closed before the chunk returns)
and the parent merges-and-consumes the shards into its journal once the
batch drains — consuming is what keeps a persistent session's shard
directory from double-counting earlier batches.  Per-cell grid coordinates
travel *in the cell* (``Cell.context``), never by mutating a shared
``Observability`` — which is also what keeps the serial path's records free
of stale coordinates.  Timelines and profiling probes are in-process
instruments and remain ``jobs=1`` only.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Sequence

from repro.cpu.simulator import SimConfig, SimResult, simulate
from repro.experiments.cache import CACHE_SCHEMA, ResultCache, fingerprint
from repro.experiments.runner import RunSpec, policy_factory
from repro.obs.journal import describe_config, describe_workload
from repro.params import SystemParams
from repro.workloads.packed import clear_pack_cache
from repro.workloads.registry import by_name
from repro.workloads.shm import PackHandle, SharedPackStore, install_attachments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: callback fired as each cell's result lands: (cell index, result, cached?)
ResultHook = Callable[[int, SimResult, bool], None]


@dataclass(frozen=True)
class Cell:
    """One picklable grid cell: workload identity + spec + overrides.

    ``workload`` is a registry name resolved via
    :func:`~repro.workloads.registry.by_name` in whichever process runs the
    cell; non-registry workloads (e.g. a :class:`FileWorkload`) ride along
    as ``workload_obj`` and must themselves be picklable to cross a process
    boundary.  ``policy`` overrides only the policy *factory* (mirroring the
    sweeps' ``replace(config, policy_factory=...)``), leaving every other
    spec-derived knob — e.g. ISO's extra prefetcher storage — untouched.
    """

    workload: str
    spec: RunSpec
    policy: Optional[str] = None
    params: Optional[SystemParams] = None
    epoch_instructions: Optional[int] = None
    #: journal-context entries for this cell (sweep coordinates etc.);
    #: the run's `spec` is always recorded alongside
    context: Optional[dict[str, Any]] = None
    workload_obj: Optional[Any] = None

    def resolve_workload(self) -> Any:
        """The workload object this cell runs (registry lookup by default)."""
        if self.workload_obj is not None:
            return self.workload_obj
        return by_name(self.workload)


def cell_for(workload: Any, spec: RunSpec, **overrides: Any) -> Cell:
    """Build a Cell, carrying the workload by registry name when possible."""
    name = getattr(workload, "name", str(workload))
    try:
        registered = by_name(name) is workload
    except KeyError:
        registered = False
    return Cell(
        workload=name,
        spec=spec,
        workload_obj=None if registered else workload,
        **overrides,
    )


def build_config(cell: Cell, workload: Any) -> SimConfig:
    """Materialise the cell's SimConfig exactly as the serial helpers do."""
    config = cell.spec.config_for(workload)
    overrides: dict[str, Any] = {}
    if cell.params is not None:
        overrides["params"] = cell.params
    if cell.policy is not None:
        overrides["policy_factory"] = policy_factory(cell.policy, cell.spec.prefetcher)
    if cell.epoch_instructions is not None:
        overrides["epoch_instructions"] = cell.epoch_instructions
    return replace(config, **overrides) if overrides else config


def cell_fingerprint(cell: Cell, workload: Optional[Any] = None) -> str:
    """Content hash of everything the cell's result depends on.

    Covers the workload identity (name, suite, seed, generator knobs), the
    declarative spec, and the fully materialised config dump — every
    hardware parameter included — so *any* config change invalidates the
    entry.
    """
    if workload is None:
        workload = cell.resolve_workload()
    config = build_config(cell, workload)
    spec_dump = asdict(cell.spec)
    # validation is observational — a validated run returns the identical
    # result, so validated and unvalidated cells share cache entries; the
    # packed fast path is bit-identical by contract, so it shares them too
    spec_dump.pop("validate", None)
    spec_dump.pop("packed", None)
    identity = describe_workload(workload)
    for knob in ("store_fraction", "code_lines", "mispredict_rate",
                 "branch_profile", "pcs_per_pattern", "path"):
        value = getattr(workload, knob, None)
        if value is not None:
            identity[knob] = value
    return fingerprint({
        "schema": CACHE_SCHEMA,
        "workload": identity,
        "spec": spec_dump,
        "policy": cell.policy,
        "config": describe_config(config, policy_name=cell.policy or cell.spec.policy),
    })


def execute_cell(cell: Cell, *, obs: Optional["Observability"] = None,
                 force_packed: bool = False) -> SimResult:
    """Run one cell in the current process (the `jobs=1` path).

    ``force_packed`` routes the run through the packed fast path regardless
    of the spec (bit-identical by contract) — set for cells whose chunk
    shipped an shm pack handle, so the worker replays the attached view.
    """
    workload = cell.resolve_workload()
    config = build_config(cell, workload)
    if force_packed and not config.packed:
        config.packed = True
    if obs is not None:
        with obs.scoped(spec=asdict(cell.spec), **(cell.context or {})):
            return simulate(workload, config, obs=obs)
    return simulate(workload, config, obs=obs)


# ---------------------------------------------------------------------------
# worker side (module-level so both fork and spawn start methods can pickle it)

_WORKER_SHARD_DIR: Optional[str] = None
_WORKER_SEQ = 0


def _init_worker(shard_dir: Optional[str], handles: Sequence[PackHandle] = ()) -> None:
    global _WORKER_SHARD_DIR, _WORKER_SEQ
    _WORKER_SHARD_DIR = shard_dir
    _WORKER_SEQ = 0
    # a forked worker inherits the parent's pack-cache buffers but would
    # repack on first miss anyway (nothing keeps the inherited entries warm
    # across COW); drop them so worker RSS doesn't double
    clear_pack_cache()
    if handles:
        install_attachments(handles)


def _chunk_obs() -> Optional["Observability"]:
    """A fresh journal shard for one chunk (closed before the chunk returns).

    Per-chunk (not per-process) shards let a persistent session merge *and
    delete* shards after every batch: a long-lived per-process file would
    still be held open by the worker when the parent consumed it.
    """
    global _WORKER_SEQ
    if _WORKER_SHARD_DIR is None:
        return None
    from repro.obs import Observability, RunJournal

    _WORKER_SEQ += 1
    shard = Path(_WORKER_SHARD_DIR) / f"shard-{os.getpid():08d}-{_WORKER_SEQ:06d}.jsonl"
    return Observability(journal=RunJournal(shard))


def _run_chunk_worker(
    items: Sequence[tuple[int, Cell]],
    handles: Sequence[PackHandle],
    use_journal: bool,
    force_packed: bool,
) -> list[tuple[int, SimResult]]:
    """Run one workload-affine chunk of cells in this worker process."""
    if handles:
        # the chunk's pack may have been published after this pool started,
        # so handles ride with the chunk (registering twice is a no-op)
        install_attachments(handles)
    obs = _chunk_obs() if use_journal else None
    try:
        return [(i, execute_cell(cell, obs=obs, force_packed=force_packed))
                for i, cell in items]
    finally:
        if obs is not None:
            obs.close()


# ---------------------------------------------------------------------------
# parent side: grid sessions (persistent pool + shared pack store)


class _GridSession:
    """One worker pool + pack store + shard dir, reusable across batches."""

    def __init__(self, jobs: int, shm: bool):
        self.jobs = jobs
        self.shm = shm
        self.store: Optional[SharedPackStore] = SharedPackStore() if shm else None
        self.shard_dir = tempfile.mkdtemp(prefix="repro-shards-")
        self._pool: Optional[ProcessPoolExecutor] = None

    def pool(self) -> ProcessPoolExecutor:
        """The (lazily forked) worker pool; initial handles ride along."""
        if self._pool is None:
            handles = tuple(self.store.handles()) if self.store is not None else ()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.shard_dir, handles),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down, unlink every shm segment, drop the shard dir."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self.store is not None:
            self.store.close()
        shutil.rmtree(self.shard_dir, ignore_errors=True)


_SESSION: Optional[_GridSession] = None


@contextmanager
def grid_session(jobs: int = 1, shm: Optional[bool] = None) -> Iterator[Optional[_GridSession]]:
    """Reuse one pool/pack store across every ``run_cells`` batch inside.

    ``run_policies`` and the sweeps wrap their batches in this, so a grid
    spanning several sweep points forks its workers once and publishes each
    workload's pack once.  Nesting is a no-op (the outermost session wins),
    as is ``jobs<=1``.  ``shm=None`` means "on for parallel runs".
    """
    global _SESSION
    if _SESSION is not None or jobs <= 1:
        yield _SESSION
        return
    session = _GridSession(jobs, shm if shm is not None else True)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = None
        session.close()


def _affine_groups(
    cells: Sequence[Cell], pending: Sequence[int]
) -> list[tuple[list[int], Any, int, int]]:
    """Group pending cell indices by (workload identity, pack window).

    Returns ``(indices, workload, warmup, sim)`` per group, in first-seen
    order.  The window comes from each cell's *built* config (so per-suite
    adjustments like QMM half-length windows are respected), which is also
    exactly the window ``get_packed`` will be called with inside the run.
    """
    groups: dict[tuple, tuple[list[int], Any, int, int]] = {}
    order: list[tuple] = []
    for i in pending:
        cell = cells[i]
        workload = cell.resolve_workload()
        config = build_config(cell, workload)
        key = (
            cell.workload,
            id(cell.workload_obj) if cell.workload_obj is not None else None,
            config.warmup_instructions,
            config.sim_instructions,
        )
        group = groups.get(key)
        if group is None:
            groups[key] = group = ([], workload, config.warmup_instructions,
                                   config.sim_instructions)
            order.append(key)
        group[0].append(i)
    return [groups[key] for key in order]


def run_cells(
    cells: Sequence[Cell],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    obs: Optional["Observability"] = None,
    on_result: Optional[ResultHook] = None,
    shm: Optional[bool] = None,
) -> list[SimResult]:
    """Execute a batch of cells; results come back in input order.

    With a cache, cells are first looked up by fingerprint and identical
    in-flight cells are coalesced: the first occurrence simulates, the rest
    are served from the freshly written entry (they count as cache hits).
    Only simulated cells are journaled — the journal stays a log of actual
    simulations, while cache stats account for the saved ones.

    ``shm=None`` enables the shared pack store whenever ``jobs>1`` (pass
    ``False`` to force per-worker packing); inside a :func:`grid_session`
    the session's setting wins.
    """
    cells = list(cells)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    results: list[Optional[SimResult]] = [None] * len(cells)
    keys: list[Optional[str]] = [None] * len(cells)
    duplicates: dict[int, list[int]] = {}
    pending: list[int] = []

    if cache is not None:
        primary: dict[str, int] = {}
        for i, cell in enumerate(cells):
            key = cell_fingerprint(cell)
            keys[i] = key
            if key in primary:  # identical in-flight cell: coalesce
                duplicates.setdefault(primary[key], []).append(i)
                continue
            cached = cache.get(key)
            if cached is not None:
                results[i] = cached
                if on_result is not None:
                    on_result(i, cached, True)
            else:
                primary[key] = i
                pending.append(i)
    else:
        pending = list(range(len(cells)))

    def finish(i: int, result: SimResult) -> None:
        results[i] = result
        if cache is not None:
            cache.put(keys[i], result, meta={"workload": cells[i].workload})
        if on_result is not None:
            on_result(i, result, False)
        for dup in duplicates.get(i, ()):
            dup_result = cache.get(keys[dup]) if cache is not None else None
            results[dup] = dup_result if dup_result is not None else result
            if on_result is not None:
                on_result(dup, results[dup], True)

    workers = min(jobs, len(pending))
    if workers <= 1:
        for i in pending:
            finish(i, execute_cell(cells[i], obs=obs))
    else:
        if obs is not None and (obs.timeline is not None or obs.probe is not None):
            raise ValueError(
                "timeline/probe instruments are in-process only; run with jobs=1 "
                "or pass an Observability bundle with just a journal"
            )
        journal = obs.journal if obs is not None else None
        session = _SESSION
        ephemeral = session is None
        if ephemeral:
            session = _GridSession(workers, shm if shm is not None else True)
        try:
            groups = _affine_groups(cells, pending)
            # split each workload's run into chunks small enough to load-
            # balance, but never split a chunk across workloads
            chunk_size = max(1, -(-len(pending) // (workers * 2)))
            chunks: list[tuple[list[int], Optional[PackHandle]]] = []
            for indices, workload, warmup, sim in groups:
                handle = None
                if session.store is not None:
                    handle = session.store.publish(workload, warmup, sim)
                for at in range(0, len(indices), chunk_size):
                    chunks.append((indices[at:at + chunk_size], handle))
            chunks.sort(key=lambda c: -len(c[0]))  # largest first
            pool = session.pool()
            futures = [
                pool.submit(
                    _run_chunk_worker,
                    [(i, cells[i]) for i in piece],
                    (handle,) if handle is not None else (),
                    journal is not None,
                    handle is not None,
                )
                for piece, handle in chunks
            ]
            for future in as_completed(futures):
                for i, result in future.result():
                    finish(i, result)
            if journal is not None:
                from repro.obs.journal import merge_shards

                obs.runs += merge_shards(journal, session.shard_dir, consume=True)
        finally:
            if ephemeral:
                session.close()

    missing = [i for i, r in enumerate(results) if r is None]
    if missing:  # pragma: no cover - defensive; every path above fills results
        raise RuntimeError(f"cells {missing} produced no result")
    return results  # type: ignore[return-value]
