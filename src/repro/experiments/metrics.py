"""Aggregate metrics used across the evaluation (geomean speedups etc.)."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.cpu.simulator import SimResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_speedup(results: Sequence[SimResult], baselines: Sequence[SimResult]) -> float:
    """Geometric-mean IPC speedup of `results` over per-workload `baselines`."""
    if len(results) != len(baselines):
        raise ValueError(f"{len(results)} results vs {len(baselines)} baselines")
    return geomean([r.speedup_over(b) for r, b in zip(results, baselines)])


def speedup_percent(speedup: float) -> float:
    """Convert a speedup ratio to the +x.x% form the paper reports."""
    return 100.0 * (speedup - 1.0)


def average(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 on empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def weighted_speedup(multicore_ipcs: Sequence[float], isolation_ipcs: Sequence[float]) -> float:
    """Multi-core weighted speedup (Section IV-A2): sum of IPC_mc / IPC_iso.

    Delegates to the canonical implementation in
    :func:`repro.cpu.multicore.weighted_speedup` (this module and
    ``MixResult.weighted_ipc`` used to carry duplicate copies that disagreed
    on negative isolation IPCs); kept exported here for API stability.
    """
    from repro.cpu.multicore import weighted_speedup as _weighted_speedup

    return _weighted_speedup(multicore_ipcs, isolation_ipcs)
