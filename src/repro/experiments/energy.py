"""First-order dynamic-energy accounting.

Section II-A motivates filtering partly by energy: a useless page-cross
prefetch burns up to five memory accesses' worth of dynamic energy (the
speculative walk's PTE reads plus the prefetch fill) and the TLB/cache
insertions that follow.  This module turns a :class:`SimResult`'s activity
counters into an energy estimate using per-event costs from published
CACTI-class numbers (22nm, rounded; absolute joules are indicative only —
the *relative* comparison between policies is the point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.simulator import SimResult

#: per-event dynamic energy, picojoules (order-of-magnitude CACTI values)
DEFAULT_COSTS_PJ = {
    "l1_access": 10.0,
    "l2_access": 30.0,
    "llc_access": 100.0,
    "tlb_access": 2.0,
    "page_walk_read": 30.0,   # PTE read, mostly L2/LLC-hit
    "dram_read": 2000.0,
    "dram_write": 2000.0,
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown for one run (picojoules)."""

    demand_pj: float
    prefetch_pj: float
    speculative_walk_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        """Sum of all components."""
        return self.demand_pj + self.prefetch_pj + self.speculative_walk_pj + self.dram_pj

    def per_kilo_instruction(self, instructions: int) -> float:
        """nJ per kilo-instruction — the comparable efficiency figure."""
        return self.total_pj / 1000.0 * 1000.0 / instructions if instructions else 0.0


def estimate_energy(result: SimResult, costs: dict | None = None) -> EnergyEstimate:
    """Estimate the dynamic energy behind a run's activity counters."""
    c = DEFAULT_COSTS_PJ if costs is None else {**DEFAULT_COSTS_PJ, **costs}
    memory_ops = result.instructions * (
        (result.l1d_mpki + result.l1i_mpki) / 1000.0 + 0.3  # ~30% memory-op density
    )
    demand = memory_ops * (c["l1_access"] + c["tlb_access"])
    demand += result.instructions / 1000.0 * result.l1d_mpki * c["l2_access"]
    demand += result.instructions / 1000.0 * result.l2c_mpki * c["llc_access"]
    demand += result.demand_walks * 3 * c["page_walk_read"]

    prefetch = result.prefetch_fills * (c["l1_access"] + c["l2_access"])
    speculative = result.speculative_walks * 4 * c["page_walk_read"]
    speculative += result.pgc_issued * c["tlb_access"]

    dram = result.dram_reads * c["dram_read"] + result.dram_writes * c["dram_write"]
    return EnergyEstimate(demand, prefetch, speculative, dram)


def energy_per_ki(result: SimResult, costs: dict | None = None) -> float:
    """Convenience: nJ per kilo-instruction for one run."""
    return estimate_energy(result, costs).per_kilo_instruction(result.instructions)


def energy_delay_product(result: SimResult, costs: dict | None = None) -> float:
    """EDP proxy: (nJ/KI) x (cycles per instruction).  Lower is better."""
    cpi = result.cycles / result.instructions if result.instructions else 0.0
    return energy_per_ki(result, costs) * cpi
