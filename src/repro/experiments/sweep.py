"""Parameter-sweep helpers for sensitivity studies.

A sweep varies one hardware parameter (sTLB size, DRAM latency, epoch
length, ...) and reports DRIPPER's and the static policies' geomean speedups
at each point — the sensitivity analyses backing the ablation benches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.cpu.simulator import SimConfig, SimResult, simulate
from repro.experiments.metrics import geomean_speedup, speedup_percent
from repro.experiments.runner import RunSpec, policy_factory
from repro.params import SystemParams, TlbParams
from repro.workloads.synthetic import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: maps a sweep value onto SystemParams
ParamsTransform = Callable[[SystemParams, int], SystemParams]


def stlb_size_transform(params: SystemParams, entries: int) -> SystemParams:
    """Resize the sTLB (entries must be divisible by its 12 ways)."""
    return replace(params, stlb=TlbParams("sTLB", entries, params.stlb.ways, params.stlb.latency))


def dtlb_size_transform(params: SystemParams, entries: int) -> SystemParams:
    """Resize the dTLB."""
    return replace(params, dtlb=TlbParams("dTLB", entries, params.dtlb.ways, params.dtlb.latency))


def dram_latency_transform(params: SystemParams, latency: int) -> SystemParams:
    """Set the DRAM access latency."""
    return replace(params, dram=replace(params.dram, access_latency=latency))


def sweep_parameter(
    workloads: Sequence[SyntheticWorkload],
    transform: ParamsTransform,
    values: Sequence[int],
    *,
    policies: Sequence[str] = ("permit", "dripper"),
    prefetcher: str = "berti",
    base_spec: RunSpec | None = None,
    obs: Optional["Observability"] = None,
) -> dict[int, dict[str, float]]:
    """Sweep one parameter; returns {value: {policy: geomean % over discard}}.

    With an observability bundle every cell's run is journaled, tagged with
    its sweep coordinates (``context.sweep``).
    """
    spec = base_spec or RunSpec(prefetcher=prefetcher)
    out: dict[int, dict[str, float]] = {}
    for value in values:
        results: dict[str, list[SimResult]] = {}
        for policy in ("discard", *policies):
            runs = []
            for workload in workloads:
                config = spec.config_for(workload)
                config = replace(
                    config,
                    params=transform(config.params, value),
                    policy_factory=policy_factory(policy, prefetcher),
                )
                if obs is not None:
                    obs.context["sweep"] = {"value": value, "policy": policy}
                runs.append(simulate(workload, config, obs=obs))
            results[policy] = runs
        out[value] = {
            policy: speedup_percent(geomean_speedup(results[policy], results["discard"]))
            for policy in policies
        }
    return out


def sweep_epoch_length(
    workloads: Sequence[SyntheticWorkload],
    epoch_lengths: Sequence[int],
    *,
    prefetcher: str = "berti",
    base_spec: RunSpec | None = None,
    obs: Optional["Observability"] = None,
) -> dict[int, float]:
    """Sensitivity of DRIPPER to the adaptive scheme's epoch length."""
    spec = base_spec or RunSpec(prefetcher=prefetcher)
    out: dict[int, float] = {}
    base_runs = []
    for workload in workloads:
        config = spec.config_for(workload)
        config = replace(config, policy_factory=policy_factory("discard", prefetcher))
        if obs is not None:
            obs.context["sweep"] = {"epoch_instructions": None, "policy": "discard"}
        base_runs.append(simulate(workload, config, obs=obs))
    for epoch in epoch_lengths:
        runs = []
        for workload in workloads:
            config = spec.config_for(workload)
            config = replace(
                config,
                policy_factory=policy_factory("dripper", prefetcher),
                epoch_instructions=epoch,
            )
            if obs is not None:
                obs.context["sweep"] = {"epoch_instructions": epoch, "policy": "dripper"}
            runs.append(simulate(workload, config, obs=obs))
        out[epoch] = speedup_percent(geomean_speedup(runs, base_runs))
    return out
