"""Parameter-sweep helpers for sensitivity studies.

A sweep varies one hardware parameter (sTLB size, DRAM latency, epoch
length, ...) and reports DRIPPER's and the static policies' geomean speedups
at each point — the sensitivity analyses backing the ablation benches.

Both sweeps lower their loop nests to :class:`~repro.experiments.parallel.Cell`
batches, so ``jobs=`` runs the grid on a process pool and ``cache=`` (a
:class:`~repro.experiments.cache.ResultCache`) deduplicates identical cells:
sweep points that share the ``discard`` baseline simulate it once, and
re-running an unchanged sweep is free.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.cpu.simulator import SimResult
from repro.experiments.metrics import geomean_speedup, speedup_percent
from repro.experiments.parallel import Cell, cell_for, grid_session, run_cells
from repro.experiments.runner import RunSpec
from repro.params import DEFAULT_PARAMS, SystemParams, TlbParams
from repro.workloads.synthetic import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.cache import ResultCache
    from repro.obs import Observability
    from repro.obs.progress import ProgressSink

#: maps a sweep value onto SystemParams
ParamsTransform = Callable[[SystemParams, int], SystemParams]


def _check_tlb_size(name: str, entries: int, ways: int) -> None:
    if entries < 1 or entries % ways != 0:
        raise ValueError(
            f"invalid {name} sweep size {entries}: entries must be a positive "
            f"multiple of its {ways} ways"
        )


def stlb_size_transform(params: SystemParams, entries: int) -> SystemParams:
    """Resize the sTLB (entries must be divisible by its 12 ways)."""
    _check_tlb_size("sTLB", entries, params.stlb.ways)
    return replace(params, stlb=TlbParams("sTLB", entries, params.stlb.ways, params.stlb.latency))


def dtlb_size_transform(params: SystemParams, entries: int) -> SystemParams:
    """Resize the dTLB (entries must be divisible by its ways)."""
    _check_tlb_size("dTLB", entries, params.dtlb.ways)
    return replace(params, dtlb=TlbParams("dTLB", entries, params.dtlb.ways, params.dtlb.latency))


def dram_latency_transform(params: SystemParams, latency: int) -> SystemParams:
    """Set the DRAM access latency."""
    return replace(params, dram=replace(params.dram, access_latency=latency))


def sweep_parameter(
    workloads: Sequence[SyntheticWorkload],
    transform: ParamsTransform,
    values: Sequence[int],
    *,
    policies: Sequence[str] = ("permit", "dripper"),
    prefetcher: str = "berti",
    base_spec: RunSpec | None = None,
    obs: Optional["Observability"] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    shm: Optional[bool] = None,
    progress: Optional["ProgressSink"] = None,
) -> dict[int, dict[str, float]]:
    """Sweep one parameter; returns {value: {policy: geomean % over discard}}.

    With an observability bundle every cell's run is journaled, tagged with
    its sweep coordinates (``context.sweep``) scoped to that cell.  The whole
    sweep runs inside one :func:`grid_session`: the worker pool forks once
    and every sweep point replays the same shared packs.
    """
    spec = base_spec or RunSpec(prefetcher=prefetcher)
    grid = [(value, policy) for value in values for policy in ("discard", *policies)]
    cells: list[Cell] = []
    for value, policy in grid:
        # spec.config_for never customises params, so the transform's input
        # is the SimConfig default
        params = transform(DEFAULT_PARAMS, value)
        cells.extend(
            cell_for(
                workload, spec, policy=policy, params=params,
                context={"sweep": {"value": value, "policy": policy}},
            )
            for workload in workloads
        )
    with grid_session(jobs, shm):
        flat = run_cells(cells, jobs=jobs, cache=cache, obs=obs, shm=shm,
                         progress=progress)
    n = len(workloads)
    results: dict[tuple[int, str], list[SimResult]] = {
        pair: flat[i * n:(i + 1) * n] for i, pair in enumerate(grid)
    }
    return {
        value: {
            policy: speedup_percent(
                geomean_speedup(results[(value, policy)], results[(value, "discard")])
            )
            for policy in policies
        }
        for value in values
    }


def sweep_epoch_length(
    workloads: Sequence[SyntheticWorkload],
    epoch_lengths: Sequence[int],
    *,
    prefetcher: str = "berti",
    base_spec: RunSpec | None = None,
    obs: Optional["Observability"] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    shm: Optional[bool] = None,
    progress: Optional["ProgressSink"] = None,
) -> dict[int, float]:
    """Sensitivity of DRIPPER to the adaptive scheme's epoch length.

    The ``discard`` baseline is epoch-independent and appears once in the
    cell batch (and, with a cache, at most once ever).
    """
    spec = base_spec or RunSpec(prefetcher=prefetcher)
    cells = [
        cell_for(
            workload, spec, policy="discard",
            context={"sweep": {"epoch_instructions": None, "policy": "discard"}},
        )
        for workload in workloads
    ]
    for epoch in epoch_lengths:
        cells.extend(
            cell_for(
                workload, spec, policy="dripper", epoch_instructions=epoch,
                context={"sweep": {"epoch_instructions": epoch, "policy": "dripper"}},
            )
            for workload in workloads
        )
    with grid_session(jobs, shm):
        flat = run_cells(cells, jobs=jobs, cache=cache, obs=obs, shm=shm,
                         progress=progress)
    n = len(workloads)
    base_runs = flat[:n]
    return {
        epoch: speedup_percent(geomean_speedup(flat[(1 + i) * n:(2 + i) * n], base_runs))
        for i, epoch in enumerate(epoch_lengths)
    }
