"""Experiment definitions: one function per table/figure of the evaluation.

Every function reproduces the *procedure* behind one of the paper's exhibits
on a configurable workload sample (`Scale`), returning plain dicts of numbers
that the corresponding bench in ``benchmarks/`` prints.  EXPERIMENTS.md maps
each function to the paper exhibit and records measured-vs-paper shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.cpu.simulator import SimConfig, SimResult
from repro.experiments.metrics import average, geomean, geomean_speedup, speedup_percent
from repro.experiments.runner import RunSpec, run_many, run_policies
from repro.workloads import (
    make_mixes,
    motivation_workloads,
    non_intensive_workloads,
    seen_workloads,
    stratified_sample,
    unseen_workloads,
)


@dataclass(frozen=True)
class Scale:
    """Sampling and trace-length knobs for one experiment run."""

    n_workloads: int = 12
    warmup_instructions: int = 16_000
    sim_instructions: int = 48_000
    seed: int = 1

    def spec(self, **kwargs) -> RunSpec:
        """RunSpec carrying this scale's trace lengths."""
        return RunSpec(
            warmup_instructions=self.warmup_instructions,
            sim_instructions=self.sim_instructions,
            **kwargs,
        )


DEFAULT_SCALE = Scale()


def _sample_seen(scale: Scale):
    return stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)


def _motivation_sample(scale: Scale):
    """Even-stride sample of the motivation set.

    The set is ordered friendly-first (mirroring the Figure 2 discussion),
    so a stride sample keeps both behaviours represented at any size.
    """
    workloads = list(motivation_workloads())
    n = max(scale.n_workloads, 8)
    if n >= len(workloads):
        return workloads
    stride = len(workloads) / n
    return [workloads[int(i * stride)] for i in range(n)]


# ---------------------------------------------------------------------------
# Section II-C motivation


def fig2_motivation_ipc(scale: Scale = DEFAULT_SCALE, prefetchers: Sequence[str] = ("berti", "bop", "ipcp")):
    """Figure 2: per-workload IPC gain of Permit PGC over Discard PGC."""
    workloads = _motivation_sample(scale)
    out: dict[str, dict] = {}
    for prefetcher in prefetchers:
        res = run_policies(workloads, ["discard", "permit"], prefetcher=prefetcher, base_spec=scale.spec())
        gains = [
            (r.workload, speedup_percent(r.speedup_over(b)))
            for r, b in zip(res["permit"], res["discard"])
        ]
        out[prefetcher] = {
            "per_workload_pct": gains,
            "geomean_pct": speedup_percent(geomean_speedup(res["permit"], res["discard"])),
        }
    return out


def fig3_usefulness(scale: Scale = DEFAULT_SCALE, prefetchers: Sequence[str] = ("berti", "bop", "ipcp")):
    """Figure 3: useful/useless split of page-cross prefetches under Permit."""
    workloads = _motivation_sample(scale)
    out: dict[str, dict] = {}
    for prefetcher in prefetchers:
        results = run_many(workloads, scale.spec(prefetcher=prefetcher, policy="permit"))
        split = []
        for r in results:
            total = r.pgc_useful + r.pgc_useless
            if total:
                split.append((r.workload, 100.0 * r.pgc_useful / total, 100.0 * r.pgc_useless / total))
        out[prefetcher] = {
            "per_workload_pct": split,
            "avg_useful_pct": average(s[1] for s in split),
            "avg_useless_pct": average(s[2] for s in split),
        }
    return out


def fig4_mpki_split(scale: Scale = DEFAULT_SCALE):
    """Figure 4: Permit's MPKI impact, split by which static policy wins."""
    workloads = _motivation_sample(scale)
    res = run_policies(workloads, ["discard", "permit"], prefetcher="berti", base_spec=scale.spec())
    permit_wins, discard_wins = [], []
    for r, b in zip(res["permit"], res["discard"]):
        deltas = {
            "workload": r.workload,
            "dtlb": r.dtlb_mpki - b.dtlb_mpki,
            "stlb": r.stlb_mpki - b.stlb_mpki,
            "l1d": r.l1d_mpki - b.l1d_mpki,
            "llc": r.llc_mpki - b.llc_mpki,
        }
        (permit_wins if r.ipc >= b.ipc else discard_wins).append(deltas)

    def summary(rows):
        return {k: average(row[k] for row in rows) for k in ("dtlb", "stlb", "l1d", "llc")}

    return {
        "permit_wins": {"workloads": permit_wins, "avg_delta": summary(permit_wins) if permit_wins else {}},
        "discard_wins": {"workloads": discard_wins, "avg_delta": summary(discard_wins) if discard_wins else {}},
    }


# ---------------------------------------------------------------------------
# Section V-A: scheme comparison


FIG9_POLICIES = ("permit", "discard-ptw", "iso", "ppf", "ppf+dthr", "dripper")


def fig9_scheme_comparison(
    scale: Scale = DEFAULT_SCALE,
    prefetchers: Sequence[str] = ("berti", "bop", "ipcp"),
    policies: Sequence[str] = FIG9_POLICIES,
):
    """Figure 9: geomean IPC of all schemes over Discard PGC, per prefetcher."""
    workloads = _sample_seen(scale)
    out: dict[str, dict[str, float]] = {}
    for prefetcher in prefetchers:
        res = run_policies(workloads, ["discard", *policies], prefetcher=prefetcher, base_spec=scale.spec())
        base = res["discard"]
        out[prefetcher] = {
            policy: speedup_percent(geomean_speedup(res[policy], base)) for policy in policies
        }
    return out


# ---------------------------------------------------------------------------
# Section V-B: Berti case study


def _berti_three_way(workloads, scale: Scale, **spec_kwargs):
    return run_policies(
        workloads, ["discard", "permit", "dripper"], prefetcher="berti",
        base_spec=scale.spec(**spec_kwargs),
    )


def fig10_berti_breakdown(scale: Scale = DEFAULT_SCALE):
    """Figure 10: per-workload s-curves + per-suite geomean breakdown."""
    workloads = _sample_seen(scale)
    res = _berti_three_way(workloads, scale)
    base = res["discard"]
    curves = {}
    for policy in ("permit", "dripper"):
        gains = sorted(
            speedup_percent(r.speedup_over(b)) for r, b in zip(res[policy], base)
        )
        curves[policy] = gains
    suites: dict[str, dict[str, list]] = {}
    for policy in ("permit", "dripper"):
        for r, b in zip(res[policy], base):
            bucket = suites.setdefault(_suite_of(workloads, r.workload), {})
            bucket.setdefault(policy, []).append(r.speedup_over(b))
    per_suite = {
        suite: {policy: speedup_percent(geomean(vals)) for policy, vals in buckets.items()}
        for suite, buckets in suites.items()
    }
    overall = {
        policy: speedup_percent(geomean_speedup(res[policy], base)) for policy in ("permit", "dripper")
    }
    return {"s_curves_pct": curves, "per_suite_pct": per_suite, "overall_pct": overall}


def _suite_of(workloads, name: str) -> str:
    for w in workloads:
        if w.name == name:
            return w.suite
    return "?"


def fig11_coverage_accuracy(scale: Scale = DEFAULT_SCALE):
    """Figure 11: miss coverage (top) and accuracy (bottom) per suite."""
    workloads = _sample_seen(scale)
    res = _berti_three_way(workloads, scale)
    suites: dict[str, dict[str, dict[str, list]]] = {}
    for policy in ("discard", "permit", "dripper"):
        for r in res[policy]:
            suite = _suite_of(workloads, r.workload)
            bucket = suites.setdefault(suite, {}).setdefault(policy, {"cov": [], "acc": []})
            bucket["cov"].append(r.prefetch_coverage)
            bucket["acc"].append(r.prefetch_accuracy)
    out = {}
    for suite, policies in suites.items():
        base = policies["discard"]
        out[suite] = {
            policy: {
                "coverage_delta_pct": 100.0 * (average(policies[policy]["cov"]) - average(base["cov"])),
                "accuracy_delta_pct": 100.0 * (average(policies[policy]["acc"]) - average(base["acc"])),
            }
            for policy in ("permit", "dripper")
        }
    totals = {}
    for policy in ("permit", "dripper"):
        cov_d, acc_d = [], []
        for r, b in zip(res[policy], res["discard"]):
            cov_d.append(r.prefetch_coverage - b.prefetch_coverage)
            acc_d.append(r.prefetch_accuracy - b.prefetch_accuracy)
        totals[policy] = {
            "coverage_delta_pct": 100.0 * average(cov_d),
            "accuracy_delta_pct": 100.0 * average(acc_d),
        }
    return {"per_suite": out, "overall": totals}


def fig12_mpki_impact(scale: Scale = DEFAULT_SCALE):
    """Figure 12: dTLB/sTLB/L1D/LLC MPKI deltas of Permit & DRIPPER."""
    workloads = _sample_seen(scale)
    res = _berti_three_way(workloads, scale)
    base = res["discard"]
    out = {}
    for policy in ("permit", "dripper"):
        deltas = {"dtlb": [], "stlb": [], "l1d": [], "llc": []}
        for r, b in zip(res[policy], base):
            deltas["dtlb"].append(r.dtlb_mpki - b.dtlb_mpki)
            deltas["stlb"].append(r.stlb_mpki - b.stlb_mpki)
            deltas["l1d"].append(r.l1d_mpki - b.l1d_mpki)
            deltas["llc"].append(r.llc_mpki - b.llc_mpki)
        out[policy] = {
            "sorted_deltas": {k: sorted(v) for k, v in deltas.items()},
            "avg_delta": {k: average(v) for k, v in deltas.items()},
        }
    return out


def fig13_pgc_pki(scale: Scale = DEFAULT_SCALE):
    """Figure 13: useful/useless page-cross prefetches per kilo-instruction."""
    workloads = _sample_seen(scale)
    res = _berti_three_way(workloads, scale)
    out = {}
    for policy in ("permit", "dripper"):
        out[policy] = {
            "useful_pki": sorted(r.pgc_useful_pki for r in res[policy]),
            "useless_pki": sorted(r.pgc_useless_pki for r in res[policy]),
            "avg_useful_pki": average(r.pgc_useful_pki for r in res[policy]),
            "avg_useless_pki": average(r.pgc_useless_pki for r in res[policy]),
        }
    return out


def fig14_single_features(scale: Scale = DEFAULT_SCALE):
    """Figure 14: DRIPPER vs its three constituent single-feature filters."""
    from repro.core.filter import single_feature_filter

    workloads = _sample_seen(scale)
    spec = scale.spec(prefetcher="berti")
    base = run_many(workloads, replace(spec, policy="discard"))
    out = {}
    res_dripper = run_many(workloads, replace(spec, policy="dripper"))
    out["dripper"] = speedup_percent(geomean_speedup(res_dripper, base))
    single_specs = [
        ("Delta", False),
        ("sTLB MPKI", True),
        ("sTLB Miss Rate", True),
    ]
    for feature_name, is_system in single_specs:
        results = []
        for workload in workloads:
            config = _config_for(spec, workload, lambda: single_feature_filter(feature_name, system=is_system))
            from repro.cpu.simulator import simulate

            results.append(simulate(workload, config))
        out[f"single:{feature_name}"] = speedup_percent(geomean_speedup(results, base))
    return out


def _config_for(spec: RunSpec, workload, factory) -> SimConfig:
    config = spec.config_for(workload)
    return replace(config, policy_factory=factory)


def fig15_dripper_sf(scale: Scale = DEFAULT_SCALE):
    """Figure 15: DRIPPER vs DRIPPER-SF (system features only)."""
    workloads = _sample_seen(scale)
    res = run_policies(
        workloads, ["discard", "dripper", "dripper-sf"], prefetcher="berti", base_spec=scale.spec()
    )
    base = res["discard"]
    return {
        "dripper_pct": speedup_percent(geomean_speedup(res["dripper"], base)),
        "dripper_sf_pct": speedup_percent(geomean_speedup(res["dripper-sf"], base)),
    }


def fig16_large_pages(scale: Scale = DEFAULT_SCALE, large_page_fraction: float = 0.5):
    """Figure 16: 4KB+2MB system; DRIPPER vs DRIPPER(filter@2MB) vs Permit."""
    workloads = _sample_seen(scale)
    spec = scale.spec(prefetcher="berti", large_page_fraction=large_page_fraction)
    res = run_policies(
        workloads, ["discard", "permit", "dripper"], prefetcher="berti", base_spec=spec
    )
    base = res["discard"]
    res_2mb = run_many(workloads, replace(spec, policy="dripper", filter_at_native_boundary=True))
    return {
        "permit_pct": speedup_percent(geomean_speedup(res["permit"], base)),
        "dripper_pct": speedup_percent(geomean_speedup(res["dripper"], base)),
        "dripper_filter2mb_pct": speedup_percent(geomean_speedup(res_2mb, base)),
    }


def fig17_l2_prefetchers(scale: Scale = DEFAULT_SCALE, l2_prefetchers: Sequence[str] = ("none", "spp", "ipcp", "bop")):
    """Figure 17: Permit & DRIPPER gains under different L2C prefetchers."""
    workloads = _sample_seen(scale)
    out = {}
    for l2 in l2_prefetchers:
        res = run_policies(
            workloads, ["discard", "permit", "dripper"], prefetcher="berti",
            base_spec=scale.spec(l2_prefetcher=l2),
        )
        base = res["discard"]
        out[l2] = {
            "permit_pct": speedup_percent(geomean_speedup(res["permit"], base)),
            "dripper_pct": speedup_percent(geomean_speedup(res["dripper"], base)),
        }
    return out


def fig18_unseen(scale: Scale = DEFAULT_SCALE):
    """Figure 18: Permit & DRIPPER on the unseen workload set."""
    workloads = stratified_sample(unseen_workloads(), scale.n_workloads, scale.seed)
    res = _berti_three_way(workloads, scale)
    base = res["discard"]
    return {
        "permit_pct": speedup_percent(geomean_speedup(res["permit"], base)),
        "dripper_pct": speedup_percent(geomean_speedup(res["dripper"], base)),
        "per_workload_dripper_pct": sorted(
            speedup_percent(r.speedup_over(b)) for r, b in zip(res["dripper"], base)
        ),
    }


def table5_all_workloads(scale: Scale = DEFAULT_SCALE):
    """Table V: geomeans over seen / unseen / all (incl. non-intensive)."""
    seen = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    unseen = stratified_sample(unseen_workloads(), scale.n_workloads, scale.seed)
    calm = stratified_sample(non_intensive_workloads(), max(4, scale.n_workloads // 3), scale.seed)
    out = {}
    all_speedups: dict[str, list[float]] = {"permit": [], "dripper": []}
    for label, workloads in (("seen", seen), ("unseen", unseen), ("non_intensive", calm)):
        res = _berti_three_way(workloads, scale)
        base = res["discard"]
        out[label] = {
            policy: speedup_percent(geomean_speedup(res[policy], base))
            for policy in ("permit", "dripper")
        }
        for policy in ("permit", "dripper"):
            all_speedups[policy].extend(r.speedup_over(b) for r, b in zip(res[policy], base))
    out["all"] = {policy: speedup_percent(geomean(vals)) for policy, vals in all_speedups.items()}
    return out


# ---------------------------------------------------------------------------
# Section V-B10: multi-core


def fig19_multicore(
    n_mixes: int = 4,
    cores: int = 8,
    warmup_instructions: int = 8_000,
    sim_instructions: int = 24_000,
    seed: int = 42,
    *,
    policies: Sequence[str] = ("discard", "permit", "dripper"),
    jobs: int = 1,
    cache=None,
    obs=None,
    shm: Optional[bool] = None,
    packed: bool = False,
    kernel: str = "fused",
    validate: bool = False,
    progress=None,
):
    """Figure 19: weighted-speedup distribution over 8-core mixes.

    The first policy is the normalisation baseline (the paper's Discard
    PGC); every other policy is reported as a per-mix weighted-speedup
    distribution plus its geomean.  The paper runs 300 mixes
    (``n_mixes=300``); at that scale pass ``jobs=`` to fan mixes out as
    affine chunks (one mix per worker chunk, packed cores) and ``cache=``
    (a :class:`~repro.experiments.cache.ResultCache`) to dedupe the
    isolation runs — every workload × policy isolation IPC is an ordinary
    content-addressed cell, shared across all mixes that draw it.
    """
    from repro.experiments.parallel import (
        cell_for,
        grid_session,
        mix_cell_for,
        run_cells,
        run_mix_cells,
    )
    from repro.params import DEFAULT_PARAMS

    if len(policies) < 2:
        raise ValueError(
            f"need a baseline plus at least one policy, got {policies!r}")
    mixes = make_mixes(n_mixes, cores, seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=warmup_instructions,
        sim_instructions=sim_instructions,
        packed=packed,
        kernel=kernel,
        validate=validate,
    )
    # every distinct workload needs one isolation IPC per policy — on the
    # *mix-scaled* system (8x LLC/DRAM for one core); dedupe across mixes
    unique = {w.name: w for mix in mixes for w in mix}
    iso_params = DEFAULT_PARAMS.scaled_llc(cores)
    iso_cells = [
        cell_for(w, spec, policy=policy, params=iso_params)
        for policy in policies
        for w in unique.values()
    ]
    mix_cells = [
        mix_cell_for(mix, spec, policy=policy, mix_id=i)
        for policy in policies
        for i, mix in enumerate(mixes)
    ]
    with grid_session(jobs, shm):
        iso_flat = run_cells(iso_cells, jobs=jobs, cache=cache, obs=obs,
                             shm=shm, progress=progress)
        mix_flat = run_mix_cells(mix_cells, jobs=jobs, obs=obs, shm=shm,
                                 progress=progress)
    names = list(unique)
    iso_ipc = {
        (policy, name): iso_flat[p * len(names) + n].ipc
        for p, policy in enumerate(policies)
        for n, name in enumerate(names)
    }
    wipc: dict[str, list[float]] = {}
    for p, policy in enumerate(policies):
        rows = mix_flat[p * len(mixes):(p + 1) * len(mixes)]
        wipc[policy] = [
            result.weighted_ipc([iso_ipc[(policy, w.name)] for w in mix])
            for mix, result in zip(mixes, rows)
        ]
    baseline = policies[0]
    return {
        policy: {
            "per_mix_pct": sorted(
                speedup_percent(s / b)
                for s, b in zip(wipc[policy], wipc[baseline])
            ),
            "geomean_pct": speedup_percent(geomean(
                s / b for s, b in zip(wipc[policy], wipc[baseline])
            )),
        }
        for policy in policies[1:]
    }
