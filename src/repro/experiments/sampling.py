"""Phase-sampled simulation: simulate 1/Nth of the trace, reconstruct the rest.

The paper evaluates every workload over 250M warm-up + 250M measured
instructions; scaling those counts down uniformly (what the figure suite
does) changes the phase mix.  This module does it properly instead, in the
SMARTS/SimPoint tradition adapted to the packed-column store:

1. **Profile** — the measured region of a :class:`~repro.workloads.packed.
   PackedTrace` is split into ``intervals`` equal-instruction intervals and
   each gets a cheap *memory-access signature* computed straight off the
   pack's derived columns (:class:`~repro.workloads.packed.PackIndex`):
   event-flag density, I-line-change rate, page/line-change rates (the
   page-cross-candidate proxy), load/store mix, branch/mispredict density,
   and mean gap.  Pure numpy prefix-sum reductions — no simulation.
2. **Cluster** — the signature vectors are z-score normalised and clustered
   into at most ``phases`` phases by a deterministic seeded k-means (greedy
   farthest-point init, fixed iteration cap).  One *representative* interval
   is chosen per phase (closest to the centroid); the phase's weight is the
   instruction mass of its members.
3. **Simulate** — only the representative intervals run, *stitched in
   trace order through one engine*: each sub-trace enters the stock packed
   drive loop (:func:`~repro.cpu.fastpath.drive_packed`, or the
   vectorized/auto tier per ``config.kernel``) with a short *functional
   warm-up prefix* as its warm-up region, so measurement starts exactly at
   the interval boundary.  Because the drive kernels take absolute warm-up
   limits and ``begin_measurement()`` re-baselines every statistic, the
   engine is resumable: caches, TLBs, predictors and the page-cross policy's
   filter state carry across the skipped spans instead of restarting cold
   (or, worse, artificially small) at every representative.
4. **Reconstruct** — every interval inherits its phase representative's
   per-instruction rates; instruction-weighted recombination yields a
   whole-trace :class:`~repro.cpu.simulator.SimResult` (ratio-of-sums IPC,
   scaled counters), and a percentile bootstrap over the interval population
   (:func:`~repro.experiments.stats_ci.bootstrap_statistic`) puts a
   confidence interval on the reconstructed IPC
   (``SimResult.ipc_ci_lo/ipc_ci_hi``).

The functional warm-up is an approximation — state built before the prefix
is invisible to the representative — which is why
:func:`repro.validate.check_sampled_matches_full` bounds the relative IPC
error against an occasional full run (CI runs it every cycle), and why the
reconstruction carries its own error bars.  Everything is seeded: a fixed
``SamplingConfig.seed`` makes the whole sampled run bit-exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Optional

from repro.experiments.stats_ci import BootstrapInterval, bootstrap_statistic
from repro.obs.metrics import get_metrics
from repro.obs.tracing import trace_span
from repro.workloads.packed import PackedTrace, get_packed
from repro.workloads.trace import BRANCH, MISPREDICT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.simulator import SimConfig, SimResult
    from repro.obs import Observability
    from repro.workloads.trace import Workload

#: same instrument the drive loops increment; one per *sampled run* (the
#: per-representative drives additionally count under their kernel's mode)
_DRIVES = get_metrics().counter(
    "sim.drives",
    "drive-loop entries by mode (generator/fused/stepwise/vectorized)")

#: signature feature names, in matrix-column order (docs + introspection)
SIGNATURE_FEATURES = (
    "event_density",
    "iline_change_rate",
    "page_change_rate",
    "line_change_rate",
    "load_density",
    "store_density",
    "branch_density",
    "mispredict_density",
    "mean_gap",
)


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of one phase-sampled run (hashable; rides inside RunSpec).

    ``intervals`` is the profiling resolution — the measured region is cut
    into this many equal-instruction intervals; ``phases`` caps how many of
    them actually simulate.  ``warmup_fraction`` sizes each representative's
    functional warm-up prefix relative to its interval length (at least one
    record of warm-up always runs).  ``max_rel_error`` is the relative-IPC
    bound the validation layer asserts against full runs — carried here so
    a spec is self-describing about the fidelity it claims.
    """

    intervals: int = 64
    phases: int = 8
    warmup_fraction: float = 0.25
    seed: int = 0
    confidence: float = 0.95
    resamples: int = 2000
    max_rel_error: float = 0.02

    def __post_init__(self) -> None:
        if self.intervals < 2:
            raise ValueError(f"sampling needs >= 2 intervals, got {self.intervals}")
        if self.phases < 1:
            raise ValueError(f"sampling needs >= 1 phase, got {self.phases}")
        if not 0.0 <= self.warmup_fraction <= 4.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 4], got {self.warmup_fraction}")
        if not 0.5 <= self.confidence < 1.0:
            raise ValueError(f"confidence must be in [0.5, 1), got {self.confidence}")
        if self.resamples < 1:
            raise ValueError(f"resamples must be >= 1, got {self.resamples}")
        if self.max_rel_error <= 0.0:
            raise ValueError(
                f"max_rel_error must be positive, got {self.max_rel_error}")


@dataclass(frozen=True)
class Phase:
    """One detected phase: its representative interval and member weight."""

    #: index (into the kept-interval list) of the simulated representative
    representative: int
    #: member interval indices, ascending
    members: tuple[int, ...]
    #: total instructions across the member intervals
    instructions: int

    @property
    def weight(self) -> int:
        return self.instructions


@dataclass(frozen=True)
class PhasePlan:
    """Everything the runner/reconstruction need about one profiled pack.

    Intervals are stored in *record space*: interval ``i`` covers packed
    records ``[starts[i], ends[i])`` and spans ``instructions[i]``
    instructions; ``assignment[i]`` is its phase index.  All positions are
    plain ints so the plan is picklable and JSON-friendly.
    """

    starts: tuple[int, ...]
    ends: tuple[int, ...]
    instructions: tuple[int, ...]
    assignment: tuple[int, ...]
    phases: tuple[Phase, ...]
    #: instruction count of the profiled measured region (sum of intervals)
    total_instructions: int

    @property
    def n_intervals(self) -> int:
        return len(self.starts)

    def simulated_instructions(self) -> int:
        """Instructions actually simulated (measured regions only)."""
        return sum(self.instructions[p.representative] for p in self.phases)


def _measured_bounds(packed: PackedTrace, warmup: int, sim: int) -> tuple[int, int]:
    """Record-index bounds (first measured, one-past-last) of the window.

    Mirrors the drive loops exactly: measurement begins after the record
    whose boundary first reaches ``warmup`` instructions and ends after the
    record whose boundary first spans ``sim`` measured instructions.
    """
    import numpy as np

    cum = packed.index().cum
    if not len(cum) or int(cum[-1]) < warmup + sim:
        raise ValueError(
            f"packed trace {packed.name!r} covers {int(cum[-1]) if len(cum) else 0} "
            f"instructions, fewer than the {warmup}+{sim} sampling window")
    m = int(np.searchsorted(cum, warmup, side="left"))
    base = int(cum[m])
    e = m + 1 + int(np.searchsorted(cum[m + 1:], base + sim, side="left"))
    return m + 1, e + 1


def signatures(packed: PackedTrace, warmup: int, sim: int, intervals: int):
    """Per-interval signature matrix plus interval bounds.

    Returns ``(features, starts, ends, inst)`` where ``features`` is an
    ``(n, len(SIGNATURE_FEATURES))`` float64 matrix and the other three are
    int64 arrays (record-space bounds and instruction spans).  Intervals
    that end up empty in record space (possible only when an interval is
    shorter than one record's gap) are dropped.  Pure numpy reductions over
    the pack's derived columns — no simulation.
    """
    import numpy as np

    idx = packed.index()
    cum = idx.cum
    first, last = _measured_bounds(packed, warmup, sim)
    base = int(cum[first - 1])
    span = int(cum[last - 1]) - base

    # interval edges in instruction space -> record space; each interval ends
    # after the record that crosses its instruction edge (same rule the drive
    # loop uses for the measurement stop), so interval k simulated alone
    # measures exactly the records profiled here
    targets = base + (np.arange(1, intervals, dtype=np.int64) * span) // intervals
    inner = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate(([first], inner, [last])).astype(np.int64)
    bounds = np.maximum.accumulate(np.clip(bounds, first, last))
    starts, ends = bounds[:-1], bounds[1:]
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]

    pre = np.concatenate(([0], cum))  # instructions strictly before record i
    inst = pre[ends] - pre[starts]

    fl = np.asarray(packed.columns()[2], dtype=np.int64)
    vpage, vline = idx.vpage, idx.vline
    pchange = np.empty(len(vpage), dtype=np.float64)
    lchange = np.empty(len(vline), dtype=np.float64)
    if len(vpage):
        pchange[0] = 1.0
        pchange[1:] = vpage[1:] != vpage[:-1]
        lchange[0] = 1.0
        lchange[1:] = vline[1:] != vline[:-1]

    def _rate(col) -> "np.ndarray":
        sums = np.concatenate(([0.0], np.cumsum(col, dtype=np.float64)))
        return sums[ends] - sums[starts]

    records = (ends - starts).astype(np.float64)
    features = np.stack([
        _rate(idx.event),
        _rate(idx.change),
        _rate(pchange),
        _rate(lchange),
        _rate(idx.isload),
        _rate(idx.isstore),
        _rate((fl & BRANCH) != 0),
        _rate((fl & MISPREDICT) != 0),
        inst.astype(np.float64),  # mean gap+1 after the per-record divide
    ], axis=1) / records[:, None]
    return features, starts, ends, inst


def _kmeans(features, k: int, seed: int):
    """Deterministic seeded k-means; returns (assignment, representatives).

    Init is greedy farthest-point (k-means++ without the randomised
    D²-weighting — fully deterministic given the seeded first pick), then
    plain Lloyd iterations with a fixed cap.  The representative of each
    cluster is the member closest to its centroid (lowest index on ties).
    """
    import numpy as np
    import random

    n = len(features)
    k = min(k, n)
    # z-score normalise so no single feature dominates the distance metric
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0.0] = 1.0
    z = (features - mean) / std

    rng = random.Random(seed)
    centers = [rng.randrange(n)]
    d2 = ((z - z[centers[0]]) ** 2).sum(axis=1)
    while len(centers) < k:
        far = int(np.argmax(d2))
        if d2[far] == 0.0:
            break  # fewer distinct signatures than phases
        centers.append(far)
        d2 = np.minimum(d2, ((z - z[far]) ** 2).sum(axis=1))
    centroids = z[centers].copy()

    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(32):
        dist = ((z[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignment = np.argmin(dist, axis=1)
        if np.array_equal(new_assignment, assignment) and _ > 0:
            break
        assignment = new_assignment
        for c in range(len(centroids)):
            members = z[assignment == c]
            if len(members):
                centroids[c] = members.mean(axis=0)

    # re-densify cluster ids in first-seen order (empty clusters vanish) so
    # phase numbering is stable and every phase has members
    dist = ((z - centroids[assignment]) ** 2).sum(axis=1)
    remap: dict[int, int] = {}
    dense = np.empty(n, dtype=np.int64)
    for i in range(n):
        c = int(assignment[i])
        if c not in remap:
            remap[c] = len(remap)
        dense[i] = remap[c]
    reps = [0] * len(remap)
    for c, new_c in remap.items():
        member_idx = np.flatnonzero(assignment == c)
        reps[new_c] = int(member_idx[np.argmin(dist[member_idx])])
    return dense, reps


def plan_phases(packed: PackedTrace, warmup: int, sim: int,
                sampling: SamplingConfig) -> PhasePlan:
    """Profile + cluster one pack's measured region into a :class:`PhasePlan`."""
    import numpy as np

    with trace_span("sample-profile", workload=packed.name,
                    intervals=sampling.intervals):
        features, starts, ends, inst = signatures(
            packed, warmup, sim, sampling.intervals)
        assignment, reps = _kmeans(features, sampling.phases, sampling.seed)

    phases = []
    for c, rep in enumerate(reps):
        members = tuple(int(i) for i in np.flatnonzero(assignment == c))
        phases.append(Phase(
            representative=rep,
            members=members,
            instructions=int(inst[list(members)].sum()),
        ))
    return PhasePlan(
        starts=tuple(int(s) for s in starts),
        ends=tuple(int(e) for e in ends),
        instructions=tuple(int(i) for i in inst),
        assignment=tuple(int(a) for a in assignment),
        phases=tuple(phases),
        total_instructions=int(inst.sum()),
    )


def _sub_pack(packed: PackedTrace, first: int, last: int, *,
              warmup: int, sim: int) -> PackedTrace:
    """A :class:`PackedTrace` over records ``[first, last)`` of ``packed``.

    Column slices are cheap (``array`` slices copy a few hundred KB at most;
    shm ``memoryview`` slices are zero-copy) and feed the stock drive
    kernels unchanged.
    """
    return PackedTrace(
        packed.name, packed.suite,
        packed.pcs[first:last], packed.vaddrs[first:last],
        packed.flags[first:last], packed.gaps[first:last],
        warmup=warmup, sim=sim,
        instructions=warmup + sim, complete=True,
    )


def _drive_for_kernel(engine, packed: PackedTrace, config: "SimConfig") -> float:
    """Route one packed drive through the spec'd kernel tier (like simulate)."""
    if config.kernel == "vectorized":
        from repro.cpu.fastpath_vec import drive_packed_vec

        return drive_packed_vec(engine, packed, config)
    if config.kernel == "auto":
        from repro.cpu.fastpath_vec import drive_packed_auto

        return drive_packed_auto(engine, packed, config)
    from repro.cpu.fastpath import drive_packed

    return drive_packed(engine, packed, config)


def _run_stitched(workload_name: str, packed: PackedTrace, plan: PhasePlan,
                  config: "SimConfig",
                  obs: Optional["Observability"] = None):
    """Simulate every representative on ONE engine, stitched in trace order.

    Returns ``(rep_results, engine, wall)`` with ``rep_results`` indexed by
    phase.  Representatives run through the same engine in ascending trace
    position, each preceded by a functional warm-up prefix of
    ``warmup_fraction`` times its interval length (never fewer than one
    record, never re-reading records an earlier segment already played).
    The drive kernels take *absolute* warm-up limits against the engine's
    cumulative instruction counter and ``begin_measurement()`` re-baselines
    every statistic, so each segment measures exactly its interval while
    long-range microarchitectural state — cache/TLB footprint, branch
    history, DRIPPER filter training — carries across the skips.  A fresh
    engine per representative would systematically *under*-count capacity
    misses (its footprint never saturates the hierarchy the way the full
    run's does); stitching is what keeps the reconstructed IPC honest.
    """
    import numpy as np

    from repro.cpu.simulator import build_engine, collect_result

    sampling = config.sampling
    cum = packed.index().cum
    pre = np.concatenate(([0], cum))  # instructions strictly before record i

    base_config = replace(config, sampling=None)
    engine = build_engine(base_config)
    if obs is not None:
        obs.attach(engine, packed)
    checker = None
    if base_config.validate:
        from repro.validate import InvariantChecker

        checker = InvariantChecker(obs=obs, workload=workload_name)
        checker.attach(engine)

    order = sorted(range(len(plan.phases)),
                   key=lambda j: plan.starts[plan.phases[j].representative])
    rep_results: list = [None] * len(plan.phases)
    prev_end = 0  # one past the last record an earlier segment played
    wall = 0.0
    for j in order:
        phase = plan.phases[j]
        rep = phase.representative
        start, end = plan.starts[rep], plan.ends[rep]
        inst = plan.instructions[rep]

        prefix_target = int(round(inst * sampling.warmup_fraction))
        p = int(np.searchsorted(pre, pre[start] - prefix_target,
                                side="right")) - 1
        p = max(min(prev_end, start - 1), min(p, start - 1), 0)
        sub_warm = int(pre[start] - pre[p])

        sub = _sub_pack(packed, p, end, warmup=sub_warm, sim=inst)
        # warm-up limits are absolute against the carried instruction counter
        sub_config = replace(base_config,
                             warmup_instructions=engine.instructions + sub_warm,
                             sim_instructions=inst)
        with trace_span("phase", workload=workload_name, phase=j,
                        representative=rep, weight=phase.instructions,
                        warmup=sub_warm, sim=inst):
            wall += _drive_for_kernel(engine, sub, sub_config)
        result = collect_result(engine, workload_name, sub_config)
        if checker is not None:
            checker.check_final(engine, result)
        rep_results[j] = result
        prev_end = end
    return rep_results, engine, wall


#: SimResult count fields scaled by instruction mass during reconstruction
_COUNT_FIELDS = (
    "prefetch_fills", "prefetch_useful", "prefetch_useless", "prefetch_late",
    "pgc_candidates", "pgc_issued", "pgc_discarded", "pgc_useful",
    "pgc_useless", "demand_walks", "speculative_walks", "tlb_prefetch_hits",
    "dram_reads", "dram_writes", "branches", "branch_mispredicts",
    "l1d_demand_misses", "tlb_prefetch_evicted_unused",
)

#: SimResult per-kilo-instruction / ratio fields recombined by instruction-
#: weighted mean (exact for the MPKIs, documented approximation for the
#: access-denominated miss rates)
_RATE_FIELDS = (
    "dtlb_mpki", "itlb_mpki", "stlb_mpki", "l1i_mpki", "l1d_mpki",
    "l2c_mpki", "llc_mpki", "l1d_miss_rate", "llc_miss_rate",
    "stlb_miss_rate",
)


def reconstruct(plan: PhasePlan, rep_results: "list[SimResult]",
                config: "SimConfig") -> "tuple[SimResult, BootstrapInterval]":
    """Recombine per-phase results into a whole-trace result + IPC interval.

    Every interval inherits its phase representative's per-instruction
    rates; cycles and counters are scaled by instruction mass and summed,
    so the reconstructed IPC is the instruction-weighted harmonic mean of
    the phase IPCs.  The bootstrap resamples the *interval* population
    (seeded), capturing how much the reconstruction could move had the
    phase mix been drawn differently.
    """
    from repro.cpu.simulator import SimResult

    sampling = config.sampling
    per_interval = []  # (instructions, cycles) per kept interval
    for i in range(plan.n_intervals):
        rep = rep_results[plan.assignment[i]]
        inst = plan.instructions[i]
        per_interval.append((inst, inst * rep.cycles / rep.instructions))

    total_inst = sum(inst for inst, _ in per_interval)
    total_cycles = sum(cycles for _, cycles in per_interval)

    def _ratio(pairs) -> float:
        cycles = sum(c for _, c in pairs)
        return sum(i for i, _ in pairs) / cycles if cycles else 0.0

    ipc_ci = bootstrap_statistic(
        per_interval, _ratio, confidence=sampling.confidence,
        resamples=sampling.resamples, seed=sampling.seed)

    counts = {f: 0.0 for f in _COUNT_FIELDS}
    rates = {f: 0.0 for f in _RATE_FIELDS}
    for phase, rep in zip(plan.phases, rep_results):
        scale = phase.instructions / rep.instructions
        for f in _COUNT_FIELDS:
            counts[f] += getattr(rep, f) * scale
        for f in _RATE_FIELDS:
            rates[f] += getattr(rep, f) * phase.instructions
    for f in _RATE_FIELDS:
        rates[f] /= total_inst if total_inst else 1

    anchor = rep_results[0]
    result = SimResult(
        workload=anchor.workload,
        prefetcher=anchor.prefetcher,
        policy=anchor.policy,
        instructions=total_inst,
        cycles=total_cycles,
        ipc=total_inst / total_cycles if total_cycles else 0.0,
        requested_instructions=config.sim_instructions,
        sampled_intervals=plan.n_intervals,
        sampled_phases=len(plan.phases),
        ipc_ci_lo=ipc_ci.lo,
        ipc_ci_hi=ipc_ci.hi,
        **{f: int(round(v)) for f, v in counts.items()},
        **rates,
    )
    return result, ipc_ci


def simulate_sampled(
    workload: "Workload", config: "SimConfig", *,
    obs: Optional["Observability"] = None,
) -> "SimResult":
    """Run one workload phase-sampled under ``config`` (``config.sampling`` set).

    Profiles + clusters the packed trace, simulates one representative
    interval per phase (stitched in trace order through a single resumable
    engine, each behind a functional warm-up prefix), and returns the
    reconstructed whole-trace :class:`SimResult` with bootstrap IPC bounds
    in ``ipc_ci_lo``/``ipc_ci_hi``.  Bit-exactly deterministic for a fixed
    ``SamplingConfig.seed``.
    """
    sampling = config.sampling
    if sampling is None:
        raise ValueError("simulate_sampled needs config.sampling set")
    _DRIVES.inc(mode="sampled")
    wall_start = perf_counter()
    packed = get_packed(workload, config.warmup_instructions,
                        config.sim_instructions)
    if not packed.complete:
        raise ValueError(
            f"workload {workload.name!r} ended after {packed.instructions} "
            f"instructions, before the sampling window "
            f"({config.warmup_instructions}+{config.sim_instructions}) completed")
    plan = plan_phases(packed, config.warmup_instructions,
                       config.sim_instructions, sampling)
    rep_results, engine, _ = _run_stitched(
        workload.name, packed, plan, config, obs=obs)
    with trace_span("sample-reconstruct", workload=workload.name,
                    phases=len(plan.phases), intervals=plan.n_intervals):
        result, _ipc_ci = reconstruct(plan, rep_results, config)
    wall_seconds = perf_counter() - wall_start
    if obs is not None and engine is not None:
        obs.finish(engine, workload, config, result, wall_seconds)
    return result
