"""Plain-text rendering of experiment outputs (the rows the paper reports)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_pct(value: float) -> str:
    """Render a percentage with an explicit sign (the paper's style)."""
    return f"{value:+.2f}%"


def format_scheme_comparison(data: Mapping[str, Mapping[str, float]], title: str) -> str:
    """Render a {prefetcher: {policy: pct}} mapping (Figure 9 shape)."""
    policies = sorted({p for row in data.values() for p in row})
    rows = [
        [prefetcher] + [format_pct(data[prefetcher].get(p, float("nan"))) for p in policies]
        for prefetcher in data
    ]
    return format_table(["prefetcher", *policies], rows, title)


def format_distribution(values: Sequence[float], buckets: int = 10) -> str:
    """Compact text sparkline of a sorted distribution (min/median/max + deciles)."""
    if not values:
        return "(no data)"
    vs = sorted(values)
    deciles = [vs[min(len(vs) - 1, int(i * len(vs) / buckets))] for i in range(buckets)]
    deciles.append(vs[-1])
    return " ".join(f"{v:+.1f}" for v in deciles)
