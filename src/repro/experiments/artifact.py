"""Artifact-evaluation runner: regenerate every exhibit into one report.

``python -m repro.experiments.artifact --out results.md`` runs all the
figure/table experiments at a chosen scale and writes a self-contained
markdown report with the same rows/series the paper reports, alongside the
paper's published values for comparison.

This is the scripted equivalent of ``pytest benchmarks/ --benchmark-only``
for people who want one file out rather than bench timings.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments import figures
from repro.experiments.figures import Scale

#: (exhibit id, paper-reported headline, experiment callable)
EXPERIMENTS: tuple[tuple[str, str, Callable], ...] = (
    ("Figure 2", "per-workload Permit-vs-Discard gains span roughly -20%..+25%",
     figures.fig2_motivation_ipc),
    ("Figure 3", "~50% of page-cross prefetches are useful on average",
     figures.fig3_usefulness),
    ("Figure 4", "where Permit wins, dTLB/L1D/LLC MPKIs drop; where it loses, they rise",
     figures.fig4_mpki_split),
    ("Figure 9", "DRIPPER best everywhere; Discard > Permit; PPF(+Dthr) below DRIPPER",
     figures.fig9_scheme_comparison),
    ("Figure 10", "Berti+DRIPPER: +1.7% over Discard, +2.5% over Permit (geomean)",
     figures.fig10_berti_breakdown),
    ("Figure 11", "DRIPPER ~ Permit coverage (+4.1% vs +4.2%); accuracy +1.2% vs -2.6%",
     figures.fig11_coverage_accuracy),
    ("Figure 12", "DRIPPER reduces dTLB/sTLB/L1D/LLC MPKIs (avg -0.6/-0.1/-2.1/-0.2)",
     figures.fig12_mpki_impact),
    ("Figure 13", "DRIPPER keeps Permit's useful PKI, useless PKI concentrated at 0",
     figures.fig13_pgc_pki),
    ("Figure 14", "DRIPPER beats its single-feature constituents",
     figures.fig14_single_features),
    ("Figure 15", "DRIPPER beats DRIPPER-SF by ~0.9%",
     figures.fig15_dripper_sf),
    ("Figure 16", "with 4KB+2MB pages: DRIPPER +2.2%/+1.3% over Permit/Discard; beats filter@2MB by ~0.5%",
     figures.fig16_large_pages),
    ("Figure 17", "DRIPPER wins under every L2 prefetcher; margin largest with none",
     figures.fig17_l2_prefetchers),
    ("Figure 18", "unseen workloads: DRIPPER +1.2% over Discard, +2.1% over Permit",
     figures.fig18_unseen),
    ("Table V", "Permit -0.8/-0.9/-0.6%; DRIPPER +1.7/+1.2/+0.4% (seen/unseen/all)",
     figures.table5_all_workloads),
)


def _render(value, indent: int = 0) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    if isinstance(value, dict):
        for key, sub in value.items():
            if isinstance(sub, (dict, list)) and sub and not _is_scalar_list(sub):
                lines.append(f"{pad}- **{key}**:")
                lines.extend(_render(sub, indent + 1))
            else:
                lines.append(f"{pad}- **{key}**: {_fmt(sub)}")
    elif isinstance(value, list):
        lines.append(f"{pad}{_fmt(value)}")
    else:
        lines.append(f"{pad}{_fmt(value)}")
    return lines


def _is_scalar_list(value) -> bool:
    return isinstance(value, list) and all(not isinstance(v, (dict, list)) for v in value)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:+.2f}"
    if isinstance(value, list):
        if len(value) > 12:
            head = ", ".join(_fmt(v) for v in value[:12])
            return f"[{head}, ... ({len(value)} values)]"
        return "[" + ", ".join(_fmt(v) for v in value) + "]"
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt(v) for v in value) + ")"
    return str(value)


def run_artifact(
    scale: Scale,
    *,
    include_multicore: bool = False,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> str:
    """Run the experiment set and return the markdown report."""
    sections = [
        "# Reproduction report",
        "",
        f"Scale: {scale.n_workloads} workloads/sample, "
        f"{scale.warmup_instructions} warm-up + {scale.sim_instructions} measured "
        f"instructions, seed {scale.seed}.",
        "",
    ]
    for exhibit, paper_says, fn in EXPERIMENTS:
        if only and not any(token.lower() in exhibit.lower() for token in only):
            continue
        start = time.time()
        data = fn(scale)
        elapsed = time.time() - start
        if progress is not None:
            progress(exhibit, elapsed)
        sections.append(f"## {exhibit}")
        sections.append("")
        sections.append(f"*Paper:* {paper_says}")
        sections.append("")
        sections.append("*Measured:*")
        sections.extend(_render(data))
        sections.append("")
    if include_multicore and (not only or any("19" in token for token in only)):
        start = time.time()
        data = figures.fig19_multicore(n_mixes=4)
        if progress is not None:
            progress("Figure 19", time.time() - start)
        sections.append("## Figure 19")
        sections.append("")
        sections.append("*Paper:* 8-core mixes: DRIPPER +2.0% over Discard, +3.3% over Permit")
        sections.append("")
        sections.append("*Measured:*")
        sections.extend(_render(data))
        sections.append("")
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the artifact experiments and write the report file."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="reproduction-report.md")
    parser.add_argument("--workloads", type=int, default=10, help="sample size per experiment")
    parser.add_argument("--warmup", type=int, default=12_000)
    parser.add_argument("--sim", type=int, default=36_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--multicore", action="store_true", help="include Figure 19 (slow)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only exhibits whose name contains one of these tokens")
    args = parser.parse_args(argv)
    scale = Scale(
        n_workloads=args.workloads,
        warmup_instructions=args.warmup,
        sim_instructions=args.sim,
        seed=args.seed,
    )
    report = run_artifact(
        scale,
        include_multicore=args.multicore,
        only=args.only,
        progress=lambda name, sec: print(f"[artifact] {name} done in {sec:.0f}s"),
    )
    Path(args.out).write_text(report)
    print(f"[artifact] wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
