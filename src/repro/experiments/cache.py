"""Content-addressed on-disk cache of simulation results.

A cache entry maps the SHA-256 fingerprint of one grid cell's *complete*
inputs — the full :class:`~repro.cpu.simulator.SimConfig` dump (every
hardware parameter included), the declarative :class:`RunSpec`, any sweep
overrides, and the workload identity with its trace seed — to the finished
:class:`~repro.cpu.simulator.SimResult`.  Because every run in this repo is
deterministic given those inputs, a cache hit is bit-identical to re-running
the cell: JSON round-trips Python floats exactly.

The layout is git-like (``<root>/<key[:2]>/<key>.json``) and writes are
atomic (temp file + ``os.replace``), so a single cache directory can be
shared by many worker processes — and by repeated invocations, which is how
``sweep_parameter`` simulates its shared ``discard`` baseline once instead
of once per sweep point.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Optional

from repro.cpu.simulator import SimResult
from repro.obs.metrics import get_metrics
from repro.obs.tracing import trace_span

#: result-cache instruments (process-wide; grid workers never touch the
#: result cache — lookups and writes both happen in the parent)
_HITS = get_metrics().counter("result_cache.hits", "cells served from disk")
_MISSES = get_metrics().counter("result_cache.misses", "cells that had to simulate")
_STORES = get_metrics().counter("result_cache.stores", "freshly written entries")

#: bump when the entry layout or the fingerprint payload changes incompatibly
#: (2: merged-latency-floor timing fix, pruned/deduped in-flight-miss feature,
#: measured TLB prefetch counters, SimResult.tlb_prefetch_evicted_unused)
CACHE_SCHEMA = 2


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for fingerprinting (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of `payload`."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed result store keyed by cell fingerprints.

    ``hits`` / ``misses`` count lookups, ``stores`` counts writes; the
    ``stats`` property snapshots all three (the sweep tests assert the
    shared-baseline guarantee through them).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """Return the cached result for `key`, or None (counted as a miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            self.misses += 1
            _MISSES.inc()
            return None
        if payload.get("schema") != CACHE_SCHEMA or "result" not in payload:
            self.misses += 1
            _MISSES.inc()
            return None
        try:
            result = SimResult(**payload["result"])
        except TypeError:  # entry written by an incompatible SimResult layout
            self.misses += 1
            _MISSES.inc()
            return None
        self.hits += 1
        _HITS.inc()
        return result

    def put(self, key: str, result: SimResult, *, meta: Optional[dict[str, Any]] = None) -> None:
        """Store `result` under `key` (atomic; safe across processes)."""
        with trace_span("cache-write", category="cache", key=key[:12]):
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload: dict[str, Any] = {"schema": CACHE_SCHEMA, "key": key, "result": asdict(result)}
            if meta:
                payload["meta"] = meta
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
        self.stores += 1
        _STORES.inc()

    @property
    def stats(self) -> dict[str, int]:
        """Snapshot of hit/miss/store counters."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"
