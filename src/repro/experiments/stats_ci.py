"""Bootstrap confidence intervals for sampled geomean speedups.

Bench samples are small (8-16 workloads), so point geomeans move from seed
to seed.  A percentile bootstrap over the per-workload speedups quantifies
that: report ``geomean [lo, hi]`` instead of a bare number, and test whether
two policies' difference is resolvable at the sample size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ConfidenceInterval:
    """Percentile-bootstrap interval for a geomean speedup (in percent)."""

    point_pct: float
    lo_pct: float
    hi_pct: float
    confidence: float

    @property
    def width_pct(self) -> float:
        """Interval width — the sample-noise magnitude."""
        return self.hi_pct - self.lo_pct

    def excludes_zero(self) -> bool:
        """True when the interval resolves the sign of the effect."""
        return self.lo_pct > 0.0 or self.hi_pct < 0.0


def _geomean_pct(speedups: Sequence[float]) -> float:
    return 100.0 * (math.exp(sum(math.log(s) for s in speedups) / len(speedups)) - 1.0)


def bootstrap_geomean(
    speedups: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the geomean of per-workload speedups."""
    if not speedups:
        raise ValueError("no speedups to bootstrap")
    if any(s <= 0 for s in speedups):
        raise ValueError("speedups must be positive ratios")
    rng = random.Random(seed)
    n = len(speedups)
    stats = sorted(
        _geomean_pct([speedups[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo = stats[int(alpha * resamples)]
    hi = stats[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return ConfidenceInterval(_geomean_pct(speedups), lo, hi, confidence)


def paired_difference_ci(
    speedups_a: Sequence[float],
    speedups_b: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI of the paired geomean ratio A/B (same workloads), in %.

    Positive means policy A is faster than policy B.
    """
    if len(speedups_a) != len(speedups_b):
        raise ValueError("paired samples must align")
    ratios = [a / b for a, b in zip(speedups_a, speedups_b)]
    return bootstrap_geomean(ratios, confidence=confidence, resamples=resamples, seed=seed)
