"""Bootstrap confidence intervals for sampled statistics.

Two consumers share this layer:

* bench samples are small (8-16 workloads), so point geomeans move from
  seed to seed — :func:`bootstrap_geomean` / :func:`paired_difference_ci`
  report ``geomean [lo, hi]`` instead of a bare number and test whether two
  policies' difference is resolvable at the sample size;
* phase-sampled simulation (:mod:`repro.experiments.sampling`) reconstructs
  whole-trace IPC from per-phase representatives — :func:`bootstrap_statistic`
  resamples the interval population to put an interval around *any* derived
  statistic (there the ratio-of-sums IPC), quantifying how much the
  reconstruction could move under a different draw of intervals.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ConfidenceInterval:
    """Percentile-bootstrap interval for a geomean speedup (in percent)."""

    point_pct: float
    lo_pct: float
    hi_pct: float
    confidence: float

    @property
    def width_pct(self) -> float:
        """Interval width — the sample-noise magnitude."""
        return self.hi_pct - self.lo_pct

    def excludes_zero(self) -> bool:
        """True when the interval resolves the sign of the effect."""
        return self.lo_pct > 0.0 or self.hi_pct < 0.0


@dataclass(frozen=True)
class BootstrapInterval:
    """Percentile-bootstrap interval for an arbitrary statistic (raw units).

    Unlike :class:`ConfidenceInterval` (whose fields are percent-denominated
    speedups), this carries the statistic in whatever units the caller's
    function returns — e.g. IPC for sampled-simulation reconstruction.
    """

    point: float
    lo: float
    hi: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width — the resampling-noise magnitude."""
        return self.hi - self.lo

    def rel_width(self) -> float:
        """Width as a fraction of the point estimate (0 when point is 0)."""
        return self.width / abs(self.point) if self.point else 0.0

    def contains(self, value: float) -> bool:
        """True when ``value`` falls inside the interval (inclusive)."""
        return self.lo <= value <= self.hi


def bootstrap_statistic(
    samples: Sequence[T],
    statistic: Callable[[Sequence[T]], float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI of ``statistic`` over ``samples``.

    ``statistic`` receives a resampled-with-replacement list the same length
    as ``samples`` and must return one number; the point estimate is the
    statistic of the original sample.  Deterministic for a fixed ``seed``.
    A single-element sample yields a degenerate (zero-width) interval —
    every resample is the sample itself.
    """
    if not samples:
        raise ValueError("no samples to bootstrap")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    rng = random.Random(seed)
    n = len(samples)
    stats = sorted(
        statistic([samples[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo = stats[int(alpha * resamples)]
    hi = stats[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return BootstrapInterval(statistic(samples), lo, hi, confidence)


def _geomean_pct(speedups: Sequence[float]) -> float:
    return 100.0 * (math.exp(sum(math.log(s) for s in speedups) / len(speedups)) - 1.0)


def bootstrap_geomean(
    speedups: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the geomean of per-workload speedups."""
    if not speedups:
        raise ValueError("no speedups to bootstrap")
    if any(s <= 0 for s in speedups):
        raise ValueError("speedups must be positive ratios")
    rng = random.Random(seed)
    n = len(speedups)
    stats = sorted(
        _geomean_pct([speedups[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo = stats[int(alpha * resamples)]
    hi = stats[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return ConfidenceInterval(_geomean_pct(speedups), lo, hi, confidence)


def paired_difference_ci(
    speedups_a: Sequence[float],
    speedups_b: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI of the paired geomean ratio A/B (same workloads), in %.

    Positive means policy A is faster than policy B.
    """
    if len(speedups_a) != len(speedups_b):
        raise ValueError("paired samples must align")
    ratios = [a / b for a, b in zip(speedups_a, speedups_b)]
    return bootstrap_geomean(ratios, confidence=confidence, resamples=resamples, seed=seed)
