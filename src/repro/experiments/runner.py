"""Experiment runner: sweep (prefetcher x policy x workload) grids.

Policies are specified as named factories so every run gets a fresh,
untrained filter.  QMM workloads run half-length traces, mirroring the
paper's shorter warm-up/simulation for the Qualcomm traces (Section IV-A1).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.core.dripper import make_dripper, make_dripper_sf
from repro.core.policies import DiscardPgc, DiscardPtw, PageCrossPolicy, PermitPgc
from repro.core.ppf import make_ppf, make_ppf_dthr
from repro.cpu.simulator import SimConfig, SimResult, simulate
from repro.workloads.synthetic import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.cache import ResultCache
    from repro.experiments.sampling import SamplingConfig
    from repro.obs import Observability
    from repro.obs.progress import ProgressSink

#: DRIPPER's hardware budget, handed to the prefetcher in the ISO scenario
ISO_STORAGE_BYTES = 1475


def policy_factory(name: str, prefetcher: str) -> Callable[[], PageCrossPolicy]:
    """Named page-cross policy factories (the Figure 9 scenario set)."""
    key = name.lower()
    if key in ("discard", "discard-pgc"):
        return DiscardPgc
    if key in ("permit", "permit-pgc"):
        return PermitPgc
    if key in ("discard-ptw",):
        return DiscardPtw
    if key in ("iso", "iso-storage"):
        # page-cross handling is Permit; the storage goes to the prefetcher
        return PermitPgc
    if key == "dripper":
        return lambda: make_dripper(prefetcher)
    if key == "dripper-sf":
        return lambda: make_dripper_sf(prefetcher)
    if key == "ppf":
        return make_ppf
    if key in ("ppf+dthr", "ppf-dthr"):
        return make_ppf_dthr
    raise KeyError(f"unknown policy {name!r}")


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid."""

    prefetcher: str = "berti"
    policy: str = "discard"
    l2_prefetcher: str = "none"
    warmup_instructions: int = 20_000
    sim_instructions: int = 60_000
    large_page_fraction: float = 0.0
    filter_at_native_boundary: bool = False
    #: attach a runtime InvariantChecker to each run (purely observational:
    #: a validated run produces the same SimResult, so the result cache
    #: deliberately ignores this knob — see `cell_fingerprint`)
    validate: bool = False
    #: drive each run through the packed fast path (bit-identical results;
    #: like `validate`, excluded from the cell fingerprint)
    packed: bool = False
    #: packed kernel tier ("fused", "vectorized", or "auto"); anything but
    #: "fused" implies the packed path and — being bit-identical — is also
    #: excluded from the cell fingerprint
    kernel: str = "fused"
    #: phase-sampled simulation (:mod:`repro.experiments.sampling`); a
    #: sampled result approximates the full window, so — unlike the
    #: bit-identical knobs above — this DOES enter the cell fingerprint
    sampling: Optional["SamplingConfig"] = None

    def base_config(self) -> SimConfig:
        """Materialise the workload-independent SimConfig for this spec.

        Carries the spec's *nominal* trace windows; per-workload adjustments
        (the QMM half-length windows) are :meth:`config_for`'s job.  Mix
        runs hand this straight to :func:`repro.cpu.multicore.simulate_mix`,
        which applies the QMM halving per core itself.
        """
        factory = policy_factory(self.policy, self.prefetcher)
        if self.filter_at_native_boundary:
            base_factory = factory

            def factory() -> PageCrossPolicy:
                policy = base_factory()
                policy.filter_at_native_boundary = True
                return policy

        return SimConfig(
            prefetcher=self.prefetcher,
            policy_factory=factory,
            l2_prefetcher=self.l2_prefetcher,
            warmup_instructions=self.warmup_instructions,
            sim_instructions=self.sim_instructions,
            large_page_fraction=self.large_page_fraction,
            prefetcher_extra_storage=ISO_STORAGE_BYTES if self.policy.lower().startswith("iso") else 0,
            validate=self.validate,
            packed=self.packed,
            kernel=self.kernel,
            sampling=self.sampling,
        )

    def config_for(self, workload: SyntheticWorkload) -> SimConfig:
        """Materialise a SimConfig (QMM workloads run half-length traces)."""
        config = self.base_config()
        if workload.suite.startswith("QMM"):
            config.warmup_instructions //= 2
            config.sim_instructions //= 2
        return config


def run_one(
    workload: SyntheticWorkload, spec: RunSpec, *, obs: Optional["Observability"] = None
) -> SimResult:
    """Simulate one workload under one spec.

    With an observability bundle, the originating :class:`RunSpec` is
    attached to the journal record's ``context`` so sweep cells stay
    traceable to the grid coordinates that produced them; the key is scoped
    to this run and cannot leak into later runs on the same bundle.
    """
    if obs is not None:
        with obs.scoped(spec=asdict(spec)):
            return simulate(workload, spec.config_for(workload), obs=obs)
    return simulate(workload, spec.config_for(workload), obs=obs)


def run_many(
    workloads: Sequence[SyntheticWorkload],
    spec: RunSpec,
    *,
    progress: Optional[Callable[[str, SimResult], None]] = None,
    obs: Optional["Observability"] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    shm: Optional[bool] = None,
) -> list[SimResult]:
    """Run a spec across workloads (optionally reporting per-run progress).

    ``jobs`` > 1 fans the runs out to worker processes and ``cache`` serves
    previously simulated cells from disk (see
    :mod:`repro.experiments.parallel`); results always come back in workload
    order, identical to a serial run.  With parallel/cached execution,
    ``progress`` fires in completion order rather than input order.
    ``shm=None`` shares packed traces through the zero-copy store whenever
    ``jobs>1`` (``False`` forces per-worker packing).
    """
    if jobs == 1 and cache is None:
        results = []
        for workload in workloads:
            result = run_one(workload, spec, obs=obs)
            results.append(result)
            if progress is not None:
                progress(workload.name, result)
        return results

    from repro.experiments.parallel import cell_for, grid_session, run_cells

    cells = [cell_for(workload, spec) for workload in workloads]
    on_result = None
    if progress is not None:
        names = [w.name for w in workloads]

        def on_result(index: int, result: SimResult, cached: bool) -> None:
            progress(names[index], result)

    with grid_session(jobs, shm):
        return run_cells(cells, jobs=jobs, cache=cache, obs=obs,
                         on_result=on_result, shm=shm)


def run_policies(
    workloads: Sequence[SyntheticWorkload],
    policies: Sequence[str],
    *,
    prefetcher: Optional[str] = None,
    base_spec: Optional[RunSpec] = None,
    obs: Optional["Observability"] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    shm: Optional[bool] = None,
    progress: Optional["ProgressSink"] = None,
) -> dict[str, list[SimResult]]:
    """Run several policies over the same workloads; returns policy -> results.

    ``prefetcher`` overrides the spec's prefetcher only when explicitly
    given — a caller-supplied ``base_spec`` keeps its own prefetcher
    otherwise (it used to be silently clobbered with the default).  The
    whole (policy × workload) grid is dispatched as one batch, so ``jobs``
    parallelises across policies as well as workloads; workload-affine
    scheduling keeps each worker replaying one (shared) pack across its
    policies.
    """
    spec = base_spec or RunSpec(prefetcher=prefetcher or "berti")
    if prefetcher is not None:
        spec = replace(spec, prefetcher=prefetcher)
    policy_specs = {policy: replace(spec, policy=policy) for policy in policies}
    if jobs == 1 and cache is None and progress is None:
        return {
            policy: run_many(workloads, policy_spec, obs=obs)
            for policy, policy_spec in policy_specs.items()
        }

    from repro.experiments.parallel import cell_for, grid_session, run_cells

    cells = [
        cell_for(workload, policy_spec)
        for policy_spec in policy_specs.values()
        for workload in workloads
    ]
    with grid_session(jobs, shm):
        flat = run_cells(cells, jobs=jobs, cache=cache, obs=obs, shm=shm,
                         progress=progress)
    n = len(workloads)
    return {
        policy: flat[i * n:(i + 1) * n]
        for i, policy in enumerate(policy_specs)
    }
