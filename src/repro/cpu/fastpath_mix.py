"""Resumable fused core stepper for the multi-core mix drive loop.

The mix scheduler (:func:`repro.cpu.multicore._drive_mix_packed`) steps
cores in retire-clock order: pop the furthest-behind core from a min-heap,
run it until its ``(retire_t, index)`` reaches the heap's next entry, push
it back.  Driving each of those bursts through ``engine.step`` pays the
full slow-path dispatch per record, so a packed mix ran no faster than the
generator mix — the whole point of attaching packed columns was lost.

:func:`core_stepper` fixes that by running each core through the *fused*
record kernel of :mod:`repro.cpu.fastpath` — the same statement-for-
statement replication of ``engine.step``'s hot path, with the same
slow-path fallbacks — wrapped in a **generator coroutine** so the kernel's
hoisted locals survive across scheduling switches.  A plain function would
have to re-hoist ~50 loop invariants and reload the timeline scalars on
every burst (bursts are short: a few records between heap switches); a
generator parks at a bare ``yield`` instead, keeping every local alive, so
switching cores costs one ``send()``.

Protocol (driven by ``_drive_mix_packed``)::

    gen = core_stepper(engine, pack, workload, warm_limit, sim_limit, i)
    next(gen)                          # run the hoists, park before record 0
    event, t = gen.send((bound_t, bound_i))   # run until an event:
    #   ("bound", retire_t)  — (retire_t, i) reached the bound; the caller
    #                          pushes (retire_t, i) and schedules another
    #                          core; resuming continues from the same spot
    #   ("finish", retire_t) — the measured region just completed; engine
    #                          scalars are flushed so the caller can collect
    #                          the result; resuming starts the replay
    gen.close()                        # flush scalars back to the engine

Every ``send`` carries the current bound ``(bound_t, bound_i)``: the core
may keep stepping while ``(retire_t, i) < (bound_t, bound_i)``, which is
exactly the condition under which re-pushing and popping the heap would
return the same core again.

Bit-identity with the generator mix loop holds by composition:

* the per-record body is the fused kernel, already proven equal to
  ``engine.step`` record-for-record (single-core differential checks);
* event placement matches the reference loop's per-record checks — warm-up
  begins at the first record boundary at or after ``warm_limit``
  (``begin_measurement`` is looked up per call, so an attached
  :class:`~repro.validate.InvariantChecker`'s wrapper still fires), the
  finish event fires when the measured region completes, and the bound
  check runs after each record including the finishing one;
* replay restart is a fresh pass over the columns; a replay that outruns a
  complete pack continues on the overflow stream advanced past the packed
  prefix — precisely the stream the generator loop would be consuming —
  fed through the *same* fused body (the kernel's contract holds for any
  record, packed or live; replaying cores spend most of their time here,
  so leaving this tail on ``engine.step`` would forfeit the speedup),
  wrapping to record 0 when that finite stream ends.  Incomplete packs
  hold the entire source trace and simply wrap.  The overflow stream is
  memoised per workload identity (:class:`_OverflowTail`): regenerating
  prefix + tail is the dominant non-simulation cost of a cell, and the
  records are seed-deterministic, so later cells of the same mix replay
  cached tuples instead of re-running the source generator.

The timeline scalars are flushed to the engine at every point the outside
world may look at it — epoch rollovers, ``begin_measurement``, the finish
event, and generator close — and only then.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from itertools import chain, islice
from typing import TYPE_CHECKING, Iterator

from repro.cpu.branch import DEFAULT_HISTORY_LENGTHS, HashedPerceptronBranchPredictor
from repro.cpu.fastpath import _lru_fusible, _make_fused_dispatch
from repro.prefetch.next_line import NextLinePrefetcher
from repro.vm.address import LINE_SHIFT, PAGE_4K_SHIFT, PAGE_2M_SHIFT
from repro.vm.page_table import Translation
from repro.workloads.packed import PackedTrace
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.core import CoreEngine
    from repro.workloads.synthetic import SyntheticWorkload
    from repro.workloads.trace import Record

__all__ = ["core_stepper", "clear_overflow_tails"]

_INF = float("inf")


def _overflow_iterator(workload: "SyntheticWorkload", skip: int) -> Iterator["Record"]:
    """A fresh record stream advanced past the first ``skip`` records.

    A replaying core that exhausts its (complete) pack is, in generator-loop
    terms, consuming records ``skip, skip+1, ...`` of a fresh
    ``workload.generate()`` stream — records the pack never materialised.
    """
    it = iter(workload.generate())
    deque(islice(it, skip), maxlen=0)
    return it


class _OverflowTail:
    """Memoised overflow stream shared by every stepper of one workload.

    Regenerating the overflow tail is the dominant non-simulation cost of a
    packed mix cell: the source generator must replay the whole packed
    prefix (to advance its pattern/RNG state) and then re-produce every
    tail record, once per cell — and a mix study runs the same mix under
    several policies.  Records are deterministic per workload identity, so
    the tail is generated once per process and appended here; later cells
    (and same-workload cores within a cell) replay the cached tuples.

    Consumers hold their own cursor into ``records``; whoever runs off the
    cached end pulls the shared ``source`` forward and appends.  Steppers
    are coroutines on one thread, so there is no append race — a consumer
    only yields control *between* records.
    """

    __slots__ = ("workload", "skip", "records", "source", "exhausted")

    def __init__(self, workload: "SyntheticWorkload", skip: int) -> None:
        self.workload = workload
        self.skip = skip
        self.records: list["Record"] = []
        #: created on first use so the prefix replay is deferred (and paid
        #: exactly once) — mirrors the lazy `_overflow_records` wrapper
        self.source: Iterator["Record"] | None = None
        self.exhausted = False


#: per-entry cap on memoised tail records (32 B-per-field tuples; ~0.5 M
#: records keeps the worst entry around tens of MB) — a replay running past
#: the cap falls back to a private regenerated stream
_TAIL_RECORD_CAP = 1 << 19

#: FIFO-bounded cache: identity key -> _OverflowTail
_TAIL_CACHE: OrderedDict[tuple, _OverflowTail] = OrderedDict()
_TAIL_CACHE_CAPACITY = 8


def clear_overflow_tails() -> None:
    """Drop every memoised overflow tail (test isolation hook)."""
    _TAIL_CACHE.clear()


def _tail_key(workload: "SyntheticWorkload", skip: int) -> tuple | None:
    """Identity key for the tail cache, or None when caching is unsafe.

    Mirrors ``repro.workloads.packed._pack_key``: seed- or path-identified
    workloads regenerate deterministically, so their tails can be shared;
    anything else would need id-keyed weakref pinning — not worth it for a
    pure performance cache, so those streams just stay uncached.
    """
    seed = getattr(workload, "seed", None)
    path = getattr(workload, "path", None)
    if seed is None and path is None:
        return None
    return (type(workload).__name__, workload.name,
            getattr(workload, "suite", ""), seed, str(path), skip)


def _tail_records(workload: "SyntheticWorkload", skip: int) -> Iterator["Record"]:
    """The overflow stream, served from (and growing) the shared tail cache.

    Yields exactly the records ``_overflow_iterator(workload, skip)`` would:
    the cached span first, then freshly generated records which are appended
    as they are produced.  Past ``_TAIL_RECORD_CAP`` the consumer continues
    on a private stream advanced beyond everything already served.
    """
    key = _tail_key(workload, skip)
    if key is None:
        yield from _overflow_iterator(workload, skip)
        return
    tail = _TAIL_CACHE.get(key)
    if tail is None:
        tail = _OverflowTail(workload, skip)
        _TAIL_CACHE[key] = tail
        while len(_TAIL_CACHE) > _TAIL_CACHE_CAPACITY:
            _TAIL_CACHE.popitem(last=False)
    records = tail.records
    i = 0
    while True:
        n = len(records)
        while i < n:
            yield records[i]
            i += 1
        if tail.exhausted:
            return
        if i >= _TAIL_RECORD_CAP:
            yield from _overflow_iterator(workload, skip + i)
            return
        if tail.source is None:
            tail.source = _overflow_iterator(workload, skip)
        try:
            rec = next(tail.source)
        except StopIteration:
            tail.exhausted = True
            return
        records.append(rec)
        yield rec
        i += 1


def core_stepper(engine: "CoreEngine", packed: PackedTrace,
                 workload: "SyntheticWorkload", warm_limit: int,
                 sim_limit: int, core_index: int):
    """Build the resumable fused stepper for one mix core (see module doc).

    The record body below replicates :func:`repro.cpu.fastpath._drive_fused`
    statement-for-statement; only the loop plumbing differs (indexed replay
    over the columns, event yields instead of a single warm-up/stop
    threshold).  Keep the two in sync.
    """
    # ---- loop-invariant hoists (== _drive_fused) -------------------------
    end_epoch = engine._end_epoch
    h = engine.hierarchy
    l1d = h.l1d
    l1i = h.l1i
    l1d_sets, l1d_mask = l1d._sets, l1d._set_mask
    l1i_sets, l1i_mask = l1i._sets, l1i._set_mask
    l1d_stats, l1d_demand = l1d.stats, l1d.demand_stats
    l1i_stats, l1i_demand = l1i.stats, l1i.demand_stats
    l1d_pol, l1i_pol = l1d._policy, l1i._policy
    l1d_fused = _lru_fusible(l1d)
    l1i_fused = _lru_fusible(l1i)
    l1d_listener, l1i_listener = l1d.listener, l1i.listener
    l1d_lat, l1i_lat = l1d.latency, l1i.latency
    l1d_lat_f, l1i_lat_f = float(l1d_lat), float(l1i_lat)
    dtlb, itlb = engine.dtlb, engine.itlb
    dtlb_sets, dtlb_mask, dtlb_stats = dtlb._sets, dtlb._set_mask, dtlb.stats
    itlb_sets, itlb_mask, itlb_stats = itlb._sets, itlb._set_mask, itlb.stats
    dtlb_lat_f = float(dtlb.latency)
    itlb_lat = itlb.latency
    itlb_lat_f = float(itlb_lat)
    translate_data = engine._translate_data
    translate_instr = engine._translate_instruction
    mem_load, mem_store, mem_ifetch = engine._mem_load, engine._mem_store, engine._mem_ifetch
    pf_on_access = engine._pf_on_access
    dispatch_pf = _make_fused_dispatch(engine) or engine._dispatch_prefetches
    fctx = engine.fctx
    fctx_seen = fctx._seen_pages
    fctx_cap = fctx._seen_cap
    fctx_ph = fctx.pc_history
    fctx_vh = fctx.va_history
    bp = engine.branch_predictor
    bp_predict = bp.predict_and_train
    bp_fused = (type(bp) is HashedPerceptronBranchPredictor
                and bp.history_lengths == DEFAULT_HISTORY_LENGTHS)
    if bp_fused:
        bt0, bt1, bt2, bt3, bt4 = bp.tables
        bp_imask = bp.index_mask
        bp_thr = bp.threshold
        bp_lo, bp_hi = bp.weight_lo, bp.weight_hi
    policy_on_demand_miss = engine.policy.on_demand_miss
    pf_on_fill = engine.prefetcher.on_fill
    l2pf = engine.l2_prefetcher
    prefetch_l2 = h.prefetch_l2
    l1i_pf = engine.l1i_prefetcher
    l1i_pf_on_fetch = l1i_pf.on_fetch
    l1i_nl_fused = type(l1i_pf) is NextLinePrefetcher and l1i_pf.degree == 2
    prefetch_l1i = h.prefetch_l1i
    fetch_cpi = engine._fetch_cpi
    retire_cpi = engine._retire_cpi
    rob_entries = engine._rob
    mispredict_penalty = engine._mispredict_penalty
    rob_q = engine._rob_q
    rob_popleft = rob_q.popleft
    rob_append = rob_q.append
    LS = LINE_SHIFT
    S4, S2 = PAGE_4K_SHIFT, PAGE_2M_SHIFT
    F_MEM = LOAD | STORE

    pcs_col, vaddrs_col = packed.pcs, packed.vaddrs
    flags_col, gaps_col = packed.flags, packed.gaps
    pack_len = len(packed)
    pack_complete = packed.complete
    core = core_index

    # ---- hoisted timeline scalars ---------------------------------------
    instructions = engine.instructions
    fetch_t = engine.fetch_t
    retire_t = engine.retire_t
    rob_head_retire = engine._rob_head_retire
    rob_block_end = engine._rob_block_end
    rob_stall = engine.rob_stall_cycles
    last_load_complete = engine._last_load_complete
    last_iline = engine._last_iline
    next_epoch = engine._next_epoch
    measuring = False
    #: warm-up limit until measurement begins, then the absolute finish
    #: point, then +inf while the finished core replays
    boundary = warm_limit

    def _overflow_records():
        # the skip inside the overflow stream regenerates the packed prefix
        # (to advance the source's pattern/RNG state), so defer it until a
        # pass actually outruns the pack; complete packs finish on their
        # last record, so this tail is only ever reached while replaying.
        # _tail_records memoises the stream so the regeneration is paid
        # once per workload per process, not once per cell.
        if pack_complete:
            yield from _tail_records(workload, pack_len)

    bound_t, bound_i = yield ("ready", 0.0)
    strict = bound_i < core
    try:
        while True:
            restart = False
            for pc, vaddr, flag, gap in chain(
                    zip(pcs_col, vaddrs_col, flags_col, gaps_col),
                    _overflow_records()):
                instructions = n = instructions + 1 + gap

                # front end
                fetch_t += (1 + gap) * fetch_cpi
                iline = pc >> LS
                if iline != last_iline:
                    last_iline = iline
                    vpn = pc >> S4
                    entry = itlb_sets[vpn & itlb_mask].get((vpn, S4))
                    shift = S4
                    if entry is None:
                        vpn = pc >> S2
                        entry = itlb_sets[vpn & itlb_mask].get((vpn, S2))
                        shift = S2
                    if entry is not None:
                        # fused iTLB hit (== Tlb.lookup's hit arm)
                        itlb._tick = t_k = itlb._tick + 1
                        itlb_stats.accesses += 1
                        itlb_stats.hits += 1
                        entry[1] = t_k
                        if entry[2]:
                            itlb.prefetch_hits += 1
                            entry[2] = False
                        ilat = itlb_lat_f
                        ibase = (entry[0] << shift) | (pc & ((1 << shift) - 1))
                        itr_shift = shift
                    else:
                        # side-effect-free probe missed: the full path records it
                        ilat, itr = translate_instr(pc, fetch_t)
                        ibase = itr.physical(pc)
                        itr_shift = itr.page_shift
                    t_i = fetch_t + ilat
                    fline = ibase >> LS
                    iset = l1i_sets[fline & l1i_mask]
                    blk = iset.get(fline)
                    if blk is not None and l1i_fused:
                        # fused L1I hit (== Cache.lookup + ifetch's hit arm)
                        l1i_stats.accesses += 1
                        l1i_stats.hits += 1
                        l1i_demand.accesses += 1
                        l1i_demand.hits += 1
                        l1i_pol._tick = p_k = l1i_pol._tick + 1
                        blk.lru = p_k
                        del iset[fline]
                        iset[fline] = blk
                        if blk.prefetched and blk.hits == 0:
                            l1i.prefetch_useful += 1
                            if blk.pcb:
                                l1i.pgc_useful += 1
                                if l1i_listener is not None:
                                    l1i_listener.on_pcb_hit(fline)
                        blk.hits += 1
                        flat = blk.ready - t_i
                        if flat < l1i_lat_f:
                            flat = l1i_lat_f
                    else:
                        flat = mem_ifetch(ibase, t_i)
                    penalty = (ilat - itlb_lat) + (flat - l1i_lat)
                    if penalty > 0:
                        fetch_t += penalty
                    if l1i_nl_fused:
                        # fused next-line I-prefetcher (== on_fetch, degree 2);
                        # prefetch_l1i returns without side effects on a resident
                        # line, so probing here skips the call entirely
                        if fline != l1i_pf._last_line:
                            l1i_pf._last_line = fline
                            nline = fline + 1
                            if l1i_sets[nline & l1i_mask].get(nline) is None:
                                prefetch_l1i(nline << LS, fetch_t)
                            nline = fline + 2
                            if l1i_sets[nline & l1i_mask].get(nline) is None:
                                prefetch_l1i(nline << LS, fetch_t)
                    else:
                        for target_line in l1i_pf_on_fetch(fline):
                            prefetch_l1i(target_line << LS, fetch_t)
                    extra_lines = (gap * 4) >> LS
                    if extra_lines:
                        page_mask = (1 << itr_shift) - 1
                        frame_left = (page_mask - (ibase & page_mask)) >> LS
                        if extra_lines > frame_left:
                            extra_lines = frame_left
                        if extra_lines > 8:
                            extra_lines = 8
                        for k in range(1, extra_lines + 1):
                            flat = mem_ifetch(ibase + (k << LS), fetch_t)
                            if flat > l1i_lat:
                                fetch_t += flat - l1i_lat

                # dispatch: ROB occupancy constraint
                limit = n - rob_entries
                while rob_q and rob_q[0][0] <= limit:
                    rob_head_retire = rob_popleft()[1]
                dispatch = fetch_t
                if rob_head_retire > dispatch:
                    blocked_from = dispatch if dispatch > rob_block_end else rob_block_end
                    if rob_head_retire > blocked_from:
                        rob_stall += rob_head_retire - blocked_from
                        rob_block_end = rob_head_retire
                    dispatch = rob_head_retire
                if flag & DEPENDS and last_load_complete > dispatch:
                    dispatch = last_load_complete

                # memory access
                if flag & F_MEM:
                    vpn = vaddr >> S4
                    entry = dtlb_sets[vpn & dtlb_mask].get((vpn, S4))
                    shift = S4
                    if entry is None:
                        vpn = vaddr >> S2
                        entry = dtlb_sets[vpn & dtlb_mask].get((vpn, S2))
                        shift = S2
                    if entry is not None:
                        # fused dTLB hit; Translation built lazily below
                        dtlb._tick = t_k = dtlb._tick + 1
                        dtlb_stats.accesses += 1
                        dtlb_stats.hits += 1
                        entry[1] = t_k
                        if entry[2]:
                            dtlb.prefetch_hits += 1
                            entry[2] = False
                        tr = None
                        tr_vpn, tr_pfn, tr_shift = vpn, entry[0], shift
                        paddr = (tr_pfn << shift) | (vaddr & ((1 << shift) - 1))
                        t_mem = dispatch + dtlb_lat_f
                    else:
                        trans_lat, tr = translate_data(vaddr, dispatch)
                        paddr = tr.physical(vaddr)
                        t_mem = dispatch + trans_lat
                    line = paddr >> LS
                    dset = l1d_sets[line & l1d_mask]
                    blk = dset.get(line)
                    if flag & LOAD:
                        if blk is not None and l1d_fused:
                            # fused L1D load hit (== Cache.lookup + load's hit arm)
                            l1d_stats.accesses += 1
                            l1d_stats.hits += 1
                            l1d_demand.accesses += 1
                            l1d_demand.hits += 1
                            l1d_pol._tick = p_k = l1d_pol._tick + 1
                            blk.lru = p_k
                            del dset[line]
                            dset[line] = blk
                            if blk.prefetched and blk.hits == 0:
                                l1d.prefetch_useful += 1
                                if blk.pcb:
                                    l1d.pgc_useful += 1
                                    if l1d_listener is not None:
                                        l1d_listener.on_pcb_hit(line)
                            blk.hits += 1
                            if blk.ready > t_mem + l1d_lat:
                                if blk.prefetched and blk.hits == 1:
                                    l1d.prefetch_late += 1
                                mlat = blk.ready - t_mem
                            else:
                                mlat = l1d_lat_f
                            complete = t_mem + mlat
                            last_load_complete = complete
                            hit = True
                        else:
                            mlat, hit = mem_load(paddr, t_mem)
                            complete = t_mem + mlat
                            last_load_complete = complete
                            if not hit:
                                policy_on_demand_miss(vaddr >> LS)
                                pf_on_fill(vaddr, mlat)
                                if l2pf is not None:
                                    for l2line in l2pf.on_access(paddr >> LS, t_mem):
                                        prefetch_l2(l2line << LS, t_mem)
                    else:
                        if blk is not None and l1d_fused:
                            # fused L1D store hit (== Cache.lookup + store's hit arm)
                            l1d_stats.accesses += 1
                            l1d_stats.hits += 1
                            l1d_demand.accesses += 1
                            l1d_demand.hits += 1
                            l1d_pol._tick = p_k = l1d_pol._tick + 1
                            blk.lru = p_k
                            del dset[line]
                            dset[line] = blk
                            if blk.prefetched and blk.hits == 0:
                                l1d.prefetch_useful += 1
                                if blk.pcb:
                                    l1d.pgc_useful += 1
                                    if l1d_listener is not None:
                                        l1d_listener.on_pcb_hit(line)
                            blk.hits += 1
                            blk.dirty = True
                            complete = t_mem + l1d_lat_f
                        else:
                            complete = t_mem + mem_store(paddr, t_mem)
                        hit = True
                    # fused FeatureContext.update (move-to-end seen-page LRU)
                    fctx._seen_tick = f_tick = fctx._seen_tick + 1
                    page = vaddr >> S4
                    if page in fctx_seen:
                        fctx.first_page_access = False
                        del fctx_seen[page]
                    else:
                        fctx.first_page_access = True
                        if len(fctx_seen) >= fctx_cap:
                            del fctx_seen[next(iter(fctx_seen))]
                    fctx_seen[page] = f_tick
                    fctx_ph[2] = fctx_ph[1]
                    fctx_ph[1] = fctx_ph[0]
                    fctx_ph[0] = pc
                    fctx_vh[2] = fctx_vh[1]
                    fctx_vh[1] = fctx_vh[0]
                    fctx_vh[0] = vaddr
                    fctx.last_pc = pc
                    fctx.last_vaddr = vaddr
                    requests = pf_on_access(pc, vaddr, hit, t_mem)
                    if requests:
                        if tr is None:
                            tr = Translation(tr_vpn, tr_pfn, tr_shift)
                        dispatch_pf(requests, vaddr, tr, t_mem, pc)
                else:
                    complete = dispatch + 1.0

                # branch resolution
                mispredicted = flag & MISPREDICT
                if flag & BRANCH:
                    if bp_fused:
                        # fused hashed perceptron (== predict_and_train, unrolled
                        # for the default (0, 4, 8, 16, 32) history slices)
                        bpc = pc + 0x3C
                        taken = (flag & TAKEN) != 0
                        ghr = bp.ghr
                        i0 = (bpc ^ (bpc >> 13)) & bp_imask
                        hx = bpc ^ ((ghr & 0xF) * 0x9E3779B1)
                        i1 = (hx ^ (hx >> 13)) & bp_imask
                        hx = bpc ^ ((ghr & 0xFF) * 0x9E3779B1)
                        i2 = (hx ^ (hx >> 13)) & bp_imask
                        hx = bpc ^ ((ghr & 0xFFFF) * 0x9E3779B1)
                        i3 = (hx ^ (hx >> 13)) & bp_imask
                        hx = bpc ^ ((ghr & 0xFFFFFFFF) * 0x9E3779B1)
                        i4 = (hx ^ (hx >> 13)) & bp_imask
                        total = bt0[i0] + bt1[i1] + bt2[i2] + bt3[i3] + bt4[i4]
                        bp.predictions += 1
                        correct = (total >= 0) == taken
                        if not correct:
                            bp.mispredictions += 1
                            mispredicted = True
                        if not correct or -bp_thr <= total <= bp_thr:
                            if taken:
                                w = bt0[i0]
                                if w < bp_hi:
                                    bt0[i0] = w + 1
                                w = bt1[i1]
                                if w < bp_hi:
                                    bt1[i1] = w + 1
                                w = bt2[i2]
                                if w < bp_hi:
                                    bt2[i2] = w + 1
                                w = bt3[i3]
                                if w < bp_hi:
                                    bt3[i3] = w + 1
                                w = bt4[i4]
                                if w < bp_hi:
                                    bt4[i4] = w + 1
                            else:
                                w = bt0[i0]
                                if w > bp_lo:
                                    bt0[i0] = w - 1
                                w = bt1[i1]
                                if w > bp_lo:
                                    bt1[i1] = w - 1
                                w = bt2[i2]
                                if w > bp_lo:
                                    bt2[i2] = w - 1
                                w = bt3[i3]
                                if w > bp_lo:
                                    bt3[i3] = w - 1
                                w = bt4[i4]
                                if w > bp_lo:
                                    bt4[i4] = w - 1
                        bp.ghr = ((ghr << 1) | taken) & 0xFFFFFFFFFFFFFFFF
                    else:
                        correct = bp_predict(pc + 0x3C, bool(flag & TAKEN))
                        if not correct:
                            mispredicted = True
                if mispredicted:
                    resolve_at = complete if flag & DEPENDS else dispatch + 8.0
                    resolve = resolve_at + mispredict_penalty
                    if resolve > fetch_t:
                        fetch_t = resolve

                # in-order retirement
                retire = retire_t + (1 + gap) * retire_cpi
                if complete > retire:
                    retire = complete
                retire_t = retire
                rob_append((n, retire))

                if n >= next_epoch:
                    # epoch rollover, inline (== the tail of step()): flush the
                    # hoisted scalars the epoch hooks may read, fire _end_epoch
                    # (threshold/policy on_epoch feed, epoch_listener tick), then
                    # reload in case a listener advanced the engine
                    engine.instructions = instructions
                    engine.fetch_t = fetch_t
                    engine.retire_t = retire_t
                    engine._rob_head_retire = rob_head_retire
                    engine._rob_block_end = rob_block_end
                    engine.rob_stall_cycles = rob_stall
                    engine._last_load_complete = last_load_complete
                    engine._last_iline = last_iline
                    end_epoch()
                    instructions = engine.instructions
                    fetch_t = engine.fetch_t
                    retire_t = engine.retire_t
                    rob_head_retire = engine._rob_head_retire
                    rob_block_end = engine._rob_block_end
                    rob_stall = engine.rob_stall_cycles
                    last_load_complete = engine._last_load_complete
                    last_iline = engine._last_iline
                    next_epoch = engine._next_epoch

                # warm-up / finish boundary (same per-record checks, in the
                # same order, as the generator mix loop)
                if instructions >= boundary:
                    if not measuring:
                        engine.instructions = instructions
                        engine.fetch_t = fetch_t
                        engine.retire_t = retire_t
                        engine._rob_head_retire = rob_head_retire
                        engine._rob_block_end = rob_block_end
                        engine.rob_stall_cycles = rob_stall
                        engine._last_load_complete = last_load_complete
                        engine._last_iline = last_iline
                        # attribute lookup on purpose: an InvariantChecker
                        # wraps engine.begin_measurement at attach time
                        engine.begin_measurement()
                        measuring = True
                        boundary = instructions + sim_limit
                    if instructions >= boundary:
                        # measured region complete: flush so the caller can
                        # collect the result, then replay from record 0
                        engine.instructions = instructions
                        engine.fetch_t = fetch_t
                        engine.retire_t = retire_t
                        engine._rob_head_retire = rob_head_retire
                        engine._rob_block_end = rob_block_end
                        engine.rob_stall_cycles = rob_stall
                        engine._last_load_complete = last_load_complete
                        engine._last_iline = last_iline
                        bound_t, bound_i = yield ("finish", retire_t)
                        strict = bound_i < core
                        boundary = _INF
                        if retire_t > bound_t or (strict and retire_t == bound_t):
                            bound_t, bound_i = yield ("bound", retire_t)
                            strict = bound_i < core
                        restart = True
                        break

                # scheduling bound: (retire_t, core) vs the heap's next entry
                if retire_t > bound_t or (strict and retire_t == bound_t):
                    bound_t, bound_i = yield ("bound", retire_t)
                    strict = bound_i < core

            if restart:
                continue
            # source exhausted — a finite trace ran out — wrap to record 0
            # (== the generator loop's StopIteration restart)
    finally:
        engine.instructions = instructions
        engine.fetch_t = fetch_t
        engine.retire_t = retire_t
        engine._rob_head_retire = rob_head_retire
        engine._rob_block_end = rob_block_end
        engine.rob_stall_cycles = rob_stall
        engine._last_load_complete = last_load_complete
        engine._last_iline = last_iline
