"""Single-core simulation driver.

Assembles a full system (core engine + hierarchy + virtual memory + chosen
prefetcher and page-cross policy), runs a workload for warm-up + measured
instructions, and returns a :class:`SimResult` with everything the paper's
figures report: IPC, MPKIs, prefetch coverage/accuracy, and page-cross
usefulness counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.policies import DiscardPgc, PageCrossPolicy
from repro.cpu.core import CoreEngine
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.metrics import get_metrics
from repro.obs.tracing import trace_span
from repro.params import DEFAULT_PARAMS, SystemParams
from repro.prefetch import make_l1d_prefetcher, make_l2_prefetcher
from repro.prefetch.base import L1dPrefetcher
from repro.prefetch.l2_adapters import L2Prefetcher
from repro.vm.page_table import LargePagePolicy, PageTable
from repro.vm.psc import SplitPsc
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalker
from repro.workloads.trace import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.sampling import SamplingConfig
    from repro.obs import Observability

#: builds a fresh policy per run (policies are stateful and must not be shared)
PolicyFactory = Callable[[], PageCrossPolicy]

#: one increment per drive-loop entry, labelled by mode (``generator`` |
#: ``fused`` | ``stepwise`` | ``vectorized``) — the fast-path-vs-fallback
#: ratio of a grid is readable straight off the merged metrics
_DRIVES = get_metrics().counter(
    "sim.drives",
    "drive-loop entries by mode (generator/fused/stepwise/vectorized)")


@dataclass
class SimConfig:
    """One simulation's knobs."""

    prefetcher: str = "berti"
    policy_factory: PolicyFactory = DiscardPgc
    l2_prefetcher: str = "none"
    warmup_instructions: int = 20_000
    sim_instructions: int = 60_000
    params: SystemParams = field(default_factory=lambda: DEFAULT_PARAMS)
    large_page_fraction: float = 0.0
    epoch_instructions: int = 2048
    prefetcher_extra_storage: int = 0
    asid: int = 0
    #: attach a runtime :class:`~repro.validate.InvariantChecker` to the run
    #: (conservation laws checked per epoch and at collect time); purely
    #: observational — a validated run produces the same SimResult
    validate: bool = False
    #: drive through the batched fast path (:mod:`repro.cpu.fastpath`) over a
    #: cached :class:`~repro.workloads.packed.PackedTrace` instead of the
    #: per-record generator loop; results are bit-identical either way
    packed: bool = False
    #: packed kernel tier: ``"fused"`` (record-at-a-time, PR 4/5),
    #: ``"vectorized"`` (span-skipping numpy scans,
    #: :mod:`repro.cpu.fastpath_vec`), or ``"auto"`` (an event-density probe
    #: over the pack picks the tier expected to win).  Anything but
    #: ``"fused"`` implies the packed path; results are bit-identical
    #: across tiers
    kernel: str = "fused"
    #: phase-sampled simulation (:mod:`repro.experiments.sampling`): profile
    #: the packed trace into phases, simulate one representative interval
    #: per phase, and reconstruct the whole-trace result with bootstrap
    #: confidence bounds.  ``None`` (the default) simulates the full window;
    #: a sampled result is an *approximation* and therefore DOES enter the
    #: result-cache fingerprint, unlike ``packed``/``kernel``
    sampling: Optional["SamplingConfig"] = None


@dataclass
class SimResult:
    """Measured-region statistics of one run."""

    workload: str
    prefetcher: str
    policy: str
    instructions: int
    cycles: float
    ipc: float
    # MPKIs (demand)
    dtlb_mpki: float
    itlb_mpki: float
    stlb_mpki: float
    l1i_mpki: float
    l1d_mpki: float
    l2c_mpki: float
    llc_mpki: float
    # miss rates (demand)
    l1d_miss_rate: float
    llc_miss_rate: float
    stlb_miss_rate: float
    # prefetching (all L1D prefetches)
    prefetch_fills: int
    prefetch_useful: int
    prefetch_useless: int
    prefetch_late: int
    # page-cross prefetching
    pgc_candidates: int
    pgc_issued: int
    pgc_discarded: int
    pgc_useful: int
    pgc_useless: int
    # virtual memory activity
    demand_walks: int
    speculative_walks: int
    tlb_prefetch_hits: int
    # DRAM traffic
    dram_reads: int
    dram_writes: int
    # branch prediction (hashed perceptron predictor of Table IV)
    branches: int = 0
    branch_mispredicts: int = 0
    #: raw demand L1D misses over the measured region (the MPKI above is a
    #: derived rate; coverage needs the exact count)
    l1d_demand_misses: int = 0
    #: measured-region length the config asked for; `instructions` is what
    #: actually retired (finite traces can end early — `simulate` raises on
    #: truncation, but journaled/cached records keep both for auditing)
    requested_instructions: int = 0
    #: prefetch-installed TLB entries evicted without serving a demand access
    #: (measured region, dTLB + sTLB)
    tlb_prefetch_evicted_unused: int = 0
    #: phase-sampled reconstruction provenance (0/0.0 on full runs): how many
    #: profiled intervals and detected phases produced this result, and the
    #: bootstrap confidence bounds on the reconstructed IPC
    #: (:mod:`repro.experiments.sampling`)
    sampled_intervals: int = 0
    sampled_phases: int = 0
    ipc_ci_lo: float = 0.0
    ipc_ci_hi: float = 0.0

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo-instruction (measured region)."""
        return 1000.0 * self.branch_mispredicts / self.instructions if self.instructions else 0.0

    @property
    def branch_mispredict_rate(self) -> float:
        """Fraction of predicted branches that mispredicted."""
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that served at least one demand hit."""
        done = self.prefetch_useful + self.prefetch_useless
        return self.prefetch_useful / done if done else 0.0

    @property
    def prefetch_coverage(self) -> float:
        """Fraction of would-be demand misses covered by prefetching."""
        would_be = self.prefetch_useful + self.l1d_demand_misses
        return self.prefetch_useful / would_be if would_be else 0.0

    @property
    def pgc_accuracy(self) -> float:
        """Useful fraction of resolved page-cross prefetches."""
        done = self.pgc_useful + self.pgc_useless
        return self.pgc_useful / done if done else 0.0

    @property
    def pgc_useful_pki(self) -> float:
        """Useful page-cross prefetches per kilo-instruction (Figure 13)."""
        return 1000.0 * self.pgc_useful / self.instructions if self.instructions else 0.0

    @property
    def pgc_useless_pki(self) -> float:
        """Useless page-cross prefetches per kilo-instruction (Figure 13)."""
        return 1000.0 * self.pgc_useless / self.instructions if self.instructions else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC speedup of this run over a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup_over compares runs of the same workload; got {self.workload!r} vs {baseline.workload!r}"
            )
        if baseline.ipc == 0:
            raise ValueError(
                f"cannot compute speedup over baseline {baseline.policy!r} on "
                f"{baseline.workload!r}: its IPC is zero (did the baseline run retire anything?)"
            )
        return self.ipc / baseline.ipc


def build_engine(config: SimConfig, *, shared_llc=None, shared_dram=None,
                 prefetcher: Optional[L1dPrefetcher] = None,
                 l2_prefetcher: Optional[L2Prefetcher] = None) -> CoreEngine:
    """Construct a fully wired core engine from a :class:`SimConfig`."""
    params = config.params
    hierarchy = MemoryHierarchy(params, shared_llc=shared_llc, shared_dram=shared_dram)
    large = LargePagePolicy(config.large_page_fraction, seed=7)
    page_table = PageTable(asid=config.asid, large_pages=large)
    psc = SplitPsc(params.psc)
    walker = PageWalker(page_table, psc, hierarchy.ptw_read)
    dtlb = Tlb(params.dtlb)
    itlb = Tlb(params.itlb)
    stlb = Tlb(params.stlb)
    if prefetcher is None:
        prefetcher = make_l1d_prefetcher(
            config.prefetcher, extra_storage_bytes=config.prefetcher_extra_storage
        )
    if l2_prefetcher is None and config.l2_prefetcher not in ("none", "no-l2"):
        l2_prefetcher = make_l2_prefetcher(config.l2_prefetcher)
    policy = config.policy_factory()
    return CoreEngine(
        params,
        hierarchy,
        page_table,
        walker,
        dtlb,
        itlb,
        stlb,
        prefetcher,
        policy,
        l2_prefetcher=l2_prefetcher,
        epoch_instructions=config.epoch_instructions,
    )


def collect_result(engine: CoreEngine, workload_name: str, config: SimConfig) -> SimResult:
    """Assemble a :class:`SimResult` from a finished engine."""
    engine.hierarchy.finalize()
    instructions = engine.measured_instructions
    cycles = engine.measured_cycles
    h = engine.hierarchy
    pf = h.l1d.measured_prefetch
    pgc = engine.pgc.measured()
    return SimResult(
        workload=workload_name,
        prefetcher=engine.prefetcher.name,
        policy=engine.policy.name,
        instructions=instructions,
        cycles=cycles,
        ipc=instructions / cycles if cycles > 0 else 0.0,
        dtlb_mpki=engine.dtlb.stats.mpki(instructions),
        itlb_mpki=engine.itlb.stats.mpki(instructions),
        stlb_mpki=engine.stlb.stats.mpki(instructions),
        l1i_mpki=h.l1i.demand_stats.mpki(instructions),
        l1d_mpki=h.l1d.demand_stats.mpki(instructions),
        l2c_mpki=h.l2c.demand_stats.mpki(instructions),
        llc_mpki=h.llc_core_stats.mpki(instructions),
        l1d_miss_rate=h.l1d.demand_stats.miss_rate,
        llc_miss_rate=h.llc_core_stats.miss_rate,
        stlb_miss_rate=engine.stlb.stats.miss_rate,
        prefetch_fills=pf["fills"],
        prefetch_useful=pf["useful"],
        prefetch_useless=pf["useless"],
        prefetch_late=pf["late"],
        pgc_candidates=pgc["candidates"],
        pgc_issued=pgc["issued"],
        pgc_discarded=pgc["discarded"],
        pgc_useful=pf["pgc_useful"],
        pgc_useless=pf["pgc_useless"],
        demand_walks=engine.walker.measured_demand_walks,
        speculative_walks=engine.walker.measured_speculative_walks,
        tlb_prefetch_hits=(
            engine.stlb.measured_prefetch_hits + engine.dtlb.measured_prefetch_hits
        ),
        tlb_prefetch_evicted_unused=(
            engine.stlb.measured_prefetch_evicted_unused
            + engine.dtlb.measured_prefetch_evicted_unused
        ),
        dram_reads=h.dram.measured_reads,
        dram_writes=h.dram.measured_writes,
        branches=engine.branch_predictor.measured_predictions,
        branch_mispredicts=engine.branch_predictor.measured_mispredictions,
        l1d_demand_misses=h.l1d.demand_stats.measured_misses,
        requested_instructions=config.sim_instructions,
    )


def drive(engine: CoreEngine, workload: Workload, config: SimConfig) -> float:
    """Feed the workload through a built engine (warm-up + measured region).

    Returns the wall-clock seconds spent; raises :class:`ValueError` when the
    trace ends before warm-up completes or truncates the measured region.
    Split out of :func:`simulate` so harnesses (e.g. the differential suite
    in :mod:`repro.validate`) can run custom-wired engines through exactly
    the production drive loop.
    """
    warm_limit = config.warmup_instructions
    sim_limit = config.sim_instructions
    _DRIVES.inc(mode="generator")
    step = engine.step
    measuring = False
    wall_start = perf_counter()
    # The loop runs until the *measured* region is complete, not until a raw
    # warm+sim instruction total: a record whose gap overshoots the warm-up
    # boundary starts measurement late, and breaking at the raw total used to
    # silently under-measure by the overshoot without ever tripping the
    # truncation error below.
    for pc, vaddr, flags, gap in workload.generate():
        step(pc, vaddr, flags, gap)
        if not measuring and engine.instructions >= warm_limit:
            engine.begin_measurement()
            measuring = True
        if measuring and engine.measured_instructions >= sim_limit:
            break
    wall_seconds = perf_counter() - wall_start
    if not measuring:
        raise ValueError(
            f"workload {workload.name!r} ended after {engine.instructions} instructions, "
            f"before the {warm_limit}-instruction warm-up completed"
        )
    if engine.measured_instructions < sim_limit:
        raise ValueError(
            f"workload {workload.name!r} ended after {engine.instructions} instructions, "
            f"truncating the measured region to "
            f"{engine.measured_instructions} of the requested "
            f"{config.sim_instructions} instructions"
        )
    return wall_seconds


def simulate(
    workload: Workload, config: SimConfig, *, obs: Optional["Observability"] = None
) -> SimResult:
    """Run one workload under one configuration (warm-up + measured region).

    Pass an :class:`~repro.obs.Observability` bundle to record an epoch
    timeline, journal the run, and/or profile the hot paths; with ``obs``
    omitted the run executes the exact unobserved fast path.  With
    ``config.validate`` set, a :class:`~repro.validate.InvariantChecker` is
    attached: conservation laws are asserted per epoch and at collect time,
    and a violation raises :class:`~repro.validate.InvariantViolation`
    (journaled first when the bundle carries a journal).
    """
    if config.kernel not in ("fused", "vectorized", "auto"):
        raise ValueError(
            f"unknown packed kernel tier {config.kernel!r}; "
            "expected 'fused', 'vectorized', or 'auto'"
        )
    if config.sampling is not None:
        # phase-sampled run: profile, cluster, simulate representatives,
        # reconstruct — the sampling module owns spans/metrics/obs for it
        from repro.experiments.sampling import simulate_sampled

        return simulate_sampled(workload, config, obs=obs)
    engine = build_engine(config)
    if obs is not None:
        obs.attach(engine, workload)
    checker = None
    if config.validate:
        from repro.validate import InvariantChecker

        checker = InvariantChecker(obs=obs, workload=workload.name)
        checker.attach(engine)
    if config.packed or config.kernel != "fused":
        from repro.workloads.packed import get_packed

        if config.kernel == "vectorized":
            from repro.cpu.fastpath_vec import drive_packed_vec as _drive
        elif config.kernel == "auto":
            from repro.cpu.fastpath_vec import drive_packed_auto as _drive
        else:
            from repro.cpu.fastpath import drive_packed as _drive

        packed = get_packed(workload, config.warmup_instructions, config.sim_instructions)
        with trace_span("drive", workload=workload.name, mode="packed"):
            wall_seconds = _drive(engine, packed, config)
    else:
        with trace_span("drive", workload=workload.name, mode="generator"):
            wall_seconds = drive(engine, workload, config)
    with trace_span("collect", workload=workload.name):
        result = collect_result(engine, workload.name, config)
    if checker is not None:
        checker.check_final(engine, result)
    if obs is not None:
        obs.finish(engine, workload, config, result, wall_seconds)
    return result
