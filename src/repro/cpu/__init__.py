"""CPU substrate: out-of-order core model and simulation drivers."""

from repro.cpu.core import CoreEngine
from repro.cpu.fastpath import drive_packed
from repro.cpu.multicore import MixResult, isolation_ipc, simulate_mix
from repro.cpu.simulator import SimConfig, SimResult, build_engine, drive, simulate

__all__ = [
    "CoreEngine",
    "drive_packed",
    "MixResult",
    "isolation_ipc",
    "simulate_mix",
    "SimConfig",
    "SimResult",
    "build_engine",
    "drive",
    "simulate",
]
