"""Cycle-approximate out-of-order core engine.

The timing model is a ROB-timeline model: each trace record is dispatched no
earlier than (a) the front end delivered it and (b) the instruction ROB-many
slots older has retired; it completes after its (translation + memory)
latency; retirement is in-order at retire-width.  Independent misses whose
dispatch times overlap therefore overlap in flight (MLP), bounded by MSHRs,
while ROB-filling long-latency misses stall dispatch — the first-order
behaviour of the paper's 352-entry 6-wide core.

The engine owns the page-cross prefetch plumbing of Figure 5: classify each
L1D prefetch candidate (step A), consult the page-cross policy for crossers
(step B), translate via dTLB/sTLB (step C), trigger a speculative walk when
needed (step D), then fill with the PCB set and register the pUB/vUB
training state.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.context import FeatureContext
from repro.core.policies import PageCrossPolicy
from repro.core.system_state import EpochStats, SystemState
from repro.cpu.branch import HashedPerceptronBranchPredictor
from repro.mem.hierarchy import MemoryHierarchy
from repro.params import SystemParams
from repro.prefetch.base import L1dPrefetcher
from repro.prefetch.l2_adapters import L2Prefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.vm.address import LINE_SHIFT, PAGE_4K_SHIFT, VA_MASK, canonical
from repro.vm.page_table import PageTable, Translation
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalker
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system_state import EpochStats as _EpochStats
    from repro.obs.profiling import Probe


class PgcStats:
    """Page-cross prefetching counters maintained by the engine."""

    __slots__ = (
        "candidates",
        "issued",
        "discarded",
        "discarded_no_translation",
        "same_translation",
        "_snap",
    )

    def __init__(self) -> None:
        self.candidates = 0
        self.issued = 0
        self.discarded = 0
        self.discarded_no_translation = 0
        #: crossed a 4KB boundary but stayed inside the trigger's (2MB) page
        self.same_translation = 0
        self._snap = (0, 0, 0, 0, 0)

    def snapshot(self) -> None:
        """Mark the warm-up boundary for the page-cross counters."""
        self._snap = (
            self.candidates,
            self.issued,
            self.discarded,
            self.discarded_no_translation,
            self.same_translation,
        )

    def measured(self) -> dict[str, int]:
        """Page-cross counters over the measured region."""
        s = self._snap
        return {
            "candidates": self.candidates - s[0],
            "issued": self.issued - s[1],
            "discarded": self.discarded - s[2],
            "discarded_no_translation": self.discarded_no_translation - s[3],
            "same_translation": self.same_translation - s[4],
        }


class _PolicyListener:
    """Routes L1D PCB block events (Figure 7) to the page-cross policy."""

    __slots__ = ("policy",)

    def __init__(self, policy: PageCrossPolicy):
        self.policy = policy

    def on_pcb_hit(self, phys_line: int) -> None:
        """Forward the pUB positive event."""
        self.policy.on_pcb_hit(phys_line)

    def on_pcb_evict_unused(self, phys_line: int) -> None:
        """Forward the pUB negative event."""
        self.policy.on_pcb_evict_unused(phys_line)


class CoreEngine:
    """One simulated core: front end, ROB timeline, memory, prefetch plumbing."""

    def __init__(
        self,
        params: SystemParams,
        hierarchy: MemoryHierarchy,
        page_table: PageTable,
        walker: PageWalker,
        dtlb: Tlb,
        itlb: Tlb,
        stlb: Tlb,
        l1d_prefetcher: L1dPrefetcher,
        policy: PageCrossPolicy,
        l2_prefetcher: Optional[L2Prefetcher] = None,
        epoch_instructions: int = 2048,
    ):
        self.params = params
        self.hierarchy = hierarchy
        self.page_table = page_table
        self.walker = walker
        self.dtlb = dtlb
        self.itlb = itlb
        self.stlb = stlb
        self.prefetcher = l1d_prefetcher
        self.policy = policy
        self.l2_prefetcher = l2_prefetcher
        self.l1i_prefetcher = NextLinePrefetcher()
        self.branch_predictor = HashedPerceptronBranchPredictor()
        hierarchy.l1d.listener = _PolicyListener(policy)

        self.fctx = FeatureContext()
        self.system_state = SystemState()
        self.pgc = PgcStats()

        core = params.core
        self._fetch_cpi = 1.0 / core.issue_width
        self._retire_cpi = 1.0 / core.retire_width
        self._rob = core.rob_entries
        self._mispredict_penalty = core.branch_mispredict_penalty

        # timeline state
        self.instructions = 0
        self.fetch_t = 0.0
        self.retire_t = 0.0
        self._rob_head_retire = 0.0
        self._rob_q: deque[tuple[int, float]] = deque()
        self._last_load_complete = 0.0
        self._last_iline = -1
        self.rob_stall_cycles = 0.0
        self._rob_block_end = 0.0

        # epoch bookkeeping
        self.epoch_instructions = epoch_instructions
        self._next_epoch = epoch_instructions
        self._epoch_base: Optional[dict[str, float]] = None
        self._reset_epoch_base()

        # warm-up boundary
        self._measure_start_instr = 0
        self._measure_start_cycle = 0.0
        self.measuring = False

        # observability seams: the hot paths call through these cached bound
        # references (no attribute chain per call); enable_profiling swaps
        # them for timed wrappers, so an unprofiled run pays nothing — not
        # even a branch.  epoch_listener (if set) hears each finished epoch.
        self.probe: Optional["Probe"] = None
        self.epoch_listener: Optional[Callable[["CoreEngine", "_EpochStats"], None]] = None
        self._pf_on_access = l1d_prefetcher.on_access
        self._policy_decide = policy.decide
        self._walk = walker.walk
        self._mem_load = hierarchy.load
        self._mem_store = hierarchy.store
        self._mem_ifetch = hierarchy.ifetch

    def enable_profiling(self, probe: "Probe") -> None:
        """Instrument the hot paths with per-component wall-time probes."""
        self.probe = probe
        self._pf_on_access = probe.timed("prefetcher", self.prefetcher.on_access)
        self._policy_decide = probe.timed("policy.decide", self.policy.decide)
        self._walk = probe.timed("page_walk", self.walker.walk)
        self._mem_load = probe.timed("cache.load", self.hierarchy.load)
        self._mem_store = probe.timed("cache.store", self.hierarchy.store)
        self._mem_ifetch = probe.timed("cache.ifetch", self.hierarchy.ifetch)

    # ------------------------------------------------------------------
    # translation paths

    def _translate_data(self, vaddr: int, t: float) -> tuple[float, Translation]:
        tr = self.dtlb.lookup(vaddr)
        if tr is not None:
            return float(self.dtlb.latency), tr
        latency = float(self.dtlb.latency)
        tr = self.stlb.lookup(vaddr)
        if tr is not None:
            latency += self.stlb.latency
            self.dtlb.insert(tr)
            return latency, tr
        latency += self.stlb.latency
        walk = self._walk(vaddr, t + latency, speculative=False)
        latency += walk.latency
        self.stlb.insert(walk.translation)
        self.dtlb.insert(walk.translation)
        return latency, walk.translation

    def _translate_instruction(self, vaddr: int, t: float) -> tuple[float, Translation]:
        tr = self.itlb.lookup(vaddr)
        if tr is not None:
            return float(self.itlb.latency), tr
        latency = float(self.itlb.latency)
        tr = self.stlb.lookup(vaddr)
        if tr is not None:
            latency += self.stlb.latency
            self.itlb.insert(tr)
            return latency, tr
        latency += self.stlb.latency
        walk = self._walk(vaddr, t + latency, speculative=False)
        latency += walk.latency
        self.stlb.insert(walk.translation)
        self.itlb.insert(walk.translation)
        return latency, walk.translation

    # ------------------------------------------------------------------
    # prefetch plumbing (Figure 5)

    def _handle_prefetches(self, trigger_vaddr: int, trigger_tr: Translation, t: float, pc: int, hit: bool) -> None:
        requests = self._pf_on_access(pc, trigger_vaddr, hit, t)
        if not requests:
            return
        self._dispatch_prefetches(requests, trigger_vaddr, trigger_tr, t, pc)

    def _dispatch_prefetches(self, requests, trigger_vaddr: int, trigger_tr: Translation, t: float, pc: int) -> None:
        """Route prefetch candidates through steps A-D of Figure 5.

        Split from :meth:`_handle_prefetches` so the batched drive loop
        (:func:`repro.cpu.fastpath.drive_packed`) can invoke the prefetcher
        through its cached seam and only pay this dispatch when the access
        actually produced candidates.
        """
        trigger_page = trigger_vaddr >> PAGE_4K_SHIFT
        native_shift = trigger_tr.page_shift
        # hoisted loop invariants (this runs once per candidate-producing
        # access; inlined canonical() and Translation.physical())
        l1d = self.hierarchy.l1d
        l1d_sets, l1d_set_mask = l1d._sets, l1d._set_mask
        prefetch_l1d = self.hierarchy.prefetch_l1d
        policy = self.policy
        pgc = self.pgc
        tr_base = trigger_tr.pfn << native_shift
        tr_off_mask = trigger_tr.page_bytes - 1
        trigger_native_vpn = trigger_vaddr >> native_shift
        filter_native = getattr(policy, "filter_at_native_boundary", False)
        for req in requests:
            target = req.vaddr & VA_MASK
            req.vaddr = target
            if (target >> PAGE_4K_SHIFT) == trigger_page:
                # in-page prefetch: same frame, no policy involvement (step A);
                # prefetch_l1d is a no-op on a resident line, so a residency
                # probe skips the call for the common already-cached target
                paddr = tr_base | (target & tr_off_mask)
                pline = paddr >> LINE_SHIFT
                if l1d_sets[pline & l1d_set_mask].get(pline) is None:
                    prefetch_l1d(paddr, t)
                continue
            pgc.candidates += 1
            same_translation = (target >> native_shift) == trigger_native_vpn
            if same_translation:
                pgc.same_translation += 1
            filter_this = not (same_translation and filter_native)
            if filter_this:
                if policy.wants_inflight_feature:
                    self.system_state.l1d_inflight_misses = self.hierarchy.l1d.in_flight_misses(t)
                decision = self._policy_decide(req, self.fctx, self.system_state)
                if not decision.issue:
                    pgc.discarded += 1
                    policy.on_discarded(target >> LINE_SHIFT, decision.record)
                    continue
                record = decision.record
            else:
                record = None
            if same_translation:
                # 4KB-cross within a 2MB page: translation already in hand
                paddr = tr_base | (target & tr_off_mask)
                trans_lat = 0.0
            else:
                tr = self.dtlb.lookup(target, speculative=True)
                trans_lat = float(self.dtlb.latency)
                if tr is None:
                    tr = self.stlb.lookup(target, speculative=True)
                    if tr is not None:
                        trans_lat += self.stlb.latency
                if tr is None:
                    if self.policy.requires_translation_hit:
                        self.pgc.discarded += 1
                        self.pgc.discarded_no_translation += 1
                        self.policy.on_discarded(target >> LINE_SHIFT, record)
                        continue
                    walk = self._walk(target, t + trans_lat, speculative=True)
                    trans_lat += walk.latency
                    tr = walk.translation
                    self.stlb.insert(tr, from_prefetch=True)
                    self.dtlb.insert(tr, from_prefetch=True)
                paddr = tr.physical(target)
            self.pgc.issued += 1
            self.hierarchy.prefetch_l1d(paddr, t + trans_lat, pcb=True)
            self.policy.on_issued(paddr >> LINE_SHIFT, record)

    # ------------------------------------------------------------------
    # main per-record step

    def step(self, pc: int, vaddr: int, flags: int, gap: int) -> None:
        """Advance the core by one trace record."""
        self.instructions += 1 + gap
        n = self.instructions

        # front end: fetch bandwidth plus I-side miss penalties
        fetch_t = self.fetch_t + (1 + gap) * self._fetch_cpi
        iline = pc >> LINE_SHIFT
        if iline != self._last_iline:
            self._last_iline = iline
            ilat, itr = self._translate_instruction(pc, fetch_t)
            ibase = itr.physical(pc)
            flat = self._mem_ifetch(ibase, fetch_t + ilat)
            penalty = (ilat - self.itlb.latency) + (flat - self.hierarchy.l1i.latency)
            if penalty > 0:
                fetch_t += penalty
            for target_line in self.l1i_prefetcher.on_fetch(ibase >> LINE_SHIFT):
                self.hierarchy.prefetch_l1i(target_line << LINE_SHIFT, fetch_t)
            # long gaps span additional sequential code lines (4B/instr);
            # the run is clamped at the translated frame's edge — itr only
            # maps this page, so fetching past it would target a physical
            # address the translation never covered
            extra_lines = (gap * 4) >> LINE_SHIFT
            if extra_lines:
                page_mask = (1 << itr.page_shift) - 1
                frame_left = (page_mask - (ibase & page_mask)) >> LINE_SHIFT
                if extra_lines > frame_left:
                    extra_lines = frame_left
                for k in range(1, min(extra_lines, 8) + 1):
                    flat = self._mem_ifetch(ibase + (k << LINE_SHIFT), fetch_t)
                    if flat > self.hierarchy.l1i.latency:
                        fetch_t += flat - self.hierarchy.l1i.latency

        # dispatch: ROB occupancy constraint
        rob_q = self._rob_q
        limit = n - self._rob
        while rob_q and rob_q[0][0] <= limit:
            self._rob_head_retire = rob_q.popleft()[1]
        dispatch = fetch_t
        if self._rob_head_retire > dispatch:
            # count only newly-blocked wall-clock time, so the accumulated
            # stall is a true fraction of elapsed cycles
            blocked_from = max(dispatch, self._rob_block_end)
            if self._rob_head_retire > blocked_from:
                self.rob_stall_cycles += self._rob_head_retire - blocked_from
                self._rob_block_end = self._rob_head_retire
            dispatch = self._rob_head_retire
        if flags & DEPENDS and self._last_load_complete > dispatch:
            dispatch = self._last_load_complete

        # memory access
        if flags & (LOAD | STORE):
            trans_lat, tr = self._translate_data(vaddr, dispatch)
            paddr = tr.physical(vaddr)
            t_mem = dispatch + trans_lat
            if flags & LOAD:
                mlat, hit = self._mem_load(paddr, t_mem)
                complete = t_mem + mlat
                self._last_load_complete = complete
                if not hit:
                    self.policy.on_demand_miss(vaddr >> LINE_SHIFT)
                    self.prefetcher.on_fill(vaddr, mlat)
                    if self.l2_prefetcher is not None:
                        for line in self.l2_prefetcher.on_access(paddr >> LINE_SHIFT, t_mem):
                            self.hierarchy.prefetch_l2(line << LINE_SHIFT, t_mem)
            else:
                complete = t_mem + self._mem_store(paddr, t_mem)
                hit = True
            self.fctx.update(pc, vaddr)
            self._handle_prefetches(vaddr, tr, t_mem, pc, hit)
        else:
            complete = dispatch + 1.0

        # branch resolution: the trace either carries a conditional branch
        # for the perceptron predictor to call, or a legacy forced mispredict.
        # An ordinary branch resolves a few cycles after dispatch; only a
        # branch in a dependent (pointer-chasing) record waits for the load,
        # so stream misses are not artificially serialised by mispredicts.
        mispredicted = bool(flags & MISPREDICT)
        if flags & BRANCH:
            correct = self.branch_predictor.predict_and_train(pc + 0x3C, bool(flags & TAKEN))
            mispredicted = mispredicted or not correct
        if mispredicted:
            resolve_at = complete if flags & DEPENDS else dispatch + 8.0
            resolve = resolve_at + self._mispredict_penalty
            if resolve > fetch_t:
                fetch_t = resolve
        self.fetch_t = fetch_t

        # in-order retirement
        retire = self.retire_t + (1 + gap) * self._retire_cpi
        if complete > retire:
            retire = complete
        self.retire_t = retire
        rob_q.append((n, retire))

        if n >= self._next_epoch:
            self._end_epoch()

    # ------------------------------------------------------------------
    # epochs (Figure 8 statistics feed)

    def _epoch_counters(self) -> dict[str, float]:
        return {
            "instr": float(self.instructions),
            "cycles": self.retire_t,
            "l1d_misses": float(self.hierarchy.l1d.demand_stats.misses),
            "l1d_accesses": float(self.hierarchy.l1d.demand_stats.accesses),
            "l1i_misses": float(self.hierarchy.l1i.demand_stats.misses),
            "llc_misses": float(self.hierarchy.llc_core_stats.misses),
            "llc_accesses": float(self.hierarchy.llc_core_stats.accesses),
            "stlb_misses": float(self.stlb.stats.misses),
            "stlb_accesses": float(self.stlb.stats.accesses),
            "pgc_useful": float(self.hierarchy.l1d.pgc_useful),
            "pgc_useless": float(self.hierarchy.l1d.pgc_useless),
            "rob_stall": self.rob_stall_cycles,
        }

    def _reset_epoch_base(self) -> None:
        self._epoch_base = self._epoch_counters()

    def _end_epoch(self) -> None:
        self._next_epoch += self.epoch_instructions
        now = self._epoch_counters()
        base = self._epoch_base
        self._epoch_base = now
        instr = now["instr"] - base["instr"]
        cycles = now["cycles"] - base["cycles"]
        if instr <= 0:
            return
        per_ki = 1000.0 / instr

        def rate(m: str, a: str) -> float:
            accesses = now[a] - base[a]
            return (now[m] - base[m]) / accesses if accesses > 0 else 0.0

        epoch = EpochStats(
            instructions=int(instr),
            cycles=cycles,
            ipc=instr / cycles if cycles > 0 else 0.0,
            pgc_useful=int(now["pgc_useful"] - base["pgc_useful"]),
            pgc_useless=int(now["pgc_useless"] - base["pgc_useless"]),
            llc_miss_rate=rate("llc_misses", "llc_accesses"),
            llc_mpki=(now["llc_misses"] - base["llc_misses"]) * per_ki,
            l1i_mpki=(now["l1i_misses"] - base["l1i_misses"]) * per_ki,
            rob_stall_fraction=(now["rob_stall"] - base["rob_stall"]) / cycles if cycles > 0 else 0.0,
        )
        state = self.system_state
        state.l1d_mpki = (now["l1d_misses"] - base["l1d_misses"]) * per_ki
        state.l1d_miss_rate = rate("l1d_misses", "l1d_accesses")
        state.llc_mpki = epoch.llc_mpki
        state.llc_miss_rate = epoch.llc_miss_rate
        state.stlb_mpki = (now["stlb_misses"] - base["stlb_misses"]) * per_ki
        state.stlb_miss_rate = rate("stlb_misses", "stlb_accesses")
        state.l1i_mpki = epoch.l1i_mpki
        state.ipc = epoch.ipc
        state.rob_stall_fraction = epoch.rob_stall_fraction
        state.last_epoch = epoch
        self.policy.on_epoch(epoch)
        if self.epoch_listener is not None:
            self.epoch_listener(self, epoch)

    # ------------------------------------------------------------------
    # warm-up / measurement boundary

    def begin_measurement(self) -> None:
        """Snapshot all statistics: everything before this call was warm-up."""
        self._measure_start_instr = self.instructions
        self._measure_start_cycle = self.retire_t
        self.measuring = True
        self.hierarchy.snapshot()
        self.dtlb.snapshot()
        self.itlb.snapshot()
        self.stlb.snapshot()
        self.walker.snapshot()
        self.pgc.snapshot()
        self.branch_predictor.snapshot()

    @property
    def measured_instructions(self) -> int:
        """Instructions retired since begin_measurement()."""
        return self.instructions - self._measure_start_instr

    @property
    def measured_cycles(self) -> float:
        """Cycles elapsed since begin_measurement()."""
        return self.retire_t - self._measure_start_cycle
