"""Multi-core (8-core) mix simulation (Section IV-A2).

Each core runs its own workload on private L1I/L1D/L2C/TLBs while sharing
the LLC and DRAM, so useless page-cross traffic from one core steals shared
bandwidth and LLC capacity from the others.  Cores are stepped in timestamp
order (a min-heap on each core's retire clock) so shared-resource contention
is time-coherent.

Methodology follows the paper: when a core finishes its instruction budget
its IPC is recorded and the core *replays its trace* until every core has
finished, keeping pressure on the shared resources.  Reported metric is the
weighted speedup: sum over cores of IPC_multicore / IPC_isolation, normalised
against the baseline configuration's weighted IPC.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Sequence

from repro.cpu.simulator import SimConfig, SimResult, build_engine, collect_result, simulate
from repro.mem.cache import Cache
from repro.mem.dram import Dram
from repro.workloads.synthetic import SyntheticWorkload


@dataclass
class MixResult:
    """Per-core results of one multi-core mix run."""

    results: list[SimResult]

    @property
    def ipcs(self) -> list[float]:
        """Per-core measured IPCs, in workload order."""
        return [r.ipc for r in self.results]

    def weighted_ipc(self, isolation_ipcs: Sequence[float]) -> float:
        """Sum over cores of IPC_multicore / IPC_isolation."""
        if len(isolation_ipcs) != len(self.results):
            raise ValueError("isolation IPC count does not match core count")
        total = 0.0
        for i, (r, iso) in enumerate(zip(self.results, isolation_ipcs)):
            if iso == 0:
                raise ValueError(
                    f"isolation IPC for core {i} ({r.workload!r}) is zero; "
                    "weighted speedup is undefined (did the isolation run "
                    "retire anything?)"
                )
            total += r.ipc / iso
        return total


def simulate_mix(workloads: Sequence[SyntheticWorkload], config: SimConfig) -> MixResult:
    """Run one mix: len(workloads) cores sharing LLC + DRAM."""
    cores = len(workloads)
    params = config.params.scaled_llc(cores)
    dram = Dram(params.dram)
    llc = Cache(params.llc, writeback=dram.write)
    engines = []
    budgets = []
    core_configs = []
    for i, workload in enumerate(workloads):
        warmup, sim = config.warmup_instructions, config.sim_instructions
        if workload.suite.startswith("QMM"):
            warmup, sim = warmup // 2, sim // 2
        # the per-core config carries the (possibly halved) budgets so the
        # journaled requested_instructions matches what the core measures
        core_config = replace(config, params=params, asid=i,
                              warmup_instructions=warmup, sim_instructions=sim)
        engines.append(build_engine(core_config, shared_llc=llc, shared_dram=dram))
        budgets.append((warmup, sim))
        core_configs.append(core_config)
    iterators = [iter(w.generate()) for w in workloads]
    measuring = [False] * cores
    finished: list[SimResult | None] = [None] * cores
    remaining = cores
    # Min-heap on each core's retire clock: the core furthest behind in time
    # steps next, so shared-resource contention is time-coherent and finished
    # (replaying) cores are automatically paced — they only step when the
    # unfinished cores have caught up to them.
    heap = [(0.0, i) for i in range(cores)]
    heapq.heapify(heap)
    while remaining:
        _, i = heapq.heappop(heap)
        engine = engines[i]
        try:
            record = next(iterators[i])
        except StopIteration:  # pragma: no cover - traces are infinite
            iterators[i] = iter(workloads[i].generate())
            record = next(iterators[i])
        engine.step(*record)
        warm_limit, sim_limit = budgets[i]
        if not measuring[i] and engine.instructions >= warm_limit:
            engine.begin_measurement()
            measuring[i] = True
        # measured-region completion, not a raw warm+sim total: a gap that
        # overshoots the warm-up boundary must not shorten the measured region
        if finished[i] is None and measuring[i] and engine.measured_instructions >= sim_limit:
            finished[i] = collect_result(engine, workloads[i].name, core_configs[i])
            remaining -= 1
            # replay: the core keeps running to stress shared resources
            iterators[i] = iter(workloads[i].generate())
        if remaining:
            heapq.heappush(heap, (engine.retire_t, i))
    return MixResult([r for r in finished if r is not None])


def isolation_ipc(workload: SyntheticWorkload, config: SimConfig, cores: int) -> float:
    """IPC of `workload` alone on the multi-core configuration."""
    iso_config = replace(config, params=config.params.scaled_llc(cores))
    warmup, sim = config.warmup_instructions, config.sim_instructions
    if workload.suite.startswith("QMM"):
        iso_config = replace(iso_config, warmup_instructions=warmup // 2, sim_instructions=sim // 2)
    return simulate(workload, iso_config).ipc
