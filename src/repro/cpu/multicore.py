"""Multi-core (8-core) mix simulation (Section IV-A2).

Each core runs its own workload on private L1I/L1D/L2C/TLBs while sharing
the LLC and DRAM, so useless page-cross traffic from one core steals shared
bandwidth and LLC capacity from the others.  Cores are stepped in timestamp
order (a min-heap on each core's retire clock) so shared-resource contention
is time-coherent.

Methodology follows the paper: when a core finishes its instruction budget
its IPC is recorded and the core *replays its trace* until every core has
finished, keeping pressure on the shared resources.  Reported metric is the
weighted speedup: sum over cores of IPC_multicore / IPC_isolation, normalised
against the baseline configuration's weighted IPC.

Two drive loops produce bit-identical results:

* the **generator loop** (the reference implementation) pulls one record at
  a time from each core's live workload generator, exactly as the original
  implementation did;
* the **packed loop** (``SimConfig(packed=True)`` or
  ``kernel="vectorized"``) steps each core over the flat columns of its
  cached :class:`~repro.workloads.packed.PackedTrace` **through the fused
  fast-path record kernel** (:mod:`repro.cpu.fastpath_mix`) — per-record
  pattern state machines and RNG draws are paid once per (workload,
  window) instead of once per mix × policy, and the dominant record case
  runs at single-core fused speed — and *batches* heap traffic: while the
  running core's ``(retire_t, index)`` stays strictly below the heap's
  next entry, popping the heap would return the same core again, so it
  keeps stepping without touching the heap.  Each core's kernel lives in
  a generator coroutine, so its hoisted locals survive the switch and a
  scheduling round-trip costs one ``send``.  Replay restart maps onto the
  columns as a fresh pass; a replay that outruns the pack (IPC imbalance,
  e.g. a halved-budget QMM core replaying while full-budget cores catch
  up) continues on a fresh generator advanced past the packed prefix,
  because that is precisely the stream the generator loop would be
  consuming.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cpu.simulator import SimConfig, SimResult, build_engine, collect_result, simulate
from repro.mem.cache import Cache
from repro.mem.dram import Dram
from repro.obs.metrics import get_metrics
from repro.obs.tracing import trace_span
from repro.workloads.synthetic import SyntheticWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.core import CoreEngine
    from repro.obs import Observability
    from repro.validate.invariants import InvariantChecker

_INF = float("inf")

#: the same instrument the single-core drive loops increment; mix drives are
#: labelled ``mix-generator`` / ``mix-packed`` so merged grid metrics
#: attribute multicore work separately from single-core runs
_DRIVES = get_metrics().counter(
    "sim.drives",
    "drive-loop entries by mode (generator/fused/stepwise/vectorized)")


def weighted_speedup(
    multicore_ipcs: Sequence[float],
    isolation_ipcs: Sequence[float],
    *,
    labels: Optional[Sequence[str]] = None,
) -> float:
    """Multi-core weighted speedup (Section IV-A2): sum of IPC_mc / IPC_iso.

    The single implementation behind both :meth:`MixResult.weighted_ipc`
    and :func:`repro.experiments.metrics.weighted_speedup` (which used to
    disagree on negative isolation IPCs).  Any non-positive isolation IPC is
    rejected — a ratio against zero is undefined, and a negative one would
    silently flip the metric's sign.  ``labels`` (e.g. workload names)
    enriches the error with the offending core's identity.
    """
    if len(isolation_ipcs) != len(multicore_ipcs):
        raise ValueError("isolation IPC count does not match core count")
    total = 0.0
    for i, (ipc, iso) in enumerate(zip(multicore_ipcs, isolation_ipcs)):
        if iso <= 0:
            label = f" ({labels[i]!r})" if labels is not None else ""
            raise ValueError(
                f"isolation IPC for core {i}{label} is not positive ({iso!r}); "
                "weighted speedup is undefined (did the isolation run "
                "retire anything?)"
            )
        total += ipc / iso
    return total


@dataclass
class MixResult:
    """Per-core results of one multi-core mix run."""

    results: list[SimResult]
    #: caller-assigned mix identity (rides into journal/metrics context)
    mix_id: Optional[int] = None

    @property
    def ipcs(self) -> list[float]:
        """Per-core measured IPCs, in workload order."""
        return [r.ipc for r in self.results]

    def weighted_ipc(self, isolation_ipcs: Sequence[float]) -> float:
        """Sum over cores of IPC_multicore / IPC_isolation."""
        return weighted_speedup(
            self.ipcs, isolation_ipcs,
            labels=[r.workload for r in self.results],
        )


def _drive_mix_generator(
    engines: list["CoreEngine"],
    workloads: Sequence[SyntheticWorkload],
    budgets: list[tuple[int, int]],
    core_configs: list[SimConfig],
    checkers: Optional[list["InvariantChecker"]] = None,
) -> list[Optional[SimResult]]:
    """Reference drive loop: one record at a time from live generators."""
    cores = len(engines)
    iterators = [iter(w.generate()) for w in workloads]
    measuring = [False] * cores
    finished: list[Optional[SimResult]] = [None] * cores
    remaining = cores
    # Min-heap on each core's retire clock: the core furthest behind in time
    # steps next, so shared-resource contention is time-coherent and finished
    # (replaying) cores are automatically paced — they only step when the
    # unfinished cores have caught up to them.
    heap = [(0.0, i) for i in range(cores)]
    heapq.heapify(heap)
    while remaining:
        _, i = heapq.heappop(heap)
        engine = engines[i]
        try:
            record = next(iterators[i])
        except StopIteration:  # finite trace shorter than its window
            iterators[i] = iter(workloads[i].generate())
            record = next(iterators[i])
        engine.step(*record)
        warm_limit, sim_limit = budgets[i]
        if not measuring[i] and engine.instructions >= warm_limit:
            engine.begin_measurement()
            measuring[i] = True
        # measured-region completion, not a raw warm+sim total: a gap that
        # overshoots the warm-up boundary must not shorten the measured region
        if finished[i] is None and measuring[i] and engine.measured_instructions >= sim_limit:
            finished[i] = collect_result(engine, workloads[i].name, core_configs[i])
            if checkers is not None:
                checkers[i].check_final(engine, finished[i])
            remaining -= 1
            # replay: the core keeps running to stress shared resources
            iterators[i] = iter(workloads[i].generate())
        if remaining:
            heapq.heappush(heap, (engine.retire_t, i))
    return finished


def _drive_mix_packed(
    engines: list["CoreEngine"],
    workloads: Sequence[SyntheticWorkload],
    budgets: list[tuple[int, int]],
    core_configs: list[SimConfig],
    checkers: Optional[list["InvariantChecker"]] = None,
) -> list[Optional[SimResult]]:
    """Packed drive loop: fused per-core steppers, batched heap stepping.

    Each core is a resumable :func:`repro.cpu.fastpath_mix.core_stepper` —
    the fused fast-path record kernel parked in a generator coroutine, so
    each burst between heap switches runs at fused speed and switching
    cores costs one ``send``.  Bit-identical to
    :func:`_drive_mix_generator` by construction:

    * the fused record body is the single-core fast path, proven equal to
      ``engine.step`` record-for-record, and the stepper's event placement
      mirrors the generator loop's per-record warm-up/finish checks (a
      complete pack's last record is the record on which the core finishes,
      so its replay restart is a plain pass back over the columns);
    * batching is order-preserving: while ``(engine.retire_t, i)`` compares
      strictly below the heap's smallest entry, re-pushing and popping would
      return core ``i`` again, so stepping it without the round-trip replays
      the identical schedule (the retire clock never decreases, and the
      bound cannot move while no other core steps);
    * replay past a complete pack's end continues on an overflow generator
      advanced past the packed prefix, wrapping back to the pack's first
      record when that finite stream ends — mirroring the generator loop's
      ``StopIteration`` restart.  Incomplete packs (finite traces shorter
      than their window) hold the *entire* source stream, so for them a
      plain wrap is the restart, pre- and post-finish alike.
    """
    from repro.cpu.fastpath_mix import core_stepper
    from repro.workloads.packed import get_packed

    cores = len(engines)
    steppers = []
    for i, (engine, workload, (warmup, sim)) in enumerate(
            zip(engines, workloads, budgets)):
        pack = get_packed(workload, warmup, sim)
        stepper = core_stepper(engine, pack, workload, warmup, sim, i)
        next(stepper)  # run the hoists, park before the first record
        steppers.append(stepper)
    finished: list[Optional[SimResult]] = [None] * cores
    remaining = cores
    heap = [(0.0, i) for i in range(cores)]
    heapq.heapify(heap)
    try:
        while True:
            _, i = heapq.heappop(heap)
            # every other core sits in the heap, so its smallest entry bounds
            # how far core i may run before the schedule would switch cores
            bound = heap[0] if heap else (_INF, cores)
            event, t = steppers[i].send(bound)
            while event == "finish":
                finished[i] = collect_result(engines[i], workloads[i].name,
                                             core_configs[i])
                if checkers is not None:
                    checkers[i].check_final(engines[i], finished[i])
                remaining -= 1
                if not remaining:
                    return finished
                # the core replays (same bound still applies); it reports
                # "bound" itself if the finishing record already crossed it
                event, t = steppers[i].send(bound)
            heapq.heappush(heap, (t, i))
    finally:
        # leave every engine's timeline scalars flushed, exactly as a
        # generator-loop run leaves them
        for stepper in steppers:
            stepper.close()


def simulate_mix(
    workloads: Sequence[SyntheticWorkload],
    config: SimConfig,
    *,
    obs: Optional["Observability"] = None,
    mix_id: Optional[int] = None,
) -> MixResult:
    """Run one mix: len(workloads) cores sharing LLC + DRAM.

    Honours the same config knobs as :func:`~repro.cpu.simulator.simulate`:
    ``config.packed`` (or ``kernel="vectorized"``, which implies it) selects
    the packed mix loop — bit-identical, asserted by
    :func:`repro.validate.check_mix_packed_matches_generator` — an unknown
    ``config.kernel`` raises instead of silently falling back, and
    ``config.validate`` attaches one
    :class:`~repro.validate.InvariantChecker` per core (each core's result
    is checked at its own collect point, while the core goes on replaying).

    With an ``obs`` bundle, one journal record is written per core, tagged
    with the mix id and core index (``mix``/``core`` context keys; the
    per-core config also carries the core index as its ``asid``), and the
    mix's wall time is split evenly across the records so journal-derived
    throughput stays honest.  Timelines and probes are single-core
    instruments and are rejected.
    """
    cores = len(workloads)
    if config.kernel not in ("fused", "vectorized"):
        raise ValueError(
            f"unknown packed kernel tier {config.kernel!r}; "
            "expected 'fused' or 'vectorized'"
        )
    if obs is not None and (obs.timeline is not None or obs.probe is not None):
        raise ValueError(
            "timeline/probe instruments are single-core only; pass an "
            "Observability bundle with just a journal to simulate_mix"
        )
    params = config.params.scaled_llc(cores)
    dram = Dram(params.dram)
    llc = Cache(params.llc, writeback=dram.write)
    engines = []
    budgets = []
    core_configs = []
    for i, workload in enumerate(workloads):
        warmup, sim = config.warmup_instructions, config.sim_instructions
        if workload.suite.startswith("QMM"):
            warmup, sim = warmup // 2, sim // 2
        # the per-core config carries the (possibly halved) budgets so the
        # journaled requested_instructions matches what the core measures
        core_config = replace(config, params=params, asid=i,
                              warmup_instructions=warmup, sim_instructions=sim)
        engines.append(build_engine(core_config, shared_llc=llc, shared_dram=dram))
        budgets.append((warmup, sim))
        core_configs.append(core_config)
    checkers = None
    if config.validate:
        from repro.validate import InvariantChecker

        checkers = [InvariantChecker(obs=obs, workload=w.name) for w in workloads]
        for checker, engine in zip(checkers, engines):
            checker.attach(engine)
    packed = config.packed or config.kernel == "vectorized"
    mode = "mix-packed" if packed else "mix-generator"
    _DRIVES.inc(mode=mode)
    drive = _drive_mix_packed if packed else _drive_mix_generator
    wall_start = perf_counter()
    with trace_span("mix-drive", mix=mix_id, cores=cores, mode=mode):
        finished = drive(engines, workloads, budgets, core_configs, checkers)
    wall_seconds = perf_counter() - wall_start
    results = [r for r in finished if r is not None]
    if obs is not None:
        share = wall_seconds / cores if cores else 0.0
        for i, (workload, result) in enumerate(zip(workloads, results)):
            with obs.scoped(mix=mix_id, core=i):
                obs.finish(engines[i], workload, core_configs[i], result, share)
    return MixResult(results, mix_id=mix_id)


def isolation_ipc(
    workload: SyntheticWorkload,
    config: SimConfig,
    cores: int,
    *,
    obs: Optional["Observability"] = None,
) -> float:
    """IPC of `workload` alone on the multi-core configuration.

    Delegates to :func:`~repro.cpu.simulator.simulate`, so the config's
    ``packed``/``kernel``/``validate`` knobs are honoured the same way a
    single-core run honours them.
    """
    iso_config = replace(config, params=config.params.scaled_llc(cores))
    warmup, sim = config.warmup_instructions, config.sim_instructions
    if workload.suite.startswith("QMM"):
        iso_config = replace(iso_config, warmup_instructions=warmup // 2, sim_instructions=sim // 2)
    return simulate(workload, iso_config, obs=obs).ipc
