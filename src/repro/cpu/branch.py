"""Hashed perceptron branch predictor (Table IV; Jimenez/Tarjan-Skadron).

Direction prediction only: several weight tables, each indexed by a hash of
the branch PC with a different-length slice of global history, plus a bias
table.  The prediction is the sign of the summed weights; training follows
the perceptron rule (update on mispredict or when the sum's magnitude is
below the threshold), with global history updated speculatively-correct
(trace-driven, so the outcome is known at predict time).
"""

from __future__ import annotations

#: global-history slice lengths per table (geometric, GEHL-style)
DEFAULT_HISTORY_LENGTHS = (0, 4, 8, 16, 32)


class HashedPerceptronBranchPredictor:
    """Direction predictor with hashed-perceptron weight tables."""

    def __init__(
        self,
        table_entries: int = 1024,
        weight_bits: int = 6,
        history_lengths: tuple[int, ...] = DEFAULT_HISTORY_LENGTHS,
        threshold: int | None = None,
    ):
        if table_entries & (table_entries - 1):
            raise ValueError(f"table size must be a power of two, got {table_entries}")
        self.table_entries = table_entries
        self.index_mask = table_entries - 1
        self.history_lengths = history_lengths
        self.weight_lo = -(1 << (weight_bits - 1))
        self.weight_hi = (1 << (weight_bits - 1)) - 1
        # classic perceptron training threshold: 1.93*h + 14 (Jimenez)
        self.threshold = threshold if threshold is not None else int(1.93 * max(history_lengths) + 14)
        self.tables = [[0] * table_entries for _ in history_lengths]
        self.ghr = 0
        self.predictions = 0
        self.mispredictions = 0
        self._snap = (0, 0)

    def _indexes(self, pc: int) -> list[int]:
        indexes = []
        for length in self.history_lengths:
            history = self.ghr & ((1 << length) - 1) if length else 0
            h = pc ^ (history * 0x9E3779B1)
            h ^= h >> 13
            indexes.append(h & self.index_mask)
        return indexes

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict the branch at `pc`, train on the true outcome, update GHR.

        Returns True when the prediction was correct.
        """
        self.predictions += 1
        indexes = self._indexes(pc)
        total = sum(table[i] for table, i in zip(self.tables, indexes))
        predicted_taken = total >= 0
        correct = predicted_taken == taken
        if not correct:
            self.mispredictions += 1
        if not correct or abs(total) <= self.threshold:
            if taken:
                for table, i in zip(self.tables, indexes):
                    if table[i] < self.weight_hi:
                        table[i] += 1
            else:
                for table, i in zip(self.tables, indexes):
                    if table[i] > self.weight_lo:
                        table[i] -= 1
        self.ghr = ((self.ghr << 1) | int(taken)) & 0xFFFFFFFFFFFFFFFF
        return correct

    @property
    def mispredict_rate(self) -> float:
        """Lifetime misprediction rate."""
        return self.mispredictions / self.predictions if self.predictions else 0.0

    def snapshot(self) -> None:
        """Mark the warm-up boundary for prediction counters."""
        self._snap = (self.predictions, self.mispredictions)

    @property
    def measured_predictions(self) -> int:
        """Predictions since the warm-up snapshot."""
        return self.predictions - self._snap[0]

    @property
    def measured_mispredictions(self) -> int:
        """Mispredictions since the warm-up snapshot."""
        return self.mispredictions - self._snap[1]
