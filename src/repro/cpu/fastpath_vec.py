"""Vectorized span-skipping drive loop over packed columns (kernel tier 2).

:func:`drive_packed_vec` drives a :class:`~repro.workloads.packed.PackedTrace`
by *spans* instead of records.  A span is a maximal run of records the scan
phase can prove uneventful by inspection: plain memory accesses (no branch,
mispredict, or dependence flags, gap small enough that no straight-line
I-fetch fires) whose dTLB translation and L1D line are resident — and, for
records that start a new I-line run, whose iTLB translation, L1I line, and
both next-line prefetch targets are resident too.  Within such a span the
fused kernel's per-record work collapses:

* the cache/TLB side is *statically known* — every access hits, no fill or
  eviction occurs, so residency scanned once holds for the whole span and
  the statistics/LRU/feature-context updates can be applied in one batch
  (numpy ``unique``/``bincount``/``argsort`` over the span's lines and
  pages, with move-to-end dict reordering replayed per unique line in
  last-touch order — bit-identical to the per-record discipline);
* the *timeline* recurrence (fetch/dispatch/ROB/retire scalars) is
  inherently sequential but its in-span form is affine: fetch and retire
  advance by prefix sums of per-record increments, the ROB head is a
  ``searchsorted`` over the retire chain, and dispatch/complete follow
  elementwise — every term combined in the fused kernel's exact float
  operation order, so results stay bit-identical.  A rare ROB-stall
  violation (a load completing after the in-order retire chain predicts)
  falls back to exact-order scalar replay for the clipped span.

Event records (branches, misses, prefetched-line touches, large gaps) run
through ``engine.step`` with the hoisted scalars flushed around the call;
a window that *opens* with a flags-only event skips the residency scan
entirely and steps the leading event run.  When no epoch listener is
attached, spans run across epoch rollovers and the vector commit replays
each boundary per segment (counters flushed, ``_end_epoch`` fired) so the
per-epoch policy hooks observe exactly the fused tier's state; with a
listener attached spans clip at each boundary instead.  The measurement
threshold always clips, preserving the fused ordering (epoch hooks before
the threshold compare).  The scan window adapts: it doubles after
fully-clean windows and shrinks when events arrive early, bounding rescan
cost on event-dense workloads.

The tier is only *profitable* under an inert L1D prefetcher (the stock
``NoPrefetcher``) with plain-LRU L1s and the default next-line I-prefetcher:
anything else makes nearly every record an event, so
:func:`drive_packed_vec` then delegates wholesale to the fused kernel
(still accounted as ``sim.drives{mode="vectorized"}`` — the metric records
tier *selection*; an attached probe routes to the stepwise loop as usual).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.cpu.core import CoreEngine
from repro.cpu.fastpath import (
    _DRIVES,
    _drive_fused,
    _drive_stepwise,
    _lru_fusible,
    _raise_if_truncated,
)
from repro.prefetch.base import NoPrefetcher
from repro.prefetch.next_line import NextLinePrefetcher
from repro.vm.address import LINE_SHIFT, PAGE_4K_SHIFT, PAGE_2M_SHIFT
from repro.workloads.packed import PackedTrace
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE

__all__ = ["drive_packed_auto", "drive_packed_vec", "predict_vec_win"]

#: span-scan window bounds (records); the window adapts within these
_WINDOW_MIN = 128
_WINDOW_START = 1024
_WINDOW_MAX = 8192

#: event-density ceiling for the ``kernel="auto"`` tier probe.  The span
#: kernel wins by skipping long uneventful runs; once a sizable fraction of
#: records are events the scan overhead loses to the fused loop
#: (BENCH_0006: hot_0 at ~0 density gains 5.75x, astar at ~0.5 density
#: regresses to 0.61x).  Between those extremes profitability crosses over
#: well below 0.25 — event records break spans, and span setup only
#: amortises over runs tens of records long.
_AUTO_EVENT_DENSITY_MAX = 0.10


def predict_vec_win(packed: PackedTrace) -> bool:
    """Cheap pack-level probe: is the span-skipping tier expected to win?

    Measures the fraction of records the span predicate must always hand to
    the slow path (branch/mispredict/dependent flags, non-memory records,
    gaps large enough to trigger straight-line I-fetch) — three vectorized
    column ops, no simulation and no :class:`PackIndex` build.  Empty packs
    report False (nothing to skip).
    """
    if not len(packed):
        return False
    _, _, flags, gaps = packed.columns()
    fl = flags.astype(np.int64)
    event = (
        ((fl & (BRANCH | MISPREDICT | DEPENDS)) != 0)
        | ((fl & (LOAD | STORE)) == 0)
        | (gaps.astype(np.int64) > 15)
    )
    return float(event.mean()) <= _AUTO_EVENT_DENSITY_MAX


def drive_packed_auto(engine: CoreEngine, packed: PackedTrace, config) -> float:
    """``kernel="auto"``: probe the pack, pick the tier expected to win.

    Selects the vectorized span kernel only when the engine qualifies
    (:func:`_vec_capable`) *and* the pack's event density predicts a win
    (:func:`predict_vec_win`); everything else runs the fused kernel.  The
    drive counts under the mode actually chosen, so merged grid metrics
    still read as fused-vs-vectorized ratios.  Bit-identical either way.
    """
    if engine.probe is not None:
        _DRIVES.inc(mode="stepwise")
        return _drive_stepwise(engine, packed,
                               config.warmup_instructions,
                               config.sim_instructions)
    if _vec_capable(engine) and predict_vec_win(packed):
        _DRIVES.inc(mode="vectorized")
        return _drive_vectorized(engine, packed, config)
    _DRIVES.inc(mode="fused")
    return _drive_fused(engine, packed, config)


def _vec_capable(engine: CoreEngine) -> bool:
    """True when the span predicate's residency-only reasoning is sound.

    Requires the stock inert L1D prefetcher (so in-span hits generate no
    candidates and the access hook is known side-effect-free), plain
    LRU-on-hit L1s (so the batched move-to-end replay matches), and the
    default degree-2 next-line I-prefetcher (so resident next lines imply
    no I-prefetch side effects).  Instance-patched seams fail the check.
    """
    pf = engine.prefetcher
    if type(pf) is not NoPrefetcher:
        return False
    seam = engine._pf_on_access
    if (getattr(seam, "__func__", None) is not NoPrefetcher.on_access
            or getattr(seam, "__self__", None) is not pf):
        return False
    h = engine.hierarchy
    if not _lru_fusible(h.l1d) or not _lru_fusible(h.l1i):
        return False
    ipf = engine.l1i_prefetcher
    if type(ipf) is not NextLinePrefetcher or ipf.degree != 2:
        return False
    return True


def drive_packed_vec(engine: CoreEngine, packed: PackedTrace, config) -> float:
    """Drive a packed trace with the vectorized span-skipping kernel.

    Drop-in for :func:`repro.cpu.fastpath.drive_packed`: same return value
    (wall seconds), same truncation errors, bit-identical results.  Engines
    the span predicate cannot reason about delegate to the fused kernel;
    a profiled engine routes to the stepwise loop.
    """
    if engine.probe is not None:
        _DRIVES.inc(mode="stepwise")
        return _drive_stepwise(engine, packed,
                               config.warmup_instructions,
                               config.sim_instructions)
    _DRIVES.inc(mode="vectorized")
    if not _vec_capable(engine):
        return _drive_fused(engine, packed, config)
    return _drive_vectorized(engine, packed, config)


def _drive_vectorized(engine: CoreEngine, packed: PackedTrace, config) -> float:
    warm_limit = config.warmup_instructions
    sim_limit = config.sim_instructions
    idx = packed.index()
    npk = len(packed)

    # ---- loop-invariant hoists ------------------------------------------
    h = engine.hierarchy
    l1d, l1i = h.l1d, h.l1i
    l1d_sets, l1d_mask = l1d._sets, l1d._set_mask
    l1i_sets, l1i_mask = l1i._sets, l1i._set_mask
    l1d_stats, l1d_demand = l1d.stats, l1d.demand_stats
    l1i_stats, l1i_demand = l1i.stats, l1i.demand_stats
    l1d_pol, l1i_pol = l1d._policy, l1i._policy
    dtlb, itlb = engine.dtlb, engine.itlb
    dtlb_sets, dtlb_mask, dtlb_stats = dtlb._sets, dtlb._set_mask, dtlb.stats
    itlb_sets, itlb_mask, itlb_stats = itlb._sets, itlb._set_mask, itlb.stats
    dtlb_lat_f = float(dtlb.latency)
    l1d_lat_f = float(l1d.latency)
    fctx = engine.fctx
    fctx_seen = fctx._seen_pages
    fctx_cap = fctx._seen_cap
    fctx_ph, fctx_vh = fctx.pc_history, fctx.va_history
    l1i_pf = engine.l1i_prefetcher
    rob_entries = engine._rob
    rob_q = engine._rob_q
    rob_popleft = rob_q.popleft
    rob_append = rob_q.append
    step = engine.step
    S4, S2 = PAGE_4K_SHIFT, PAGE_2M_SHIFT
    D4 = S4 - LINE_SHIFT
    D2 = S2 - LINE_SHIFT
    M4 = (1 << D4) - 1
    M2 = (1 << D2) - 1
    P2 = S2 - S4

    cum = idx.cum
    event = idx.event
    change = idx.change
    vpage = idx.vpage
    vline = idx.vline
    iline_a = idx.iline
    isload = idx.isload
    isstore = idx.isstore
    #: per-record float timeline increments; elementwise products are
    #: IEEE-identical to the fused kernel's scalar (1 + gap) * cpi
    finc = idx.weight * engine._fetch_cpi
    rinc = idx.weight * engine._retire_cpi
    pcs_a, vaddrs_a = packed.pcs, packed.vaddrs
    flags_a, gaps_a = packed.flags, packed.gaps

    # ---- hoisted timeline scalars ---------------------------------------
    instructions = engine.instructions
    fetch_t = engine.fetch_t
    retire_t = engine.retire_t
    rob_head_retire = engine._rob_head_retire
    rob_block_end = engine._rob_block_end
    rob_stall = engine.rob_stall_cycles
    last_load_complete = engine._last_load_complete
    last_iline = engine._last_iline
    next_epoch = engine._next_epoch
    measuring = False
    threshold = warm_limit

    # ---- persistent residency proofs ------------------------------------
    # a proof ("this translation/line is resident, ready, and unflagged")
    # stays valid until cache/TLB contents can change: only engine.step
    # runs mutate them (spans never fill or evict, `bound`/`fetch_t` only
    # grow, epoch hooks see EpochStats — not the engine), so the caches
    # are cleared wholesale after every step run, and after an epoch
    # rollover only when an external epoch_listener is attached
    dcache: dict = {}   # 4K vpage -> (dtlb entry, pfn, page shift)
    icache: dict = {}   # 4K ipage -> (itlb entry, pfn, page shift)
    lcache: dict = {}   # physical L1D line -> proven-resident block
    fcache: dict = {}   # physical L1I line -> proven block (+ NL targets)
    l_arr = np.empty(0, dtype=np.int64)  # sorted proven L1D lines
    #: without a listener, spans may run across epoch rollovers: the hook
    #: reads only aggregate stats and timeline scalars (committed exactly
    #: at each boundary below), never per-line LRU state
    defer = engine.epoch_listener is None

    pos = 0
    window = _WINDOW_START
    wall_start = perf_counter()
    while pos < npk:
        b_w = pos + window
        if b_w > npk:
            b_w = npk
        # clip the window at the next epoch/measurement boundary before
        # scanning: the crossing record stays *in* the window (the fused
        # kernel checks after the record), nothing past it is probed
        offset = instructions - (int(cum[pos - 1]) if pos else 0)
        if defer:
            limit = threshold
        else:
            limit = next_epoch if next_epoch < threshold else threshold
        clipped = False
        e_rel = int(np.searchsorted(cum[pos:b_w], limit - offset,
                                    side="left"))
        if e_rel < b_w - pos:
            b_w = pos + e_rel + 1
            clipped = True
        w = b_w - pos
        # conservative lower bound on every span record's dispatch time:
        # fetch_t and rob_head_retire are both monotone, and dispatch is
        # their running max — so a line ready by `bound` can never be a
        # late hit inside the span (fetch_t alone lags the retire clock
        # badly after miss bursts and would disprove warm lines for ages)
        bound = fetch_t if fetch_t > rob_head_retire else rob_head_retire

        # ---- scan: prove the longest prefix of the window uneventful ----
        ok = ~event[pos:b_w]
        if not ok[0]:
            # the window opens with an event by flags alone: the
            # residency scan cannot clear anything — skip straight to
            # stepping the leading event run
            span_len = 0
        else:
            # dTLB residency per unique 4K virtual page (2M entries probed at
            # their own granularity; prefetched entries are events — the step
            # path records their prefetch-hit)
            pages_u, pinv = np.unique(vpage[pos:b_w], return_inverse=True)
            n_pu = len(pages_u)
            pfn_u = np.zeros(n_pu, dtype=np.int64)
            sh_u = np.zeros(n_pu, dtype=np.int64)
            pok = np.zeros(n_pu, dtype=bool)
            for i, pg in enumerate(pages_u.tolist()):
                hit = dcache.get(pg)
                if hit is None:
                    e = dtlb_sets[pg & dtlb_mask].get((pg, S4))
                    if e is None:
                        pg2 = pg >> P2
                        e = dtlb_sets[pg2 & dtlb_mask].get((pg2, S2))
                        if e is None or e[2]:
                            continue
                        hit = (e, e[0], S2)
                    else:
                        if e[2]:
                            continue
                        hit = (e, e[0], S4)
                    dcache[pg] = hit
                pok[i] = True
                pfn_u[i] = hit[1]
                sh_u[i] = hit[2]
            ok &= pok[pinv]
            # physical L1D line per record (valid where the page probe hit)
            pfn_r = pfn_u[pinv]
            vl = vline[pos:b_w]
            pline_w = np.where(sh_u[pinv] == S4,
                               (pfn_r << D4) | (vl & M4),
                               (pfn_r << D2) | (vl & M2))
            # L1D residency per unique line among still-ok records; the span is
            # all-hit so no fill/eviction can occur inside it — residency and
            # the conservative readiness bound (ready <= bound, which only
            # grows) scanned once hold for the whole span
            okidx = np.nonzero(ok)[0]
            if len(okidx):
                ulines, linv = np.unique(pline_w[okidx], return_inverse=True)
                nl = len(l_arr)
                if nl:
                    # vectorized membership against the proven-line array
                    si = np.searchsorted(l_arr, ulines)
                    si[si == nl] = 0
                    lok = l_arr[si] == ulines
                else:
                    lok = np.zeros(len(ulines), dtype=bool)
                unknown = np.nonzero(~lok)[0]
                if len(unknown):
                    added = False
                    for i in unknown.tolist():
                        ln = int(ulines[i])
                        blk = l1d_sets[ln & l1d_mask].get(ln)
                        if (blk is not None and blk.ready <= bound
                                and not (blk.prefetched and blk.hits == 0)):
                            lok[i] = True
                            lcache[ln] = blk
                            added = True
                    if added:
                        l_arr = np.fromiter(lcache, np.int64, len(lcache))
                        l_arr.sort()
                ok[okidx] = lok[linv]
            # I-side, for records starting a new I-line run: iTLB + L1I
            # residency of the fetch line and both next-line prefetch targets
            # (so the fused NL prefetcher provably issues nothing in-span)
            chidx = np.nonzero(change[pos:b_w] & ok)[0]
            fline_ch = None
            if len(chidx):
                il = iline_a[pos:b_w][chidx]
                ipg = il >> D4
                ipages_u, iinv = np.unique(ipg, return_inverse=True)
                n_iu = len(ipages_u)
                ipfn_u = np.zeros(n_iu, dtype=np.int64)
                ish_u = np.zeros(n_iu, dtype=np.int64)
                ipok = np.zeros(n_iu, dtype=bool)
                for i, pg in enumerate(ipages_u.tolist()):
                    hit = icache.get(pg)
                    if hit is None:
                        e = itlb_sets[pg & itlb_mask].get((pg, S4))
                        if e is None:
                            pg2 = pg >> P2
                            e = itlb_sets[pg2 & itlb_mask].get((pg2, S2))
                            if e is None or e[2]:
                                continue
                            hit = (e, e[0], S2)
                        else:
                            if e[2]:
                                continue
                            hit = (e, e[0], S4)
                        icache[pg] = hit
                    ipok[i] = True
                    ipfn_u[i] = hit[1]
                    ish_u[i] = hit[2]
                iok = ipok[iinv]
                ipfn_r = ipfn_u[iinv]
                fline_ch = np.where(ish_u[iinv] == S4,
                                    (ipfn_r << D4) | (il & M4),
                                    (ipfn_r << D2) | (il & M2))
                f_okidx = np.nonzero(iok)[0]
                if len(f_okidx):
                    uf, finv = np.unique(fline_ch[f_okidx], return_inverse=True)
                    fok = np.zeros(len(uf), dtype=bool)
                    for i, fn in enumerate(uf.tolist()):
                        if fn in fcache:
                            fok[i] = True
                            continue
                        blk = l1i_sets[fn & l1i_mask].get(fn)
                        if (blk is not None and blk.ready <= fetch_t
                                and not (blk.prefetched and blk.hits == 0)
                                and l1i_sets[(fn + 1) & l1i_mask].get(fn + 1)
                                is not None
                                and l1i_sets[(fn + 2) & l1i_mask].get(fn + 2)
                                is not None):
                            fok[i] = True
                            fcache[fn] = blk
                    iok[f_okidx] = fok[finv]
                ok[chidx] = iok

            # span = leading run of provably-uneventful records
            bad = np.nonzero(~ok)[0]
            span_len = int(bad[0]) if len(bad) else w

        if span_len:
            a, b = pos, pos + span_len
            k = span_len
            cum_abs = cum[a:b] + offset if offset else cum[a:b]

            # ---- vectorized exact timeline ------------------------------
            # ufunc.accumulate applies the op left-to-right, so these float
            # chains replicate the scalar loop's operation order exactly.
            # The retire chain is computed under the assumption that the
            # `complete > retire` arm never fires (checked below; the
            # scalar loop handles the rare spans where it does).
            ft = np.add.accumulate(
                np.concatenate(((fetch_t,), finc[a:b])))[1:]
            rchain = np.add.accumulate(
                np.concatenate(((retire_t,), rinc[a:b])))[1:]
            # rob_head_retire per record: retire of the newest entry (prior
            # ROB contents or earlier span records) at least rob_entries
            # instructions behind; the sentinel keeps the incoming value
            # for records that pop nothing
            n_dq = len(rob_q)
            cum_all = np.empty(1 + n_dq + k, dtype=np.int64)
            ret_all = np.empty(1 + n_dq + k)
            cum_all[0] = -(1 << 62)
            ret_all[0] = rob_head_retire
            if n_dq:
                cum_all[1:1 + n_dq] = [e[0] for e in rob_q]
                ret_all[1:1 + n_dq] = [e[1] for e in rob_q]
            cum_all[1 + n_dq:] = cum_abs
            ret_all[1 + n_dq:] = rchain
            rhr_v = ret_all[np.searchsorted(cum_all, cum_abs - rob_entries,
                                            side="right") - 1]
            dispatch_v = np.maximum(ft, rhr_v)
            complete_v = (dispatch_v + dtlb_lat_f) + l1d_lat_f
            if not (complete_v > rchain).any():
                # ROB-stall accounting: a stall is charged exactly where
                # rob_head_retire strictly advances past both the fetch
                # clock and the previous high-water mark; the increments
                # accumulate in record order (same float adds as scalar)
                prev = np.empty(k)
                prev[0] = rob_block_end
                prev[1:] = rhr_v[:-1]
                bf = np.maximum(ft, prev)
                addidx = np.nonzero(rhr_v > bf)[0]
                incs = (rhr_v - bf)[addidx]
                # commit per epoch segment: the rollover hook reads exact
                # boundary values of the timeline scalars and the L1D
                # demand counters, nothing per-line — those are batched
                # once for the whole span afterwards
                s_seg = 0
                while True:
                    e_seg = s_seg + 1 + int(np.searchsorted(
                        cum_abs[s_seg:], next_epoch, side="left"))
                    last_seg = e_seg >= k
                    if last_seg:
                        e_seg = k
                    seg_k = e_seg - s_seg
                    fetch_t = float(ft[e_seg - 1])
                    retire_t = float(rchain[e_seg - 1])
                    rob_head_retire = float(rhr_v[e_seg - 1])
                    i0 = int(np.searchsorted(addidx, s_seg))
                    i1 = int(np.searchsorted(addidx, e_seg))
                    if i1 > i0:
                        rob_stall = float(np.add.accumulate(np.concatenate(
                            ((rob_stall,), incs[i0:i1])))[-1])
                        rob_block_end = float(rhr_v[addidx[i1 - 1]])
                    instructions = int(cum_abs[e_seg - 1])
                    l1d_stats.accesses += seg_k
                    l1d_stats.hits += seg_k
                    l1d_demand.accesses += seg_k
                    l1d_demand.hits += seg_k
                    if last_seg:
                        break
                    engine.instructions = instructions
                    engine.fetch_t = fetch_t
                    engine.retire_t = retire_t
                    engine._rob_head_retire = rob_head_retire
                    engine._rob_block_end = rob_block_end
                    engine.rob_stall_cycles = rob_stall
                    engine._last_load_complete = last_load_complete
                    engine._last_iline = last_iline
                    engine._end_epoch()
                    next_epoch = engine._next_epoch
                    s_seg = e_seg
                ld = np.nonzero(isload[a:b])[0]
                if len(ld):
                    last_load_complete = float(complete_v[ld[-1]])
                # replay the ROB queue wholesale: everything at or behind
                # the final pop limit is gone, the span tail is appended
                limit_last = instructions - rob_entries
                while rob_q and rob_q[0][0] <= limit_last:
                    rob_popleft()
                t0 = int(np.searchsorted(cum_abs, limit_last, side="right"))
                rob_q.extend(zip(cum_abs[t0:].tolist(),
                                 rchain[t0:].tolist()))
            else:
                # ---- scalar exact-order fallback ------------------------
                # a completion outran the retire chain somewhere in the
                # span; clip it at the first epoch/measurement crossing
                # (scalar replay checks nothing mid-span) and run it
                # record-at-a-time, identical to the fused kernel
                lim2 = next_epoch if next_epoch < threshold else threshold
                e_rel2 = int(np.searchsorted(cum_abs, lim2, side="left"))
                if e_rel2 + 1 < k:
                    k = e_rel2 + 1
                    b = a + k
                    span_len = k
                    cum_abs = cum_abs[:k]
                cum_l = cum_abs.tolist()
                finc_l = finc[a:b].tolist()
                rinc_l = rinc[a:b].tolist()
                load_l = isload[a:b].tolist()
                for j in range(k):
                    n = cum_l[j]
                    fetch_t += finc_l[j]
                    rlimit = n - rob_entries
                    while rob_q and rob_q[0][0] <= rlimit:
                        rob_head_retire = rob_popleft()[1]
                    dispatch = fetch_t
                    if rob_head_retire > dispatch:
                        blocked_from = (dispatch if dispatch > rob_block_end
                                        else rob_block_end)
                        if rob_head_retire > blocked_from:
                            rob_stall += rob_head_retire - blocked_from
                            rob_block_end = rob_head_retire
                        dispatch = rob_head_retire
                    complete = (dispatch + dtlb_lat_f) + l1d_lat_f
                    if load_l[j]:
                        last_load_complete = complete
                    retire = retire_t + rinc_l[j]
                    if complete > retire:
                        retire = complete
                    retire_t = retire
                    rob_append((n, retire))
                instructions = cum_l[-1]
                l1d_stats.accesses += k
                l1d_stats.hits += k
                l1d_demand.accesses += k
                l1d_demand.hits += k

            # ---- batched state application ------------------------------
            # dTLB: every span record is a hit; ticks advance per record,
            # entries stamped with their last touch (ascending last-touch
            # order so pages sharing a 2M entry resolve to the latest)
            dtlb_stats.accesses += k
            dtlb_stats.hits += k
            t_base = dtlb._tick
            dtlb._tick = t_base + k
            span_pages = vpage[a:b]
            if k == w:
                pages_s, pinv_s = pages_u, pinv
            else:
                pages_s, pinv_s = np.unique(span_pages, return_inverse=True)
            last_p = np.empty(len(pages_s), dtype=np.int64)
            last_p[pinv_s] = np.arange(k)
            p_ord = np.argsort(last_p)
            for pg, stamp in zip(pages_s[p_ord].tolist(),
                                 (t_base + 1 + last_p[p_ord]).tolist()):
                dcache[pg][0][1] = stamp

            # L1D: per-line hit counts, LRU stamps, dirty bits, and the
            # move-to-end reorder replayed once per unique line in global
            # last-touch order (per set that yields exactly the per-record
            # del/reinsert discipline's final ordering).  Hit/access
            # counters were already committed per epoch segment above.
            p_base = l1d_pol._tick
            l1d_pol._tick = p_base + k
            span_lines = pline_w[:k]
            if k == w:
                lines_s, linv_s = ulines, linv
            else:
                lines_s, linv_s = np.unique(span_lines, return_inverse=True)
            last_l = np.empty(len(lines_s), dtype=np.int64)
            last_l[linv_s] = np.arange(k)
            counts_l = np.bincount(linv_s)
            l_ord = np.argsort(last_l)
            for ln, stamp, cnt in zip(
                    lines_s[l_ord].tolist(),
                    (p_base + 1 + last_l[l_ord]).tolist(),
                    counts_l[l_ord].tolist()):
                blk = lcache[ln]
                dset = l1d_sets[ln & l1d_mask]
                del dset[ln]
                dset[ln] = blk
                blk.lru = stamp
                blk.hits += cnt
            st_mask = isstore[a:b]
            if st_mask.any():
                for ln in np.unique(span_lines[st_mask]).tolist():
                    lcache[ln].dirty = True

            # iTLB/L1I: only records starting a new I-line run touch the
            # front end; their ticks count those records alone
            ch_rel = chidx[chidx < k]
            c = len(ch_rel)
            if c:
                itlb_stats.accesses += c
                itlb_stats.hits += c
                it_base = itlb._tick
                itlb._tick = it_base + c
                if c == len(chidx):
                    ipages_s, iinv_s = ipages_u, iinv
                else:
                    ipg_s = iline_a[a:b][ch_rel] >> D4
                    ipages_s, iinv_s = np.unique(ipg_s, return_inverse=True)
                last_ip = np.empty(len(ipages_s), dtype=np.int64)
                last_ip[iinv_s] = np.arange(c)
                ip_ord = np.argsort(last_ip)
                for pg, stamp in zip(ipages_s[ip_ord].tolist(),
                                     (it_base + 1 + last_ip[ip_ord]).tolist()):
                    icache[pg][0][1] = stamp

                l1i_stats.accesses += c
                l1i_stats.hits += c
                l1i_demand.accesses += c
                l1i_demand.hits += c
                pi_base = l1i_pol._tick
                l1i_pol._tick = pi_base + c
                # chidx is sorted, so the in-span change records are
                # exactly the first c entries of the window's change list
                flines_s = fline_ch[:c]
                if c == len(chidx):
                    fl_s, finv_s = uf, finv
                else:
                    fl_s, finv_s = np.unique(flines_s, return_inverse=True)
                last_f = np.empty(len(fl_s), dtype=np.int64)
                last_f[finv_s] = np.arange(c)
                counts_f = np.bincount(finv_s)
                f_ord = np.argsort(last_f)
                for fn, stamp, cnt in zip(
                        fl_s[f_ord].tolist(),
                        (pi_base + 1 + last_f[f_ord]).tolist(),
                        counts_f[f_ord].tolist()):
                    blk = fcache[fn]
                    iset = l1i_sets[fn & l1i_mask]
                    del iset[fn]
                    iset[fn] = blk
                    blk.lru = stamp
                    blk.hits += cnt
                # fused NL dedup key: the last new-run fetch line
                l1i_pf._last_line = int(flines_s[-1])
            last_iline = int(iline_a[b - 1])

            # FeatureContext: seen-page LRU replayed per same-page run,
            # histories and last-access fields from the span tail
            f_base = fctx._seen_tick
            fctx._seen_tick = f_base + k
            pg_l = span_pages.tolist()
            run_start = 0
            fpa = fctx.first_page_access
            for j in range(1, k + 1):
                if j < k and pg_l[j] == pg_l[run_start]:
                    continue
                page = pg_l[run_start]
                if page in fctx_seen:
                    fpa = False
                    del fctx_seen[page]
                else:
                    fpa = True
                    if len(fctx_seen) >= fctx_cap:
                        del fctx_seen[next(iter(fctx_seen))]
                fctx_seen[page] = f_base + j
                if j - run_start > 1:
                    fpa = False
                run_start = j
            fctx.first_page_access = fpa
            if k >= 3:
                fctx_ph[0] = pcs_a[b - 1]
                fctx_ph[1] = pcs_a[b - 2]
                fctx_ph[2] = pcs_a[b - 3]
                fctx_vh[0] = vaddrs_a[b - 1]
                fctx_vh[1] = vaddrs_a[b - 2]
                fctx_vh[2] = vaddrs_a[b - 3]
            elif k == 2:
                fctx_ph[2] = fctx_ph[0]
                fctx_ph[0] = pcs_a[b - 1]
                fctx_ph[1] = pcs_a[b - 2]
                fctx_vh[2] = fctx_vh[0]
                fctx_vh[0] = vaddrs_a[b - 1]
                fctx_vh[1] = vaddrs_a[b - 2]
            else:
                fctx_ph[2] = fctx_ph[1]
                fctx_ph[1] = fctx_ph[0]
                fctx_ph[0] = pcs_a[b - 1]
                fctx_vh[2] = fctx_vh[1]
                fctx_vh[1] = fctx_vh[0]
                fctx_vh[0] = vaddrs_a[b - 1]
            fctx.last_pc = pcs_a[b - 1]
            fctx.last_vaddr = vaddrs_a[b - 1]

            pos = b

            # adapt the scan window: clean full windows earn a bigger one,
            # early events shrink it (cheaper rescans on event-dense runs)
            if span_len == w and not clipped:
                if window < _WINDOW_MAX:
                    window <<= 1
            elif span_len < (window >> 2):
                if window > _WINDOW_MIN:
                    window >>= 1
        else:
            # disproven run: step through the whole leading run of records
            # the scan could not clear, amortizing one scan over the run
            # instead of paying a rescan per event record.  Stepping is
            # always correct (step() handles epochs itself); the boundary
            # check per record matches the fused tier's ordering.
            good = np.nonzero(ok)[0]
            run_end = pos + (int(good[0]) if len(good) else w)
            engine.instructions = instructions
            engine.fetch_t = fetch_t
            engine.retire_t = retire_t
            engine._rob_head_retire = rob_head_retire
            engine._rob_block_end = rob_block_end
            engine.rob_stall_cycles = rob_stall
            engine._last_load_complete = last_load_complete
            engine._last_iline = last_iline
            stop = False
            while pos < run_end:
                step(pcs_a[pos], vaddrs_a[pos], flags_a[pos], gaps_a[pos])
                pos += 1
                if engine.instructions >= threshold:
                    if measuring:
                        stop = True
                        break
                    engine.begin_measurement()
                    measuring = True
                    threshold = engine.instructions + sim_limit
                    if engine.instructions >= threshold:
                        stop = True
                        break
            instructions = engine.instructions
            fetch_t = engine.fetch_t
            retire_t = engine.retire_t
            rob_head_retire = engine._rob_head_retire
            rob_block_end = engine._rob_block_end
            rob_stall = engine.rob_stall_cycles
            last_load_complete = engine._last_load_complete
            last_iline = engine._last_iline
            next_epoch = engine._next_epoch
            # step runs can fill/evict/flag anything: drop every proof
            dcache.clear()
            icache.clear()
            lcache.clear()
            fcache.clear()
            l_arr = l_arr[:0]
            if stop:
                break
            continue

        # epoch rollover after a span (the crossing record was kept inside)
        if instructions >= next_epoch:
            engine.instructions = instructions
            engine.fetch_t = fetch_t
            engine.retire_t = retire_t
            engine._rob_head_retire = rob_head_retire
            engine._rob_block_end = rob_block_end
            engine.rob_stall_cycles = rob_stall
            engine._last_load_complete = last_load_complete
            engine._last_iline = last_iline
            engine._end_epoch()
            if engine.epoch_listener is not None:
                # listeners see the engine itself; don't reason past them
                dcache.clear()
                icache.clear()
                lcache.clear()
                fcache.clear()
                l_arr = l_arr[:0]
            instructions = engine.instructions
            fetch_t = engine.fetch_t
            retire_t = engine.retire_t
            rob_head_retire = engine._rob_head_retire
            rob_block_end = engine._rob_block_end
            rob_stall = engine.rob_stall_cycles
            last_load_complete = engine._last_load_complete
            last_iline = engine._last_iline
            next_epoch = engine._next_epoch

        # warm-up / measurement boundary (same ordering as the fused tier)
        if instructions >= threshold:
            if measuring:
                break
            engine.instructions = instructions
            engine.fetch_t = fetch_t
            engine.retire_t = retire_t
            engine._rob_head_retire = rob_head_retire
            engine._rob_block_end = rob_block_end
            engine.rob_stall_cycles = rob_stall
            engine._last_load_complete = last_load_complete
            engine._last_iline = last_iline
            engine.begin_measurement()
            measuring = True
            threshold = instructions + sim_limit
            if instructions >= threshold:
                break
    wall_seconds = perf_counter() - wall_start

    engine.instructions = instructions
    engine.fetch_t = fetch_t
    engine.retire_t = retire_t
    engine._rob_head_retire = rob_head_retire
    engine._rob_block_end = rob_block_end
    engine.rob_stall_cycles = rob_stall
    engine._last_load_complete = last_load_complete
    engine._last_iline = last_iline
    _raise_if_truncated(engine, packed, measuring, warm_limit, sim_limit)
    return wall_seconds
