"""Batched drive loop over packed traces (the simulation hot path).

:func:`drive_packed` is a drop-in replacement for
:func:`repro.cpu.simulator.drive` that consumes a
:class:`~repro.workloads.packed.PackedTrace` instead of a generator and
iterates with the engine's timeline scalars hoisted into locals.  The
dominant per-record case — same I-line, dTLB hit, L1 hit under LRU — is
fully fused inline: the exact side effects of :meth:`Tlb.lookup`,
:meth:`Cache.lookup`, and the hierarchy hit timing are replicated
statement-for-statement (same statistics increments, same LRU ticks, same
float operation order), so a fused run is bit-identical to the generator
path.  Anything else falls back to the unmodified slow machinery:

* epoch rollovers stay on the fused loop: the record runs through the fused
  body, then the hoisted scalars are flushed and
  :meth:`CoreEngine._end_epoch` fires inline — exactly the tail of
  :meth:`CoreEngine.step` — so epoch statistics, the policy's ``on_epoch``
  feed, and any ``epoch_listener`` see exactly the state they would in a
  generator-driven run;
* TLB misses call the engine's ``_translate_data`` / ``_translate_instruction``
  (the fused probe is side-effect-free, so the full lookup inside them
  counts the miss exactly once);
* cache misses — and every access when a cache's replacement policy is not
  plain-LRU-on-hit — call the hierarchy's ``load``/``store``/``ifetch``;
* prefetch candidates dispatch through a fused replica of
  ``CoreEngine._dispatch_prefetches`` with the stock
  :class:`~repro.core.filter.PerceptronFilter` decision inlined (weight
  reads, system-feature gating, threshold compare) and the in-flight-miss
  recount made lazy — see :func:`_make_fused_dispatch`; any policy,
  threshold, or seam the replica was not built for falls back to the
  engine's dispatch unchanged;
* a profiled engine (``engine.probe`` set) disables fusion entirely and
  runs a step-per-record loop, so probe timings still cover every seam.

The measurement window follows the fixed drive-loop semantics: warm-up ends
at the first record boundary at or after ``warmup_instructions``, and the
loop runs until ``measured_instructions >= sim_instructions``.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.filter import PerceptronFilter
from repro.core.thresholds import AdaptiveThreshold, StaticThreshold
from repro.core.update_buffers import TrainingRecord
from repro.cpu.branch import DEFAULT_HISTORY_LENGTHS, HashedPerceptronBranchPredictor
from repro.cpu.core import CoreEngine
from repro.mem.replacement import LruPolicy
from repro.obs.metrics import get_metrics
from repro.prefetch.next_line import NextLinePrefetcher
from repro.vm.address import LINE_SHIFT, PAGE_4K_SHIFT, PAGE_2M_SHIFT, VA_MASK
from repro.vm.page_table import Translation
from repro.workloads.packed import PackedTrace
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN

__all__ = ["drive_packed"]

#: same instrument the generator loop increments (mode="generator"); one
#: increment per drive entry, so the hot loop itself stays untouched
_DRIVES = get_metrics().counter(
    "sim.drives",
    "drive-loop entries by mode (generator/fused/stepwise/vectorized)")


def _lru_fusible(cache) -> bool:
    """True when the cache's hit-promotion is exactly LruPolicy.on_hit.

    Covers ``lru`` and ``pa-lru`` (which overrides only ``on_fill``); any
    policy with its own ``on_hit`` (SRRIP, BRRIP, random, a future custom
    policy) routes every access through the normal lookup path instead.
    """
    policy = cache._policy
    return isinstance(policy, LruPolicy) and type(policy).on_hit is LruPolicy.on_hit


def _make_fused_dispatch(engine: CoreEngine):
    """A fused replica of :meth:`CoreEngine._dispatch_prefetches`, or None.

    Inlines the stock :class:`PerceptronFilter` decision — stage-1 weight
    reads, stage-2 system-feature gating, stage-3/4 threshold compare — and
    makes the in-flight-miss recount *lazy*: ``state.l1d_inflight_misses``
    is consumed solely by :meth:`AdaptiveThreshold.effective`'s ROB-pressure
    override, and only after ``rob_stall_fraction`` clears its gate, so the
    O(outstanding) MSHR scan runs exactly when that first condition holds
    instead of eagerly before every decision.  Every counter, statistic, and
    training event is replicated statement-for-statement, so a fused run is
    bit-identical to the engine's dispatch.

    Returns None — keeping the engine's dispatch — whenever an assumption
    might not hold: a policy that is not a plain ``PerceptronFilter``
    (Permit/Discard/DiscardPtw, subclasses overriding ``decide``), an
    instance-patched ``decide`` or engine seam, or a threshold that is not
    exactly ``StaticThreshold``/``AdaptiveThreshold``.
    """
    policy = engine.policy
    if not isinstance(policy, PerceptronFilter):
        return None
    if type(policy).decide is not PerceptronFilter.decide:
        return None
    seam = engine._policy_decide
    if (getattr(seam, "__func__", None) is not PerceptronFilter.decide
            or getattr(seam, "__self__", None) is not policy):
        return None
    threshold = policy.threshold
    adaptive = type(threshold) is AdaptiveThreshold
    if not adaptive and type(threshold) is not StaticThreshold:
        return None

    h = engine.hierarchy
    l1d = h.l1d
    l1d_sets, l1d_set_mask = l1d._sets, l1d._set_mask
    prefetch_l1d = h.prefetch_l1d
    in_flight = l1d.in_flight_misses
    pgc = engine.pgc
    state = engine.system_state
    fctx = engine.fctx
    dtlb, stlb = engine.dtlb, engine.stlb
    dtlb_lookup, stlb_lookup = dtlb.lookup, stlb.lookup
    dtlb_insert, stlb_insert = dtlb.insert, stlb.insert
    dtlb_lat_f = float(dtlb.latency)
    stlb_lat = stlb.latency
    walk_fn = engine._walk
    on_discarded, on_issued = policy.on_discarded, policy.on_issued
    filter_native = getattr(policy, "filter_at_native_boundary", False)
    requires_hit = policy.requires_translation_hit
    lazy_inflight = adaptive and policy.wants_inflight_feature
    rob_gate = threshold.config.rob_stall_high if adaptive else 0.0
    effective = threshold.effective
    feats = [(feature.index, table.weights, table.index_bits)
             for feature, table in zip(policy.features, policy.tables)]
    single = feats[0] if len(feats) == 1 else None
    overrides = policy.config.system_thresholds
    gates = [
        (spec.name, spec.getter, spec.direction == "<",
         spec.default_threshold if overrides.get(spec.name) is None
         else overrides[spec.name],
         policy.sys_weights[spec.name])
        for spec in policy.sys_specs
    ]
    LS = LINE_SHIFT
    S4 = PAGE_4K_SHIFT

    def dispatch(requests, trigger_vaddr, trigger_tr, t, pc):
        trigger_page = trigger_vaddr >> S4
        native_shift = trigger_tr.page_shift
        tr_base = trigger_tr.pfn << native_shift
        tr_off_mask = trigger_tr.page_bytes - 1
        trigger_native_vpn = trigger_vaddr >> native_shift
        for req in requests:
            target = req.vaddr & VA_MASK
            req.vaddr = target
            if (target >> S4) == trigger_page:
                # in-page prefetch: same frame, no policy involvement
                paddr = tr_base | (target & tr_off_mask)
                pline = paddr >> LS
                if l1d_sets[pline & l1d_set_mask].get(pline) is None:
                    prefetch_l1d(paddr, t)
                continue
            pgc.candidates += 1
            same_translation = (target >> native_shift) == trigger_native_vpn
            if same_translation:
                pgc.same_translation += 1
            if same_translation and filter_native:
                record = None
            else:
                # fused PerceptronFilter.decide (Figure 6, stages 1-4)
                policy.predictions += 1
                if single is not None:
                    idx = single[0](req, fctx, single[2])
                    total = single[1][idx]
                    indexes = (idx,)
                else:
                    ilist = []
                    total = 0
                    for f_index, weights, index_bits in feats:
                        idx = f_index(req, fctx, index_bits)
                        ilist.append(idx)
                        total += weights[idx]
                    indexes = tuple(ilist)
                active: list = []
                for g_name, g_getter, g_lt, g_thr, g_counter in gates:
                    value = g_getter(state)
                    if (value < g_thr) if g_lt else (value > g_thr):
                        total += g_counter.value
                        active.append(g_name)
                if adaptive:
                    # AdaptiveThreshold.effective is *called* (it mutates
                    # disable_events on the LLC-disable path); only the
                    # in-flight recount it may read is refreshed lazily
                    if lazy_inflight and state.rob_stall_fraction > rob_gate:
                        state.l1d_inflight_misses = in_flight(t)
                    eff = effective(state)
                else:
                    eff = threshold.value
                record = TrainingRecord(indexes, tuple(active))
                if total > eff:
                    policy.permits += 1
                else:
                    pgc.discarded += 1
                    on_discarded(target >> LS, record)
                    continue
            if same_translation:
                # 4KB-cross within a 2MB page: translation already in hand
                paddr = tr_base | (target & tr_off_mask)
                trans_lat = 0.0
            else:
                tr = dtlb_lookup(target, speculative=True)
                trans_lat = dtlb_lat_f
                if tr is None:
                    tr = stlb_lookup(target, speculative=True)
                    if tr is not None:
                        trans_lat += stlb_lat
                if tr is None:
                    if requires_hit:
                        pgc.discarded += 1
                        pgc.discarded_no_translation += 1
                        on_discarded(target >> LS, record)
                        continue
                    walk = walk_fn(target, t + trans_lat, speculative=True)
                    trans_lat += walk.latency
                    tr = walk.translation
                    stlb_insert(tr, from_prefetch=True)
                    dtlb_insert(tr, from_prefetch=True)
                paddr = tr.physical(target)
            pgc.issued += 1
            prefetch_l1d(paddr, t + trans_lat, pcb=True)
            on_issued(paddr >> LS, record)

    return dispatch


def _raise_if_truncated(engine: CoreEngine, packed: PackedTrace, measuring: bool,
                        warm_limit: int, sim_limit: int) -> None:
    if not measuring:
        raise ValueError(
            f"workload {packed.name!r} ended after {engine.instructions} instructions, "
            f"before the {warm_limit}-instruction warm-up completed"
        )
    if engine.measured_instructions < sim_limit:
        raise ValueError(
            f"workload {packed.name!r} ended after {engine.instructions} instructions, "
            f"truncating the measured region to "
            f"{engine.measured_instructions} of the requested "
            f"{sim_limit} instructions"
        )


def _drive_stepwise(engine: CoreEngine, packed: PackedTrace, warm_limit: int,
                    sim_limit: int) -> float:
    """Packed records through the full step() — used when a probe is attached."""
    step = engine.step
    measuring = False
    wall_start = perf_counter()
    for pc, vaddr, flags, gap in packed.records():
        step(pc, vaddr, flags, gap)
        if not measuring and engine.instructions >= warm_limit:
            engine.begin_measurement()
            measuring = True
        if measuring and engine.measured_instructions >= sim_limit:
            break
    wall_seconds = perf_counter() - wall_start
    _raise_if_truncated(engine, packed, measuring, warm_limit, sim_limit)
    return wall_seconds


def drive_packed(engine: CoreEngine, packed: PackedTrace, config) -> float:
    """Feed a packed trace through a built engine (warm-up + measured region).

    Returns wall-clock seconds spent, like :func:`repro.cpu.simulator.drive`;
    raises the same :class:`ValueError` on an incomplete warm-up or a
    truncated measured region.  Behaviour (every statistic, every timestamp)
    is identical to driving the same records through ``engine.step``.
    """
    if engine.probe is not None:
        # profiled run: fusion would bypass the probe's timed seams
        _DRIVES.inc(mode="stepwise")
        return _drive_stepwise(engine, packed,
                               config.warmup_instructions,
                               config.sim_instructions)
    _DRIVES.inc(mode="fused")
    return _drive_fused(engine, packed, config)


def _drive_fused(engine: CoreEngine, packed: PackedTrace, config) -> float:
    """The fused record-at-a-time kernel (no mode accounting of its own).

    Shared by :func:`drive_packed` and — for event records and ineligible
    engines — :func:`repro.cpu.fastpath_vec.drive_packed_vec`.
    """
    warm_limit = config.warmup_instructions
    sim_limit = config.sim_instructions

    # ---- loop-invariant hoists ------------------------------------------
    end_epoch = engine._end_epoch
    h = engine.hierarchy
    l1d = h.l1d
    l1i = h.l1i
    l1d_sets, l1d_mask = l1d._sets, l1d._set_mask
    l1i_sets, l1i_mask = l1i._sets, l1i._set_mask
    l1d_stats, l1d_demand = l1d.stats, l1d.demand_stats
    l1i_stats, l1i_demand = l1i.stats, l1i.demand_stats
    l1d_pol, l1i_pol = l1d._policy, l1i._policy
    l1d_fused = _lru_fusible(l1d)
    l1i_fused = _lru_fusible(l1i)
    l1d_listener, l1i_listener = l1d.listener, l1i.listener
    l1d_lat, l1i_lat = l1d.latency, l1i.latency
    l1d_lat_f, l1i_lat_f = float(l1d_lat), float(l1i_lat)
    dtlb, itlb = engine.dtlb, engine.itlb
    dtlb_sets, dtlb_mask, dtlb_stats = dtlb._sets, dtlb._set_mask, dtlb.stats
    itlb_sets, itlb_mask, itlb_stats = itlb._sets, itlb._set_mask, itlb.stats
    dtlb_lat_f = float(dtlb.latency)
    itlb_lat = itlb.latency
    itlb_lat_f = float(itlb_lat)
    translate_data = engine._translate_data
    translate_instr = engine._translate_instruction
    mem_load, mem_store, mem_ifetch = engine._mem_load, engine._mem_store, engine._mem_ifetch
    pf_on_access = engine._pf_on_access
    dispatch_pf = _make_fused_dispatch(engine) or engine._dispatch_prefetches
    fctx = engine.fctx
    fctx_seen = fctx._seen_pages
    fctx_cap = fctx._seen_cap
    fctx_ph = fctx.pc_history
    fctx_vh = fctx.va_history
    bp = engine.branch_predictor
    bp_predict = bp.predict_and_train
    # perceptron fusion needs the default geometric history set (the index
    # hashes below are unrolled for exactly those five slice lengths)
    bp_fused = (type(bp) is HashedPerceptronBranchPredictor
                and bp.history_lengths == DEFAULT_HISTORY_LENGTHS)
    if bp_fused:
        bt0, bt1, bt2, bt3, bt4 = bp.tables
        bp_imask = bp.index_mask
        bp_thr = bp.threshold
        bp_lo, bp_hi = bp.weight_lo, bp.weight_hi
    policy_on_demand_miss = engine.policy.on_demand_miss
    pf_on_fill = engine.prefetcher.on_fill
    l2pf = engine.l2_prefetcher
    prefetch_l2 = h.prefetch_l2
    l1i_pf = engine.l1i_prefetcher
    l1i_pf_on_fetch = l1i_pf.on_fetch
    l1i_nl_fused = type(l1i_pf) is NextLinePrefetcher and l1i_pf.degree == 2
    prefetch_l1i = h.prefetch_l1i
    fetch_cpi = engine._fetch_cpi
    retire_cpi = engine._retire_cpi
    rob_entries = engine._rob
    mispredict_penalty = engine._mispredict_penalty
    rob_q = engine._rob_q
    rob_popleft = rob_q.popleft
    rob_append = rob_q.append
    LS = LINE_SHIFT
    S4, S2 = PAGE_4K_SHIFT, PAGE_2M_SHIFT
    F_MEM = LOAD | STORE

    # ---- hoisted timeline scalars ---------------------------------------
    instructions = engine.instructions
    fetch_t = engine.fetch_t
    retire_t = engine.retire_t
    rob_head_retire = engine._rob_head_retire
    rob_block_end = engine._rob_block_end
    rob_stall = engine.rob_stall_cycles
    last_load_complete = engine._last_load_complete
    last_iline = engine._last_iline
    next_epoch = engine._next_epoch
    measuring = False
    measure_start = 0
    #: single per-record boundary compare: the warm-up limit until measurement
    #: begins, then the absolute stop point (measure_start + sim_limit)
    threshold = warm_limit

    wall_start = perf_counter()
    for pc, vaddr, flag, gap in zip(packed.pcs, packed.vaddrs, packed.flags, packed.gaps):
        instructions = n = instructions + 1 + gap

        # front end
        fetch_t += (1 + gap) * fetch_cpi
        iline = pc >> LS
        if iline != last_iline:
            last_iline = iline
            vpn = pc >> S4
            entry = itlb_sets[vpn & itlb_mask].get((vpn, S4))
            shift = S4
            if entry is None:
                vpn = pc >> S2
                entry = itlb_sets[vpn & itlb_mask].get((vpn, S2))
                shift = S2
            if entry is not None:
                # fused iTLB hit (== Tlb.lookup's hit arm)
                itlb._tick = t_k = itlb._tick + 1
                itlb_stats.accesses += 1
                itlb_stats.hits += 1
                entry[1] = t_k
                if entry[2]:
                    itlb.prefetch_hits += 1
                    entry[2] = False
                ilat = itlb_lat_f
                ibase = (entry[0] << shift) | (pc & ((1 << shift) - 1))
                itr_shift = shift
            else:
                # side-effect-free probe missed: the full path records it
                ilat, itr = translate_instr(pc, fetch_t)
                ibase = itr.physical(pc)
                itr_shift = itr.page_shift
            t_i = fetch_t + ilat
            fline = ibase >> LS
            iset = l1i_sets[fline & l1i_mask]
            blk = iset.get(fline)
            if blk is not None and l1i_fused:
                # fused L1I hit (== Cache.lookup + ifetch's hit arm)
                l1i_stats.accesses += 1
                l1i_stats.hits += 1
                l1i_demand.accesses += 1
                l1i_demand.hits += 1
                l1i_pol._tick = p_k = l1i_pol._tick + 1
                blk.lru = p_k
                del iset[fline]
                iset[fline] = blk
                if blk.prefetched and blk.hits == 0:
                    l1i.prefetch_useful += 1
                    if blk.pcb:
                        l1i.pgc_useful += 1
                        if l1i_listener is not None:
                            l1i_listener.on_pcb_hit(fline)
                blk.hits += 1
                flat = blk.ready - t_i
                if flat < l1i_lat_f:
                    flat = l1i_lat_f
            else:
                flat = mem_ifetch(ibase, t_i)
            penalty = (ilat - itlb_lat) + (flat - l1i_lat)
            if penalty > 0:
                fetch_t += penalty
            if l1i_nl_fused:
                # fused next-line I-prefetcher (== on_fetch, degree 2);
                # prefetch_l1i returns without side effects on a resident
                # line, so probing here skips the call entirely
                if fline != l1i_pf._last_line:
                    l1i_pf._last_line = fline
                    nline = fline + 1
                    if l1i_sets[nline & l1i_mask].get(nline) is None:
                        prefetch_l1i(nline << LS, fetch_t)
                    nline = fline + 2
                    if l1i_sets[nline & l1i_mask].get(nline) is None:
                        prefetch_l1i(nline << LS, fetch_t)
            else:
                for target_line in l1i_pf_on_fetch(fline):
                    prefetch_l1i(target_line << LS, fetch_t)
            extra_lines = (gap * 4) >> LS
            if extra_lines:
                page_mask = (1 << itr_shift) - 1
                frame_left = (page_mask - (ibase & page_mask)) >> LS
                if extra_lines > frame_left:
                    extra_lines = frame_left
                if extra_lines > 8:
                    extra_lines = 8
                for k in range(1, extra_lines + 1):
                    flat = mem_ifetch(ibase + (k << LS), fetch_t)
                    if flat > l1i_lat:
                        fetch_t += flat - l1i_lat

        # dispatch: ROB occupancy constraint
        limit = n - rob_entries
        while rob_q and rob_q[0][0] <= limit:
            rob_head_retire = rob_popleft()[1]
        dispatch = fetch_t
        if rob_head_retire > dispatch:
            blocked_from = dispatch if dispatch > rob_block_end else rob_block_end
            if rob_head_retire > blocked_from:
                rob_stall += rob_head_retire - blocked_from
                rob_block_end = rob_head_retire
            dispatch = rob_head_retire
        if flag & DEPENDS and last_load_complete > dispatch:
            dispatch = last_load_complete

        # memory access
        if flag & F_MEM:
            vpn = vaddr >> S4
            entry = dtlb_sets[vpn & dtlb_mask].get((vpn, S4))
            shift = S4
            if entry is None:
                vpn = vaddr >> S2
                entry = dtlb_sets[vpn & dtlb_mask].get((vpn, S2))
                shift = S2
            if entry is not None:
                # fused dTLB hit; Translation built lazily below
                dtlb._tick = t_k = dtlb._tick + 1
                dtlb_stats.accesses += 1
                dtlb_stats.hits += 1
                entry[1] = t_k
                if entry[2]:
                    dtlb.prefetch_hits += 1
                    entry[2] = False
                tr = None
                tr_vpn, tr_pfn, tr_shift = vpn, entry[0], shift
                paddr = (tr_pfn << shift) | (vaddr & ((1 << shift) - 1))
                t_mem = dispatch + dtlb_lat_f
            else:
                trans_lat, tr = translate_data(vaddr, dispatch)
                paddr = tr.physical(vaddr)
                t_mem = dispatch + trans_lat
            line = paddr >> LS
            dset = l1d_sets[line & l1d_mask]
            blk = dset.get(line)
            if flag & LOAD:
                if blk is not None and l1d_fused:
                    # fused L1D load hit (== Cache.lookup + load's hit arm)
                    l1d_stats.accesses += 1
                    l1d_stats.hits += 1
                    l1d_demand.accesses += 1
                    l1d_demand.hits += 1
                    l1d_pol._tick = p_k = l1d_pol._tick + 1
                    blk.lru = p_k
                    del dset[line]
                    dset[line] = blk
                    if blk.prefetched and blk.hits == 0:
                        l1d.prefetch_useful += 1
                        if blk.pcb:
                            l1d.pgc_useful += 1
                            if l1d_listener is not None:
                                l1d_listener.on_pcb_hit(line)
                    blk.hits += 1
                    if blk.ready > t_mem + l1d_lat:
                        if blk.prefetched and blk.hits == 1:
                            l1d.prefetch_late += 1
                        mlat = blk.ready - t_mem
                    else:
                        mlat = l1d_lat_f
                    complete = t_mem + mlat
                    last_load_complete = complete
                    hit = True
                else:
                    mlat, hit = mem_load(paddr, t_mem)
                    complete = t_mem + mlat
                    last_load_complete = complete
                    if not hit:
                        policy_on_demand_miss(vaddr >> LS)
                        pf_on_fill(vaddr, mlat)
                        if l2pf is not None:
                            for l2line in l2pf.on_access(paddr >> LS, t_mem):
                                prefetch_l2(l2line << LS, t_mem)
            else:
                if blk is not None and l1d_fused:
                    # fused L1D store hit (== Cache.lookup + store's hit arm)
                    l1d_stats.accesses += 1
                    l1d_stats.hits += 1
                    l1d_demand.accesses += 1
                    l1d_demand.hits += 1
                    l1d_pol._tick = p_k = l1d_pol._tick + 1
                    blk.lru = p_k
                    del dset[line]
                    dset[line] = blk
                    if blk.prefetched and blk.hits == 0:
                        l1d.prefetch_useful += 1
                        if blk.pcb:
                            l1d.pgc_useful += 1
                            if l1d_listener is not None:
                                l1d_listener.on_pcb_hit(line)
                    blk.hits += 1
                    blk.dirty = True
                    complete = t_mem + l1d_lat_f
                else:
                    complete = t_mem + mem_store(paddr, t_mem)
                hit = True
            # fused FeatureContext.update (move-to-end seen-page LRU)
            fctx._seen_tick = f_tick = fctx._seen_tick + 1
            page = vaddr >> S4
            if page in fctx_seen:
                fctx.first_page_access = False
                del fctx_seen[page]
            else:
                fctx.first_page_access = True
                if len(fctx_seen) >= fctx_cap:
                    del fctx_seen[next(iter(fctx_seen))]
            fctx_seen[page] = f_tick
            fctx_ph[2] = fctx_ph[1]
            fctx_ph[1] = fctx_ph[0]
            fctx_ph[0] = pc
            fctx_vh[2] = fctx_vh[1]
            fctx_vh[1] = fctx_vh[0]
            fctx_vh[0] = vaddr
            fctx.last_pc = pc
            fctx.last_vaddr = vaddr
            requests = pf_on_access(pc, vaddr, hit, t_mem)
            if requests:
                if tr is None:
                    tr = Translation(tr_vpn, tr_pfn, tr_shift)
                dispatch_pf(requests, vaddr, tr, t_mem, pc)
        else:
            complete = dispatch + 1.0

        # branch resolution
        mispredicted = flag & MISPREDICT
        if flag & BRANCH:
            if bp_fused:
                # fused hashed perceptron (== predict_and_train, unrolled
                # for the default (0, 4, 8, 16, 32) history slices)
                bpc = pc + 0x3C
                taken = (flag & TAKEN) != 0
                ghr = bp.ghr
                i0 = (bpc ^ (bpc >> 13)) & bp_imask
                hx = bpc ^ ((ghr & 0xF) * 0x9E3779B1)
                i1 = (hx ^ (hx >> 13)) & bp_imask
                hx = bpc ^ ((ghr & 0xFF) * 0x9E3779B1)
                i2 = (hx ^ (hx >> 13)) & bp_imask
                hx = bpc ^ ((ghr & 0xFFFF) * 0x9E3779B1)
                i3 = (hx ^ (hx >> 13)) & bp_imask
                hx = bpc ^ ((ghr & 0xFFFFFFFF) * 0x9E3779B1)
                i4 = (hx ^ (hx >> 13)) & bp_imask
                total = bt0[i0] + bt1[i1] + bt2[i2] + bt3[i3] + bt4[i4]
                bp.predictions += 1
                correct = (total >= 0) == taken
                if not correct:
                    bp.mispredictions += 1
                    mispredicted = True
                if not correct or -bp_thr <= total <= bp_thr:
                    if taken:
                        w = bt0[i0]
                        if w < bp_hi:
                            bt0[i0] = w + 1
                        w = bt1[i1]
                        if w < bp_hi:
                            bt1[i1] = w + 1
                        w = bt2[i2]
                        if w < bp_hi:
                            bt2[i2] = w + 1
                        w = bt3[i3]
                        if w < bp_hi:
                            bt3[i3] = w + 1
                        w = bt4[i4]
                        if w < bp_hi:
                            bt4[i4] = w + 1
                    else:
                        w = bt0[i0]
                        if w > bp_lo:
                            bt0[i0] = w - 1
                        w = bt1[i1]
                        if w > bp_lo:
                            bt1[i1] = w - 1
                        w = bt2[i2]
                        if w > bp_lo:
                            bt2[i2] = w - 1
                        w = bt3[i3]
                        if w > bp_lo:
                            bt3[i3] = w - 1
                        w = bt4[i4]
                        if w > bp_lo:
                            bt4[i4] = w - 1
                bp.ghr = ((ghr << 1) | taken) & 0xFFFFFFFFFFFFFFFF
            else:
                correct = bp_predict(pc + 0x3C, bool(flag & TAKEN))
                if not correct:
                    mispredicted = True
        if mispredicted:
            resolve_at = complete if flag & DEPENDS else dispatch + 8.0
            resolve = resolve_at + mispredict_penalty
            if resolve > fetch_t:
                fetch_t = resolve

        # in-order retirement
        retire = retire_t + (1 + gap) * retire_cpi
        if complete > retire:
            retire = complete
        retire_t = retire
        rob_append((n, retire))

        if n >= next_epoch:
            # epoch rollover, inline (== the tail of step()): flush the
            # hoisted scalars the epoch hooks may read, fire _end_epoch
            # (threshold/policy on_epoch feed, epoch_listener tick), then
            # reload in case a listener advanced the engine
            engine.instructions = instructions
            engine.fetch_t = fetch_t
            engine.retire_t = retire_t
            engine._rob_head_retire = rob_head_retire
            engine._rob_block_end = rob_block_end
            engine.rob_stall_cycles = rob_stall
            engine._last_load_complete = last_load_complete
            engine._last_iline = last_iline
            end_epoch()
            instructions = engine.instructions
            fetch_t = engine.fetch_t
            retire_t = engine.retire_t
            rob_head_retire = engine._rob_head_retire
            rob_block_end = engine._rob_block_end
            rob_stall = engine.rob_stall_cycles
            last_load_complete = engine._last_load_complete
            last_iline = engine._last_iline
            next_epoch = engine._next_epoch

        # warm-up / measurement boundary (same ordering as drive())
        if instructions >= threshold:
            if measuring:
                break
            engine.instructions = instructions
            engine.fetch_t = fetch_t
            engine.retire_t = retire_t
            engine._rob_head_retire = rob_head_retire
            engine._rob_block_end = rob_block_end
            engine.rob_stall_cycles = rob_stall
            engine._last_load_complete = last_load_complete
            engine._last_iline = last_iline
            engine.begin_measurement()
            measuring = True
            measure_start = instructions
            threshold = measure_start + sim_limit
            if instructions >= threshold:
                break
    wall_seconds = perf_counter() - wall_start

    engine.instructions = instructions
    engine.fetch_t = fetch_t
    engine.retire_t = retire_t
    engine._rob_head_retire = rob_head_retire
    engine._rob_block_end = rob_block_end
    engine.rob_stall_cycles = rob_stall
    engine._last_load_complete = last_load_complete
    engine._last_iline = last_iline
    _raise_if_truncated(engine, packed, measuring, warm_limit, sim_limit)
    return wall_seconds
