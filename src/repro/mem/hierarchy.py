"""Three-level cache hierarchy with DRAM, matching Table IV.

Private L1I/L1D/L2C per core; the LLC and DRAM may be shared between
hierarchies (8-core mixes).  Entry points:

* :meth:`load` / :meth:`store` — demand data accesses from the core;
* :meth:`ifetch` — instruction fetches (L1I path);
* :meth:`prefetch_l1d` — L1D prefetcher fills (optionally PCB-tagged);
* :meth:`prefetch_l2` — L2C prefetcher fills (Section V-B7 study);
* :meth:`ptw_read` — page-table-walker PTE reads (L2C -> LLC -> DRAM).

All methods take the current core time ``t`` and return a latency; fills are
annotated with their ready time so that late prefetches are charged the
residual wait.
"""

from __future__ import annotations

from heapq import heappush
from typing import Optional

from repro.mem.cache import Cache
from repro.mem.dram import Dram
from repro.params import SystemParams
from repro.stats import HitMissStats
from repro.vm.address import LINE_SHIFT


class MemoryHierarchy:
    """One core's view of the cache hierarchy."""

    def __init__(
        self,
        params: SystemParams,
        shared_llc: Optional[Cache] = None,
        shared_dram: Optional[Dram] = None,
    ):
        self.params = params
        self.dram = shared_dram if shared_dram is not None else Dram(params.dram)
        if shared_llc is not None:
            self.llc = shared_llc
        else:
            self.llc = Cache(params.llc, writeback=self.dram.write)
        self.l2c = Cache(params.l2c, writeback=self._writeback_to_llc)
        self.l1d = Cache(params.l1d, writeback=self._writeback_to_l2)
        self.l1i = Cache(params.l1i, writeback=self._writeback_to_l2)
        #: this core's demand traffic at the (possibly shared) LLC — the
        #: shared cache's own stats aggregate all cores, which must not feed
        #: a single core's epoch heuristics or per-core MPKIs
        self.llc_core_stats = HitMissStats()

    # -- writeback chain ---------------------------------------------------

    def _writeback_to_l2(self, line: int, t: float) -> None:
        block = self.l2c.probe(line)
        if block is None:
            self.l2c.fill(line, t, t)
            block = self.l2c.probe(line)
        if block is not None:
            block.dirty = True

    def _writeback_to_llc(self, line: int, t: float) -> None:
        block = self.llc.probe(line)
        if block is None:
            self.llc.fill(line, t, t)
            block = self.llc.probe(line)
        if block is not None:
            block.dirty = True

    # -- lower-level read path ----------------------------------------------

    def _read_llc(self, line: int, t: float, demand: bool) -> float:
        """LLC lookup at time t; returns cycles until data is available."""
        lat = self.llc.latency
        block = self.llc.lookup(line, t, demand=demand)
        if demand:
            self.llc_core_stats.record(block is not None)
        if block is not None:
            return max(lat, block.ready - t)
        # inlined Cache.outstanding_ready (hot): merge into an in-flight
        # fill when one exists, dropping stale completed entries
        out = self.llc._outstanding
        merged = out.get(line)
        if merged is not None:
            if merged > t:
                # merging into an almost-complete fill still costs a tag lookup
                return max(float(lat), merged - t)
            del out[line]
        # inlined register_miss + guarded mshr_delay (the call is a pure
        # no-op returning 0.0 unless the heap has drainable or full entries)
        llc = self.llc
        heap = llc._mshr_heap
        stall = (llc.mshr_delay(t)
                 if heap and (heap[0][0] <= t or len(heap) >= llc._mshr_entries)
                 else 0.0)
        issue = t + lat + stall
        dram_lat = self.dram.read(line, issue)
        ready = issue + dram_lat
        out[line] = ready
        heappush(heap, (ready, line))
        llc.fill(line, t, ready)
        return ready - t

    def _read_l2(self, line: int, t: float, demand: bool) -> float:
        """L2C lookup at time t; misses recurse into the LLC."""
        lat = self.l2c.latency
        block = self.l2c.lookup(line, t, demand=demand)
        if block is not None:
            return max(lat, block.ready - t)
        out = self.l2c._outstanding
        merged = out.get(line)
        if merged is not None:
            if merged > t:
                return max(float(lat), merged - t)
            del out[line]
        l2c = self.l2c
        heap = l2c._mshr_heap
        stall = (l2c.mshr_delay(t)
                 if heap and (heap[0][0] <= t or len(heap) >= l2c._mshr_entries)
                 else 0.0)
        issue = t + lat + stall
        lower = self._read_llc(line, issue, demand)
        ready = issue + lower
        out[line] = ready
        heappush(heap, (ready, line))
        l2c.fill(line, t, ready)
        return ready - t

    # -- demand data path ----------------------------------------------------

    def load(self, paddr: int, t: float) -> tuple[float, bool]:
        """Demand load.  Returns (latency, l1d_hit)."""
        line = paddr >> LINE_SHIFT
        lat = self.l1d.latency
        block = self.l1d.lookup(line, t, demand=True)
        if block is not None:
            if block.ready > t + lat:
                if block.prefetched and block.hits == 1:
                    self.l1d.prefetch_late += 1
                return block.ready - t, True
            return float(lat), True
        out = self.l1d._outstanding
        merged = out.get(line)
        if merged is not None:
            if merged > t:
                return max(float(lat), merged - t), False
            del out[line]
        l1d = self.l1d
        heap = l1d._mshr_heap
        stall = (l1d.mshr_delay(t)
                 if heap and (heap[0][0] <= t or len(heap) >= l1d._mshr_entries)
                 else 0.0)
        issue = t + lat + stall
        lower = self._read_l2(line, issue, demand=True)
        ready = issue + lower
        out[line] = ready
        heappush(heap, (ready, line))
        l1d.fill(line, t, ready)
        return ready - t, False

    def store(self, paddr: int, t: float) -> float:
        """Demand store (write-allocate; the core does not wait on the fill)."""
        line = paddr >> LINE_SHIFT
        lat = self.l1d.latency
        block = self.l1d.lookup(line, t, demand=True)
        if block is None:
            merged = self.l1d.outstanding_ready(line, t)
            if merged is None:
                stall = self.l1d.mshr_delay(t)
                issue = t + lat + stall
                lower = self._read_l2(line, issue, demand=True)
                ready = issue + lower
                self.l1d.register_miss(line, t, ready)
                self.l1d.fill(line, t, ready)
            block = self.l1d.probe(line)
        if block is not None:
            block.dirty = True
        return float(lat)

    # -- instruction path ------------------------------------------------------

    def ifetch(self, paddr: int, t: float) -> float:
        """Instruction-line fetch through the L1I."""
        line = paddr >> LINE_SHIFT
        lat = self.l1i.latency
        block = self.l1i.lookup(line, t, demand=True)
        if block is not None:
            return max(float(lat), block.ready - t)
        out = self.l1i._outstanding
        merged = out.get(line)
        if merged is not None:
            if merged > t:
                return max(float(lat), merged - t)
            del out[line]
        l1i = self.l1i
        heap = l1i._mshr_heap
        stall = (l1i.mshr_delay(t)
                 if heap and (heap[0][0] <= t or len(heap) >= l1i._mshr_entries)
                 else 0.0)
        issue = t + lat + stall
        lower = self._read_l2(line, issue, demand=True)
        ready = issue + lower
        out[line] = ready
        heappush(heap, (ready, line))
        l1i.fill(line, t, ready)
        return ready - t

    def prefetch_l1i(self, paddr: int, t: float) -> None:
        """Next-line style instruction prefetch fill."""
        line = paddr >> LINE_SHIFT
        l1i = self.l1i
        if l1i._sets[line & l1i._set_mask].get(line) is not None:
            return
        out = l1i._outstanding
        merged = out.get(line)
        if merged is not None:
            if merged > t:
                return
            del out[line]
        heap = l1i._mshr_heap
        stall = (l1i.mshr_delay(t)
                 if heap and (heap[0][0] <= t or len(heap) >= l1i._mshr_entries)
                 else 0.0)
        issue = t + l1i.latency + stall
        lower = self._read_l2(line, issue, demand=False)
        ready = issue + lower
        out[line] = ready
        heappush(heap, (ready, line))
        l1i.fill(line, t, ready, prefetched=True)

    # -- prefetch paths ---------------------------------------------------------

    def prefetch_l1d(self, paddr: int, t: float, *, pcb: bool = False) -> Optional[float]:
        """L1D prefetch fill; returns the fill-ready time, or None if dropped
        (already resident / already in flight)."""
        line = paddr >> LINE_SHIFT
        l1d = self.l1d
        if l1d._sets[line & l1d._set_mask].get(line) is not None:
            return None
        out = l1d._outstanding
        merged = out.get(line)
        if merged is not None:
            if merged > t:
                return None
            del out[line]
        heap = l1d._mshr_heap
        stall = (l1d.mshr_delay(t)
                 if heap and (heap[0][0] <= t or len(heap) >= l1d._mshr_entries)
                 else 0.0)
        issue = t + l1d.latency + stall
        lower = self._read_l2(line, issue, demand=False)
        ready = issue + lower
        out[line] = ready
        heappush(heap, (ready, line))
        l1d.fill(line, t, ready, prefetched=True, pcb=pcb)
        return ready

    def prefetch_l2(self, paddr: int, t: float) -> Optional[float]:
        """L2C prefetch fill (used by the Section V-B7 L2 prefetcher study)."""
        line = paddr >> LINE_SHIFT
        if self.l2c.probe(line) is not None:
            return None
        if self.l2c.outstanding_ready(line, t) is not None:
            return None
        stall = self.l2c.mshr_delay(t)
        issue = t + self.l2c.latency + stall
        lower = self._read_llc(line, issue, demand=False)
        ready = issue + lower
        self.l2c.register_miss(line, t, ready)
        self.l2c.fill(line, t, ready, prefetched=True)
        return ready

    # -- page-walk path -----------------------------------------------------------

    def ptw_read(self, pte_paddr: int, t: float, speculative: bool) -> float:
        """PTE read issued by the page walker (L2C -> LLC -> DRAM)."""
        return self._read_l2(pte_paddr >> LINE_SHIFT, t, demand=False)

    # -- bookkeeping -----------------------------------------------------------

    def snapshot(self) -> None:
        """Mark the warm-up boundary across every level and DRAM."""
        for cache in (self.l1i, self.l1d, self.l2c, self.llc):
            cache.snapshot()
        self.llc_core_stats.snapshot()
        self.dram.snapshot()

    def finalize(self) -> None:
        """Settle end-of-run accounting (resident unused prefetches)."""
        for cache in (self.l1i, self.l1d, self.l2c, self.llc):
            cache.finalize()
