"""Latency + bandwidth DRAM model.

Each access occupies its channel for ``transfer_cycles``; an access arriving
while the channel is busy queues behind it.  This is what makes *useless*
page-cross prefetch traffic (speculative walk reads + the prefetch itself)
cost real cycles: it delays subsequent demand misses, the mechanism behind
the paper's "up to 5 useless memory accesses" argument.
"""

from __future__ import annotations

from repro.params import DramParams


class Dram:
    """Simple multi-channel DRAM, optionally with open-page row buffers."""

    def __init__(self, params: DramParams):
        self.params = params
        self._next_free = [0.0] * params.channels
        self._channel_mask = params.channels - 1
        if params.channels & self._channel_mask:
            raise ValueError("channel count must be a power of two")
        if params.banks_per_channel & (params.banks_per_channel - 1):
            raise ValueError("banks per channel must be a power of two")
        self._bank_mask = params.banks_per_channel - 1
        #: open row per (channel, bank); -1 = closed
        self._open_rows = [
            [-1] * params.banks_per_channel for _ in range(params.channels)
        ]
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self._snap = (0, 0)
        # hot-path constants (read() runs once per LLC miss)
        self._transfer = params.transfer_cycles
        self._row_buffer = params.row_buffer
        self._lines_per_row = params.lines_per_row
        self._access_lat_f = float(params.access_latency)
        self._row_hit_lat_f = float(params.row_hit_latency)

    def _channel(self, line: int) -> int:
        return line & self._channel_mask

    def _access_latency(self, line: int, ch: int) -> float:
        p = self.params
        if not p.row_buffer:
            return float(p.access_latency)
        # row-interleaved bank mapping: a row lives in one bank, consecutive
        # rows spread across banks
        row = line // p.lines_per_row
        bank = row & self._bank_mask
        if self._open_rows[ch][bank] == row:
            self.row_hits += 1
            return float(p.row_hit_latency)
        self.row_misses += 1
        self._open_rows[ch][bank] = row
        return float(p.access_latency)

    def read(self, line: int, t: float) -> float:
        """Issue a read; returns its latency including queueing delay."""
        self.reads += 1
        ch = line & self._channel_mask
        nf = self._next_free
        start = nf[ch]
        if t > start:
            start = t
        nf[ch] = start + self._transfer
        # inlined _access_latency (hot)
        if not self._row_buffer:
            return (start - t) + self._access_lat_f
        row = line // self._lines_per_row
        bank = row & self._bank_mask
        rows = self._open_rows[ch]
        if rows[bank] == row:
            self.row_hits += 1
            return (start - t) + self._row_hit_lat_f
        self.row_misses += 1
        rows[bank] = row
        return (start - t) + self._access_lat_f

    def write(self, line: int, t: float) -> None:
        """Issue a writeback; consumes bandwidth but nobody waits on it."""
        self.writes += 1
        ch = self._channel(line)
        start = max(t, self._next_free[ch])
        self._next_free[ch] = start + self.params.transfer_cycles
        self._access_latency(line, ch)

    def snapshot(self) -> None:
        """Mark the warm-up boundary for traffic counters."""
        self._snap = (self.reads, self.writes)

    @property
    def measured_reads(self) -> int:
        """Reads since the warm-up snapshot."""
        return self.reads - self._snap[0]

    @property
    def measured_writes(self) -> int:
        """Writes since the warm-up snapshot."""
        return self.writes - self._snap[1]
