"""Memory substrate: caches, MSHRs, DRAM, and the per-core hierarchy."""

from repro.mem.cache import Block, Cache
from repro.mem.dram import Dram
from repro.mem.hierarchy import MemoryHierarchy

__all__ = ["Block", "Cache", "Dram", "MemoryHierarchy"]
