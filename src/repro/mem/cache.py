"""Set-associative cache with LRU replacement, MSHRs, and fill timestamps.

The cache is *functional + timing-annotated*: it tracks which lines are
resident (so hits/misses and pollution are modelled exactly) and annotates
each block with the cycle its fill completes (so late prefetches pay the
residual latency instead of counting as full hits).

L1D blocks additionally carry the paper's **Page Cross Bit (PCB)** plus a
per-block hit counter, which drive the MOKA training events of Figure 7:
a demand hit on a PCB block fires ``listener.on_pcb_hit`` and the eviction
of a never-hit PCB block fires ``listener.on_pcb_evict_unused``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Protocol

from repro.mem.replacement import LruPolicy, make_replacement_policy
from repro.params import CacheParams
from repro.stats import HitMissStats
from repro.vm.address import LINE_SHIFT


class EvictionListener(Protocol):
    """Hooks the page-cross filter registers on the L1D."""

    def on_pcb_hit(self, phys_line: int) -> None:
        """First demand hit on a page-cross-prefetched block."""
        ...

    def on_pcb_evict_unused(self, phys_line: int) -> None:
        """Eviction of a page-cross-prefetched block that never hit."""
        ...


class Block:
    """One cache block's metadata."""

    __slots__ = ("tag", "lru", "ready", "dirty", "prefetched", "pcb", "hits")

    def __init__(self, tag: int, lru: int, ready: float, prefetched: bool, pcb: bool):
        self.tag = tag
        self.lru = lru
        self.ready = ready
        self.dirty = False
        self.prefetched = prefetched
        self.pcb = pcb
        self.hits = 0


class Cache:
    """One cache level."""

    def __init__(
        self,
        params: CacheParams,
        writeback: Optional[Callable[[int, float], None]] = None,
    ):
        self.params = params
        self.name = params.name
        self.latency = params.latency
        self._set_mask = params.sets - 1
        self._ways = params.ways
        self._sets: list[dict[int, Block]] = [dict() for _ in range(params.sets)]
        self._policy = make_replacement_policy(params.replacement)
        # LRU fast path: on_hit/on_fill collapse to a tick bump plus a field
        # store, so the two hottest methods inline them instead of paying a
        # Python call per access.  pa-lru inherits LruPolicy.on_hit unchanged,
        # so hit promotion fuses for it too; its on_fill differs and doesn't.
        self._fuse_hit = (isinstance(self._policy, LruPolicy)
                          and type(self._policy).on_hit is LruPolicy.on_hit)
        self._fuse_fill = type(self._policy) is LruPolicy
        # Move-to-end discipline (plain LRU only): every recency touch
        # reinserts the block's key, so dict iteration order is ascending
        # recency and the victim is simply the first key — no O(ways) scan.
        # Ticks are unique and monotonic, so the first key is exactly the
        # min-lru block the scan would pick.  Every fused touch point (here
        # and the replicated hit arms in repro.cpu.fastpath) maintains it.
        self._fuse_order = self._fuse_fill
        #: line -> fill-ready time for outstanding misses; the dict is keyed
        #: by line, so re-registered lines replace their stale entry instead
        #: of being double counted
        self._outstanding: dict[int, float] = {}
        #: min-heap of (ready, line); caps concurrent misses at mshr_entries
        self._mshr_heap: list[tuple[float, int]] = []
        self._mshr_entries = params.mshr_entries
        self._writeback = writeback
        self.listener: Optional[EvictionListener] = None
        self.stats = HitMissStats()
        self.demand_stats = HitMissStats()
        # prefetch usefulness accounting (all prefetches into this cache)
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        self.prefetch_useless = 0
        self.prefetch_late = 0
        # page-cross subset (meaningful for the L1D)
        self.pgc_fills = 0
        self.pgc_useful = 0
        self.pgc_useless = 0
        self._snap_pf = (0, 0, 0, 0, 0, 0, 0)

    # -- residency -------------------------------------------------------

    def _set_for(self, line: int) -> dict[int, Block]:
        return self._sets[line & self._set_mask]

    def probe(self, line: int) -> Optional[Block]:
        """Check residency without touching LRU state or statistics."""
        return self._sets[line & self._set_mask].get(line)

    def lookup(self, line: int, t: float, *, demand: bool = True) -> Optional[Block]:
        """Tag lookup; updates replacement state and statistics."""
        cset = self._sets[line & self._set_mask]
        block = cset.get(line)
        hit = block is not None
        stats = self.stats
        stats.accesses += 1
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
        if demand:
            dstats = self.demand_stats
            dstats.accesses += 1
            if hit:
                dstats.hits += 1
            else:
                dstats.misses += 1
        if hit:
            if self._fuse_hit:
                policy = self._policy
                policy._tick += 1
                block.lru = policy._tick
                del cset[line]
                cset[line] = block
            else:
                self._policy.on_hit(block)
            if demand:
                if block.prefetched and block.hits == 0:
                    self.prefetch_useful += 1
                    if block.pcb:
                        self.pgc_useful += 1
                        if self.listener is not None:
                            self.listener.on_pcb_hit(line)
                block.hits += 1
        return block

    def fill(self, line: int, t: float, ready: float, *, prefetched: bool = False, pcb: bool = False) -> None:
        """Install a line, evicting the policy's victim if the set is full."""
        cset = self._sets[line & self._set_mask]
        existing = cset.get(line)
        if existing is not None:
            # refill of a resident line (e.g. prefetch hit under demand): keep
            # the earlier ready time, never downgrade a demand block to a
            # prefetch block.
            if self._fuse_hit:
                policy = self._policy
                policy._tick += 1
                existing.lru = policy._tick
                del cset[line]
                cset[line] = existing
            else:
                self._policy.on_hit(existing)
            if ready < existing.ready:
                existing.ready = ready
            return
        if len(cset) >= self._ways:
            victim_line = (next(iter(cset)) if self._fuse_order
                           else self._policy.victim(cset))
            vblock = cset.pop(victim_line)
            # inlined _evict (hot)
            if vblock.prefetched and vblock.hits == 0:
                self.prefetch_useless += 1
                if vblock.pcb:
                    self.pgc_useless += 1
                    if self.listener is not None:
                        self.listener.on_pcb_evict_unused(victim_line)
            if vblock.dirty and self._writeback is not None:
                self._writeback(victim_line, t)
            # recycle the evicted Block object (fills evict in steady state,
            # so this avoids an allocation per fill)
            block = vblock
            block.tag = line
            block.ready = ready
            block.dirty = False
            block.prefetched = prefetched
            block.pcb = pcb
            block.hits = 0
        else:
            block = Block(line, 0, ready, prefetched, pcb)
        cset[line] = block
        if self._fuse_fill:
            policy = self._policy
            policy._tick += 1
            block.lru = policy._tick
        else:
            self._policy.on_fill(block, prefetched)
        if prefetched:
            self.prefetch_fills += 1
            if pcb:
                self.pgc_fills += 1

    def invalidate(self, line: int) -> None:
        """Drop the line if resident (no writeback, no statistics)."""
        self._set_for(line).pop(line, None)

    # -- miss timing -------------------------------------------------------

    def outstanding_ready(self, line: int, t: float) -> Optional[float]:
        """Fill-ready time when the line is already being fetched (MSHR merge)."""
        ready = self._outstanding.get(line)
        if ready is not None and ready > t:
            return ready
        if ready is not None:
            del self._outstanding[line]
        return None

    def mshr_delay(self, t: float) -> float:
        """Extra cycles a new miss waits for a free MSHR at time `t`."""
        heap = self._mshr_heap
        if heap and heap[0][0] <= t:
            out = self._outstanding
            pop = heapq.heappop
            while heap and heap[0][0] <= t:
                _, line = pop(heap)
                ready = out.get(line)
                if ready is not None and ready <= t:
                    del out[line]
        if len(heap) >= self._mshr_entries:
            # the drain above popped every entry <= t, so this is positive
            return heap[0][0] - t
        return 0.0

    def register_miss(self, line: int, t: float, ready: float) -> None:
        """Track an in-flight miss for merging and MSHR occupancy."""
        self._outstanding[line] = ready
        heapq.heappush(self._mshr_heap, (ready, line))

    def in_flight_misses(self, t: float) -> int:
        """Distinct lines with an incomplete miss in flight at time `t`.

        The pre-fix implementation reported the raw MSHR-heap length, which
        kept counting fills that had already completed (the heap is pruned
        lazily) and double counted re-registered lines — so the
        ``l1d_inflight_misses`` policy feature could drift far above the real
        miss-level parallelism.  Counting incomplete entries of the
        line-keyed map gives the pruned, deduplicated truth.
        """
        return sum(1 for ready in self._outstanding.values() if ready > t)

    # -- statistics -------------------------------------------------------

    def finalize(self) -> None:
        """Account resident never-hit prefetch blocks as useless (end of sim)."""
        for cset in self._sets:
            for block in cset.values():
                if block.prefetched and block.hits == 0:
                    self.prefetch_useless += 1
                    if block.pcb:
                        self.pgc_useless += 1
                    block.prefetched = False
                    block.pcb = False

    def snapshot(self) -> None:
        """Mark the warm-up boundary for all statistics."""
        self.stats.snapshot()
        self.demand_stats.snapshot()
        self._snap_pf = (
            self.prefetch_fills,
            self.prefetch_useful,
            self.prefetch_useless,
            self.prefetch_late,
            self.pgc_fills,
            self.pgc_useful,
            self.pgc_useless,
        )

    @property
    def measured_prefetch(self) -> dict[str, int]:
        """Prefetch usefulness counters over the measured region."""
        s = self._snap_pf
        return {
            "fills": self.prefetch_fills - s[0],
            "useful": self.prefetch_useful - s[1],
            "useless": self.prefetch_useless - s[2],
            "late": self.prefetch_late - s[3],
            "pgc_fills": self.pgc_fills - s[4],
            "pgc_useful": self.pgc_useful - s[5],
            "pgc_useless": self.pgc_useless - s[6],
        }

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(cset) for cset in self._sets)

    def resident_prefetch_counts(self) -> tuple[int, int]:
        """(prefetched, pcb) resident blocks whose usefulness is unresolved.

        A prefetched block with no demand hit yet will eventually be counted
        exactly once as useful or useless; blocks already hit were counted
        useful when it happened.  The warm-up boundary uses this to bound the
        measured-region useful+useless carry-over.
        """
        prefetched = pcb = 0
        for cset in self._sets:
            for block in cset.values():
                if block.prefetched and block.hits == 0:
                    prefetched += 1
                    if block.pcb:
                        pcb += 1
        return prefetched, pcb


def byte_to_line(addr: int) -> int:
    """Byte address to cache-line address."""
    return addr >> LINE_SHIFT
