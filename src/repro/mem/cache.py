"""Set-associative cache with LRU replacement, MSHRs, and fill timestamps.

The cache is *functional + timing-annotated*: it tracks which lines are
resident (so hits/misses and pollution are modelled exactly) and annotates
each block with the cycle its fill completes (so late prefetches pay the
residual latency instead of counting as full hits).

L1D blocks additionally carry the paper's **Page Cross Bit (PCB)** plus a
per-block hit counter, which drive the MOKA training events of Figure 7:
a demand hit on a PCB block fires ``listener.on_pcb_hit`` and the eviction
of a never-hit PCB block fires ``listener.on_pcb_evict_unused``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Protocol

from repro.mem.replacement import make_replacement_policy
from repro.params import CacheParams
from repro.stats import HitMissStats
from repro.vm.address import LINE_SHIFT


class EvictionListener(Protocol):
    """Hooks the page-cross filter registers on the L1D."""

    def on_pcb_hit(self, phys_line: int) -> None:
        """First demand hit on a page-cross-prefetched block."""
        ...

    def on_pcb_evict_unused(self, phys_line: int) -> None:
        """Eviction of a page-cross-prefetched block that never hit."""
        ...


class Block:
    """One cache block's metadata."""

    __slots__ = ("tag", "lru", "ready", "dirty", "prefetched", "pcb", "hits")

    def __init__(self, tag: int, lru: int, ready: float, prefetched: bool, pcb: bool):
        self.tag = tag
        self.lru = lru
        self.ready = ready
        self.dirty = False
        self.prefetched = prefetched
        self.pcb = pcb
        self.hits = 0


class Cache:
    """One cache level."""

    def __init__(
        self,
        params: CacheParams,
        writeback: Optional[Callable[[int, float], None]] = None,
    ):
        self.params = params
        self.name = params.name
        self.latency = params.latency
        self._set_mask = params.sets - 1
        self._ways = params.ways
        self._sets: list[dict[int, Block]] = [dict() for _ in range(params.sets)]
        self._policy = make_replacement_policy(params.replacement)
        #: line -> fill-ready time for outstanding misses; the dict is keyed
        #: by line, so re-registered lines replace their stale entry instead
        #: of being double counted
        self._outstanding: dict[int, float] = {}
        #: min-heap of (ready, line); caps concurrent misses at mshr_entries
        self._mshr_heap: list[tuple[float, int]] = []
        self._mshr_entries = params.mshr_entries
        self._writeback = writeback
        self.listener: Optional[EvictionListener] = None
        self.stats = HitMissStats()
        self.demand_stats = HitMissStats()
        # prefetch usefulness accounting (all prefetches into this cache)
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        self.prefetch_useless = 0
        self.prefetch_late = 0
        # page-cross subset (meaningful for the L1D)
        self.pgc_fills = 0
        self.pgc_useful = 0
        self.pgc_useless = 0
        self._snap_pf = (0, 0, 0, 0, 0, 0, 0)

    # -- residency -------------------------------------------------------

    def _set_for(self, line: int) -> dict[int, Block]:
        return self._sets[line & self._set_mask]

    def probe(self, line: int) -> Optional[Block]:
        """Check residency without touching LRU state or statistics."""
        return self._set_for(line).get(line)

    def lookup(self, line: int, t: float, *, demand: bool = True) -> Optional[Block]:
        """Tag lookup; updates replacement state and statistics."""
        block = self._set_for(line).get(line)
        hit = block is not None
        self.stats.record(hit)
        if demand:
            self.demand_stats.record(hit)
        if hit:
            self._policy.on_hit(block)
            if demand:
                if block.prefetched and block.hits == 0:
                    self.prefetch_useful += 1
                    if block.pcb:
                        self.pgc_useful += 1
                        if self.listener is not None:
                            self.listener.on_pcb_hit(line)
                block.hits += 1
        return block

    def fill(self, line: int, t: float, ready: float, *, prefetched: bool = False, pcb: bool = False) -> None:
        """Install a line, evicting the policy's victim if the set is full."""
        cset = self._set_for(line)
        existing = cset.get(line)
        if existing is not None:
            # refill of a resident line (e.g. prefetch hit under demand): keep
            # the earlier ready time, never downgrade a demand block to a
            # prefetch block.
            self._policy.on_hit(existing)
            if ready < existing.ready:
                existing.ready = ready
            return
        if len(cset) >= self._ways:
            victim_line = self._policy.victim(cset)
            self._evict(victim_line, cset.pop(victim_line), t)
        block = Block(line, 0, ready, prefetched, pcb)
        cset[line] = block
        self._policy.on_fill(block, prefetched)
        if prefetched:
            self.prefetch_fills += 1
            if pcb:
                self.pgc_fills += 1

    def _evict(self, line: int, block: Block, t: float) -> None:
        if block.prefetched and block.hits == 0:
            self.prefetch_useless += 1
            if block.pcb:
                self.pgc_useless += 1
                if self.listener is not None:
                    self.listener.on_pcb_evict_unused(line)
        if block.dirty and self._writeback is not None:
            self._writeback(line, t)

    def invalidate(self, line: int) -> None:
        """Drop the line if resident (no writeback, no statistics)."""
        self._set_for(line).pop(line, None)

    # -- miss timing -------------------------------------------------------

    def outstanding_ready(self, line: int, t: float) -> Optional[float]:
        """Fill-ready time when the line is already being fetched (MSHR merge)."""
        ready = self._outstanding.get(line)
        if ready is not None and ready > t:
            return ready
        if ready is not None:
            del self._outstanding[line]
        return None

    def mshr_delay(self, t: float) -> float:
        """Extra cycles a new miss waits for a free MSHR at time `t`."""
        heap = self._mshr_heap
        while heap and heap[0][0] <= t:
            _, line = heapq.heappop(heap)
            if self._outstanding.get(line, 0.0) <= t:
                self._outstanding.pop(line, None)
        if len(heap) >= self._mshr_entries:
            earliest = heap[0][0]
            return max(0.0, earliest - t)
        return 0.0

    def register_miss(self, line: int, t: float, ready: float) -> None:
        """Track an in-flight miss for merging and MSHR occupancy."""
        self._outstanding[line] = ready
        heapq.heappush(self._mshr_heap, (ready, line))

    def in_flight_misses(self, t: float) -> int:
        """Distinct lines with an incomplete miss in flight at time `t`.

        The pre-fix implementation reported the raw MSHR-heap length, which
        kept counting fills that had already completed (the heap is pruned
        lazily) and double counted re-registered lines — so the
        ``l1d_inflight_misses`` policy feature could drift far above the real
        miss-level parallelism.  Counting incomplete entries of the
        line-keyed map gives the pruned, deduplicated truth.
        """
        return sum(1 for ready in self._outstanding.values() if ready > t)

    # -- statistics -------------------------------------------------------

    def finalize(self) -> None:
        """Account resident never-hit prefetch blocks as useless (end of sim)."""
        for cset in self._sets:
            for block in cset.values():
                if block.prefetched and block.hits == 0:
                    self.prefetch_useless += 1
                    if block.pcb:
                        self.pgc_useless += 1
                    block.prefetched = False
                    block.pcb = False

    def snapshot(self) -> None:
        """Mark the warm-up boundary for all statistics."""
        self.stats.snapshot()
        self.demand_stats.snapshot()
        self._snap_pf = (
            self.prefetch_fills,
            self.prefetch_useful,
            self.prefetch_useless,
            self.prefetch_late,
            self.pgc_fills,
            self.pgc_useful,
            self.pgc_useless,
        )

    @property
    def measured_prefetch(self) -> dict[str, int]:
        """Prefetch usefulness counters over the measured region."""
        s = self._snap_pf
        return {
            "fills": self.prefetch_fills - s[0],
            "useful": self.prefetch_useful - s[1],
            "useless": self.prefetch_useless - s[2],
            "late": self.prefetch_late - s[3],
            "pgc_fills": self.pgc_fills - s[4],
            "pgc_useful": self.pgc_useful - s[5],
            "pgc_useless": self.pgc_useless - s[6],
        }

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(cset) for cset in self._sets)

    def resident_prefetch_counts(self) -> tuple[int, int]:
        """(prefetched, pcb) resident blocks whose usefulness is unresolved.

        A prefetched block with no demand hit yet will eventually be counted
        exactly once as useful or useless; blocks already hit were counted
        useful when it happened.  The warm-up boundary uses this to bound the
        measured-region useful+useless carry-over.
        """
        prefetched = pcb = 0
        for cset in self._sets:
            for block in cset.values():
                if block.prefetched and block.hits == 0:
                    prefetched += 1
                    if block.pcb:
                        pcb += 1
        return prefetched, pcb


def byte_to_line(addr: int) -> int:
    """Byte address to cache-line address."""
    return addr >> LINE_SHIFT
