"""Cache replacement policies.

Table IV's configuration is LRU everywhere, which stays the default.  The
additional policies exist for the ablation studies and for the prefetch-
management comparison the paper's related-work section points at ([43],
[74], [91]): prefetch-aware insertion demotes prefetched blocks so that
useless (page-cross) prefetches do less damage — an alternative mitigation
to filtering that the ablation bench contrasts with DRIPPER.

A policy manages each block's ``lru`` field (an opaque priority word owned
by the policy) through three hooks: fill, hit, victim selection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.cache import Block

_RRPV_MAX = 3


class LruPolicy:
    """Least-recently-used (the paper's configuration)."""

    name = "lru"

    def __init__(self) -> None:
        self._tick = 0

    def on_fill(self, block: "Block", prefetched: bool) -> None:
        """Insert at MRU."""
        self._tick += 1
        block.lru = self._tick

    def on_hit(self, block: "Block") -> None:
        """Promote to MRU."""
        self._tick += 1
        block.lru = self._tick

    def victim(self, blocks: dict) -> int:
        """Evict the least-recently-used block."""
        # manual scan: min(blocks, key=lambda ...) allocates a closure and
        # pays a Python call per block on this very hot path; strict < keeps
        # min()'s first-minimum tie-breaking
        best_line = -1
        best_lru = None
        for line, block in blocks.items():
            lru = block.lru
            if best_lru is None or lru < best_lru:
                best_lru = lru
                best_line = line
        return best_line


class PrefetchAwareLruPolicy(LruPolicy):
    """LRU with prefetched blocks inserted at the LRU end (PACMan-style).

    A prefetched block earns MRU position only on its first demand hit, so
    useless prefetches are the first to go.
    """

    name = "pa-lru"

    def on_fill(self, block: "Block", prefetched: bool) -> None:
        """Demand fills go to MRU; prefetch fills to (near-)LRU."""
        self._tick += 1
        block.lru = self._tick if not prefetched else -self._tick


class SrripPolicy:
    """Static re-reference interval prediction (2-bit RRPV)."""

    name = "srrip"

    def on_fill(self, block: "Block", prefetched: bool) -> None:
        """Insert with a long re-reference prediction."""
        block.lru = _RRPV_MAX - 1

    def on_hit(self, block: "Block") -> None:
        """Promote to near-immediate re-reference."""
        block.lru = 0

    def victim(self, blocks: dict) -> int:
        """Evict a distant block, aging the set until one appears."""
        # find a distant block, aging everyone until one appears
        while True:
            for line, block in blocks.items():
                if block.lru >= _RRPV_MAX:
                    return line
            for block in blocks.values():
                block.lru += 1


class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: most fills are inserted distant (thrash-resistant)."""

    name = "brrip"

    def __init__(self) -> None:
        self._counter = 0

    def on_fill(self, block: "Block", prefetched: bool) -> None:
        """Insert distant except for 1-in-32 fills (thrash resistance)."""
        self._counter = (self._counter + 1) & 0x1F
        block.lru = _RRPV_MAX - 1 if self._counter == 0 else _RRPV_MAX


class RandomPolicy:
    """Deterministic pseudo-random victim selection."""

    name = "random"

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        self._state = seed or 1

    def on_fill(self, block: "Block", prefetched: bool) -> None:
        """No insertion state needed."""
        block.lru = 0

    def on_hit(self, block: "Block") -> None:
        """Hits carry no information for random replacement."""

    def victim(self, blocks: dict) -> int:
        """Evict a deterministic pseudo-random block (xorshift32)."""
        s = self._state
        s ^= (s << 13) & 0xFFFFFFFF
        s ^= s >> 17
        s ^= (s << 5) & 0xFFFFFFFF
        self._state = s
        keys = list(blocks)
        return keys[s % len(keys)]


_POLICIES = {
    p.name: p for p in (LruPolicy, PrefetchAwareLruPolicy, SrripPolicy, BrripPolicy, RandomPolicy)
}


def make_replacement_policy(name: str):
    """Instantiate a replacement policy by name (one instance per cache)."""
    key = name.lower()
    if key not in _POLICIES:
        raise KeyError(f"unknown replacement policy {name!r}; known: {sorted(_POLICIES)}")
    return _POLICIES[key]()
