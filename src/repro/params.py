"""System configuration parameters.

Mirrors Table IV of the paper ("System Configuration").  Every structure in
the simulator is sized from a :class:`SystemParams` instance so experiments
can sweep configurations without touching simulator code.

Latencies are in core cycles at the paper's 4 GHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    mshr_entries: int
    line_bytes: int = 64
    #: replacement policy name (repro.mem.replacement); Table IV uses LRU
    replacement: str = "lru"

    @property
    def sets(self) -> int:
        """Set count implied by size/ways/line."""
        return self.size_bytes // (self.ways * self.line_bytes)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets & (sets - 1):
            raise ValueError(f"{self.name}: set count {sets} is not a power of two")


@dataclass(frozen=True)
class TlbParams:
    """Geometry and timing of one TLB level."""

    name: str
    entries: int
    ways: int
    latency: int

    @property
    def sets(self) -> int:
        """Set count implied by entries/ways."""
        return self.entries // self.ways

    def __post_init__(self) -> None:
        if self.entries % self.ways != 0:
            raise ValueError(f"{self.name}: {self.entries} entries not divisible by {self.ways} ways")
        sets = self.entries // self.ways
        if sets & (sets - 1):
            raise ValueError(f"{self.name}: set count {sets} is not a power of two")


@dataclass(frozen=True)
class PscParams:
    """Split page-structure caches, one per upper page-table level.

    Paper: "4-level Split PSC, parallel search, 1-cycle lat.
    L5: 1-entry, L4: 2-entry, L3: 8-entry, L2: 32-entry".
    """

    l5_entries: int = 1
    l4_entries: int = 2
    l3_entries: int = 8
    l2_entries: int = 32
    latency: int = 1

    def entries_for_level(self, level: int) -> int:
        """PSC size for one page-table level (5..2)."""
        return {5: self.l5_entries, 4: self.l4_entries, 3: self.l3_entries, 2: self.l2_entries}[level]


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core model parameters (Table IV, "1-8 cores, 4GHz...")."""

    rob_entries: int = 352
    issue_width: int = 6
    retire_width: int = 6
    branch_mispredict_penalty: int = 12
    frequency_ghz: float = 4.0


@dataclass(frozen=True)
class DramParams:
    """Simple latency + bandwidth DRAM model (3200 MT/s in the paper)."""

    access_latency: int = 180
    #: cycles a channel is busy transferring one 64B line (bandwidth model)
    transfer_cycles: int = 8
    channels: int = 2
    #: optional open-page row-buffer model: row hits pay row_hit_latency
    row_buffer: bool = False
    banks_per_channel: int = 8
    row_hit_latency: int = 110
    #: consecutive lines sharing a DRAM row (8KB rows)
    lines_per_row: int = 128


@dataclass(frozen=True)
class SystemParams:
    """Full single-core system configuration (Table IV)."""

    core: CoreParams = field(default_factory=CoreParams)
    itlb: TlbParams = field(default_factory=lambda: TlbParams("iTLB", 64, 4, 1))
    dtlb: TlbParams = field(default_factory=lambda: TlbParams("dTLB", 64, 4, 1))
    stlb: TlbParams = field(default_factory=lambda: TlbParams("sTLB", 1536, 12, 8))
    psc: PscParams = field(default_factory=PscParams)
    l1i: CacheParams = field(default_factory=lambda: CacheParams("L1I", 32 * 1024, 8, 4, 8))
    l1d: CacheParams = field(default_factory=lambda: CacheParams("L1D", 48 * 1024, 12, 5, 16))
    l2c: CacheParams = field(default_factory=lambda: CacheParams("L2C", 512 * 1024, 8, 10, 32))
    llc: CacheParams = field(default_factory=lambda: CacheParams("LLC", 2 * 1024 * 1024, 16, 20, 64))
    dram: DramParams = field(default_factory=DramParams)

    def scaled_llc(self, cores: int) -> "SystemParams":
        """Scale the shared resources for a multi-core system.

        LLC capacity and MSHRs grow 2MB/core (ChampSim convention for the
        paper's 8-core runs); DRAM channel count grows with the core count
        (the paper's 16GB 8-core memory system) so per-core bandwidth does
        not collapse.
        """
        llc = replace(
            self.llc,
            size_bytes=self.llc.size_bytes * cores,
            mshr_entries=self.llc.mshr_entries * cores,
        )
        channels = self.dram.channels
        while channels < self.dram.channels * max(1, cores // 2):
            channels *= 2
        dram = replace(self.dram, channels=channels)
        return replace(self, llc=llc, dram=dram)


DEFAULT_PARAMS = SystemParams()
