"""Low-overhead profiling hooks: wall-time probes for the simulator hot paths.

A :class:`Probe` accumulates per-component wall time (``perf_counter``
based).  It is wired into the engine by *replacing* the engine's cached
bound calls with timed wrappers (see ``CoreEngine.enable_profiling``), so a
run without profiling pays nothing — not even a branch — on the hot paths.

Two usage styles:

* ``probe.timed(component, fn)`` — wrap a callable; every invocation adds
  its duration to the component's bucket;
* ``with probe.timer(component): ...`` — a :class:`ScopedTimer` for timing
  arbitrary blocks (a no-op when the probe is disabled).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional


class Probe:
    """Per-component wall-time accumulator."""

    __slots__ = ("enabled", "totals", "counts")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, component: str, seconds: float, calls: int = 1) -> None:
        """Charge `seconds` (and `calls` invocations) to a component."""
        self.totals[component] = self.totals.get(component, 0.0) + seconds
        self.counts[component] = self.counts.get(component, 0) + calls

    def timed(self, component: str, fn: Callable) -> Callable:
        """Wrap `fn` so every call is timed into `component`.

        Returns `fn` unchanged when the probe is disabled, so instrumented
        code keeps its original call overhead.
        """
        if not self.enabled:
            return fn
        totals = self.totals
        counts = self.counts
        totals.setdefault(component, 0.0)
        counts.setdefault(component, 0)

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                totals[component] += perf_counter() - t0
                counts[component] += 1

        return wrapper

    def timer(self, component: str) -> "ScopedTimer":
        """A context manager timing its block into `component`."""
        return ScopedTimer(self, component)

    def reset(self) -> None:
        """Drop all accumulated times and counts."""
        self.totals.clear()
        self.counts.clear()

    @property
    def instrumented_seconds(self) -> float:
        """Total wall time charged to any component."""
        return sum(self.totals.values())

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-component ``{seconds, calls, us_per_call}``, slowest first."""
        out: dict[str, dict[str, float]] = {}
        for component in sorted(self.totals, key=self.totals.get, reverse=True):
            seconds = self.totals[component]
            calls = self.counts.get(component, 0)
            out[component] = {
                "seconds": seconds,
                "calls": calls,
                "us_per_call": 1e6 * seconds / calls if calls else 0.0,
            }
        return out

    def format_breakdown(self, wall_seconds: Optional[float] = None) -> str:
        """Human-readable per-component table (printed at the end of a run)."""
        rows = self.breakdown()
        if not rows:
            return "profile: no instrumented calls recorded"
        total = self.instrumented_seconds
        denom = wall_seconds if wall_seconds else total
        header = "profile breakdown"
        if wall_seconds:
            header += (
                f" (wall {wall_seconds:.3f}s, instrumented "
                f"{total:.3f}s = {100 * total / wall_seconds:.0f}%)"
            )
        lines = [header]
        name_w = max(len("component"), *(len(n) for n in rows))
        lines.append(f"  {'component'.ljust(name_w)}  {'calls':>9}  {'seconds':>8}  {'share':>6}  {'us/call':>8}")
        for component, info in rows.items():
            share = 100 * info["seconds"] / denom if denom else 0.0
            lines.append(
                f"  {component.ljust(name_w)}  {int(info['calls']):>9}  "
                f"{info['seconds']:>8.3f}  {share:>5.1f}%  {info['us_per_call']:>8.2f}"
            )
        return "\n".join(lines)


class ScopedTimer:
    """Times a ``with`` block into a probe component; no-op when disabled."""

    __slots__ = ("_probe", "_component", "_t0")

    def __init__(self, probe: Optional[Probe], component: str):
        self._probe = probe if (probe is not None and probe.enabled) else None
        self._component = component
        self._t0 = 0.0

    def __enter__(self) -> "ScopedTimer":
        if self._probe is not None:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._probe is not None:
            self._probe.add(self._component, perf_counter() - self._t0)
        return False


#: a shared always-disabled probe (handy default for optional probe params)
NULL_PROBE = Probe(enabled=False)
