"""Observability layer: run journal, epoch timelines, and profiling probes.

One :class:`Observability` bundle is handed to
:func:`repro.cpu.simulator.simulate` (or the experiment runner / sweep
helpers) and wires up to three independent instruments:

* :class:`~repro.obs.timeline.TimelineRecorder` — per-epoch time series of
  the run's dynamics (IPC, MPKI deltas, page-cross activity, the filter's
  threshold and permit rate);
* :class:`~repro.obs.journal.RunJournal` — an append-only JSONL record per
  run: full config, workload identity + seed, result, wall time, host;
* :class:`~repro.obs.profiling.Probe` — per-component wall-time breakdown
  of the simulator's hot paths (prefetcher invoke, policy decide, page
  walk, cache access).

All three are strictly opt-in: a run without an `Observability` bundle
executes the exact unobserved hot path.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import monotonic
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.core.filter import PerceptronFilter
from repro.core.introspect import filter_state
from repro.obs.journal import (
    RunJournal,
    build_run_record,
    describe_config,
    describe_workload,
    host_info,
    merge_shards,
    read_journal,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_metrics,
    reset_metrics,
    to_json,
    to_prometheus,
)
from repro.obs.profiling import NULL_PROBE, Probe, ScopedTimer
from repro.obs.progress import GridProgress, ProgressSink, progress_printer
from repro.obs.timeline import TIMELINE_FIELDS, TimelineRecorder
from repro.obs.tracing import Tracer, current_tracer, install_tracer, trace_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.core import CoreEngine
    from repro.cpu.simulator import SimConfig, SimResult

#: lightweight structured-event channel for subsystems without a journal in
#: hand (e.g. pack-cache evictions); opt in via standard logging config
_LOG = logging.getLogger("repro.obs")


def log_event(event: str, **fields: Any) -> None:
    """Emit one structured event on the ``repro.obs`` logger (DEBUG level).

    The record carries the event as real data, not just formatted text:
    ``record.event_name`` (str), ``record.event_fields`` (the keyword dict),
    and ``record.event_monotonic`` (a :func:`time.monotonic` stamp, so
    intervals between events survive wall-clock adjustments) ride on the
    ``LogRecord`` via ``extra=`` for any structured handler (JSON formatter,
    log forwarder) while plain handlers still render ``"<event> <fields>"``.
    """
    if _LOG.isEnabledFor(logging.DEBUG):
        _LOG.debug(
            "%s %s", event, fields,
            extra={
                "event_name": event,
                "event_fields": fields,
                "event_monotonic": monotonic(),
            },
        )


@dataclass
class Observability:
    """Per-run instrument bundle passed to ``simulate(..., obs=...)``."""

    timeline: Optional[TimelineRecorder] = None
    journal: Optional[RunJournal] = None
    probe: Optional[Probe] = None
    #: retain the finished engine on `last_engine` (for filter inspection)
    keep_engine: bool = False
    #: merged into each journal record under the ``context`` key; callers
    #: (e.g. the runner) use it to attach the RunSpec or sweep coordinates
    context: dict[str, Any] = field(default_factory=dict)
    # per-run capture, refreshed by finish()
    last_engine: Optional["CoreEngine"] = None
    last_wall_seconds: float = 0.0
    last_filter_state: Optional[dict[str, Any]] = None
    runs: int = 0

    @contextmanager
    def scoped(self, **entries: Any) -> Iterator["Observability"]:
        """Temporarily add ``context`` entries for the duration of a run.

        The runner and sweep helpers tag each run with its grid coordinates
        (``spec``, ``sweep``) through this scope, so the keys cannot leak
        into later runs that reuse the same bundle — on exit the context is
        restored to exactly its previous contents (in place, preserving the
        dict's identity).
        """
        saved = dict(self.context)
        self.context.update(entries)
        try:
            yield self
        finally:
            self.context.clear()
            self.context.update(saved)

    def attach(self, engine: "CoreEngine", workload: Any) -> None:
        """Hook the instruments into a freshly built engine (pre-run)."""
        if self.timeline is not None:
            self.timeline.start_run(getattr(workload, "name", str(workload)))
            engine.epoch_listener = self.timeline.on_epoch
        if self.probe is not None:
            engine.enable_profiling(self.probe)

    def finish(
        self,
        engine: "CoreEngine",
        workload: Any,
        config: "SimConfig",
        result: "SimResult",
        wall_seconds: float,
    ) -> None:
        """Capture end-of-run state and journal the run (post-run)."""
        self.runs += 1
        self.last_wall_seconds = wall_seconds
        self.last_engine = engine if self.keep_engine else None
        if isinstance(engine.policy, PerceptronFilter):
            self.last_filter_state = filter_state(engine.policy)
        else:
            self.last_filter_state = None
        if self.journal is not None:
            self.journal.record(
                workload=workload,
                config=config,
                result=result,
                wall_seconds=wall_seconds,
                extra=self.context or None,
            )

    def close(self) -> None:
        """Flush/close any owned sinks (currently the journal)."""
        if self.journal is not None:
            self.journal.close()


__all__ = [
    "Observability",
    "log_event",
    "TimelineRecorder",
    "TIMELINE_FIELDS",
    "RunJournal",
    "read_journal",
    "merge_shards",
    "build_run_record",
    "describe_config",
    "describe_workload",
    "host_info",
    "Probe",
    "ScopedTimer",
    "NULL_PROBE",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_metrics",
    "reset_metrics",
    "to_prometheus",
    "to_json",
    "Tracer",
    "install_tracer",
    "current_tracer",
    "trace_span",
    "GridProgress",
    "ProgressSink",
    "progress_printer",
]
