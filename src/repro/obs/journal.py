"""Run journal: an append-only JSONL audit log of simulation runs.

Every journaled run becomes one self-contained JSON object: the full
configuration (including all hardware parameters), the workload identity
and seed, the final :class:`~repro.cpu.simulator.SimResult`, wall-clock
duration, and host info.  Sweeps therefore leave an auditable artifact —
any reported number can be traced back to the exact knobs that produced it,
and wall-time baselines accumulate for free.
"""

from __future__ import annotations

import json
import os
import platform
import socket
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    # annotation-only: a runtime import would make `repro.obs` depend on
    # `repro.cpu`, and the low-level packages (workloads.shm, cpu.simulator)
    # import `repro.obs.metrics` at module top — keeping this lazy is what
    # lets the obs package sit below everything it instruments
    from repro.cpu.simulator import SimConfig, SimResult

#: bump when the record layout changes incompatibly
SCHEMA_VERSION = 1


def host_info() -> dict[str, Any]:
    """Identity of the machine/interpreter that produced a record."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "pid": os.getpid(),
    }


def describe_workload(workload: Any) -> dict[str, Any]:
    """Workload identity: name, suite, and the seed that fixes its trace."""
    return {
        "name": getattr(workload, "name", str(workload)),
        "suite": getattr(workload, "suite", None),
        "seed": getattr(workload, "seed", None),
        "mean_gap": getattr(workload, "mean_gap", None),
    }


def describe_config(config: SimConfig, *, policy_name: Optional[str] = None) -> dict[str, Any]:
    """JSON-safe dump of a :class:`SimConfig`, hardware parameters included.

    ``policy_factory`` is a callable; pass `policy_name` (e.g. from the
    finished run's result) to record which policy it built.
    """
    factory = config.policy_factory
    if policy_name is None:
        policy_name = getattr(factory, "name", None) or getattr(factory, "__name__", repr(factory))
    dump = {
        "prefetcher": config.prefetcher,
        "policy": policy_name,
        "l2_prefetcher": config.l2_prefetcher,
        "warmup_instructions": config.warmup_instructions,
        "sim_instructions": config.sim_instructions,
        "large_page_fraction": config.large_page_fraction,
        "epoch_instructions": config.epoch_instructions,
        "prefetcher_extra_storage": config.prefetcher_extra_storage,
        "asid": config.asid,
        "params": asdict(config.params),
    }
    # a sampled run approximates the full window, so its parameters are part
    # of the result's identity; recorded only when set, which keeps every
    # full-run fingerprint (and cache entry) from before sampling valid
    if config.sampling is not None:
        dump["sampling"] = asdict(config.sampling)
    return dump


def build_run_record(
    *,
    workload: Any,
    config: SimConfig,
    result: SimResult,
    wall_seconds: float,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble one journal record (a plain JSON-serialisable dict)."""
    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": describe_workload(workload),
        "config": describe_config(config, policy_name=result.policy),
        "result": asdict(result),
        "derived": {
            "prefetch_accuracy": result.prefetch_accuracy,
            "prefetch_coverage": result.prefetch_coverage,
            "pgc_accuracy": result.pgc_accuracy,
            "branch_mpki": result.branch_mpki,
        },
        "wall_seconds": wall_seconds,
        "instructions_per_second": (
            result.instructions / wall_seconds if wall_seconds > 0 else None
        ),
        "host": host_info(),
    }
    if extra:
        record["context"] = dict(extra)
    return record


class RunJournal:
    """Appends one JSONL record per run to `path` (opened lazily)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.records_written = 0
        self._fh: Optional[IO[str]] = None

    def record(
        self,
        *,
        workload: Any,
        config: SimConfig,
        result: SimResult,
        wall_seconds: float,
        extra: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """Append one run record; returns the dict that was written."""
        rec = build_run_record(
            workload=workload, config=config, result=result,
            wall_seconds=wall_seconds, extra=extra,
        )
        self.append_record(rec)
        return rec

    def append_record(self, record: dict[str, Any]) -> None:
        """Append an already-built record (e.g. merged from a worker shard)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        """Close the underlying file (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """Load every record of a journal file (skipping blank lines)."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def merge_shards(journal: RunJournal, shard_dir: str | Path, *,
                 pattern: str = "*.jsonl", consume: bool = False) -> int:
    """Merge per-worker shard files into a parent journal.

    ``RunJournal``'s shared file handle is not fork-safe, so parallel grid
    execution gives each worker process its own shard file and the parent
    folds them back in afterwards.  Shards are merged in sorted-filename
    order (record order *within* a shard is preserved; order *across*
    workers reflects scheduling, not grid order — every record carries its
    own ``context`` coordinates).  Returns the number of records merged.

    With ``consume=True`` each shard file is deleted after its records are
    folded in.  A persistent worker pool merges after every batch, so
    leaving merged shards behind would double-count them on the next merge
    from the same directory.
    """
    merged = 0
    for shard in sorted(Path(shard_dir).glob(pattern)):
        for rec in read_journal(shard):
            journal.append_record(rec)
            merged += 1
        if consume:
            shard.unlink()
    return merged
