"""Span tracing across grid processes, exported as Chrome trace-event JSON.

A :class:`Tracer` records *complete* spans — ``(name, category, start,
duration, pid, tid, args)`` — for the coarse phases of a grid cell's life:
packing a trace, attaching an shm segment, driving the simulation, collecting
the result, and writing the result cache.  Tracing is strictly opt-in: the
process-wide slot (:func:`install_tracer` / :func:`current_tracer`) defaults
to ``None`` and every instrumentation site checks it at span granularity
(per cell / per drive — never inside the per-record loops), so a run without
a tracer executes the exact unobserved hot path.

Cross-process discipline mirrors the run journal's shard merge: grid workers
install a tracer whose span buffer is flushed to a per-process JSONL shard
(``spans-<pid>-<seq>.jsonl``) after every chunk, and the parent absorbs the
shards back into its own tracer once the batch drains
(:meth:`Tracer.absorb_shards`, consuming, exactly like
:func:`repro.obs.journal.merge_shards`).  The merged timeline is written by
:meth:`Tracer.write_chrome_trace` as a Chrome trace-event JSON object —
loadable in Perfetto / ``chrome://tracing`` — where each OS process of the
grid appears as its own ``pid`` lane with a ``process_name`` metadata record.

Timestamps are wall-clock (``time.time_ns``-based) microseconds, so spans
recorded in different processes land on one consistent axis; durations are
measured with ``perf_counter`` for resolution.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter, time_ns
from typing import Any, Iterator, Optional

__all__ = [
    "Tracer",
    "current_tracer",
    "install_tracer",
    "trace_span",
    "write_chrome_trace",
]

#: the process-wide tracer slot; ``None`` means tracing is off everywhere
_TRACER: Optional["Tracer"] = None


def install_tracer(tracer: Optional["Tracer"]) -> Optional["Tracer"]:
    """Install (or with ``None`` remove) the process-wide tracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_tracer() -> Optional["Tracer"]:
    """The process-wide tracer, or ``None`` when tracing is off."""
    return _TRACER


@contextmanager
def trace_span(name: str, category: str = "sim", **args: Any) -> Iterator[None]:
    """Record a span on the installed tracer; a no-op without one.

    The off-path cost is one global read and one ``is None`` test per span
    site — span sites are per-cell / per-drive, never per-record.
    """
    tracer = _TRACER
    if tracer is None:
        yield
        return
    with tracer.span(name, category, **args):
        yield


class Tracer:
    """Buffers trace events in memory; flushes to shards or a Chrome JSON.

    ``role`` names this process's lane in the merged trace (e.g. ``parent``
    or ``worker``); the ``pid`` is always the real OS pid so worker identity
    survives the merge.
    """

    def __init__(self, role: str = "parent"):
        self.role = role
        self.pid = os.getpid()
        self._events: list[dict[str, Any]] = []
        self._seq = 0
        #: pid -> role, for process_name metadata in the merged trace
        self._roles: dict[int, str] = {self.pid: role}

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str = "sim", **args: Any) -> Iterator[None]:
        """Time a block as one complete ("ph": "X") trace event."""
        ts = time_ns() // 1_000
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add_event({
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": ts,
                "dur": max(1, int((perf_counter() - t0) * 1e6)),
                "pid": self.pid,
                "tid": threading.get_native_id(),
                "args": args,
            })

    def instant(self, name: str, category: str = "grid", **args: Any) -> None:
        """Record a zero-duration instant event (cell landed, cache hit...)."""
        self.add_event({
            "name": name, "cat": category, "ph": "i", "s": "p",
            "ts": time_ns() // 1_000, "pid": self.pid,
            "tid": threading.get_native_id(), "args": args,
        })

    def add_event(self, event: dict[str, Any]) -> None:
        """Append one raw trace event (already in Chrome event form)."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    # -- shard flush / absorb (the cross-process seam) ---------------------

    def flush_shard(self, shard_dir: str | Path) -> Optional[Path]:
        """Write buffered events to a new shard file and clear the buffer.

        Per-chunk shards (like the journal's) keep no file handle open
        across chunks, so the parent can merge *and delete* them after
        every batch.  Returns the shard path, or ``None`` when the buffer
        was empty.
        """
        if not self._events:
            return None
        self._seq += 1
        shard = Path(shard_dir) / f"spans-{self.pid:08d}-{self._seq:06d}.jsonl"
        shard.parent.mkdir(parents=True, exist_ok=True)
        with open(shard, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"role": self.role, "pid": self.pid}) + "\n")
            for event in self._events:
                fh.write(json.dumps(event) + "\n")
        self._events.clear()
        return shard

    def absorb_shards(self, shard_dir: str | Path, *,
                      pattern: str = "spans-*.jsonl", consume: bool = True) -> int:
        """Fold per-worker span shards into this tracer's buffer.

        Same discipline as :func:`repro.obs.journal.merge_shards`: sorted
        filename order, ``consume=True`` deletes each shard after folding so
        a persistent grid session never double-counts a batch.  Returns the
        number of events absorbed.
        """
        absorbed = 0
        for shard in sorted(Path(shard_dir).glob(pattern)):
            with open(shard, encoding="utf-8") as fh:
                header = json.loads(fh.readline())
                self._roles.setdefault(header["pid"], header.get("role", "worker"))
                for line in fh:
                    line = line.strip()
                    if line:
                        self._events.append(json.loads(line))
                        absorbed += 1
            if consume:
                shard.unlink()
        return absorbed

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> list[dict[str, Any]]:
        """Buffered events plus process_name metadata, ready for export."""
        events: list[dict[str, Any]] = []
        for pid in sorted({e["pid"] for e in self._events} | set(self._roles)):
            role = self._roles.get(pid, "worker")
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"repro-{role}-{pid}"},
            })
        events.extend(self._events)
        return events

    def write_chrome_trace(self, path: str | Path) -> int:
        """Write the merged trace as Chrome trace-event JSON; returns #spans."""
        return write_chrome_trace(self.chrome_events(), path)


def write_chrome_trace(events: list[dict[str, Any]], path: str | Path) -> int:
    """Write trace events as a ``{"traceEvents": [...]}`` Chrome JSON file.

    Returns the number of non-metadata events written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.tracing"},
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return sum(1 for e in events if e.get("ph") != "M")
