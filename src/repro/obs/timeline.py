"""Epoch timeline recording: the per-epoch time series behind a run.

The paper's figures are end-of-run aggregates; the *dynamics* they argue
about (DRIPPER's threshold settling, permit-rate drift at phase changes,
sTLB-MPKI spikes) live at epoch granularity.  A :class:`TimelineRecorder`
hooks the engine's epoch boundary (``CoreEngine.epoch_listener``) and
samples one row per epoch: progress counters, MPKI deltas, page-cross
activity, and — when the policy is a perceptron filter — the adaptive
threshold and permit rate via :mod:`repro.core.introspect`.

Rows are plain dicts in :data:`TIMELINE_FIELDS` order, exportable as JSONL
(one object per line) or CSV.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.filter import PerceptronFilter
from repro.core.introspect import quick_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system_state import EpochStats
    from repro.cpu.core import CoreEngine

#: column order for CSV export (and the stable JSONL key set)
TIMELINE_FIELDS = (
    "run",
    "workload",
    "epoch",
    "measuring",
    "instructions",
    "total_instructions",
    "cycles",
    "ipc",
    "l1d_mpki",
    "stlb_mpki",
    "l1i_mpki",
    "llc_mpki",
    "rob_stall_fraction",
    "pgc_issued",
    "pgc_discarded",
    "pgc_useful",
    "pgc_useless",
    "threshold",
    "permit_rate",
    "cum_permit_rate",
    "vub_occupancy",
    "pub_occupancy",
)

_ROUND = 5


def _r(value: float) -> float:
    return round(value, _ROUND)


class TimelineRecorder:
    """Collects one row per finished epoch across one or more runs."""

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.rows: list[dict[str, Any]] = []
        self._run = -1
        self._workload = ""
        self._epoch = 0
        self._pgc_base = (0, 0)
        self._filter_base = (0, 0)

    def start_run(self, workload_name: str) -> None:
        """Begin a new run's timeline (resets per-run delta bases)."""
        self._run += 1
        self._workload = workload_name
        self._epoch = 0
        self._pgc_base = (0, 0)
        self._filter_base = (0, 0)

    # the engine calls this once per finished epoch (CoreEngine.epoch_listener)
    def on_epoch(self, engine: "CoreEngine", epoch: "EpochStats") -> None:
        """Sample one timeline row from a just-finished epoch."""
        self._epoch += 1
        issued, discarded = engine.pgc.issued, engine.pgc.discarded
        pgc_base = self._pgc_base
        self._pgc_base = (issued, discarded)

        policy = engine.policy
        filter_row: dict[str, Any] = {
            "threshold": None,
            "permit_rate": None,
            "cum_permit_rate": None,
            "vub_occupancy": None,
            "pub_occupancy": None,
        }
        if isinstance(policy, PerceptronFilter):
            qs = quick_state(policy)
            d_pred = qs["predictions"] - self._filter_base[0]
            d_perm = qs["permits"] - self._filter_base[1]
            self._filter_base = (qs["predictions"], qs["permits"])
            filter_row = {
                "threshold": qs["threshold"],
                # per-epoch rate; falls back to the cumulative rate for
                # epochs in which the filter was never consulted
                "permit_rate": _r(d_perm / d_pred) if d_pred else _r(qs["permit_rate"]),
                "cum_permit_rate": _r(qs["permit_rate"]),
                "vub_occupancy": qs["vub_occupancy"],
                "pub_occupancy": qs["pub_occupancy"],
            }

        if (self._epoch - 1) % self.sample_every:
            return

        state = engine.system_state
        self.rows.append({
            "run": self._run,
            "workload": self._workload,
            "epoch": self._epoch,
            "measuring": engine.measuring,
            "instructions": epoch.instructions,
            "total_instructions": engine.instructions,
            "cycles": _r(engine.retire_t),
            "ipc": _r(epoch.ipc),
            "l1d_mpki": _r(state.l1d_mpki),
            "stlb_mpki": _r(state.stlb_mpki),
            "l1i_mpki": _r(epoch.l1i_mpki),
            "llc_mpki": _r(epoch.llc_mpki),
            "rob_stall_fraction": _r(epoch.rob_stall_fraction),
            "pgc_issued": issued - pgc_base[0],
            "pgc_discarded": discarded - pgc_base[1],
            "pgc_useful": epoch.pgc_useful,
            "pgc_useless": epoch.pgc_useless,
            **filter_row,
        })

    # ------------------------------------------------------------------
    # export

    def __len__(self) -> int:
        return len(self.rows)

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per row; returns the row count."""
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for row in self.rows:
                fh.write(json.dumps(row) + "\n")
        return len(self.rows)

    def write_csv(self, path: str) -> int:
        """Write the timeline as CSV in :data:`TIMELINE_FIELDS` order."""
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=TIMELINE_FIELDS, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
        return len(self.rows)

    def write(self, path: str) -> int:
        """Write CSV when `path` ends in ``.csv``, JSONL otherwise."""
        if str(path).endswith(".csv"):
            return self.write_csv(path)
        return self.write_jsonl(path)
