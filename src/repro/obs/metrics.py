"""Cross-process metrics: a process-wide registry of counters/gauges/histograms.

Every process — the parent driving a grid and each pool worker — owns one
:data:`REGISTRY` (via :func:`get_metrics`).  Subsystems register named
instruments once and bump them at *event* granularity (a pack-cache miss, a
published shm segment, a finished grid cell): nothing in the per-record drive
loops touches the registry, so the telemetry contract of PR 1 holds — with
every sink disabled the simulator runs the exact unobserved hot path, and the
instrument updates that do happen are O(events), not O(records).

Cross-process discipline mirrors :func:`repro.obs.journal.merge_shards`: a
worker process takes a :meth:`~MetricsRegistry.snapshot` *mark* before a
chunk, computes the :meth:`~MetricsSnapshot.delta` after it, and ships the
delta back with the chunk's results; the parent folds every delta into its
own registry with :meth:`~MetricsRegistry.merge`.  Merging is commutative
and associative — counters and histograms add, gauges resolve by their
update stamp (latest wins, ties by value) — so the scheduling order of
worker chunks cannot change the merged totals.

Exporters: :func:`to_prometheus` (text exposition format, parseable by any
Prometheus scraper and by :func:`parse_prometheus` below) and
:func:`to_json`.
"""

from __future__ import annotations

import itertools
import json
import re
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
    "get_metrics",
    "reset_metrics",
    "to_prometheus",
    "to_json",
    "parse_prometheus",
]

#: label sets are stored as sorted ``((key, value), ...)`` tuples — hashable,
#: picklable, and order-insensitive at the call site
LabelKey = tuple[tuple[str, str], ...]

#: default histogram buckets: wall-time-ish seconds (upper bounds; +Inf implied)
DEFAULT_BUCKETS = (0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: monotonically increasing stamp for gauge sets (process-local ordering;
#: cross-process ties resolve by value, see MetricsSnapshot.delta/merge)
_STAMP = itertools.count(1)


def _labels_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic accumulator (int or float increments)."""

    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = _labels_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 when never incremented)."""
        return self._values.get(_labels_key(labels), 0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())


class Gauge:
    """Point-in-time value; every ``set`` records an update stamp."""

    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, tuple[float, int]] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_labels_key(labels)] = (value, next(_STAMP))

    def add(self, delta: float, **labels: Any) -> None:
        """Adjust the gauge relative to its current value."""
        key = _labels_key(labels)
        current = self._values.get(key, (0.0, 0))[0]
        self._values[key] = (current + delta, next(_STAMP))

    def value(self, **labels: Any) -> float:
        return self._values.get(_labels_key(labels), (0.0, 0))[0]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    __slots__ = ("name", "help", "buckets", "_series")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        #: per-label-set: (per-bucket counts (+Inf last), total count, sum)
        self._series: dict[LabelKey, list] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _labels_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [[0] * (len(self.buckets) + 1), 0, 0.0]
        series[0][bisect_left(self.buckets, value)] += 1
        series[1] += 1
        series[2] += value

    def count(self, **labels: Any) -> int:
        series = self._series.get(_labels_key(labels))
        return series[1] if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_labels_key(labels))
        return series[2] if series else 0.0


@dataclass
class MetricsSnapshot:
    """Picklable, JSON-able dump of a registry's state at one instant.

    ``counters``/``gauges``/``histograms`` map metric name to
    ``{"help": ..., "series": {label_key: ...}}``; gauge series carry their
    update stamp, histogram series carry their bucket bounds.  Snapshots are
    plain data — safe to pickle across a process boundary and to diff/merge
    in any order.
    """

    counters: dict[str, dict[str, Any]] = field(default_factory=dict)
    gauges: dict[str, dict[str, Any]] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)

    def delta(self, mark: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus an earlier ``mark`` (counters/histograms).

        Gauges are point-in-time and pass through unchanged — a chunk's
        delta reports the gauge values as of the chunk's end, stamps intact,
        so merging deltas keeps latest-wins semantics.
        """
        out = MetricsSnapshot(gauges={k: _copy_metric(v) for k, v in self.gauges.items()})
        for name, metric in self.counters.items():
            old = mark.counters.get(name, {}).get("series", {})
            series = {
                key: value - old.get(key, 0)
                for key, value in metric["series"].items()
                if value != old.get(key, 0)
            }
            if series:
                out.counters[name] = {"help": metric["help"], "series": series}
        for name, metric in self.histograms.items():
            old = mark.histograms.get(name, {}).get("series", {})
            series = {}
            for key, (bucket_counts, count, total) in metric["series"].items():
                old_counts, old_count, old_sum = old.get(
                    key, ([0] * len(bucket_counts), 0, 0.0))
                if count != old_count:
                    series[key] = (
                        [n - o for n, o in zip(bucket_counts, old_counts)],
                        count - old_count, total - old_sum,
                    )
            if series:
                out.histograms[name] = {
                    "help": metric["help"], "buckets": metric["buckets"],
                    "series": series,
                }
        return out


def _copy_metric(metric: dict[str, Any]) -> dict[str, Any]:
    copied = dict(metric)
    copied["series"] = dict(metric["series"])  # gauge values are immutable tuples
    return copied


class MetricsRegistry:
    """One process's named instruments; snapshot/merge for grid workers."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration (idempotent: same name returns the same instrument) --

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, help, buckets)
        return metric

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Copy the registry's state into plain picklable data."""
        snap = MetricsSnapshot()
        for name, c in self._counters.items():
            if c._values:
                snap.counters[name] = {"help": c.help, "series": dict(c._values)}
        for name, g in self._gauges.items():
            if g._values:
                snap.gauges[name] = {"help": g.help, "series": dict(g._values)}
        for name, h in self._histograms.items():
            if h._series:
                snap.histograms[name] = {
                    "help": h.help, "buckets": h.buckets,
                    "series": {
                        key: (list(counts), count, total)
                        for key, (counts, count, total) in h._series.items()
                    },
                }
        return snap

    def merge(self, snap: MetricsSnapshot) -> None:
        """Fold a (delta) snapshot into this registry.

        Commutative and associative: counters and histogram series add;
        gauges keep the series with the higher update stamp (ties resolve
        to the larger value), so merging worker deltas in any completion
        order produces identical state.
        """
        for name, metric in snap.counters.items():
            counter = self.counter(name, metric.get("help", ""))
            for key, value in metric["series"].items():
                counter._values[key] = counter._values.get(key, 0) + value
        for name, metric in snap.gauges.items():
            gauge = self.gauge(name, metric.get("help", ""))
            for key, (value, stamp) in metric["series"].items():
                current = gauge._values.get(key)
                if current is None or (stamp, value) > (current[1], current[0]):
                    gauge._values[key] = (value, stamp)
        for name, metric in snap.histograms.items():
            hist = self.histogram(name, metric.get("help", ""),
                                  tuple(metric["buckets"]))
            for key, (counts, count, total) in metric["series"].items():
                series = hist._series.get(key)
                if series is None:
                    hist._series[key] = [list(counts), count, total]
                else:
                    series[0] = [a + b for a, b in zip(series[0], counts)]
                    series[1] += count
                    series[2] += total

    def reset(self) -> None:
        """Drop every recorded value (forked workers; tests).

        Instruments stay registered — a forked grid worker inherits the
        parent's counters copy-on-write, and resetting (rather than
        re-creating) them is what keeps merged grid metrics from
        double-counting the parent's warm-up work.
        """
        for c in self._counters.values():
            c._values.clear()
        for g in self._gauges.values():
            g._values.clear()
        for h in self._histograms.values():
            h._series.clear()


#: the process-wide registry every subsystem instruments against
REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide :data:`REGISTRY`."""
    return REGISTRY


def reset_metrics() -> None:
    """Reset the process-wide registry (forked workers; tests)."""
    REGISTRY.reset()


# ---------------------------------------------------------------------------
# exporters

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise an internal dotted name into a legal Prometheus name."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def _prom_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(snap: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snap.counters):
        metric = snap.counters[name]
        prom = _prom_name(name)
        if not prom.endswith("_total"):
            prom += "_total"
        if metric.get("help"):
            lines.append(f"# HELP {prom} {metric['help']}")
        lines.append(f"# TYPE {prom} counter")
        for key in sorted(metric["series"]):
            lines.append(f"{prom}{_prom_labels(key)} {_prom_value(metric['series'][key])}")
    for name in sorted(snap.gauges):
        metric = snap.gauges[name]
        prom = _prom_name(name)
        if metric.get("help"):
            lines.append(f"# HELP {prom} {metric['help']}")
        lines.append(f"# TYPE {prom} gauge")
        for key in sorted(metric["series"]):
            value, _stamp = metric["series"][key]
            lines.append(f"{prom}{_prom_labels(key)} {_prom_value(value)}")
    for name in sorted(snap.histograms):
        metric = snap.histograms[name]
        prom = _prom_name(name)
        if metric.get("help"):
            lines.append(f"# HELP {prom} {metric['help']}")
        lines.append(f"# TYPE {prom} histogram")
        bounds = list(metric["buckets"]) + [float("inf")]
        for key in sorted(metric["series"]):
            counts, count, total = metric["series"][key]
            cumulative = 0
            for bound, n in zip(bounds, counts):
                cumulative += n
                le = "+Inf" if bound == float("inf") else repr(float(bound))
                le_label = 'le="' + le + '"'
                lines.append(f"{prom}_bucket{_prom_labels(key, le_label)} {cumulative}")
            lines.append(f"{prom}_sum{_prom_labels(key)} {_prom_value(total)}")
            lines.append(f"{prom}_count{_prom_labels(key)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snap: MetricsSnapshot) -> str:
    """Render a snapshot as JSON (one sample object per labelled series)."""
    samples: list[dict[str, Any]] = []
    for name, metric in sorted(snap.counters.items()):
        for key, value in sorted(metric["series"].items()):
            samples.append({"name": name, "type": "counter",
                            "labels": dict(key), "value": value})
    for name, metric in sorted(snap.gauges.items()):
        for key, (value, _stamp) in sorted(metric["series"].items()):
            samples.append({"name": name, "type": "gauge",
                            "labels": dict(key), "value": value})
    for name, metric in sorted(snap.histograms.items()):
        for key, (counts, count, total) in sorted(metric["series"].items()):
            samples.append({
                "name": name, "type": "histogram", "labels": dict(key),
                "buckets": list(metric["buckets"]), "counts": list(counts),
                "count": count, "sum": total,
            })
    return json.dumps({"schema": 1, "samples": samples}, indent=2) + "\n"


_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$"
)
_PROM_LABEL = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:\\.|[^"\\])*)"')


def parse_prometheus(text: str) -> list[dict[str, Any]]:
    """Parse Prometheus exposition text into ``{name, labels, value}`` samples.

    Accepts everything :func:`to_prometheus` emits (used by ``repro status``
    and the CI artifact check); raises :class:`ValueError` on a malformed
    sample line.
    """
    samples = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _PROM_LINE.match(line)
        if m is None:
            raise ValueError(f"malformed Prometheus sample on line {lineno}: {line!r}")
        raw = m.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        labels = {
            lm.group("k"): lm.group("v").replace('\\"', '"').replace("\\\\", "\\")
            for lm in _PROM_LABEL.finditer(m.group("labels") or "")
        }
        samples.append({"name": m.group("name"), "labels": labels, "value": value})
    return samples


def summarize(samples: Iterable[dict[str, Any]],
              name: str, label: Optional[tuple[str, str]] = None) -> float:
    """Sum the values of every parsed sample matching ``name`` (and label)."""
    total = 0.0
    for sample in samples:
        if sample["name"] != name:
            continue
        if label is not None and sample["labels"].get(label[0]) != label[1]:
            continue
        total += sample["value"]
    return total
