"""Live grid progress: structured events from ``run_cells`` + a renderer.

:func:`repro.experiments.parallel.run_cells` accepts a ``progress`` sink — a
callable receiving one plain-dict event per grid milestone — and drives it
through a :class:`GridProgress`, which stamps every event with completion
counts, elapsed wall time, an ETA extrapolated from the observed per-cell
rate, and aggregate throughput (cells/s and simulated instructions/s).

Event names and fields:

* ``grid-start`` — ``cells`` (batch size), ``cached`` (served before any
  simulation), ``pending`` (cells that will actually run);
* ``cell-start`` — ``index``, ``workload``, ``policy`` (serial execution
  only: a pool worker's start is not observable from the parent);
* ``cell-finish`` — ``index``, ``workload``, ``policy``, ``cached``,
  ``instructions``, ``done``/``cells``, ``elapsed``, ``eta_seconds``,
  ``cells_per_second``, ``instructions_per_second``;
* ``cell-failed`` — ``indices`` (the failed chunk's cells), ``error``;
* ``grid-end`` — ``cells``, ``cached``, ``elapsed``, final throughput.

Events are plain data so they can drive a terminal renderer
(:func:`progress_printer`), a log forwarder, or a future async job API
without re-deriving anything from simulator state.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Any, Callable, Optional, TextIO

__all__ = ["GridProgress", "ProgressSink", "progress_printer"]

#: a progress sink receives one structured event dict per milestone
ProgressSink = Callable[[dict[str, Any]], None]


class GridProgress:
    """Builds structured progress events for one ``run_cells`` batch."""

    def __init__(self, sink: ProgressSink):
        self.sink = sink
        self.cells = 0
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.instructions = 0
        self._t0 = perf_counter()

    def _emit(self, event: str, **fields: Any) -> None:
        payload = {"event": event, **fields}
        self.sink(payload)

    def start(self, cells: int, cached: int) -> None:
        self.cells = cells
        self.done = self.cached = cached
        self._t0 = perf_counter()
        self._emit("grid-start", cells=cells, cached=cached, pending=cells - cached)

    def cell_start(self, index: int, workload: str, policy: str) -> None:
        self._emit("cell-start", index=index, workload=workload, policy=policy)

    def cell_finish(self, index: int, workload: str, policy: str, *,
                    cached: bool, instructions: int) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        self.instructions += instructions
        elapsed = perf_counter() - self._t0
        simulated = self.done - self.cached
        remaining = self.cells - self.done
        # ETA from the simulated-cell rate: cached cells land ~instantly, so
        # extrapolating from them would wildly undershoot
        eta: Optional[float] = None
        if remaining == 0:
            eta = 0.0
        elif simulated > 0 and elapsed > 0:
            eta = elapsed / simulated * remaining
        self._emit(
            "cell-finish",
            index=index, workload=workload, policy=policy, cached=cached,
            instructions=instructions, done=self.done, cells=self.cells,
            elapsed=elapsed, eta_seconds=eta,
            cells_per_second=self.done / elapsed if elapsed > 0 else None,
            instructions_per_second=self.instructions / elapsed if elapsed > 0 else None,
        )

    def cell_failed(self, indices: list[int], error: BaseException) -> None:
        self.failed += len(indices)
        self._emit("cell-failed", indices=list(indices),
                   error=f"{type(error).__name__}: {error}")

    def end(self) -> None:
        elapsed = perf_counter() - self._t0
        self._emit(
            "grid-end",
            cells=self.cells, cached=self.cached, failed=self.failed,
            elapsed=elapsed,
            cells_per_second=self.done / elapsed if elapsed > 0 else None,
            instructions_per_second=self.instructions / elapsed if elapsed > 0 else None,
        )


def _fmt_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "eta ?"
    if eta >= 90:
        return f"eta {eta / 60:.1f}m"
    return f"eta {eta:.1f}s"


def progress_printer(stream: Optional[TextIO] = None) -> ProgressSink:
    """A sink rendering progress events as single stderr lines.

    One short line per event keeps the output honest on dumb terminals and
    in CI logs (no cursor tricks), while a TTY still reads as a live feed.
    """
    out = stream if stream is not None else sys.stderr

    def sink(event: dict[str, Any]) -> None:
        kind = event["event"]
        if kind == "grid-start":
            out.write(f"grid: {event['cells']} cell(s), "
                      f"{event['cached']} from cache, {event['pending']} to run\n")
        elif kind == "cell-finish":
            tag = "cache" if event["cached"] else "ran"
            rate = event["instructions_per_second"]
            rate_s = f" {rate / 1000:.0f}k instr/s" if rate else ""
            out.write(
                f"[{event['done']}/{event['cells']}] "
                f"{event['workload']}/{event['policy']} ({tag}) "
                f"{_fmt_eta(event['eta_seconds'])}{rate_s}\n"
            )
        elif kind == "cell-failed":
            out.write(f"grid: cell(s) {event['indices']} failed: {event['error']}\n")
        elif kind == "grid-end":
            rate = event["cells_per_second"]
            out.write(
                f"grid: done in {event['elapsed']:.2f}s"
                + (f" ({rate:.2f} cells/s)" if rate else "")
                + (f", {event['failed']} failed" if event["failed"] else "")
                + "\n"
            )
        out.flush()

    return sink
