"""The MOKA Page-Cross Filter (Section III).

:class:`PerceptronFilter` assembles the five hardware components of
Section III-B: per-program-feature hashed perceptron weight tables, one
saturating counter per system feature, the virtual and physical update
buffers, and a threshold policy (static or adaptive).  DRIPPER and the PPF
comparator are both instances of this class with different configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.features import ProgramFeature, get_feature
from repro.core.perceptron import SaturatingCounter, WeightTable
from repro.core.policies import Decision, PageCrossPolicy
from repro.core.system_features import SystemFeatureSpec, get_system_feature
from repro.core.system_state import EpochStats, SystemState
from repro.core.thresholds import AdaptiveThreshold, StaticThreshold, ThresholdConfig
from repro.core.update_buffers import TrainingRecord, UpdateBuffer

#: address-tag bits stored per update-buffer entry (Table III: 36-bit line tag)
_UB_TAG_BITS = 36
#: cache lines per 4KB page as a shift (vUB matches at page granularity)
_PAGE_LINE_SHIFT = 6
#: per-entry metadata bits (hash index + system-feature mask; Table III: 12)
_UB_META_BITS = 12


@dataclass
class FilterConfig:
    """Configuration of a perceptron page-cross filter.

    ``program_features`` entries are feature names from the shared registry,
    or :class:`~repro.core.features.ProgramFeature` instances for custom /
    prefetcher-specialized features (``repro.core.specialized``).
    """

    program_features: tuple[str | ProgramFeature, ...]
    system_features: tuple[str, ...] = ()
    #: per-system-feature activation-threshold overrides (None -> spec default)
    system_thresholds: dict[str, float] = field(default_factory=dict)
    weight_table_entries: int = 512
    weight_bits: int = 5
    vub_entries: int = 4
    pub_entries: int = 128
    adaptive: bool = True
    threshold: ThresholdConfig = field(default_factory=ThresholdConfig)
    static_threshold: int = 0


class PerceptronFilter(PageCrossPolicy):
    """A Page-Cross Filter built from the MOKA framework."""

    name = "moka-filter"

    def __init__(self, config: FilterConfig, name: str | None = None):
        self.config = config
        if name is not None:
            self.name = name
        self.features: list[ProgramFeature] = [
            f if isinstance(f, ProgramFeature) else get_feature(f)
            for f in config.program_features
        ]
        self.tables: list[WeightTable] = [
            WeightTable(config.weight_table_entries, config.weight_bits) for _ in self.features
        ]
        self.sys_specs: list[SystemFeatureSpec] = [
            get_system_feature(n) for n in config.system_features
        ]
        self.sys_weights: dict[str, SaturatingCounter] = {
            spec.name: SaturatingCounter(config.weight_bits) for spec in self.sys_specs
        }
        self.vub = UpdateBuffer(config.vub_entries)
        self.pub = UpdateBuffer(config.pub_entries)
        if config.adaptive:
            self.threshold: AdaptiveThreshold | StaticThreshold = AdaptiveThreshold(config.threshold)
        else:
            self.threshold = StaticThreshold(config.static_threshold)
        # instrumentation
        self.predictions = 0
        self.permits = 0
        self.positive_updates = 0
        self.negative_updates = 0

    # -- prediction (Figure 6) ------------------------------------------------

    def decide(self, req: PrefetchRequest, ctx: FeatureContext, state: SystemState) -> Decision:
        """The four-stage prediction of Figure 6."""
        self.predictions += 1
        # stage 1: extract features, hash, read weights
        indexes: list[int] = []
        total = 0
        for feature, table in zip(self.features, self.tables):
            idx = feature.index(req, ctx, table.index_bits)
            indexes.append(idx)
            total += table.weights[idx]
        # stage 2: gate system-feature weights on the system state
        active: list[str] = []
        overrides = self.config.system_thresholds
        for spec in self.sys_specs:
            if spec.active(state, overrides.get(spec.name)):
                total += self.sys_weights[spec.name].value
                active.append(spec.name)
        # stages 3+4: compare the cumulative weight with the threshold
        issue = total > self.threshold.effective(state)
        if issue:
            self.permits += 1
        return Decision(issue, TrainingRecord(tuple(indexes), tuple(active)))

    # -- training (Figure 7) ------------------------------------------------

    def _train(self, record: TrainingRecord, positive: bool) -> None:
        for table, idx in zip(self.tables, record.program_indexes):
            table.train(idx, positive)
        for sf_name in record.system_features:
            counter = self.sys_weights[sf_name]
            if positive:
                counter.increment()
            else:
                counter.decrement()
        if positive:
            self.positive_updates += 1
        else:
            self.negative_updates += 1

    def on_discarded(self, virt_line: int, record: Optional[TrainingRecord]) -> None:
        """Track a discarded page-cross prefetch for false-negative training."""
        if record is not None:
            # vUB entries are matched at page granularity: a later demand miss
            # anywhere in the discarded prefetch's page is the false-negative
            # signal (this is what lets a 4-entry vUB catch a page-cross
            # prefetch whose demand arrives tens of accesses later).
            self.vub.insert(virt_line >> _PAGE_LINE_SHIFT, record)

    def on_issued(self, phys_line: int, record: Optional[TrainingRecord]) -> None:
        """Track an issued page-cross prefetch for usefulness training."""
        if record is not None:
            self.pub.insert(phys_line, record)

    def on_demand_miss(self, virt_line: int) -> None:
        """vUB check: a matching miss means the discard was a false negative."""
        record = self.vub.pop(virt_line >> _PAGE_LINE_SHIFT)
        if record is not None:
            # false negative: the discarded page-cross prefetch would have
            # covered this miss -> positive training
            self._train(record, positive=True)

    def on_pcb_hit(self, phys_line: int) -> None:
        """pUB positive event: the issued prefetch served a demand hit."""
        record = self.pub.pop(phys_line)
        if record is not None:
            self._train(record, positive=True)

    def on_pcb_evict_unused(self, phys_line: int) -> None:
        """pUB negative event: the issued prefetch was evicted unused."""
        record = self.pub.pop(phys_line)
        if record is not None:
            self._train(record, positive=False)

    def on_epoch(self, epoch: EpochStats) -> None:
        """Forward epoch statistics to the thresholding scheme."""
        self.threshold.on_epoch_end(epoch)

    # -- storage accounting (Table III) --------------------------------------

    def storage_bits(self) -> int:
        """Hardware budget across tables, counters, and buffers."""
        bits = sum(table.storage_bits() for table in self.tables)
        bits += len(self.sys_weights) * self.config.weight_bits
        entry = _UB_TAG_BITS + _UB_META_BITS
        bits += self.config.vub_entries * entry
        bits += self.config.pub_entries * entry
        return bits

    def storage_kib(self) -> float:
        """Hardware budget in KiB (compare with Table III)."""
        return self.storage_bits() / 8 / 1024


def single_feature_filter(
    feature_name: str, *, system: bool = False, adaptive: bool = True
) -> PerceptronFilter:
    """Build a filter driven by one feature only (Figure 14 comparison)."""
    if system:
        config = FilterConfig(program_features=(), system_features=(feature_name,), adaptive=adaptive)
    else:
        config = FilterConfig(program_features=(feature_name,), adaptive=adaptive)
    return PerceptronFilter(config, name=f"single:{feature_name}")
