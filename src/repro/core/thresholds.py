"""Activation-threshold policies (Section III-C3, Figure 8).

The filter issues a page-cross prefetch when the cumulative weight exceeds
the activation threshold ``T_a``.  :class:`StaticThreshold` keeps ``T_a``
fixed (what PPF does); :class:`AdaptiveThreshold` implements MOKA's
epoch-based scheme: in-epoch *extreme behaviour* overrides plus end-of-epoch
adjustment from page-cross accuracy and IPC movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system_state import EpochStats, SystemState

#: effective threshold meaning "page-cross prefetching disabled this phase"
DISABLE = 10**9


@dataclass(frozen=True)
class ThresholdConfig:
    """Tunables of the adaptive scheme (names follow Figure 8)."""

    # the ladder spans the cumulative-weight range (one saturated 5-bit
    # program weight plus two gated system weights reaches +/-45), so t_high
    # keeps real discriminating power during low-accuracy phases
    t_low: int = -8
    t_medium: int = 8
    t_high: int = 24
    t_default: int = 0
    #: accuracy below which T_a is forced high (T1) / medium (T2)
    accuracy_low: float = 0.25
    accuracy_medium: float = 0.50
    #: L1I pressure above which T_a is raised to at least t_medium
    l1i_mpki_high: float = 5.0
    #: "very high LLC pressure" -> disable page-cross prefetching this phase
    llc_missrate_disable: float = 0.85
    llc_mpki_disable: float = 60.0
    #: "high ROB pressure and many in-flight L1D misses" -> t_high on the spot.
    #: The bars mark genuinely extreme phases (near-saturated MSHRs while the
    #: ROB is blocked most of the time), not the steady state of every
    #: miss-heavy workload.
    rob_stall_high: float = 0.85
    inflight_misses_high: int = 15
    #: relative IPC drop between epochs that forces at least t_medium
    ipc_drop_fraction: float = 0.05
    #: step by which T_a relaxes toward t_default after an accurate epoch
    #: (scales the paper's +/-1 rule to this ladder's wider range)
    relax_step: int = 4


class StaticThreshold:
    """Fixed activation threshold (PPF-style)."""

    def __init__(self, value: int = 0):
        self.value = value

    @property
    def current(self) -> int:
        """The fixed threshold."""
        return self.value

    def effective(self, state: SystemState) -> int:
        """Static: the system state never changes the threshold."""
        return self.value

    def on_epoch_end(self, epoch: EpochStats) -> None:
        """Static thresholds ignore epoch feedback."""


class AdaptiveThreshold:
    """MOKA's epoch-based adaptive thresholding scheme."""

    def __init__(self, config: ThresholdConfig | None = None):
        self.config = config or ThresholdConfig()
        self._ta = self.config.t_default
        self._prev_accuracy: float | None = None
        self._prev_ipc: float | None = None
        self.epochs_seen = 0
        self.disable_events = 0

    @property
    def current(self) -> int:
        """The base T_a (before in-epoch overrides)."""
        return self._ta

    def effective(self, state: SystemState) -> int:
        """T_a used for this decision, after extreme-behaviour overrides."""
        cfg = self.config
        # very high LLC pressure while page-cross prefetching is not proving
        # itself: stop crossing pages for the phase; vUB training re-enables
        # it once false negatives start showing up.
        if (
            state.llc_miss_rate > cfg.llc_missrate_disable
            and state.llc_mpki > cfg.llc_mpki_disable
            and state.last_epoch.pgc_accuracy < cfg.accuracy_low
        ):
            self.disable_events += 1
            return DISABLE
        ta = self._ta
        # high ROB pressure + many in-flight L1D misses: only very confident
        # page-cross prefetches may add traffic.
        if (
            state.rob_stall_fraction > cfg.rob_stall_high
            and state.l1d_inflight_misses > cfg.inflight_misses_high
        ):
            ta = max(ta, cfg.t_high)
        # low page-cross accuracy so far: be very strict.
        if state.last_epoch.pgc_accuracy < cfg.accuracy_low:
            ta = max(ta, cfg.t_high)
        # high L1I pressure: avoid contending with demand instruction
        # accesses in the L2C.
        if state.l1i_mpki > cfg.l1i_mpki_high:
            ta = max(ta, cfg.t_medium)
        return ta

    def on_epoch_end(self, epoch: EpochStats) -> None:
        """End-of-epoch adjustment (Figure 8, steps 2-4)."""
        cfg = self.config
        self.epochs_seen += 1
        accuracy = epoch.pgc_accuracy
        if accuracy < cfg.accuracy_low:
            self._ta = cfg.t_high
        elif accuracy < cfg.accuracy_medium:
            self._ta = max(self._ta, cfg.t_medium)
        elif self._ta > cfg.t_default:
            # sustained accuracy: relax the strict posture left over from an
            # earlier inaccurate phase
            self._ta = max(cfg.t_default, self._ta - cfg.relax_step)
        if self._prev_accuracy is not None:
            if accuracy > self._prev_accuracy:
                self._ta += 1
            elif accuracy < self._prev_accuracy:
                self._ta -= 1
        # The IPC-drop rule is gated on page-cross accuracy: in multi-core
        # mixes, inter-core interference makes epoch IPC noisy (drops on a
        # third of epochs), and blaming accurate page-cross prefetching for
        # them would throttle the filter into uselessness.
        if (
            self._prev_ipc is not None
            and epoch.ipc < self._prev_ipc * (1.0 - cfg.ipc_drop_fraction)
            and accuracy < cfg.accuracy_medium
        ):
            self._ta = max(self._ta, cfg.t_medium)
        self._ta = max(cfg.t_low, min(cfg.t_high, self._ta))
        self._prev_accuracy = accuracy
        self._prev_ipc = epoch.ipc
