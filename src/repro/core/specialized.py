"""Prefetcher-specialized program features (the paper's extension hook).

Section III-D1: "Crafting specialized features that exploit metadata of
specific prefetchers (e.g., lookahead) has the potential to further improve
the effectiveness of a Page-Cross Filter."  MOKA's shipped features are
deliberately prefetcher-independent; this module implements the extension
for prefetchers that attach metadata to their requests.

A prefetcher opts in by setting ``request.meta`` (e.g. the degree index of
the request within a burst, or SPP-style lookahead depth).  Specialized
features read that metadata and fall back to 0 when absent, so a filter
using them still works with any prefetcher.  Pass the feature *objects* to
``FilterConfig.program_features`` — they deliberately live outside the
prefetcher-independent registry::

    config = FilterConfig(program_features=(
        "Delta", SPECIALIZED_FEATURES["Delta+DegreeIndex"],
    ))
"""

from __future__ import annotations

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.features import ProgramFeature


def _meta(req: PrefetchRequest) -> int:
    return getattr(req, "meta", 0) or 0


def _d(req: PrefetchRequest) -> int:
    return req.delta & 0xFFF


SPECIALIZED_FEATURES: dict[str, ProgramFeature] = {
    feature.name: feature
    for feature in (
        # degree index / lookahead depth of the request within its burst:
        # deeper requests are more speculative, so the filter can learn a
        # stricter posture for them
        ProgramFeature("DegreeIndex", lambda r, c: _meta(r)),
        ProgramFeature("Delta+DegreeIndex", lambda r, c: _d(r) + (_meta(r) << 8)),
        ProgramFeature("PC^DegreeIndex", lambda r, c: r.pc ^ (_meta(r) << 4)),
    )
}


def attach_degree_metadata(requests: list[PrefetchRequest]) -> list[PrefetchRequest]:
    """Tag each request in a burst with its position (1-based degree index)."""
    for index, req in enumerate(requests, start=1):
        req.meta = index
    return requests
