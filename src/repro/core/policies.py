"""Page-cross policies: the common interface plus the static baselines.

A *policy* answers one question — should this page-cross prefetch be issued?
— and receives the training callbacks of Figure 7.  Static baselines
(Section V-A) ignore the callbacks:

* :class:`PermitPgc` — always issue (what vendors may do);
* :class:`DiscardPgc` — never issue (what academic prefetchers do);
* :class:`DiscardPtw` — issue only when the translation is already TLB
  resident (never trigger a speculative walk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.system_state import EpochStats, SystemState
from repro.core.update_buffers import TrainingRecord


@dataclass
class Decision:
    """Outcome of a policy consultation for one page-cross prefetch."""

    issue: bool
    record: Optional[TrainingRecord] = None


class PageCrossPolicy:
    """Base class: decide + training hooks (all hooks default to no-ops)."""

    name = "base"
    #: when True the simulator discards the request if its translation is not
    #: already TLB resident instead of starting a speculative walk
    requires_translation_hit = False
    #: when True the simulator refreshes ``state.l1d_inflight_misses`` before
    #: every decide() call; policies whose decision ignores system state opt
    #: out so the engine can skip the (linear) in-flight recount
    wants_inflight_feature = True

    def decide(self, req: PrefetchRequest, ctx: FeatureContext, state: SystemState) -> Decision:
        """Should this page-cross prefetch be issued?"""
        raise NotImplementedError

    # -- training hooks (Figure 7) ----------------------------------------

    def on_discarded(self, virt_line: int, record: Optional[TrainingRecord]) -> None:
        """A page-cross prefetch was discarded (virtual line address)."""

    def on_issued(self, phys_line: int, record: Optional[TrainingRecord]) -> None:
        """A page-cross prefetch was issued (physical line address)."""

    def on_demand_miss(self, virt_line: int) -> None:
        """A demand L1D miss occurred (virtual line address)."""

    def on_pcb_hit(self, phys_line: int) -> None:
        """A PCB block served its first demand hit."""

    def on_pcb_evict_unused(self, phys_line: int) -> None:
        """A PCB block was evicted without any demand hit."""

    def on_epoch(self, epoch: EpochStats) -> None:
        """An adaptive-thresholding epoch ended."""

    def storage_bits(self) -> int:
        """Hardware budget of the policy (0 for static policies)."""
        return 0


class PermitPgc(PageCrossPolicy):
    """Always permit page-cross prefetches (Permit PGC)."""

    name = "permit-pgc"
    wants_inflight_feature = False

    def decide(self, req: PrefetchRequest, ctx: FeatureContext, state: SystemState) -> Decision:
        """Always issue."""
        return Decision(True)


class DiscardPgc(PageCrossPolicy):
    """Always discard page-cross prefetches (Discard PGC, the baseline)."""

    name = "discard-pgc"
    wants_inflight_feature = False

    def decide(self, req: PrefetchRequest, ctx: FeatureContext, state: SystemState) -> Decision:
        """Always discard."""
        return Decision(False)


class DiscardPtw(PageCrossPolicy):
    """Permit page-cross prefetches only on a TLB hit (Discard PTW)."""

    name = "discard-ptw"
    requires_translation_hit = True
    wants_inflight_feature = False

    def decide(self, req: PrefetchRequest, ctx: FeatureContext, state: SystemState) -> Decision:
        """Issue; the engine discards it on a TLB miss instead of walking."""
        return Decision(True)
