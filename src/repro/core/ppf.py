"""PPF comparator (Bhatia et al., ISCA'19) converted to a page-cross filter.

Per Section V-A, the original PPF filters inaccurate L2C prefetches from SPP
using program features, several of which are SPP-specific (signature, depth).
The conversion drops the SPP-specific features and keeps the
prefetcher-independent ones; the result differs from DRIPPER in exactly the
ways Section VI enumerates:

* program features only — no system features;
* a static activation threshold (``PPF``); ``PPF+Dthr`` swaps in MOKA's
  adaptive thresholding for a direct comparison;
* a generic feature set not selected for page-cross behaviour (in
  particular, no ``Delta``-based feature).
"""

from __future__ import annotations

from repro.core.filter import FilterConfig, PerceptronFilter
from repro.core.thresholds import ThresholdConfig

#: PPF's prefetcher-independent program features after dropping SPP metadata
#: (originals kept: PC, address, cache-line offset, PC xor-chains, page bits).
PPF_FEATURES: tuple[str, ...] = (
    "PC",
    "VA",
    "CacheLineOffset",
    "PC+CacheLineOffset",
    "PC_i-2^PC_i-1^PC_i",
    "PC^(VA>>12)",
)


def make_ppf(threshold: int = 0) -> PerceptronFilter:
    """PPF as a page-cross filter (static threshold)."""
    config = FilterConfig(
        program_features=PPF_FEATURES,
        system_features=(),
        weight_table_entries=512,
        weight_bits=5,
        vub_entries=4,
        pub_entries=128,
        adaptive=False,
        static_threshold=threshold,
    )
    return PerceptronFilter(config, name="ppf")


def make_ppf_dthr(threshold: ThresholdConfig | None = None) -> PerceptronFilter:
    """PPF+Dthr: PPF's features with MOKA's adaptive thresholding."""
    config = FilterConfig(
        program_features=PPF_FEATURES,
        system_features=(),
        weight_table_entries=512,
        weight_bits=5,
        vub_entries=4,
        pub_entries=128,
        adaptive=True,
        threshold=threshold or ThresholdConfig(),
    )
    return PerceptronFilter(config, name="ppf+dthr")
