"""Runtime system-state view consumed by system features and thresholding.

The simulator refreshes a :class:`SystemState` once per epoch with the
previous epoch's rates (hardware would sample counters the same way) and
keeps a couple of live fields (in-flight misses, ROB pressure) current.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EpochStats:
    """Statistics gathered over one finished epoch (Figure 8, step 1)."""

    instructions: int = 0
    cycles: float = 0.0
    ipc: float = 0.0
    pgc_useful: int = 0
    pgc_useless: int = 0
    llc_miss_rate: float = 0.0
    llc_mpki: float = 0.0
    l1i_mpki: float = 0.0
    rob_stall_fraction: float = 0.0

    @property
    def pgc_accuracy(self) -> float:
        """Accuracy of page-cross prefetching during the epoch.

        Defined only when the epoch issued page-cross prefetches; epochs
        without any are reported as perfectly accurate (nothing to punish).
        """
        total = self.pgc_useful + self.pgc_useless
        return self.pgc_useful / total if total else 1.0


@dataclass
class SystemState:
    """Previous-epoch rates plus live pressure signals."""

    l1d_mpki: float = 0.0
    l1d_miss_rate: float = 0.0
    llc_mpki: float = 0.0
    llc_miss_rate: float = 0.0
    stlb_mpki: float = 0.0
    stlb_miss_rate: float = 0.0
    l1i_mpki: float = 0.0
    ipc: float = 0.0
    # live signals
    l1d_inflight_misses: int = 0
    rob_stall_fraction: float = 0.0
    last_epoch: EpochStats = field(default_factory=EpochStats)
