"""MOKA framework and DRIPPER — the paper's primary contribution."""

from repro.core.context import FeatureContext, PrefetchRequest
from repro.core.dripper import (
    DRIPPER_FEATURES,
    dripper_config,
    make_dripper,
    make_dripper_sf,
    storage_overhead_kib,
)
from repro.core.features import FEATURES, TABLE_I_FEATURES, ProgramFeature, get_feature
from repro.core.filter import FilterConfig, PerceptronFilter, single_feature_filter
from repro.core.introspect import filter_state, format_filter_state, top_weights, weight_summary
from repro.core.perceptron import SaturatingCounter, WeightTable
from repro.core.policies import (
    Decision,
    DiscardPgc,
    DiscardPtw,
    PageCrossPolicy,
    PermitPgc,
)
from repro.core.ppf import make_ppf, make_ppf_dthr
from repro.core.system_features import SYSTEM_FEATURES, SystemFeatureSpec, get_system_feature
from repro.core.system_state import EpochStats, SystemState
from repro.core.thresholds import DISABLE, AdaptiveThreshold, StaticThreshold, ThresholdConfig
from repro.core.update_buffers import TrainingRecord, UpdateBuffer

__all__ = [
    "FeatureContext",
    "PrefetchRequest",
    "DRIPPER_FEATURES",
    "dripper_config",
    "make_dripper",
    "make_dripper_sf",
    "storage_overhead_kib",
    "FEATURES",
    "TABLE_I_FEATURES",
    "ProgramFeature",
    "get_feature",
    "FilterConfig",
    "PerceptronFilter",
    "single_feature_filter",
    "filter_state",
    "format_filter_state",
    "top_weights",
    "weight_summary",
    "SaturatingCounter",
    "WeightTable",
    "Decision",
    "DiscardPgc",
    "DiscardPtw",
    "PageCrossPolicy",
    "PermitPgc",
    "make_ppf",
    "make_ppf_dthr",
    "SYSTEM_FEATURES",
    "SystemFeatureSpec",
    "get_system_feature",
    "EpochStats",
    "SystemState",
    "DISABLE",
    "AdaptiveThreshold",
    "StaticThreshold",
    "ThresholdConfig",
    "TrainingRecord",
    "UpdateBuffer",
]
