"""Hashed-perceptron weight storage.

Weights are n-bit signed saturating counters (5-bit, i.e. [-16, 15], per
Table III), one table per program feature plus one standalone counter per
system feature.
"""

from __future__ import annotations


class SaturatingCounter:
    """One n-bit signed saturating counter (a system-feature weight)."""

    __slots__ = ("value", "lo", "hi")

    def __init__(self, bits: int = 5, initial: int = 0):
        self.lo = -(1 << (bits - 1))
        self.hi = (1 << (bits - 1)) - 1
        if not self.lo <= initial <= self.hi:
            raise ValueError(f"initial {initial} outside [{self.lo}, {self.hi}]")
        self.value = initial

    def increment(self, amount: int = 1) -> None:
        """Add with saturation at the high bound."""
        self.value = min(self.hi, self.value + amount)

    def decrement(self, amount: int = 1) -> None:
        """Subtract with saturation at the low bound."""
        self.value = max(self.lo, self.value - amount)


class WeightTable:
    """One feature's table of saturating perceptron weights."""

    __slots__ = ("weights", "size", "bits", "lo", "hi", "index_bits")

    def __init__(self, entries: int = 512, bits: int = 5):
        if entries & (entries - 1):
            raise ValueError(f"table size must be a power of two, got {entries}")
        self.size = entries
        self.bits = bits
        self.index_bits = entries.bit_length() - 1
        self.lo = -(1 << (bits - 1))
        self.hi = (1 << (bits - 1)) - 1
        self.weights = [0] * entries

    def read(self, index: int) -> int:
        """Weight currently stored at `index`."""
        return self.weights[index]

    def train(self, index: int, positive: bool) -> None:
        """Move the weight one step toward the observed outcome (saturating)."""
        w = self.weights[index]
        if positive:
            if w < self.hi:
                self.weights[index] = w + 1
        else:
            if w > self.lo:
                self.weights[index] = w - 1

    def storage_bits(self) -> int:
        """Hardware cost of this table."""
        return self.size * self.bits
