"""Virtual and Physical Update Buffers (Section III-B).

Both buffers remember, per pending decision, the exact weight-table indexes
and the set of then-active system features, so that the later training event
updates precisely the weights that produced the decision (Figure 7).

* **vUB** (4 entries, virtual line addresses): decisions to *discard*.  A
  subsequent demand L1D miss matching a vUB entry is a false negative →
  positive training.
* **pUB** (128 entries, physical line addresses): decisions to *issue*.  A
  demand hit on the prefetched block → positive training; eviction of the
  never-hit block → negative training.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class TrainingRecord:
    """Weight-table indexes + active system features captured at decision time."""

    program_indexes: tuple[int, ...]
    system_features: tuple[str, ...]


class UpdateBuffer:
    """Fixed-capacity FIFO keyed by (virtual or physical) line address."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, TrainingRecord] = OrderedDict()

    def insert(self, line: int, record: TrainingRecord) -> None:
        """Remember a decision's training state (refreshes on re-insert)."""
        if line in self._entries:
            self._entries.move_to_end(line)
            self._entries[line] = record
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[line] = record

    def pop(self, line: int) -> TrainingRecord | None:
        """Remove and return the record for `line` (None on miss)."""
        return self._entries.pop(line, None)

    def peek(self, line: int) -> TrainingRecord | None:
        """Read without removing."""
        return self._entries.get(line)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: int) -> bool:
        return line in self._entries
