"""Offline feature selection (Section III-D3).

The procedure that produced Table II:

1. evaluate every candidate program and system feature as a single-feature
   Page-Cross Filter, measuring geomean IPC speedup over Discard PGC across
   a workload set;
2. sort features by that speedup;
3. greedily grow the selected set: a feature joins if it improves geomean
   IPC by more than ``improvement_threshold`` (0.3% in the paper) over the
   best configuration so far.

Full-scale selection over 60 features x 218 workloads is expensive; callers
pass a workload sample (and the bench uses a reduced candidate list).
Imports of the runner are local to avoid a core <-> experiments cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.filter import FilterConfig, PerceptronFilter
from repro.core.system_features import SYSTEM_FEATURES


@dataclass
class FeatureScore:
    """Geomean IPC speedup of one single-feature filter over Discard PGC."""

    name: str
    is_system: bool
    speedup: float


@dataclass
class SelectionReport:
    """Outcome of the greedy selection."""

    prefetcher: str
    scores: list[FeatureScore] = field(default_factory=list)
    selected_program: list[str] = field(default_factory=list)
    selected_system: list[str] = field(default_factory=list)
    final_speedup: float = 1.0


def _make_filter(program: Sequence[str], system: Sequence[str]) -> PerceptronFilter:
    config = FilterConfig(program_features=tuple(program), system_features=tuple(system))
    return PerceptronFilter(config, name="selection-candidate")


def _evaluate(program, system, workloads, prefetcher, warmup, sim, baselines):
    from repro.cpu.simulator import SimConfig, simulate
    from repro.experiments.metrics import geomean_speedup

    results = []
    for workload in workloads:
        config = SimConfig(
            prefetcher=prefetcher,
            policy_factory=lambda: _make_filter(program, system),
            warmup_instructions=warmup,
            sim_instructions=sim,
        )
        results.append(simulate(workload, config))
    return geomean_speedup(results, baselines)


def select_features(
    prefetcher: str,
    workloads: Sequence,
    *,
    program_candidates: Optional[Sequence[str]] = None,
    system_candidates: Optional[Sequence[str]] = None,
    improvement_threshold: float = 0.003,
    warmup_instructions: int = 10_000,
    sim_instructions: int = 30_000,
    max_features: int = 4,
) -> SelectionReport:
    """Run the greedy feature-selection procedure for one prefetcher."""
    from repro.core.features import FEATURES
    from repro.cpu.simulator import SimConfig, simulate
    from repro.core.policies import DiscardPgc

    if program_candidates is None:
        program_candidates = sorted(FEATURES)
    if system_candidates is None:
        system_candidates = sorted(SYSTEM_FEATURES)

    baselines = []
    for workload in workloads:
        config = SimConfig(
            prefetcher=prefetcher,
            policy_factory=DiscardPgc,
            warmup_instructions=warmup_instructions,
            sim_instructions=sim_instructions,
        )
        baselines.append(simulate(workload, config))

    report = SelectionReport(prefetcher=prefetcher)
    for name in program_candidates:
        speedup = _evaluate([name], [], workloads, prefetcher, warmup_instructions, sim_instructions, baselines)
        report.scores.append(FeatureScore(name, False, speedup))
    for name in system_candidates:
        speedup = _evaluate([], [name], workloads, prefetcher, warmup_instructions, sim_instructions, baselines)
        report.scores.append(FeatureScore(name, True, speedup))

    report.scores.sort(key=lambda s: -s.speedup)
    best_speedup = 1.0
    for score in report.scores:
        if len(report.selected_program) + len(report.selected_system) >= max_features:
            break
        trial_program = report.selected_program + ([score.name] if not score.is_system else [])
        trial_system = report.selected_system + ([score.name] if score.is_system else [])
        if not trial_program and not trial_system:
            continue
        speedup = _evaluate(
            trial_program, trial_system, workloads, prefetcher,
            warmup_instructions, sim_instructions, baselines,
        )
        if speedup > best_speedup * (1.0 + improvement_threshold) or not (
            report.selected_program or report.selected_system
        ):
            if speedup > best_speedup or not (report.selected_program or report.selected_system):
                report.selected_program = trial_program
                report.selected_system = trial_system
                best_speedup = speedup
    report.final_speedup = best_speedup
    return report
