"""MOKA's program-feature library (Section III-D1, Table I).

A *program feature* maps the triggering load (PC, VA, history) plus the
prefetch request's delta to an integer that indexes a perceptron weight
table.  Features are prefetcher-independent by design: nothing here peeks at
prefetcher metadata.

The module provides:

* the 19 best-performing features of Table I, by name;
* the wider 55-feature exploration space of Section III-D1 (the paper does
  not enumerate all 55; we complete the space with systematic shift/xor
  combinations of the same primitives and mark which entries are Table I);
* :func:`fold_hash`, the hash used to index weight tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.context import FeatureContext, PrefetchRequest
from repro.vm.address import LINE_SHIFT, LINES_PER_PAGE_4K

#: extractor(request, context) -> integer feature value
Extractor = Callable[[PrefetchRequest, FeatureContext], int]


def fold_hash(value: int, bits: int) -> int:
    """XOR-fold a feature value into a `bits`-wide weight-table index."""
    value &= 0xFFFFFFFFFFFF
    h = value
    h ^= h >> bits
    h ^= h >> (2 * bits)
    h ^= h >> (3 * bits)
    return h & ((1 << bits) - 1)


@dataclass(frozen=True)
class ProgramFeature:
    """A named program feature."""

    name: str
    extractor: Extractor
    table_i: bool = False  # True for the Table I "best performing" subset

    def value(self, req: PrefetchRequest, ctx: FeatureContext) -> int:
        """Raw feature value for this request/context."""
        return self.extractor(req, ctx)

    def index(self, req: PrefetchRequest, ctx: FeatureContext, bits: int) -> int:
        """Weight-table index: the hashed feature value."""
        return fold_hash(self.extractor(req, ctx), bits)


def _offset(vaddr: int) -> int:
    return (vaddr >> LINE_SHIFT) & (LINES_PER_PAGE_4K - 1)


def _d(req: PrefetchRequest) -> int:
    # two's-complement-ish encoding so negative deltas hash distinctly
    return req.delta & 0xFFF


# -- Table I extractors ------------------------------------------------------
# VA/PC refer to the *triggering* demand load; Delta is the prefetch delta.

_TABLE_I: list[tuple[str, Extractor]] = [
    ("VA", lambda r, c: c.last_vaddr),
    ("VA>>12", lambda r, c: c.last_vaddr >> 12),
    ("VA>>21", lambda r, c: c.last_vaddr >> 21),
    ("CacheLineOffset", lambda r, c: _offset(c.last_vaddr)),
    ("PC", lambda r, c: r.pc),
    ("PC+CacheLineOffset", lambda r, c: r.pc + _offset(c.last_vaddr)),
    ("VA_i-2^VA_i-1^VA_i", lambda r, c: c.va_history[2] ^ c.va_history[1] ^ c.va_history[0]),
    (
        "(VA_i-2>>12)^(VA_i-1>>12)^(VA_i>>12)",
        lambda r, c: (c.va_history[2] >> 12) ^ (c.va_history[1] >> 12) ^ (c.va_history[0] >> 12),
    ),
    ("PC_i-2^PC_i-1^PC_i", lambda r, c: c.pc_history[2] ^ c.pc_history[1] ^ c.pc_history[0]),
    ("PC^VA", lambda r, c: r.pc ^ c.last_vaddr),
    ("PC^(VA>>12)", lambda r, c: r.pc ^ (c.last_vaddr >> 12)),
    ("VA^Delta", lambda r, c: c.last_vaddr ^ _d(r)),
    ("PC^Delta", lambda r, c: r.pc ^ _d(r)),
    ("(VA>>12)^Delta", lambda r, c: (c.last_vaddr >> 12) ^ _d(r)),
    ("PC^FirstPageAccess", lambda r, c: (r.pc << 1) | c.first_page_access),
    ("VA^FirstPageAccess", lambda r, c: (c.last_vaddr << 1) | c.first_page_access),
    ("(VA>>12)^FirstPageAccess", lambda r, c: ((c.last_vaddr >> 12) << 1) | c.first_page_access),
    ("CacheLineOffset+FirstPageAccess", lambda r, c: _offset(c.last_vaddr) + c.first_page_access),
    ("Delta+FirstPageAccess", lambda r, c: _d(r) + c.first_page_access),
]

# The standalone Delta feature is what DRIPPER selects for Berti (Table II);
# the paper lists it as part of the explored space.
_EXTRA_CORE: list[tuple[str, Extractor]] = [
    ("Delta", lambda r, c: _d(r)),
    ("TargetVA", lambda r, c: r.vaddr),
    ("TargetVA>>12", lambda r, c: r.vaddr >> 12),
    ("TargetCacheLineOffset", lambda r, c: _offset(r.vaddr)),
]

# Systematic combinations completing the 55-feature exploration space.
_EXPANSION: list[tuple[str, Extractor]] = [
    ("VA>>6", lambda r, c: c.last_vaddr >> 6),
    ("VA>>16", lambda r, c: c.last_vaddr >> 16),
    ("PC>>2", lambda r, c: r.pc >> 2),
    ("PC+Delta", lambda r, c: r.pc + _d(r)),
    ("PC-Delta", lambda r, c: (r.pc - _d(r)) & 0xFFFFFFFFFFFF),
    ("CacheLineOffset^Delta", lambda r, c: _offset(c.last_vaddr) ^ _d(r)),
    ("CacheLineOffset+Delta", lambda r, c: _offset(c.last_vaddr) + _d(r)),
    ("(VA>>21)^Delta", lambda r, c: (c.last_vaddr >> 21) ^ _d(r)),
    ("(VA>>21)^PC", lambda r, c: (c.last_vaddr >> 21) ^ r.pc),
    ("VA+Delta", lambda r, c: c.last_vaddr + _d(r)),
    ("(VA>>12)+Delta", lambda r, c: (c.last_vaddr >> 12) + _d(r)),
    ("PC^(VA>>21)^Delta", lambda r, c: r.pc ^ (c.last_vaddr >> 21) ^ _d(r)),
    ("PC^(VA>>12)^Delta", lambda r, c: r.pc ^ (c.last_vaddr >> 12) ^ _d(r)),
    ("PC^CacheLineOffset", lambda r, c: r.pc ^ _offset(c.last_vaddr)),
    ("PC_i-1^PC_i", lambda r, c: c.pc_history[1] ^ c.pc_history[0]),
    ("PC_i-1^Delta", lambda r, c: c.pc_history[1] ^ _d(r)),
    ("VA_i-1^VA_i", lambda r, c: c.va_history[1] ^ c.va_history[0]),
    ("(VA_i-1>>12)^(VA_i>>12)", lambda r, c: (c.va_history[1] >> 12) ^ (c.va_history[0] >> 12)),
    ("Delta^FirstPageAccess", lambda r, c: (_d(r) << 1) | c.first_page_access),
    ("PC^Delta^FirstPageAccess", lambda r, c: ((r.pc ^ _d(r)) << 1) | c.first_page_access),
    ("TargetVA^PC", lambda r, c: r.vaddr ^ r.pc),
    ("TargetVA>>12^PC", lambda r, c: (r.vaddr >> 12) ^ r.pc),
    ("TargetCacheLineOffset^PC", lambda r, c: _offset(r.vaddr) ^ r.pc),
    ("TargetCacheLineOffset+Delta", lambda r, c: _offset(r.vaddr) + _d(r)),
    ("VA_i-2^VA_i-1^VA_i^Delta", lambda r, c: c.va_history[2] ^ c.va_history[1] ^ c.va_history[0] ^ _d(r)),
    ("PC_i-2^PC_i-1^PC_i^Delta", lambda r, c: c.pc_history[2] ^ c.pc_history[1] ^ c.pc_history[0] ^ _d(r)),
    ("(VA>>12)^CacheLineOffset", lambda r, c: (c.last_vaddr >> 12) ^ _offset(c.last_vaddr)),
    ("VA>>18", lambda r, c: c.last_vaddr >> 18),
    ("PC^(VA>>6)", lambda r, c: r.pc ^ (c.last_vaddr >> 6)),
    ("PC+VA", lambda r, c: r.pc + c.last_vaddr),
    ("Delta<<6^CacheLineOffset", lambda r, c: (_d(r) << 6) ^ _offset(c.last_vaddr)),
    ("PC^Delta^CacheLineOffset", lambda r, c: r.pc ^ _d(r) ^ _offset(c.last_vaddr)),
]


def _build_registry() -> dict[str, ProgramFeature]:
    registry: dict[str, ProgramFeature] = {}
    for name, fn in _TABLE_I:
        registry[name] = ProgramFeature(name, fn, table_i=True)
    for name, fn in _EXTRA_CORE + _EXPANSION:
        registry[name] = ProgramFeature(name, fn, table_i=False)
    return registry


#: all program features by name (the full exploration space)
FEATURES: dict[str, ProgramFeature] = _build_registry()

#: the Table I "best performing" subset, in paper order
TABLE_I_FEATURES: tuple[str, ...] = tuple(name for name, _ in _TABLE_I)


def get_feature(name: str) -> ProgramFeature:
    """Look a program feature up by its registry name."""
    try:
        return FEATURES[name]
    except KeyError:
        raise KeyError(f"unknown program feature {name!r}; known: {sorted(FEATURES)}") from None
