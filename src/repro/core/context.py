"""Per-core feature context and prefetch-request descriptors.

The :class:`FeatureContext` tracks the prefetcher-independent program state
that MOKA's program features (Table I) are computed from: the last three
PCs and virtual addresses, and whether the triggering access is the first
touch of its page.  The simulator updates it on every demand L1D access.
"""

from __future__ import annotations

from repro.vm.address import LINE_SHIFT, PAGE_4K_SHIFT, LINES_PER_PAGE_4K


class PrefetchRequest:
    """A prefetch candidate produced by an L1D prefetcher."""

    __slots__ = ("vaddr", "pc", "delta", "meta")

    def __init__(self, vaddr: int, pc: int, delta: int, meta: int = 0):
        self.vaddr = vaddr
        self.pc = pc
        #: signed distance in cache lines from the triggering access
        self.delta = delta
        #: optional prefetcher-specific metadata (e.g. degree index) consumed
        #: by specialized features (repro.core.specialized)
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefetchRequest(vaddr={self.vaddr:#x}, pc={self.pc:#x}, delta={self.delta})"


class FeatureContext:
    """Rolling program state consumed by MOKA's program features."""

    __slots__ = (
        "pc_history",
        "va_history",
        "last_pc",
        "last_vaddr",
        "first_page_access",
        "_seen_pages",
        "_seen_cap",
        "_seen_tick",
    )

    def __init__(self, seen_pages_capacity: int = 512):
        self.pc_history = [0, 0, 0]  # most recent first
        self.va_history = [0, 0, 0]
        self.last_pc = 0
        self.last_vaddr = 0
        #: True when the most recent demand access was the first touch of its page
        self.first_page_access = False
        self._seen_pages: dict[int, int] = {}
        self._seen_cap = seen_pages_capacity
        self._seen_tick = 0

    def update(self, pc: int, vaddr: int) -> None:
        """Record a demand L1D access."""
        self._seen_tick += 1
        page = vaddr >> PAGE_4K_SHIFT
        # the dict is kept in touch order (every touch reinserts the key), so
        # the LRU victim — the minimum-tick page — is always the first key,
        # replacing a linear min() scan per first-touch eviction
        seen = self._seen_pages
        if page in seen:
            self.first_page_access = False
            del seen[page]
        else:
            self.first_page_access = True
            if len(seen) >= self._seen_cap:
                del seen[next(iter(seen))]
        seen[page] = self._seen_tick
        ph = self.pc_history
        vh = self.va_history
        ph[2] = ph[1]
        ph[1] = ph[0]
        ph[0] = pc
        vh[2] = vh[1]
        vh[1] = vh[0]
        vh[0] = vaddr
        self.last_pc = pc
        self.last_vaddr = vaddr

    def line_offset(self, vaddr: int) -> int:
        """Cache-line index of `vaddr` within its 4KB page."""
        return (vaddr >> LINE_SHIFT) & (LINES_PER_PAGE_4K - 1)
