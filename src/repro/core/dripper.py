"""DRIPPER — the paper's Page-Cross Filter prototype (Section III-E).

One factory per supported L1D prefetcher, instantiating the features of
Table II on the MOKA machinery:

===========  ==================  =============================
Prefetcher   Program feature     System features
===========  ==================  =============================
Berti        Delta               sTLB MPKI, sTLB Miss Rate
BOP          PC^Delta            sTLB MPKI, sTLB Miss Rate
IPCP         PC^Delta            sTLB MPKI, sTLB Miss Rate
===========  ==================  =============================

All DRIPPER instances cost 1.44 KB (Table III), verified by
``storage_overhead_kib``.
"""

from __future__ import annotations

from repro.core.filter import FilterConfig, PerceptronFilter
from repro.core.thresholds import ThresholdConfig

#: Table II — selected features per prefetcher (berti-timely shares Berti's:
#: the timeliness model doesn't change which deltas are page-cross useful)
DRIPPER_FEATURES: dict[str, tuple[str, tuple[str, ...]]] = {
    "berti": ("Delta", ("sTLB MPKI", "sTLB Miss Rate")),
    "berti-timely": ("Delta", ("sTLB MPKI", "sTLB Miss Rate")),
    "bop": ("PC^Delta", ("sTLB MPKI", "sTLB Miss Rate")),
    "ipcp": ("PC^Delta", ("sTLB MPKI", "sTLB Miss Rate")),
}


def dripper_config(prefetcher: str, threshold: ThresholdConfig | None = None) -> FilterConfig:
    """The DRIPPER FilterConfig for a given prefetcher name."""
    key = prefetcher.lower()
    if key not in DRIPPER_FEATURES:
        raise KeyError(f"no DRIPPER prototype for prefetcher {prefetcher!r}; known: {sorted(DRIPPER_FEATURES)}")
    program, system = DRIPPER_FEATURES[key]
    return FilterConfig(
        program_features=(program,),
        system_features=system,
        weight_table_entries=512,
        weight_bits=5,
        vub_entries=4,
        pub_entries=128,
        adaptive=True,
        threshold=threshold or ThresholdConfig(),
    )


def make_dripper(prefetcher: str, threshold: ThresholdConfig | None = None) -> PerceptronFilter:
    """Build the DRIPPER prototype for `prefetcher` (berti / bop / ipcp)."""
    return PerceptronFilter(dripper_config(prefetcher, threshold), name=f"dripper[{prefetcher.lower()}]")


def make_dripper_sf(prefetcher: str) -> PerceptronFilter:
    """DRIPPER-SF: DRIPPER's system features only (Figure 15 comparison)."""
    config = dripper_config(prefetcher)
    sf_config = FilterConfig(
        program_features=(),
        system_features=config.system_features,
        system_thresholds=config.system_thresholds,
        weight_table_entries=config.weight_table_entries,
        weight_bits=config.weight_bits,
        vub_entries=config.vub_entries,
        pub_entries=config.pub_entries,
        adaptive=True,
        threshold=config.threshold,
    )
    return PerceptronFilter(sf_config, name=f"dripper-sf[{prefetcher.lower()}]")


def storage_overhead_kib(prefetcher: str = "berti") -> float:
    """DRIPPER's hardware budget in KiB (Table III reports 1.44 KB)."""
    return make_dripper(prefetcher).storage_kib()


def storage_breakdown_bits(prefetcher: str = "berti") -> dict[str, int]:
    """Per-component storage in bits, mirroring Table III's rows."""
    f = make_dripper(prefetcher)
    return {
        "program_feature_tables": sum(t.storage_bits() for t in f.tables),
        "system_feature_weights": len(f.sys_weights) * f.config.weight_bits,
        "vub": f.config.vub_entries * (36 + 12),
        "pub": f.config.pub_entries * (36 + 12),
    }
