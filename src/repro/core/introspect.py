"""Filter introspection: inspect what a Page-Cross Filter has learned.

Microarchitects tuning a MOKA filter need to see inside it: which weights
carry signal, how busy the update buffers are, where the threshold sits.
These helpers snapshot a :class:`PerceptronFilter` into plain dicts suitable
for printing or JSON export.
"""

from __future__ import annotations

from typing import Any

from repro.core.filter import PerceptronFilter
from repro.core.thresholds import AdaptiveThreshold


def weight_summary(filter_: PerceptronFilter) -> dict[str, Any]:
    """Per-feature weight-table statistics."""
    out: dict[str, Any] = {}
    for feature, table in zip(filter_.features, filter_.tables):
        nonzero = [w for w in table.weights if w != 0]
        out[feature.name] = {
            "entries": table.size,
            "nonzero": len(nonzero),
            "min": min(nonzero) if nonzero else 0,
            "max": max(nonzero) if nonzero else 0,
            "saturated_high": sum(1 for w in table.weights if w == table.hi),
            "saturated_low": sum(1 for w in table.weights if w == table.lo),
        }
    for name, counter in filter_.sys_weights.items():
        out[f"system:{name}"] = {"value": counter.value, "lo": counter.lo, "hi": counter.hi}
    return out


def top_weights(filter_: PerceptronFilter, feature_index: int = 0, n: int = 10) -> list[tuple[int, int]]:
    """The n strongest (index, weight) entries of one program feature's table."""
    table = filter_.tables[feature_index]
    ranked = sorted(enumerate(table.weights), key=lambda iw: -abs(iw[1]))
    return [(i, w) for i, w in ranked[:n] if w != 0]


def quick_state(filter_: PerceptronFilter) -> dict[str, Any]:
    """Cheap snapshot (no weight-table scans) safe to take every epoch.

    The timeline recorder samples this at each epoch boundary; keep it O(1)
    in the filter's table sizes.
    """
    return {
        "threshold": filter_.threshold.current,
        "predictions": filter_.predictions,
        "permits": filter_.permits,
        "permit_rate": filter_.permits / filter_.predictions if filter_.predictions else 0.0,
        "vub_occupancy": len(filter_.vub),
        "pub_occupancy": len(filter_.pub),
    }


def filter_state(filter_: PerceptronFilter) -> dict[str, Any]:
    """One-call snapshot: weights, buffers, threshold, decision counters."""
    threshold = filter_.threshold
    state: dict[str, Any] = {
        "name": filter_.name,
        "weights": weight_summary(filter_),
        "vub_occupancy": len(filter_.vub),
        "pub_occupancy": len(filter_.pub),
        "predictions": filter_.predictions,
        "permits": filter_.permits,
        "permit_rate": filter_.permits / filter_.predictions if filter_.predictions else 0.0,
        "positive_updates": filter_.positive_updates,
        "negative_updates": filter_.negative_updates,
        "threshold": threshold.current,
        "storage_kib": filter_.storage_kib(),
    }
    if isinstance(threshold, AdaptiveThreshold):
        state["epochs_seen"] = threshold.epochs_seen
        state["disable_events"] = threshold.disable_events
    return state


def format_filter_state(filter_: PerceptronFilter) -> str:
    """Human-readable rendering of :func:`filter_state`."""
    state = filter_state(filter_)
    lines = [f"filter {state['name']} ({state['storage_kib']:.2f} KiB)"]
    lines.append(
        f"  decisions: {state['predictions']} ({100 * state['permit_rate']:.1f}% permitted), "
        f"training +{state['positive_updates']}/-{state['negative_updates']}, "
        f"T_a={state['threshold']}"
    )
    lines.append(f"  buffers: vUB {state['vub_occupancy']}, pUB {state['pub_occupancy']}")
    for name, info in state["weights"].items():
        if name.startswith("system:"):
            lines.append(f"  {name}: {info['value']} in [{info['lo']}, {info['hi']}]")
        else:
            lines.append(
                f"  {name}: {info['nonzero']}/{info['entries']} nonzero, "
                f"range [{info['min']}, {info['max']}], "
                f"saturated {info['saturated_high']}^/{info['saturated_low']}v"
            )
    return "\n".join(lines)
