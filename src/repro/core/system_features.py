"""MOKA's system features (Section III-D2, Table I).

A *system feature* gates a single saturating-counter weight on the current
system state: the weight joins the cumulative sum only while the feature's
condition (value above/below its threshold) holds.  This is how the filter
learns phase-dependent usefulness — e.g. "page-cross prefetching pays off
while the sTLB is under pressure" — that program features cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.system_state import SystemState

Getter = Callable[[SystemState], float]


@dataclass(frozen=True)
class SystemFeatureSpec:
    """Definition of one system feature."""

    name: str
    getter: Getter
    #: '<' -> active while value < threshold, '>' -> active while value > threshold
    direction: str
    default_threshold: float

    def active(self, state: SystemState, threshold: float | None = None) -> bool:
        """Whether this feature's weight joins the cumulative sum right now."""
        t = self.default_threshold if threshold is None else threshold
        value = self.getter(state)
        return value < t if self.direction == "<" else value > t


# Directions follow Section III-E's rationale: MPKI features target phases of
# *low* pressure (page-cross prefetches are then cheap — TLB hit likely, no
# walk), miss-rate features target phases of *high* pressure (page-cross
# prefetches then double as TLB prefetches).
SYSTEM_FEATURES: dict[str, SystemFeatureSpec] = {
    spec.name: spec
    for spec in (
        SystemFeatureSpec("L1D MPKI", lambda s: s.l1d_mpki, "<", 20.0),
        SystemFeatureSpec("L1D Miss Rate", lambda s: s.l1d_miss_rate, ">", 0.30),
        SystemFeatureSpec("LLC MPKI", lambda s: s.llc_mpki, "<", 5.0),
        SystemFeatureSpec("LLC Miss Rate", lambda s: s.llc_miss_rate, ">", 0.50),
        SystemFeatureSpec("sTLB MPKI", lambda s: s.stlb_mpki, "<", 1.0),
        SystemFeatureSpec("sTLB Miss Rate", lambda s: s.stlb_miss_rate, ">", 0.10),
    )
}


def get_system_feature(name: str) -> SystemFeatureSpec:
    """Look a system feature up by its Table I name."""
    try:
        return SYSTEM_FEATURES[name]
    except KeyError:
        raise KeyError(
            f"unknown system feature {name!r}; known: {sorted(SYSTEM_FEATURES)}"
        ) from None
