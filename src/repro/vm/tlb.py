"""Set-associative TLBs (dTLB, iTLB, sTLB) with mixed 4KB/2MB entries.

Entries for both page sizes compete for ways within the same physical sets
(set index is taken from the low bits of the respective VPN).  Replacement is
LRU, matching Table IV.  Translations inserted by speculative page walks for
page-cross prefetches are tagged so experiments can attribute TLB pollution
and TLB-warming benefits to prefetching.
"""

from __future__ import annotations

from typing import Optional

from repro.params import TlbParams
from repro.stats import HitMissStats
from repro.vm.address import PAGE_4K_SHIFT, PAGE_2M_SHIFT
from repro.vm.page_table import Translation


class Tlb:
    """One TLB level."""

    def __init__(self, params: TlbParams):
        self.params = params
        self.latency = params.latency
        self._set_mask = params.sets - 1
        self._ways = params.ways
        # set index -> {(vpn, page_shift): [pfn, lru_tick, from_prefetch]}
        self._sets: list[dict[tuple[int, int], list]] = [dict() for _ in range(params.sets)]
        self._tick = 0
        self.stats = HitMissStats()
        #: demand hits on entries installed by page-cross prefetch walks
        self.prefetch_hits = 0
        #: prefetched entries evicted without ever serving a demand access
        self.prefetch_evicted_unused = 0
        self._snap_pf = (0, 0)

    def lookup(self, vaddr: int, *, speculative: bool = False) -> Optional[Translation]:
        """Probe for a translation.  Speculative probes don't perturb stats/LRU."""
        self._tick += 1
        # unrolled over the two page sizes (hot path)
        sets, mask = self._sets, self._set_mask
        vpn = vaddr >> PAGE_4K_SHIFT
        shift = PAGE_4K_SHIFT
        entry = sets[vpn & mask].get((vpn, shift))
        if entry is None:
            vpn = vaddr >> PAGE_2M_SHIFT
            shift = PAGE_2M_SHIFT
            entry = sets[vpn & mask].get((vpn, shift))
        if entry is not None:
            if not speculative:
                stats = self.stats
                stats.accesses += 1
                stats.hits += 1
                entry[1] = self._tick
                if entry[2]:
                    self.prefetch_hits += 1
                    entry[2] = False
            return Translation(vpn, entry[0], shift)
        if not speculative:
            stats = self.stats
            stats.accesses += 1
            stats.misses += 1
        return None

    def insert(self, translation: Translation, *, from_prefetch: bool = False) -> None:
        """Install a translation, evicting the set's LRU entry if full."""
        self._tick += 1
        key = (translation.vpn, translation.page_shift)
        tset = self._sets[translation.vpn & self._set_mask]
        existing = tset.get(key)
        if existing is not None:
            existing[1] = self._tick
            return
        if len(tset) >= self._ways:
            # manual scan (min() with a closure is hot); strict < keeps
            # min()'s first-minimum tie-breaking
            victim_key = None
            victim_tick = None
            for k, e in tset.items():
                if victim_tick is None or e[1] < victim_tick:
                    victim_tick = e[1]
                    victim_key = k
            victim = tset.pop(victim_key)
            if victim[2]:
                self.prefetch_evicted_unused += 1
        tset[key] = [translation.pfn, self._tick, from_prefetch]

    def flush(self) -> None:
        """Drop every entry (context-switch style)."""
        for tset in self._sets:
            tset.clear()

    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return sum(len(tset) for tset in self._sets)

    def snapshot(self) -> None:
        """Mark the warm-up boundary for demand and prefetch statistics."""
        self.stats.snapshot()
        self._snap_pf = (self.prefetch_hits, self.prefetch_evicted_unused)

    @property
    def measured_prefetch_hits(self) -> int:
        """Demand hits on prefetched entries since the warm-up snapshot."""
        return self.prefetch_hits - self._snap_pf[0]

    @property
    def measured_prefetch_evicted_unused(self) -> int:
        """Unused prefetched-entry evictions since the warm-up snapshot."""
        return self.prefetch_evicted_unused - self._snap_pf[1]
