"""Split Page-Structure Caches (PSCs).

One small fully-associative LRU cache per upper page-table level (L5/L4/L3/L2,
sized 1/2/8/32 per Table IV).  A PSC entry at level *k* records that the
walker already knows the page-table node consulted at level *k-1* for the
covered VA region, so the walk can skip reading levels >= k and start its
memory reads at level k-1.
"""

from __future__ import annotations

from repro.params import PscParams
from repro.stats import HitMissStats
from repro.vm.address import pt_tag


class PageStructureCache:
    """One per-level PSC (fully associative, LRU).

    A level-k entry caches the pointer to one level-(k-1) node, so its tag
    is that node's identity: ``pt_tag(vaddr, k-1)``.  The entry's reach is
    therefore the node's reach (2MB for the L2 PSC, 1GB for L3, ...).
    """

    def __init__(self, level: int, entries: int):
        self.level = level
        self._tag_level = level - 1
        self.entries = entries
        self._store: dict[int, int] = {}  # tag -> lru tick
        self._tick = 0
        self.stats = HitMissStats()

    def lookup(self, vaddr: int) -> bool:
        """Probe for the node covering `vaddr`; updates LRU and stats."""
        self._tick += 1
        tag = pt_tag(vaddr, self._tag_level)
        hit = tag in self._store
        self.stats.record(hit)
        if hit:
            self._store[tag] = self._tick
        return hit

    def insert(self, vaddr: int) -> None:
        """Record the node covering `vaddr`, evicting LRU if full."""
        self._tick += 1
        tag = pt_tag(vaddr, self._tag_level)
        if tag not in self._store and len(self._store) >= self.entries:
            victim = min(self._store, key=self._store.get)
            del self._store[victim]
        self._store[tag] = self._tick


class SplitPsc:
    """The four split PSCs searched in parallel (1-cycle latency)."""

    def __init__(self, params: PscParams):
        self.params = params
        self.latency = params.latency
        self.levels = {
            level: PageStructureCache(level, params.entries_for_level(level))
            for level in (2, 3, 4, 5)
        }

    def best_hit_level(self, vaddr: int) -> int | None:
        """Lowest level (closest to the leaf) whose PSC covers `vaddr`.

        Probed lowest-first; a hit at level k lets the walk start its memory
        reads at level k-1.  Returns None on a full miss.
        """
        best = None
        for level in (2, 3, 4, 5):
            if self.levels[level].lookup(vaddr):
                if best is None:
                    best = level
        return best

    def fill(self, vaddr: int, read_level: int) -> None:
        """Record knowledge gained by reading a non-leaf PTE at `read_level`.

        Reading the level-k entry reveals the level-(k-1) node pointer, which
        is exactly what a level-k PSC entry caches.
        """
        if read_level in self.levels:
            self.levels[read_level].insert(vaddr)

    def snapshot(self) -> None:
        """Mark the warm-up boundary on all levels' statistics."""
        for psc in self.levels.values():
            psc.stats.snapshot()
