"""Hardware page-table walker.

Models the three properties called out in Section IV:

* **variant latency** — the walk's cost depends on how many levels the split
  PSCs short-circuit and on where each PTE read hits in the cache hierarchy;
* **walk references to the memory hierarchy** — every PTE read is issued
  through a caller-supplied ``pte_reader`` (wired to L2C -> LLC -> DRAM by the
  simulator), so walks both benefit from and pollute the caches;
* **cache locality in page walks** — PTE physical addresses come from the
  page table's node frames, so neighbouring VPNs share 64-byte PTE lines.

Speculative walks (triggered by page-cross prefetches, step D of Figure 5)
use the same machinery but are tagged so TLB fills can be attributed to
prefetching and so statistics separate demand from speculative walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.vm.page_table import PageTable, Translation
from repro.vm.psc import SplitPsc

#: pte_reader(pte_phys_addr, time, speculative) -> latency in cycles
PteReader = Callable[[int, float, bool], float]


@dataclass
class WalkResult:
    """Outcome of one page walk."""

    translation: Translation
    latency: float
    memory_reads: int
    speculative: bool


class PageWalker:
    """x86-style radix walker with split PSCs."""

    def __init__(self, page_table: PageTable, psc: SplitPsc, pte_reader: PteReader):
        self.page_table = page_table
        self.psc = psc
        self.pte_reader = pte_reader
        self.demand_walks = 0
        self.speculative_walks = 0
        self.demand_walk_cycles = 0.0
        self.speculative_walk_reads = 0
        self._snap = (0, 0, 0.0, 0)

    def walk(self, vaddr: int, t: float, *, speculative: bool = False) -> WalkResult:
        """Walk the page table for `vaddr` starting at time `t`."""
        leaf = self.page_table.leaf_level(vaddr)
        hit_level = self.psc.best_hit_level(vaddr)
        if hit_level is not None and hit_level - 1 >= leaf:
            start = hit_level - 1
        else:
            start = 5
        latency = float(self.psc.latency)
        reads = 0
        for level in range(start, leaf - 1, -1):
            pte_addr = self.page_table.pte_address(vaddr, level)
            latency += self.pte_reader(pte_addr, t + latency, speculative)
            reads += 1
            if level > leaf:
                # non-leaf entry read -> next-lower node pointer now known
                self.psc.fill(vaddr, level)
        translation = self.page_table.translate(vaddr)
        if speculative:
            self.speculative_walks += 1
            self.speculative_walk_reads += reads
        else:
            self.demand_walks += 1
            self.demand_walk_cycles += latency
        return WalkResult(translation, latency, reads, speculative)

    def snapshot(self) -> None:
        """Mark the warm-up boundary for walk statistics."""
        self._snap = (
            self.demand_walks,
            self.speculative_walks,
            self.demand_walk_cycles,
            self.speculative_walk_reads,
        )
        self.psc.snapshot()

    @property
    def measured_demand_walks(self) -> int:
        """Demand walks since the warm-up snapshot."""
        return self.demand_walks - self._snap[0]

    @property
    def measured_speculative_walks(self) -> int:
        """Speculative (prefetch-triggered) walks since the snapshot."""
        return self.speculative_walks - self._snap[1]
