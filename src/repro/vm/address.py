"""Virtual/physical address arithmetic and page geometry.

All addresses are plain Python ints.  The simulated machine uses a 48-bit
virtual address space with a 5-level radix page table (9 index bits per
level, 12-bit page offset), matching the paper's "5-level radix tree page
table" with optional 2MB large pages (translation stops at the PMD level).
"""

from __future__ import annotations

LINE_BYTES = 64
LINE_SHIFT = 6

PAGE_4K_SHIFT = 12
PAGE_4K_BYTES = 1 << PAGE_4K_SHIFT
PAGE_2M_SHIFT = 21
PAGE_2M_BYTES = 1 << PAGE_2M_SHIFT

#: cache lines per 4KB page
LINES_PER_PAGE_4K = PAGE_4K_BYTES // LINE_BYTES

VA_BITS = 48
#: page-table levels, outermost (root) first.  Level 1 holds 4KB PTEs,
#: level 2 holds PMDs (2MB mappings stop here).
PT_LEVELS = (5, 4, 3, 2, 1)
PT_INDEX_BITS = 9
PTE_BYTES = 8


def line_addr(addr: int) -> int:
    """Cache-line address (addr with the low 6 offset bits dropped)."""
    return addr >> LINE_SHIFT


def line_base(addr: int) -> int:
    """Byte address of the first byte of addr's cache line."""
    return addr & ~(LINE_BYTES - 1)


def line_offset(addr: int) -> int:
    """Cache-line index within a 4KB page (0..63)."""
    return (addr >> LINE_SHIFT) & (LINES_PER_PAGE_4K - 1)


def vpn(addr: int, page_shift: int = PAGE_4K_SHIFT) -> int:
    """Virtual page number for the given page size."""
    return addr >> page_shift


def page_offset(addr: int, page_shift: int = PAGE_4K_SHIFT) -> int:
    """Byte offset of `addr` within its page."""
    return addr & ((1 << page_shift) - 1)


def same_page(a: int, b: int, page_shift: int = PAGE_4K_SHIFT) -> bool:
    """True when two virtual addresses fall within the same page."""
    return (a >> page_shift) == (b >> page_shift)


def crosses_page(trigger: int, target: int, page_shift: int = PAGE_4K_SHIFT) -> bool:
    """True when a prefetch `target` lies outside the `trigger`'s page.

    This is the page-cross test of Figure 1 / step A of Figure 5: the
    prefetch request crosses a page boundary iff the prefetched block's
    page differs from the demand access's page.
    """
    return (trigger >> page_shift) != (target >> page_shift)


def pt_index(vaddr: int, level: int) -> int:
    """Radix index used at the given page-table level (1..5)."""
    shift = PAGE_4K_SHIFT + PT_INDEX_BITS * (level - 1)
    return (vaddr >> shift) & ((1 << PT_INDEX_BITS) - 1)


def pt_tag(vaddr: int, level: int) -> int:
    """Tag identifying the page-table *node* consulted at `level`.

    Two virtual addresses share the level-k node iff all radix indices
    above level k match, i.e. iff the VA bits above that node's reach agree.
    """
    shift = PAGE_4K_SHIFT + PT_INDEX_BITS * level
    return vaddr >> shift


#: mask implementing :func:`canonical`, for hot loops that inline it
VA_MASK = (1 << VA_BITS) - 1


def canonical(addr: int) -> int:
    """Clamp an address to the 48-bit simulated virtual address space."""
    return addr & VA_MASK
