"""Five-level radix page table with demand allocation and 2MB large pages.

The page table serves two roles in the simulation:

* it is the authoritative VA -> PA mapping (frames are allocated on first
  touch, with a bijective scramble so that virtually-contiguous pages are
  *not* physically contiguous — the property that makes page-cross
  prefetching in the virtual address space interesting, cf. Section II-A);
* it exposes the physical addresses of the page-table nodes themselves so
  the hardware walker can model per-level PTE reads through the cache
  hierarchy (walk locality: 8 PTEs share a 64-byte line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.vm import address as addr

#: odd multiplier -> bijection over any power-of-two frame space
_SCRAMBLE = 0x9E3779B1
#: number of 4KB frames reachable by the scrambler (128 GB of simulated PA)
_FRAME_BITS = 25
_FRAME_MASK = (1 << _FRAME_BITS) - 1
#: 2MB frames live above the 4KB frame region so the two never alias
_LARGE_REGION_BIT = 1 << (_FRAME_BITS - 9)  # in units of 2MB frames


@dataclass(frozen=True)
class Translation:
    """Result of translating a virtual address."""

    vpn: int
    pfn: int
    page_shift: int

    @property
    def page_bytes(self) -> int:
        """Size of the mapped page in bytes."""
        return 1 << self.page_shift

    def physical(self, vaddr: int) -> int:
        """Physical byte address for a vaddr inside this translation's page."""
        return (self.pfn << self.page_shift) | (vaddr & (self.page_bytes - 1))


class LargePagePolicy:
    """Decides which 2MB-aligned virtual regions are backed by 2MB frames.

    The paper's large-page evaluation (Section V-B6) uses a system with a mix
    of 4KB and 2MB pages.  We model the OS allocator as a deterministic
    per-region coin flip with a configurable eligible fraction.
    """

    def __init__(self, fraction: float = 0.0, seed: int = 0):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        self.fraction = fraction
        self.seed = seed

    def is_large(self, vaddr: int) -> bool:
        """Whether `vaddr`'s 2MB-aligned region is backed by a 2MB frame."""
        if self.fraction <= 0.0:
            return False
        if self.fraction >= 1.0:
            return True
        region = vaddr >> addr.PAGE_2M_SHIFT
        h = (region * 0x2545F4914F6CDD1D + self.seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return (h >> 40) % 1000 < self.fraction * 1000


class PageTable:
    """Per-process 5-level radix page table with on-demand frame allocation."""

    def __init__(self, asid: int = 0, large_pages: Optional[LargePagePolicy] = None):
        self.asid = asid
        self.large_pages = large_pages or LargePagePolicy(0.0)
        self._map_4k: dict[int, int] = {}
        self._map_2m: dict[int, int] = {}
        #: (level, tag) -> physical page number holding that page-table node
        self._nodes: dict[tuple[int, int], int] = {}
        self._next_frame = 1  # frame 0 reserved so PA 0 never appears
        self._next_large_frame = 1
        self._next_node_frame = 1

    # -- frame allocation ----------------------------------------------------

    def _alloc_frame(self) -> int:
        # the asid offset keeps frames of different processes disjoint-ish so
        # multi-core mixes don't falsely share LLC lines
        pfn = ((self._next_frame + self.asid * 0x40011) * _SCRAMBLE) & _FRAME_MASK
        self._next_frame += 1
        return pfn

    def _alloc_large_frame(self) -> int:
        idx = self._next_large_frame + self.asid * 0x101
        pfn2m = ((idx * _SCRAMBLE) & (_LARGE_REGION_BIT - 1)) | _LARGE_REGION_BIT
        self._next_large_frame += 1
        return pfn2m

    def _alloc_node_frame(self) -> int:
        # Page-table nodes come from their own arena (top of the PA space) so
        # PTE lines never alias data lines.
        idx = self._next_node_frame + self.asid * 0x40011
        pfn = ((idx * _SCRAMBLE) & _FRAME_MASK) | (1 << _FRAME_BITS)
        self._next_node_frame += 1
        return pfn

    # -- translation ---------------------------------------------------------

    def translate(self, vaddr: int) -> Translation:
        """Translate, allocating the backing frame on first touch."""
        vaddr = addr.canonical(vaddr)
        if self.large_pages.is_large(vaddr):
            vpn2m = vaddr >> addr.PAGE_2M_SHIFT
            pfn = self._map_2m.get(vpn2m)
            if pfn is None:
                pfn = self._alloc_large_frame()
                self._map_2m[vpn2m] = pfn
            return Translation(vpn2m, pfn, addr.PAGE_2M_SHIFT)
        vpn4k = vaddr >> addr.PAGE_4K_SHIFT
        pfn = self._map_4k.get(vpn4k)
        if pfn is None:
            pfn = self._alloc_frame()
            self._map_4k[vpn4k] = pfn
        return Translation(vpn4k, pfn, addr.PAGE_4K_SHIFT)

    def physical(self, vaddr: int) -> int:
        """Convenience: full VA -> PA byte translation."""
        return self.translate(vaddr).physical(vaddr)

    def leaf_level(self, vaddr: int) -> int:
        """Page-table level holding the leaf PTE (1 for 4KB, 2 for 2MB)."""
        return 2 if self.large_pages.is_large(vaddr) else 1

    # -- walker support ------------------------------------------------------

    def node_frame(self, vaddr: int, level: int) -> int:
        """Physical frame of the page-table node consulted at `level`."""
        key = (level, addr.pt_tag(vaddr, level))
        pfn = self._nodes.get(key)
        if pfn is None:
            pfn = self._alloc_node_frame()
            self._nodes[key] = pfn
        return pfn

    def pte_address(self, vaddr: int, level: int) -> int:
        """Physical byte address of the PTE read at `level` during a walk."""
        frame = self.node_frame(vaddr, level)
        return (frame << addr.PAGE_4K_SHIFT) | (addr.pt_index(vaddr, level) * addr.PTE_BYTES)

    @property
    def mapped_4k_pages(self) -> int:
        """Count of 4KB pages allocated so far."""
        return len(self._map_4k)

    @property
    def mapped_2m_pages(self) -> int:
        """Count of 2MB pages allocated so far."""
        return len(self._map_2m)
