"""Virtual-memory substrate: addressing, page table, TLBs, PSCs, walker."""

from repro.vm.address import (
    LINE_BYTES,
    PAGE_2M_SHIFT,
    PAGE_4K_SHIFT,
    crosses_page,
    line_addr,
    line_offset,
    same_page,
)
from repro.vm.page_table import LargePagePolicy, PageTable, Translation
from repro.vm.psc import SplitPsc
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalker, WalkResult

__all__ = [
    "LINE_BYTES",
    "PAGE_2M_SHIFT",
    "PAGE_4K_SHIFT",
    "crosses_page",
    "line_addr",
    "line_offset",
    "same_page",
    "LargePagePolicy",
    "PageTable",
    "Translation",
    "SplitPsc",
    "Tlb",
    "PageWalker",
    "WalkResult",
]
