"""Command-line interface.

Subcommands::

    python -m repro run       --workload astar --prefetcher berti --policy dripper
    python -m repro compare   --workload astar --policies discard permit dripper
    python -m repro sweep     --param stlb --values 384 768 1536 --workloads astar hmmer
    python -m repro inspect   --workload astar --policy dripper
    python -m repro workloads --set seen --suite GAP
    python -m repro features
    python -m repro storage
    python -m repro snapshot  --workload astar --out astar.rptr --instructions 100000
    python -m repro convert   --champsim trace.bin --out trace.rptr
    python -m repro mix       --mixes 300 --jobs 8 --cache-dir .cache --progress
    python -m repro validate  --workloads astar hmmer --jobs 2
    python -m repro status    --journal runs.jsonl --metrics metrics.prom

``mix`` runs the paper's Figure 19 study: N eight-core mixes per policy,
each mix stepped in retire-clock order against a shared LLC+DRAM, reported
as the weighted-speedup distribution over the first (baseline) policy.
Isolation runs are ordinary grid cells — ``--cache-dir`` dedupes them
across mixes and invocations — and ``--jobs`` fans whole mixes out to
workers on packed cores (bit-identical to the serial generator loop).

``run``, ``compare``, ``sweep``, and ``inspect`` accept ``--validate``, which
attaches a runtime invariant checker to every simulation (conservation laws
asserted per epoch and at collect time; a violation aborts the command with a
counter snapshot).  The same four subcommands accept ``--packed``, which
drives each simulation through the packed-trace fast path (records are
pre-decoded into flat buffers and the drive loop is batched; results are
bit-identical to the generator path, just faster).  ``validate`` runs the
differential suite — determinism, parallel-vs-serial,
discard-vs-source-suppression, epoch invariance, packed-vs-generator
equality, per-run invariant passes, and mutation detection.

``run``, ``compare``, ``sweep``, and ``inspect`` accept observability flags:
``--timeline-out`` (per-epoch CSV/JSONL time series), ``--journal``
(append-only JSONL run records), ``--profile`` (per-component wall-time
breakdown of the hot paths), ``--json`` (machine-readable stdout),
``--metrics-out`` (process-wide counter/gauge/histogram snapshot as
Prometheus text, or JSON when the path ends in ``.json``), and
``--trace-out`` (Chrome trace-event JSON of the run's spans — pack,
shm-attach, drive, collect, cache-write — loadable in Perfetto or
``chrome://tracing``; under ``--jobs`` the workers' spans are merged in with
their real pids).  ``compare`` and ``sweep`` additionally accept ``--jobs``
(process-pool grid execution), ``--cache-dir`` (content-addressed result
cache; unchanged cells are never re-simulated), ``--shm``/``--no-shm``
(share each workload's packed trace with the workers through shared memory
instead of re-packing per worker; on by default whenever ``--jobs`` > 1),
and ``--progress`` (live per-cell progress lines with ETA on stderr).

``status`` summarises a finished (or in-flight) run journal — runs,
workloads, policies, wall time, aggregate simulation throughput, per-policy
IPC — and, given ``--metrics``, the matching exported metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import Optional, Sequence

from repro.core.dripper import storage_breakdown_bits, storage_overhead_kib
from repro.core.features import FEATURES, TABLE_I_FEATURES
from repro.core.filter import PerceptronFilter
from repro.core.introspect import filter_state, format_filter_state
from repro.core.system_features import SYSTEM_FEATURES
from repro.experiments.cache import ResultCache
from repro.experiments.report import format_pct, format_table
from repro.experiments.runner import RunSpec, run_one
from repro.experiments.sweep import (
    dram_latency_transform,
    dtlb_size_transform,
    stlb_size_transform,
    sweep_epoch_length,
    sweep_parameter,
)
from repro.obs import Observability, Probe, RunJournal, TimelineRecorder
from repro.workloads import (
    by_name,
    non_intensive_workloads,
    seen_workloads,
    unseen_workloads,
)
from repro.workloads.trace_io import FileWorkload, convert_champsim, snapshot_workload

_POLICIES = ("discard", "permit", "discard-ptw", "iso", "ppf", "ppf+dthr", "dripper", "dripper-sf")


def _sampling_config(args: argparse.Namespace):
    """Build a SamplingConfig from ``--sampling``/friends (None when off)."""
    phases = getattr(args, "sampling", None)
    if not phases:
        return None
    from repro.experiments.sampling import SamplingConfig

    return SamplingConfig(
        phases=phases,
        intervals=getattr(args, "sampling_intervals", 64),
        seed=getattr(args, "sampling_seed", 0),
    )


def _spec(args: argparse.Namespace, policy: str) -> RunSpec:
    return RunSpec(
        prefetcher=args.prefetcher,
        policy=policy,
        l2_prefetcher=args.l2,
        warmup_instructions=args.warmup,
        sim_instructions=args.sim,
        large_page_fraction=args.large_pages,
        validate=getattr(args, "validate", False),
        packed=getattr(args, "packed", False),
        kernel=getattr(args, "kernel", "fused"),
        sampling=_sampling_config(args),
    )


def _result_rows(result) -> list[tuple[str, str]]:
    rows = [
        ("IPC", f"{result.ipc:.4f}"),
        ("L1D MPKI", f"{result.l1d_mpki:.2f}"),
        ("LLC MPKI", f"{result.llc_mpki:.2f}"),
        ("dTLB MPKI", f"{result.dtlb_mpki:.2f}"),
        ("sTLB MPKI", f"{result.stlb_mpki:.2f}"),
        ("prefetch accuracy", f"{result.prefetch_accuracy:.3f}"),
        ("prefetch coverage", f"{result.prefetch_coverage:.3f}"),
        ("pgc issued/discarded", f"{result.pgc_issued}/{result.pgc_discarded}"),
        ("pgc useful/useless", f"{result.pgc_useful}/{result.pgc_useless}"),
        ("speculative walks", str(result.speculative_walks)),
        ("DRAM reads/writes", f"{result.dram_reads}/{result.dram_writes}"),
    ]
    if result.sampled_intervals:
        rows.insert(1, (
            "IPC CI / sampling",
            f"[{result.ipc_ci_lo:.4f}, {result.ipc_ci_hi:.4f}] "
            f"({result.sampled_phases} phases / "
            f"{result.sampled_intervals} intervals)"))
    return rows


def _resolve_workload(args: argparse.Namespace):
    if getattr(args, "trace_file", None):
        return FileWorkload(args.trace_file)
    return by_name(args.workload)


def _make_obs(args: argparse.Namespace, *, keep_engine: bool = False) -> Optional[Observability]:
    """Build an Observability bundle from CLI flags (None when all are off)."""
    timeline = None
    if getattr(args, "timeline_out", None):
        timeline = TimelineRecorder(sample_every=getattr(args, "timeline_every", 1))
    journal = RunJournal(args.journal) if getattr(args, "journal", None) else None
    probe = Probe() if getattr(args, "profile", False) else None
    if timeline is None and journal is None and probe is None and not keep_engine:
        return None
    return Observability(timeline=timeline, journal=journal, probe=probe, keep_engine=keep_engine)


def _setup_telemetry(args: argparse.Namespace) -> None:
    """Install a parent tracer when span capture was requested."""
    if getattr(args, "trace_out", None):
        from repro.obs.tracing import Tracer, install_tracer

        install_tracer(Tracer(role="parent"))


def _emit_telemetry(args: argparse.Namespace) -> None:
    """Write the metrics snapshot / merged Chrome trace the flags asked for."""
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.obs.metrics import get_metrics, to_json, to_prometheus

        snap = get_metrics().snapshot()
        as_json = str(metrics_out).endswith(".json")
        text = to_json(snap) if as_json else to_prometheus(snap)
        with open(metrics_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        series = sum(len(m["series"]) for group in
                     (snap.counters, snap.gauges, snap.histograms)
                     for m in group.values())
        print(f"metrics: {series} series -> {metrics_out}", file=sys.stderr)
    if getattr(args, "trace_out", None):
        from repro.obs.tracing import current_tracer, install_tracer

        tracer = current_tracer()
        if tracer is not None:
            count = tracer.write_chrome_trace(args.trace_out)
            print(f"trace: {count} span(s) -> {args.trace_out}", file=sys.stderr)
            install_tracer(None)


def _progress_sink(args: argparse.Namespace):
    if getattr(args, "progress", False):
        from repro.obs.progress import progress_printer

        return progress_printer()
    return None


def _emit_obs(args: argparse.Namespace, obs: Optional[Observability]) -> None:
    """Flush timeline/journal sinks and print the profile breakdown."""
    _emit_telemetry(args)
    if obs is None:
        return
    if obs.timeline is not None:
        count = obs.timeline.write(args.timeline_out)
        print(f"timeline: {count} epoch rows -> {args.timeline_out}", file=sys.stderr)
    if obs.journal is not None:
        print(f"journal: {obs.journal.records_written} record(s) -> {obs.journal.path}",
              file=sys.stderr)
    obs.close()
    if obs.probe is not None and not getattr(args, "json", False):
        print(obs.probe.format_breakdown(wall_seconds=obs.last_wall_seconds))


def _json_payload(workload, spec: RunSpec, result, obs: Optional[Observability]) -> dict:
    payload = {
        "workload": workload.name,
        "spec": asdict(spec),
        "result": asdict(result),
        "derived": {
            "prefetch_accuracy": result.prefetch_accuracy,
            "prefetch_coverage": result.prefetch_coverage,
            "pgc_accuracy": result.pgc_accuracy,
            "branch_mpki": result.branch_mpki,
        },
    }
    if obs is not None:
        payload["wall_seconds"] = obs.last_wall_seconds
        if obs.probe is not None:
            payload["profile"] = obs.probe.breakdown()
    return payload


def cmd_run(args: argparse.Namespace) -> int:
    """`repro run`: one workload, one policy, full metric table."""
    _setup_telemetry(args)
    workload = _resolve_workload(args)
    spec = _spec(args, args.policy)
    obs = _make_obs(args)
    result = run_one(workload, spec, obs=obs)
    if args.json:
        print(json.dumps(_json_payload(workload, spec, result, obs), indent=2))
    else:
        print(format_table(["metric", "value"], _result_rows(result),
                           f"{workload.name} / {args.prefetcher} / {args.policy}"))
    _emit_obs(args, obs)
    return 0


def _speedup_cell(result, base) -> Optional[float]:
    """Speedup-1 in percent, or None when the baseline IPC is degenerate."""
    try:
        return 100 * (result.speedup_over(base) - 1)
    except ValueError:
        return None


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    return ResultCache(args.cache_dir) if getattr(args, "cache_dir", None) else None


def _emit_cache_stats(cache: Optional[ResultCache]) -> None:
    if cache is not None:
        stats = cache.stats
        print(f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
              f"{stats['stores']} store(s) -> {cache.root}", file=sys.stderr)


def cmd_compare(args: argparse.Namespace) -> int:
    """`repro compare`: one workload under several policies."""
    _setup_telemetry(args)
    workload = _resolve_workload(args)
    obs = _make_obs(args)
    cache = _make_cache(args)
    specs = [_spec(args, policy) for policy in args.policies]
    if args.jobs > 1 or cache is not None:
        from repro.experiments.parallel import cell_for, grid_session, run_cells

        cells = [cell_for(workload, spec) for spec in specs]
        with grid_session(args.jobs, args.shm):
            results = run_cells(cells, jobs=args.jobs, cache=cache, obs=obs,
                                shm=args.shm, progress=_progress_sink(args))
    else:
        results = [run_one(workload, spec, obs=obs) for spec in specs]
    base = results[0]
    speedups = [_speedup_cell(r, base) for r in results]
    if args.json:
        print(json.dumps({
            "workload": workload.name,
            "prefetcher": args.prefetcher,
            "baseline": args.policies[0],
            "runs": [
                {"policy": r.policy, "ipc": r.ipc, "speedup_pct": s,
                 "pgc_issued": r.pgc_issued, "pgc_useful": r.pgc_useful,
                 "pgc_useless": r.pgc_useless}
                for r, s in zip(results, speedups)
            ],
        }, indent=2))
    else:
        rows = [
            (r.policy, f"{r.ipc:.4f}", format_pct(s) if s is not None else "n/a",
             f"{r.pgc_issued}", f"{r.pgc_useful}", f"{r.pgc_useless}")
            for r, s in zip(results, speedups)
        ]
        print(format_table(
            ["policy", "IPC", f"vs {args.policies[0]}", "pgc issued", "useful", "useless"],
            rows, f"{workload.name} / {args.prefetcher}",
        ))
    _emit_cache_stats(cache)
    _emit_obs(args, obs)
    return 0


_SWEEP_TRANSFORMS = {
    "stlb": stlb_size_transform,
    "dtlb": dtlb_size_transform,
    "dram-latency": dram_latency_transform,
}


def cmd_sweep(args: argparse.Namespace) -> int:
    """`repro sweep`: a sensitivity sweep over several workloads."""
    workloads = [by_name(name) for name in args.workloads]
    spec = RunSpec(
        prefetcher=args.prefetcher,
        warmup_instructions=args.warmup,
        sim_instructions=args.sim,
        validate=args.validate,
        packed=args.packed,
        kernel=args.kernel,
        sampling=_sampling_config(args),
    )
    _setup_telemetry(args)
    obs = _make_obs(args)
    cache = _make_cache(args)
    common = dict(base_spec=spec, obs=obs, jobs=args.jobs, cache=cache,
                  shm=args.shm, progress=_progress_sink(args))
    if args.param == "epoch":
        epoch_data = sweep_epoch_length(workloads, args.values, **common)
        data = {value: {"dripper": pct} for value, pct in epoch_data.items()}
        policies = ["dripper"]
    else:
        data = sweep_parameter(
            workloads, _SWEEP_TRANSFORMS[args.param], args.values,
            policies=tuple(args.policies), **common,
        )
        policies = list(args.policies)
    if args.json:
        print(json.dumps({
            "param": args.param,
            "prefetcher": args.prefetcher,
            "workloads": [w.name for w in workloads],
            "points": {str(v): data[v] for v in args.values},
        }, indent=2))
    else:
        rows = [
            (str(value), *(format_pct(data[value][p]) for p in policies))
            for value in args.values
        ]
        print(format_table(
            [args.param, *policies], rows,
            f"sweep {args.param} / {args.prefetcher} / {len(workloads)} workload(s), % over discard",
        ))
    _emit_cache_stats(cache)
    _emit_obs(args, obs)
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """`repro inspect`: run a workload, then dump the trained filter state."""
    _setup_telemetry(args)
    workload = _resolve_workload(args)
    spec = _spec(args, args.policy)
    obs = _make_obs(args, keep_engine=True)
    result = run_one(workload, spec, obs=obs)
    policy = obs.last_engine.policy
    if not isinstance(policy, PerceptronFilter):
        print(f"policy {policy.name!r} is not a perceptron filter; nothing to inspect",
              file=sys.stderr)
        return 1
    if args.json:
        payload = _json_payload(workload, spec, result, obs)
        payload["filter"] = filter_state(policy)
        print(json.dumps(payload, indent=2))
    else:
        print(f"{workload.name} / {args.prefetcher} / {policy.name}: IPC {result.ipc:.4f}")
        print(format_filter_state(policy))
    _emit_obs(args, obs)
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    """`repro workloads`: list a registry set, optionally by suite."""
    sets = {
        "seen": seen_workloads,
        "unseen": unseen_workloads,
        "non-intensive": non_intensive_workloads,
    }
    workloads = sets[args.set]()
    if args.suite is not None:
        known = sorted({w.suite for w in workloads})
        if args.suite not in known:
            raise SystemExit(
                f"unknown suite {args.suite!r} in the {args.set!r} set; "
                f"known suites: {', '.join(known)}"
            )
    rows = [
        (w.name, w.suite, f"{w.mean_gap:.1f}")
        for w in workloads
        if args.suite is None or w.suite == args.suite
    ]
    print(format_table(["name", "suite", "mean gap"], rows, f"{args.set} workloads ({len(rows)})"))
    return 0


def cmd_features(args: argparse.Namespace) -> int:
    """`repro features`: print the MOKA feature library."""
    rows = [(name, "Table I" if f.table_i else "expansion") for name, f in sorted(FEATURES.items())]
    print(format_table(["program feature", "origin"], rows, f"{len(FEATURES)} program features"))
    print()
    print(format_table(
        ["system feature", "active when"],
        [(s.name, f"value {s.direction} {s.default_threshold}") for s in SYSTEM_FEATURES.values()],
        f"{len(SYSTEM_FEATURES)} system features",
    ))
    print(f"\nTable I subset: {len(TABLE_I_FEATURES)} features")
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """`repro snapshot`: materialise a workload as a native trace file."""
    count = snapshot_workload(by_name(args.workload), args.out, args.instructions)
    print(f"wrote {count} records ({args.instructions} instructions) to {args.out}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """`repro convert`: ChampSim trace -> native trace."""
    count = convert_champsim(args.champsim, args.out, max_instructions=args.max_instructions)
    print(f"converted {count} records to {args.out}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """`repro validate`: run the differential/metamorphic validation suite."""
    from repro.validate import run_validation_suite

    progress = None
    if not args.json:
        def progress(outcome) -> None:
            mark = "PASS" if outcome.passed else "FAIL"
            print(f"  {mark}  {outcome.name}: {outcome.detail}", file=sys.stderr)

    outcomes = run_validation_suite(
        args.workloads,
        policies=tuple(args.policies),
        prefetcher=args.prefetcher,
        warmup=args.warmup,
        sim=args.sim,
        seed=args.seed,
        fuzz_cells=args.fuzz,
        jobs=args.jobs,
        progress=progress,
    )
    failed = [o for o in outcomes if not o.passed]
    if args.json:
        print(json.dumps({
            "checks": [asdict(o) for o in outcomes],
            "passed": len(outcomes) - len(failed),
            "failed": len(failed),
        }, indent=2))
    else:
        rows = [("PASS" if o.passed else "FAIL", o.name, o.detail) for o in outcomes]
        print(format_table(
            ["verdict", "check", "detail"], rows,
            f"validation suite: {len(outcomes) - len(failed)}/{len(outcomes)} passed",
        ))
    return 1 if failed else 0


def cmd_mix(args: argparse.Namespace) -> int:
    """`repro mix`: the Figure 19 multi-core weighted-speedup study."""
    from repro.experiments.figures import fig19_multicore

    _setup_telemetry(args)
    # mixes are multi-core: timelines/probes are single-core instruments,
    # so the mix command only offers the journal + process-wide exports
    obs = Observability(journal=RunJournal(args.journal)) if args.journal else None
    cache = _make_cache(args)
    data = fig19_multicore(
        n_mixes=args.mixes,
        cores=args.cores,
        warmup_instructions=args.warmup,
        sim_instructions=args.sim,
        seed=args.seed,
        policies=tuple(args.policies),
        jobs=args.jobs,
        cache=cache,
        obs=obs,
        shm=args.shm,
        packed=args.packed,
        kernel=args.kernel,
        validate=args.validate,
        progress=_progress_sink(args),
    )
    if args.json:
        print(json.dumps({
            "mixes": args.mixes,
            "cores": args.cores,
            "baseline": args.policies[0],
            "policies": data,
        }, indent=2))
    else:
        rows = []
        for policy, d in data.items():
            pct = d["per_mix_pct"]
            rows.append((
                policy,
                format_pct(d["geomean_pct"]),
                format_pct(pct[0]),
                format_pct(pct[len(pct) // 2]),
                format_pct(pct[-1]),
            ))
        print(format_table(
            ["policy", "geomean", "min", "median", "max"], rows,
            f"weighted speedup over {args.policies[0]}: {args.mixes} mix(es) "
            f"x {args.cores} cores",
        ))
    _emit_cache_stats(cache)
    _emit_obs(args, obs)
    return 0


def _summarize_journal(records: list[dict]) -> dict:
    """Aggregate a journal's records into the `repro status` summary."""
    workloads = sorted({r["workload"]["name"] for r in records})
    policies = sorted({r["config"]["policy"] for r in records})
    wall = sum(r.get("wall_seconds") or 0.0 for r in records)
    instructions = sum(r["result"]["instructions"] for r in records)
    per_policy: dict[str, dict] = {}
    for policy in policies:
        runs = [r for r in records if r["config"]["policy"] == policy]
        ipcs = [r["result"]["ipc"] for r in runs]
        per_policy[policy] = {
            "runs": len(runs),
            "mean_ipc": sum(ipcs) / len(ipcs) if ipcs else None,
        }
    # multicore cores journal one record each, tagged with mix id + core
    # index in the record context (see simulate_mix)
    mix_records = [
        r for r in records if (r.get("context") or {}).get("mix") is not None
    ]
    return {
        "runs": len(records),
        "workloads": workloads,
        "policies": policies,
        "wall_seconds": wall,
        "instructions": instructions,
        "instructions_per_second": instructions / wall if wall > 0 else None,
        "per_policy": per_policy,
        "mix_core_runs": len(mix_records),
        "mixes": len({r["context"]["mix"] for r in mix_records}),
        "hosts": sorted({r["host"]["hostname"] for r in records if "host" in r}),
    }


def cmd_status(args: argparse.Namespace) -> int:
    """`repro status`: summarise a run journal (+ optional metrics export)."""
    from repro.obs.journal import read_journal

    records = read_journal(args.journal)
    if not records:
        print(f"status: no records in {args.journal}", file=sys.stderr)
        return 1
    summary = _summarize_journal(records)
    metrics_summary = None
    if args.metrics:
        from repro.obs.metrics import parse_prometheus

        with open(args.metrics, encoding="utf-8") as fh:
            text = fh.read()
        if str(args.metrics).endswith(".json"):
            samples = json.loads(text)["samples"]
        else:
            samples = parse_prometheus(text)
        metrics_summary = {}
        for sample in samples:
            labels = sample["labels"]
            key = sample["name"] if not labels else (
                sample["name"] + "{"
                + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}")
            # JSON histogram samples carry count/sum instead of a value
            metrics_summary[key] = sample.get("value", sample.get("sum"))
    if args.json:
        payload = {"journal": str(args.journal), "summary": summary}
        if metrics_summary is not None:
            payload["metrics"] = metrics_summary
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        ("runs", str(summary["runs"])),
        ("workloads", ", ".join(summary["workloads"])),
        ("policies", ", ".join(summary["policies"])),
        ("wall time", f"{summary['wall_seconds']:.2f}s"),
        ("instructions", f"{summary['instructions']:,}"),
    ]
    if summary["mix_core_runs"]:
        rows.append(("mix work",
                     f"{summary['mix_core_runs']} core-run(s) across "
                     f"{summary['mixes']} mix(es)"))
    ips = summary["instructions_per_second"]
    if ips is not None:
        rows.append(("throughput", f"{ips / 1000:.0f}k instr/s"))
    print(format_table(["field", "value"], rows, f"journal {args.journal}"))
    print(format_table(
        ["policy", "runs", "mean IPC"],
        [(p, str(d["runs"]),
          f"{d['mean_ipc']:.4f}" if d["mean_ipc"] is not None else "n/a")
         for p, d in summary["per_policy"].items()],
        "per policy",
    ))
    if metrics_summary:
        interesting = [
            (k, v) for k, v in sorted(metrics_summary.items())
            if not k.endswith("_bucket") and "_bucket{" not in k
        ]
        print(format_table(
            ["metric", "value"],
            [(k, f"{v:g}") for k, v in interesting],
            f"metrics {args.metrics}",
        ))
    return 0


def cmd_storage(args: argparse.Namespace) -> int:
    """`repro storage`: DRIPPER's Table III accounting."""
    bits = storage_breakdown_bits()
    rows = [(component, f"{b} bits", f"{b / 8 / 1024:.4f} KiB") for component, b in bits.items()]
    print(format_table(["component", "bits", "KiB"], rows, "DRIPPER storage (Table III)"))
    print(f"total: {storage_overhead_kib():.3f} KiB")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p: argparse.ArgumentParser) -> None:
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--workload", help="registry workload name")
        group.add_argument("--trace-file", help="native trace file to replay")
        p.add_argument("--prefetcher", default="berti",
                       choices=("berti", "berti-timely", "ipcp", "bop", "stride", "next-line", "none"))
        p.add_argument("--l2", default="none", choices=("none", "spp", "ipcp", "bop"))
        p.add_argument("--warmup", type=int, default=20_000)
        p.add_argument("--sim", type=int, default=60_000)
        p.add_argument("--large-pages", type=float, default=0.0,
                       help="fraction of 2MB-backed regions (0..1)")
        p.add_argument("--validate", action="store_true",
                       help="attach the runtime invariant checker to every run "
                            "(abort with a counter snapshot on violation)")
        p.add_argument("--packed", action="store_true",
                       help="drive the simulation through the packed-trace fast "
                            "path (bit-identical results, substantially faster)")
        p.add_argument("--kernel", choices=("fused", "vectorized", "auto"),
                       default="fused",
                       help="packed kernel tier: 'vectorized' skips uneventful "
                            "spans with numpy scans, 'auto' probes each pack's "
                            "event density and picks the winning tier (both "
                            "imply --packed; bit-identical results)")
        p.add_argument("--sampling", type=_positive_int, default=None,
                       metavar="PHASES",
                       help="phase-sampled simulation: cluster the trace into "
                            "PHASES phases, simulate one representative "
                            "interval each, reconstruct the whole-trace "
                            "result with bootstrap confidence bounds")
        p.add_argument("--sampling-intervals", type=_positive_int, default=64,
                       metavar="N",
                       help="profiling resolution for --sampling: split the "
                            "measured region into N equal-instruction "
                            "intervals (default: 64)")
        p.add_argument("--sampling-seed", type=int, default=0, metavar="SEED",
                       help="seed for clustering init and the bootstrap "
                            "(sampled runs are bit-reproducible per seed)")

    def add_parallel_args(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group("execution")
        g.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="run grid cells on N worker processes (default: serial)")
        g.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="content-addressed result cache; unchanged cells are "
                            "served from disk instead of re-simulated")
        shm = g.add_mutually_exclusive_group()
        shm.add_argument("--shm", dest="shm", action="store_true", default=None,
                         help="share packed traces with workers through "
                              "shared memory (default when --jobs > 1)")
        shm.add_argument("--no-shm", dest="shm", action="store_false",
                         help="disable the shared-memory pack store; workers "
                              "pack their own traces")
        g.add_argument("--progress", action="store_true",
                       help="print live per-cell progress (with ETA and "
                            "throughput) to stderr as grid cells land")

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group("observability")
        g.add_argument("--timeline-out", metavar="PATH", default=None,
                       help="write the per-epoch timeline (CSV if PATH ends in .csv, else JSONL)")
        g.add_argument("--timeline-every", type=_positive_int, default=1, metavar="N",
                       help="sample every Nth epoch (default: every epoch)")
        g.add_argument("--journal", metavar="PATH", default=None,
                       help="append one JSONL run-journal record per run")
        g.add_argument("--profile", action="store_true",
                       help="time the hot paths; print a per-component breakdown")
        g.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")
        g.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the end-of-command metrics snapshot "
                            "(Prometheus text; JSON when PATH ends in .json)")
        g.add_argument("--trace-out", metavar="PATH", default=None,
                       help="record spans (pack/shm-attach/drive/collect/"
                            "cache-write) and write a Chrome trace-event JSON "
                            "merging every process's spans")

    run_p = sub.add_parser("run", help="run one workload under one policy")
    add_sim_args(run_p)
    run_p.add_argument("--policy", default="dripper", choices=_POLICIES)
    add_obs_args(run_p)
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="run one workload under several policies")
    add_sim_args(cmp_p)
    cmp_p.add_argument("--policies", nargs="+", default=["discard", "permit", "dripper"],
                       choices=_POLICIES)
    add_parallel_args(cmp_p)
    add_obs_args(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    swp_p = sub.add_parser("sweep", help="sweep one hardware parameter over several workloads")
    swp_p.add_argument("--param", required=True,
                       choices=("stlb", "dtlb", "dram-latency", "epoch"),
                       help="which knob to sweep (epoch sweeps DRIPPER's epoch length)")
    swp_p.add_argument("--values", type=_positive_int, nargs="+", required=True,
                       help="sweep points (entries / cycles / instructions)")
    swp_p.add_argument("--workloads", nargs="+", required=True, metavar="NAME",
                       help="registry workload names")
    swp_p.add_argument("--policies", nargs="+", default=["permit", "dripper"],
                       choices=_POLICIES, help="policies compared against discard")
    swp_p.add_argument("--prefetcher", default="berti",
                       choices=("berti", "berti-timely", "ipcp", "bop", "stride", "next-line", "none"))
    swp_p.add_argument("--warmup", type=int, default=20_000)
    swp_p.add_argument("--sim", type=int, default=60_000)
    swp_p.add_argument("--validate", action="store_true",
                       help="attach the runtime invariant checker to every run")
    swp_p.add_argument("--packed", action="store_true",
                       help="drive every run through the packed-trace fast path")
    swp_p.add_argument("--kernel", choices=("fused", "vectorized", "auto"),
                       default="fused",
                       help="packed kernel tier for every run (vectorized/"
                            "auto imply --packed)")
    swp_p.add_argument("--sampling", type=_positive_int, default=None,
                       metavar="PHASES",
                       help="phase-sample every sweep cell into PHASES phases "
                            "(reconstructed results with confidence bounds)")
    swp_p.add_argument("--sampling-intervals", type=_positive_int, default=64,
                       metavar="N",
                       help="profiling intervals per cell for --sampling")
    swp_p.add_argument("--sampling-seed", type=int, default=0, metavar="SEED",
                       help="sampling seed (clustering init + bootstrap)")
    add_parallel_args(swp_p)
    add_obs_args(swp_p)
    swp_p.set_defaults(func=cmd_sweep)

    ins_p = sub.add_parser("inspect", help="run a workload, then dump the filter's learned state")
    add_sim_args(ins_p)
    ins_p.add_argument("--policy", default="dripper", choices=_POLICIES)
    add_obs_args(ins_p)
    ins_p.set_defaults(func=cmd_inspect)

    mix_p = sub.add_parser(
        "mix",
        help="multi-core mix study (Figure 19 weighted speedups)",
        description="Run N eight-core mixes under each policy against a "
                    "shared LLC+DRAM and report the weighted-speedup "
                    "distribution over the first (baseline) policy.  "
                    "Isolation IPCs are content-addressed grid cells, so "
                    "--cache-dir dedupes them across mixes and invocations; "
                    "--jobs dispatches whole mixes to workers on packed "
                    "cores (bit-identical to the serial generator loop).",
    )
    mix_p.add_argument("--mixes", type=_positive_int, default=4, metavar="N",
                       help="number of mixes (the paper runs 300)")
    mix_p.add_argument("--cores", type=_positive_int, default=8,
                       help="cores per mix (default: 8, as in the paper)")
    mix_p.add_argument("--policies", nargs="+",
                       default=["discard", "permit", "dripper"],
                       choices=_POLICIES,
                       help="first policy is the normalisation baseline")
    mix_p.add_argument("--warmup", type=int, default=8_000)
    mix_p.add_argument("--sim", type=int, default=24_000)
    mix_p.add_argument("--seed", type=int, default=42,
                       help="mix-composition seed")
    mix_p.add_argument("--validate", action="store_true",
                       help="attach a runtime invariant checker to every core")
    mix_p.add_argument("--packed", action="store_true",
                       help="drive serial mixes through the packed mix loop "
                            "(workers always use it; bit-identical results)")
    mix_p.add_argument("--kernel", choices=("fused", "vectorized"),
                       default="fused",
                       help="packed kernel tier for every core (vectorized "
                            "implies --packed)")
    add_parallel_args(mix_p)
    g = mix_p.add_argument_group("observability")
    g.add_argument("--journal", metavar="PATH", default=None,
                   help="append one JSONL run-journal record per core, "
                        "tagged with mix id + core index")
    g.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON on stdout")
    g.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write the end-of-command metrics snapshot "
                        "(Prometheus text; JSON when PATH ends in .json)")
    g.add_argument("--trace-out", metavar="PATH", default=None,
                   help="record spans and write a merged Chrome trace-event "
                        "JSON (mix-cell/mix-drive spans included)")
    mix_p.set_defaults(func=cmd_mix)

    wl_p = sub.add_parser("workloads", help="list registered workloads")
    wl_p.add_argument("--set", default="seen", choices=("seen", "unseen", "non-intensive"))
    wl_p.add_argument("--suite", default=None)
    wl_p.set_defaults(func=cmd_workloads)

    sub.add_parser("features", help="list MOKA's feature library").set_defaults(func=cmd_features)
    sub.add_parser("storage", help="DRIPPER storage accounting (Table III)").set_defaults(func=cmd_storage)

    snap_p = sub.add_parser("snapshot", help="materialise a registry workload as a trace file")
    snap_p.add_argument("--workload", required=True)
    snap_p.add_argument("--out", required=True)
    snap_p.add_argument("--instructions", type=int, default=100_000)
    snap_p.set_defaults(func=cmd_snapshot)

    val_p = sub.add_parser(
        "validate",
        help="run the differential/metamorphic validation suite",
        description="Differential validation: determinism, parallel-vs-serial, "
                    "discard-vs-source-suppression, epoch invariance, a full "
                    "invariant pass per (workload x policy), and mutation "
                    "detection.  Exits 1 if any check fails.",
    )
    val_p.add_argument("--workloads", nargs="+", default=["astar", "hmmer"],
                       metavar="NAME", help="registry workload names")
    val_p.add_argument("--policies", nargs="+", default=["discard", "permit", "dripper"],
                       choices=_POLICIES, help="policies the invariant pass covers")
    val_p.add_argument("--prefetcher", default="berti",
                       choices=("berti", "berti-timely", "ipcp", "bop", "stride", "next-line", "none"))
    val_p.add_argument("--warmup", type=int, default=2_000)
    val_p.add_argument("--sim", type=int, default=6_000)
    val_p.add_argument("--seed", type=int, default=0,
                       help="seed for the randomized parallel-vs-serial fuzz")
    val_p.add_argument("--fuzz", type=_positive_int, default=4, metavar="N",
                       help="number of randomized cells in the parallel fuzz")
    val_p.add_argument("--jobs", type=_positive_int, default=2, metavar="N",
                       help="worker processes for the parallel leg of the fuzz")
    val_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")
    val_p.set_defaults(func=cmd_validate)

    st_p = sub.add_parser(
        "status",
        help="summarise a run journal (and an exported metrics snapshot)",
        description="Aggregate a JSONL run journal into run/workload/policy "
                    "counts, total wall time, simulation throughput, and "
                    "per-policy IPC; --metrics additionally folds in a "
                    "--metrics-out export (Prometheus text or JSON).",
    )
    st_p.add_argument("--journal", required=True, metavar="PATH",
                      help="JSONL run journal written by --journal")
    st_p.add_argument("--metrics", default=None, metavar="PATH",
                      help="metrics snapshot written by --metrics-out")
    st_p.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON on stdout")
    st_p.set_defaults(func=cmd_status)

    conv_p = sub.add_parser("convert", help="convert a ChampSim trace to the native format")
    conv_p.add_argument("--champsim", required=True)
    conv_p.add_argument("--out", required=True)
    conv_p.add_argument("--max-instructions", type=int, default=None)
    conv_p.set_defaults(func=cmd_convert)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also exposed as the `repro` console script)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
