"""Zero-copy shared-memory pack store for parallel grids.

A grid over W workloads × P policies used to materialise each workload's
:class:`~repro.workloads.packed.PackedTrace` once *per worker process* (the
``get_packed`` cache is process-local).  :class:`SharedPackStore` moves the
materialisation to the parent: each workload of the grid is packed exactly
once, its four flat columns (``pcs``/``vaddrs``/``gaps``/``flags``) are
published into one :class:`multiprocessing.shared_memory.SharedMemory`
segment, and workers attach zero-copy ``memoryview``-backed
:class:`PackedTrace` instances over the parent's pages — no pickling, no
per-worker repack, no duplicate RSS.

Layout of a segment (offsets derived from the record count ``n``)::

    [ pcs: n × u64 | vaddrs: n × u64 | gaps: n × u32 | flags: n × u16 ]

Columns are ordered by element width so every column starts at a naturally
aligned offset without padding.

Large packs (ChampSim imports) spill to a plain file instead, which workers
``mmap`` — same zero-copy attachment through the page cache, without
pressuring ``/dev/shm``'s tmpfs budget.  A :class:`PackHandle` is the
picklable descriptor of either flavour.

Lifecycle rules:

* the parent's store owns every segment/spill file; ``close()`` (also run
  from ``atexit`` and the context manager's ``finally``) unlinks them all,
  so neither a crash nor Ctrl-C leaks ``/dev/shm`` entries;
* workers attach via :func:`install_attachments`, which registers handles
  and installs the shared provider consulted by ``get_packed`` — attached
  packs bypass the worker's local pack cache entirely;
* workers attach without registering with the interpreter's
  ``resource_tracker`` (the parent is the sole owner; attach-side
  registration on 3.8–3.12 double-unlinks at shutdown and races the shared
  tracker when several workers attach the same segment);
* worker-side mappings are released by the OS when the process exits —
  workers never unlink.
"""

from __future__ import annotations

import atexit
import mmap
import os
import tempfile
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Optional

from repro.obs.metrics import get_metrics
from repro.obs.tracing import trace_span
from repro.workloads.packed import PackedTrace, _pack_key, get_packed
from repro.workloads.trace import Workload

#: shm lifecycle instruments (event granularity: publish/attach/close only)
_SEGMENTS_GAUGE = get_metrics().gauge(
    "shm.live_segments", "shm segments + spill files currently owned")
_BYTES_GAUGE = get_metrics().gauge(
    "shm.live_bytes", "payload bytes published through the pack store")
_PUBLISHED = get_metrics().counter(
    "shm.published", "packs published (segments + spill files)")
_SPILLED = get_metrics().counter(
    "shm.spilled", "packs that spilled to an mmap file instead of /dev/shm")
_ATTACH_COUNTER = get_metrics().counter(
    "shm.attached", "zero-copy pack attachments made by this process")
_REAPED = get_metrics().counter(
    "shm.reaped", "stale segments of dead owners unlinked at store creation")

__all__ = [
    "PackHandle",
    "SharedPackStore",
    "attach_pack",
    "detach_all",
    "install_attachments",
    "live_segments",
    "reap_stale_segments",
]

#: packs larger than this spill to an mmap-able file instead of /dev/shm
DEFAULT_SPILL_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class PackHandle:
    """Picklable descriptor of one published pack (shm segment or file)."""

    kind: str  #: "shm" (segment name in ``ref``) or "file" (path in ``ref``)
    ref: str
    #: the ``get_packed`` identity key this pack answers for
    key: tuple
    name: str
    suite: str
    warmup: int
    sim: int
    instructions: int
    complete: bool
    n_records: int

    def nbytes(self) -> int:
        """Total payload bytes of the published columns."""
        return self.n_records * (8 + 8 + 4 + 2)


def _column_offsets(n: int) -> tuple[int, int, int, int, int]:
    """(pcs, vaddrs, gaps, flags, total) byte offsets for ``n`` records."""
    o_pcs = 0
    o_vaddrs = o_pcs + 8 * n
    o_gaps = o_vaddrs + 8 * n
    o_flags = o_gaps + 4 * n
    total = o_flags + 2 * n
    return o_pcs, o_vaddrs, o_gaps, o_flags, total


def _publishable(key: tuple) -> bool:
    """Only identity-keyed packs can be served across processes.

    ``_pack_key`` falls back to ``id(workload)`` for objects without a seed
    or path; that key never matches the one a worker computes for its own
    copy of the workload, so publishing it would be dead weight.
    """
    return len(key) == 7


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    3.8–3.12 register attachments with the (shared, fork-inherited) resource
    tracker; register-then-unregister from several workers races on the
    tracker's per-name set, so the registration is suppressed outright (the
    parent owns the segment and its tracker entry).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _views_over(buf: Any, n: int) -> tuple:
    """The four typed column views over a segment/mmap buffer."""
    o_pcs, o_vaddrs, o_gaps, o_flags, total = _column_offsets(n)
    base = memoryview(buf)
    pcs = base[o_pcs:o_vaddrs].cast("Q")
    vaddrs = base[o_vaddrs:o_gaps].cast("Q")
    gaps = base[o_gaps:o_flags].cast("I")
    flags = base[o_flags:total].cast("H")
    return base, pcs, vaddrs, flags, gaps


# ---------------------------------------------------------------------------
# parent side: publish


class SharedPackStore:
    """Publishes each grid workload's pack once; owns the shared segments.

    Context-manager friendly; ``close()`` is idempotent and also registered
    with ``atexit``, so segments are unlinked even when the owning process
    dies mid-grid.
    """

    def __init__(self, *, spill_bytes: int = DEFAULT_SPILL_BYTES,
                 spill_dir: Optional[str] = None):
        self.spill_bytes = spill_bytes
        self.spill_dir = spill_dir
        self._handles: dict[tuple, PackHandle] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        self._spill_paths: list[Path] = []
        self._seq = 0
        self._closed = False
        reap_stale_segments()
        atexit.register(self.close)

    # -- publishing -------------------------------------------------------

    def publish(self, workload: Workload, warmup: int, sim: int) -> Optional[PackHandle]:
        """Pack ``workload`` (once) and publish its columns; returns a handle.

        Returns ``None`` for workloads without a cross-process identity
        (no seed/path — see ``_pack_key``) and for empty packs; callers fall
        back to worker-local packing, which stays bit-identical.
        """
        if self._closed:
            raise RuntimeError("SharedPackStore is closed")
        key = _pack_key(workload, warmup, sim)
        handle = self._handles.get(key)
        if handle is not None:
            return handle
        if not _publishable(key):
            return None
        packed = get_packed(workload, warmup, sim)
        n = len(packed)
        if n == 0:
            return None
        handle = self._export(key, packed)
        self._handles[key] = handle
        _PUBLISHED.inc()
        _SEGMENTS_GAUGE.set(len(self._segments) + len(self._spill_paths))
        _BYTES_GAUGE.set(self.nbytes())
        from repro.obs import log_event

        log_event("shm-publish", workload=handle.name, kind=handle.kind,
                  bytes=handle.nbytes(), records=handle.n_records)
        return handle

    def _export(self, key: tuple, packed: PackedTrace) -> PackHandle:
        n = len(packed)
        o_pcs, o_vaddrs, o_gaps, o_flags, total = _column_offsets(n)
        kind, ref, buf = self._allocate(total)
        buf[o_pcs:o_vaddrs] = packed.pcs.tobytes()
        buf[o_vaddrs:o_gaps] = packed.vaddrs.tobytes()
        buf[o_gaps:o_flags] = packed.gaps.tobytes()
        buf[o_flags:total] = packed.flags.tobytes()
        if kind == "file":
            buf.flush()
            buf.close()
        return PackHandle(
            kind=kind, ref=ref, key=key,
            name=packed.name, suite=packed.suite,
            warmup=packed.warmup, sim=packed.sim,
            instructions=packed.instructions, complete=packed.complete,
            n_records=n,
        )

    def _allocate(self, total: int):
        """A writable buffer of ``total`` bytes: shm segment or spill file."""
        if total <= self.spill_bytes:
            while True:
                name = f"repro-pack-{os.getpid()}-{self._seq}"
                self._seq += 1
                try:
                    seg = shared_memory.SharedMemory(create=True, size=total, name=name)
                except FileExistsError:
                    continue  # stale name from an unrelated process: next seq
                except OSError:
                    break  # /dev/shm unavailable or full: spill instead
                self._segments.append(seg)
                return "shm", seg.name, seg.buf
        fd, path = tempfile.mkstemp(prefix="repro-pack-", suffix=".spill",
                                    dir=self.spill_dir)
        os.ftruncate(fd, total)
        mm = mmap.mmap(fd, total)
        os.close(fd)
        self._spill_paths.append(Path(path))
        _SPILLED.inc()
        return "file", path, mm

    # -- introspection ----------------------------------------------------

    def handles(self) -> list[PackHandle]:
        """Every published handle (publication order)."""
        return list(self._handles.values())

    def handle_for(self, workload: Workload, warmup: int, sim: int) -> Optional[PackHandle]:
        """The already-published handle for a (workload, window), if any."""
        return self._handles.get(_pack_key(workload, warmup, sim))

    def nbytes(self) -> int:
        """Total published payload bytes."""
        return sum(h.nbytes() for h in self._handles.values())

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Unlink every segment and spill file (idempotent, crash-safe)."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # a local attachment still exports views
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        for path in self._spill_paths:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._spill_paths.clear()
        self._handles.clear()
        _SEGMENTS_GAUGE.set(0)
        _BYTES_GAUGE.set(0)
        from repro.obs import log_event

        log_event("shm-close", pid=os.getpid())
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedPackStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# worker side: attach

#: handles this process can answer get_packed() for, keyed by pack key
_KNOWN_HANDLES: dict[tuple, PackHandle] = {}
#: live attachments keyed by handle.ref: (segment/mmap, views..., PackedTrace)
_ATTACHED: dict[str, tuple] = {}


def attach_pack(handle: PackHandle) -> PackedTrace:
    """Zero-copy :class:`PackedTrace` over a published pack (cached)."""
    entry = _ATTACHED.get(handle.ref)
    if entry is not None:
        return entry[-1]
    with trace_span("shm-attach", category="shm", workload=handle.name,
                    kind=handle.kind, bytes=handle.nbytes()):
        if handle.kind == "shm":
            seg = _attach_segment(handle.ref)
            views = _views_over(seg.buf, handle.n_records)
        else:
            with open(handle.ref, "rb") as fh:
                seg = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            views = _views_over(seg, handle.n_records)
    _ATTACH_COUNTER.inc()
    base, pcs, vaddrs, flags, gaps = views
    packed = PackedTrace(
        handle.name, handle.suite, pcs, vaddrs, flags, gaps,
        warmup=handle.warmup, sim=handle.sim,
        instructions=handle.instructions, complete=handle.complete,
    )
    _ATTACHED[handle.ref] = (seg, base, pcs, vaddrs, flags, gaps, packed)
    return packed


def _shared_provider(key: tuple) -> Optional[PackedTrace]:
    handle = _KNOWN_HANDLES.get(key)
    if handle is None:
        return None
    return attach_pack(handle)


def install_attachments(handles) -> None:
    """Register handles and serve them through ``get_packed`` (idempotent).

    Called from the pool initializer with the handles known at pool start,
    and again per work chunk with any pack published later — the provider
    stays installed; only the handle registry grows.
    """
    from repro.workloads.packed import install_shared_provider

    for handle in handles:
        _KNOWN_HANDLES[handle.key] = handle
    install_shared_provider(_shared_provider)


def detach_all() -> None:
    """Release every attachment (tests / same-process attach-then-close).

    Any still-referenced :class:`PackedTrace` becomes unusable afterwards;
    release failures (exported views held elsewhere) are left for the GC.
    """
    from repro.workloads.packed import install_shared_provider

    for seg, base, pcs, vaddrs, flags, gaps, packed in _ATTACHED.values():
        # the pack's cached numpy column views (PackedTrace.columns()) export
        # the buffer; drop them first or every release below fails
        packed._views = None
        for view in (pcs, vaddrs, flags, gaps, base):
            try:
                view.release()
            except BufferError:  # pragma: no cover - caller still holds a sub-view
                pass
        try:
            seg.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
    _ATTACHED.clear()
    _KNOWN_HANDLES.clear()
    install_shared_provider(None)


def live_segments() -> list[str]:
    """Names of ``/dev/shm`` entries created by this module (leak checks)."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in shm_dir.glob("repro-pack-*"))


def reap_stale_segments() -> int:
    """Unlink ``repro-pack-*`` segments whose owning process is dead.

    ``close()`` rides ``atexit``, but SIGKILL (OOM killer, a cancelled CI
    job, ``timeout -s KILL``) never runs it, and an orphaned segment then
    pins /dev/shm memory forever — a long-lived sweep service would leak
    its way out of shared memory across crashes.  Segment names embed the
    owner pid, so any segment whose pid no longer exists can never be
    closed by its store again and is safe to reclaim; live owners (this
    process, concurrent sweeps) are never touched.  Runs at every store
    creation; returns the number of segments reclaimed.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return 0
    reaped = 0
    for path in shm_dir.glob("repro-pack-*"):
        parts = path.name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):  # spill files etc.: not pid-named
            continue
        try:
            os.kill(pid, 0)
            continue  # owner is alive (or pid recycled): leave it alone
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - alive, other user
            continue
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another reaper
            continue
        reaped += 1
    if reaped:
        _REAPED.inc(reaped)
        from repro.obs import log_event

        log_event("shm-reap", segments=reaped)
    return reaped
