"""Workload substrate: trace format, pattern primitives, suites, registry."""

from repro.workloads.registry import (
    by_name,
    make_mixes,
    motivation_workloads,
    non_intensive_workloads,
    seen_workloads,
    stratified_sample,
    unseen_workloads,
)
from repro.workloads.packed import PackedTrace, PackedWorkload, clear_pack_cache, get_packed
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN, Record, Workload
from repro.workloads.trace_io import (
    ChampsimWorkload,
    FileWorkload,
    convert_champsim,
    read_champsim,
    read_trace,
    read_trace_header,
    snapshot_workload,
    write_trace,
)

__all__ = [
    "by_name",
    "make_mixes",
    "motivation_workloads",
    "non_intensive_workloads",
    "seen_workloads",
    "stratified_sample",
    "unseen_workloads",
    "PackedTrace",
    "PackedWorkload",
    "clear_pack_cache",
    "get_packed",
    "SyntheticWorkload",
    "BRANCH",
    "DEPENDS",
    "LOAD",
    "MISPREDICT",
    "STORE",
    "TAKEN",
    "Record",
    "Workload",
    "ChampsimWorkload",
    "FileWorkload",
    "convert_champsim",
    "read_champsim",
    "read_trace",
    "read_trace_header",
    "snapshot_workload",
    "write_trace",
]
