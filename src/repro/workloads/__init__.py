"""Workload substrate: trace format, pattern primitives, suites, registry."""

from repro.workloads.registry import (
    by_name,
    make_mixes,
    motivation_workloads,
    non_intensive_workloads,
    seen_workloads,
    stratified_sample,
    unseen_workloads,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN, Record, Workload
from repro.workloads.trace_io import (
    ChampsimWorkload,
    FileWorkload,
    convert_champsim,
    read_champsim,
    read_trace,
    snapshot_workload,
    write_trace,
)

__all__ = [
    "by_name",
    "make_mixes",
    "motivation_workloads",
    "non_intensive_workloads",
    "seen_workloads",
    "stratified_sample",
    "unseen_workloads",
    "SyntheticWorkload",
    "BRANCH",
    "DEPENDS",
    "LOAD",
    "MISPREDICT",
    "STORE",
    "TAKEN",
    "Record",
    "Workload",
    "ChampsimWorkload",
    "FileWorkload",
    "convert_champsim",
    "read_champsim",
    "read_trace",
    "snapshot_workload",
    "write_trace",
]
