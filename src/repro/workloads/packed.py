"""Packed trace buffers: materialise a workload once, replay it many times.

A :class:`PackedTrace` holds a finite prefix of a workload's record stream as
four flat ``array`` columns (pc ``u64``, vaddr ``u64``, flags ``u16``, gap
``u32`` — the same widths the native on-disk format uses).  Packing runs the
generator exactly once; every subsequent replay iterates plain C arrays, so
the per-record cost of pattern state machines and seeded RNG draws is paid a
single time per (workload, window) instead of once per simulation.

The packed window mirrors the drive loop's measurement semantics precisely:
records are buffered until the measured region — which starts at the first
record boundary *at or after* ``warmup`` instructions — spans ``sim``
instructions.  A packed trace is therefore always long enough for
:func:`repro.cpu.fastpath.drive_packed` (and for :func:`repro.cpu.simulator.drive`
over its replay), including the warm-up-overshoot case, without guessing a
slack margin.

:func:`get_packed` adds a small process-wide cache keyed by workload identity
and window, which is what lets the grid cells of
:mod:`repro.experiments.parallel` share one materialisation across every
(prefetcher × policy) cell of the same workload.  A *shared provider*
(:func:`install_shared_provider`) is consulted before the cache: worker
processes of an shm-backed grid install one that attaches zero-copy
:class:`PackedTrace` views over the parent's published segments
(:mod:`repro.workloads.shm`), bypassing the local cache — and its memory —
entirely.
"""

from __future__ import annotations

import os
import weakref
from array import array
from collections import OrderedDict
from typing import Callable, Iterator, Optional

from repro.workloads.trace import (
    BRANCH,
    DEPENDS,
    LOAD,
    MISPREDICT,
    Record,
    STORE,
    Workload,
)


def _capacity_from_env() -> int:
    """Pack-cache capacity, overridable via ``REPRO_PACK_CACHE_CAPACITY``."""
    raw = os.environ.get("REPRO_PACK_CACHE_CAPACITY")
    if raw is None:
        return 32
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PACK_CACHE_CAPACITY must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"REPRO_PACK_CACHE_CAPACITY must be a positive integer, got {raw!r}"
        )
    return value


#: process-wide pack cache capacity (packs are ~22 bytes/record; the default
#: 80k-instruction window is ~0.5 MB, so 32 entries stay well under 32 MB);
#: a grid over more workloads than this silently thrashes, so it is
#: configurable via the env var or :func:`set_pack_cache_capacity`
_CACHE_CAPACITY = _capacity_from_env()


class PackIndex:
    """Derived per-record arrays the vectorized drive kernel scans.

    Built once per pack (lazily, on the first vectorized drive) from the
    numpy column views — epoch/boundary positions come from the cumulative
    instruction counts, I-line runs from the pc column, and the event mask
    flags every record the span predicate can never clear by inspection
    alone (branches, forced mispredicts, dependent loads, non-memory
    records, and gaps large enough to trigger straight-line I-fetch).  All
    integer arrays are ``int64`` so downstream arithmetic never hits
    numpy's uint64/int64 promotion rules.
    """

    __slots__ = ("cum", "iline", "change", "vpage", "vline", "event",
                 "isload", "isstore", "weight")

    def __init__(self, packed: "PackedTrace"):
        import numpy as np

        pcs, vaddrs, flags, gaps = packed.columns()
        g = gaps.astype(np.int64)
        fl = flags.astype(np.int64)
        #: absolute instruction count after record i (engines start at 0)
        self.cum = np.cumsum(1 + g)
        self.iline = (pcs >> np.uint64(6)).astype(np.int64)
        self.vpage = (vaddrs >> np.uint64(12)).astype(np.int64)
        self.vline = (vaddrs >> np.uint64(6)).astype(np.int64)
        #: record i starts a new I-line run (first record always does:
        #: engines start with ``_last_iline = -1``)
        change = np.empty(len(g), dtype=bool)
        if len(change):
            change[0] = True
            change[1:] = self.iline[1:] != self.iline[:-1]
        self.change = change
        #: records the span predicate must hand to the slow path regardless
        #: of cache/TLB state: branch/mispredict/dependent flags, non-memory
        #: records, and gaps >= 16 (``(gap*4)>>6`` straight-line I-fetch)
        self.event = (
            ((fl & (BRANCH | MISPREDICT | DEPENDS)) != 0)
            | ((fl & (LOAD | STORE)) == 0)
            | (g > 15)
        )
        self.isload = (fl & LOAD) != 0
        self.isstore = (fl & STORE) != 0
        #: per-record instruction weight (1 + gap) as float64; the drive
        #: kernel multiplies by the engine's fetch/retire CPI per window
        self.weight = (1 + g).astype(np.float64)


class PackedTrace:
    """A finite, column-packed prefix of one workload's trace."""

    __slots__ = ("name", "suite", "pcs", "vaddrs", "flags", "gaps",
                 "instructions", "warmup", "sim", "complete",
                 "_views", "_index")

    def __init__(self, name: str, suite: str, pcs: array, vaddrs: array,
                 flags: array, gaps: array, *, warmup: int, sim: int,
                 instructions: int, complete: bool):
        self.name = name
        self.suite = suite
        self.pcs = pcs
        self.vaddrs = vaddrs
        self.flags = flags
        self.gaps = gaps
        #: total instructions the packed records account for (incl. gaps)
        self.instructions = instructions
        #: the (warmup, sim) window this pack was sized for
        self.warmup = warmup
        self.sim = sim
        #: False when the source trace ended before the window was covered
        #: (finite trace shorter than warm-up + measured region)
        self.complete = complete
        #: lazily built numpy column views / vectorization index
        self._views = None
        self._index = None

    @classmethod
    def from_workload(cls, workload: Workload, warmup: int, sim: int) -> "PackedTrace":
        """Materialise enough of ``workload`` to cover warm-up + measurement.

        Replicates the drive loop's boundary logic: measurement begins at the
        first record boundary at or after ``warmup`` instructions, and the
        pack ends at the first record boundary at or after ``sim`` measured
        instructions — so a replay can never run dry mid-window even when a
        record's gap overshoots the warm-up boundary.
        """
        pcs = array("Q")
        vaddrs = array("Q")
        flags = array("H")
        gaps = array("I")
        append_pc = pcs.append
        append_va = vaddrs.append
        append_fl = flags.append
        append_gap = gaps.append
        total = 0
        measure_start: Optional[int] = None
        complete = False
        for pc, vaddr, flag, gap in workload.generate():
            append_pc(pc)
            append_va(vaddr)
            append_fl(flag)
            append_gap(gap)
            total += 1 + gap
            if measure_start is None and total >= warmup:
                measure_start = total
            if measure_start is not None and total - measure_start >= sim:
                complete = True
                break
        return cls(
            workload.name, getattr(workload, "suite", "PACKED"),
            pcs, vaddrs, flags, gaps,
            warmup=warmup, sim=sim, instructions=total, complete=complete,
        )

    def __len__(self) -> int:
        """Number of packed records."""
        return len(self.pcs)

    def records(self) -> Iterator[Record]:
        """Iterate the packed records as plain ``(pc, vaddr, flags, gap)``."""
        return zip(self.pcs, self.vaddrs, self.flags, self.gaps)

    def replay(self) -> "PackedWorkload":
        """Wrap this pack as a restartable :class:`Workload`."""
        return PackedWorkload(self)

    def nbytes(self) -> int:
        """Approximate buffer size in bytes (the four columns)."""
        return sum(col.itemsize * len(col)
                   for col in (self.pcs, self.vaddrs, self.flags, self.gaps))

    def columns(self):
        """Zero-copy numpy views over the four columns.

        Works over both locally packed ``array`` columns and the
        ``memoryview`` columns of an shm/file-attached pack — anything
        exposing the buffer protocol.  Returned as
        ``(pcs u64, vaddrs u64, flags u16, gaps u32)``, cached per pack.
        """
        if self._views is None:
            import numpy as np

            self._views = (
                np.frombuffer(self.pcs, dtype=np.uint64),
                np.frombuffer(self.vaddrs, dtype=np.uint64),
                np.frombuffer(self.flags, dtype=np.uint16),
                np.frombuffer(self.gaps, dtype=np.uint32),
            )
        return self._views

    def index(self) -> PackIndex:
        """The pack's :class:`PackIndex` (built once, cached).

        shm-attached packs build their own index per process — the derived
        arrays are private to the attaching worker, only the four raw
        columns are shared.
        """
        if self._index is None:
            self._index = PackIndex(self)
        return self._index


class PackedWorkload:
    """A :class:`Workload` replaying a :class:`PackedTrace`.

    Unlike the infinite synthetic generators, the replay is finite: it ends
    with the pack, which covers exactly the (warmup, sim) window the pack was
    built for.  Driving it with a larger window raises the drive loop's
    normal truncation error.
    """

    def __init__(self, packed: PackedTrace):
        self.packed = packed
        self.name = packed.name
        self.suite = packed.suite

    def generate(self) -> Iterator[Record]:
        """Fresh iterator over the packed records (restartable)."""
        return self.packed.records()


def _pack_key(workload: Workload, warmup: int, sim: int) -> tuple:
    """Identity key for the pack cache.

    Registry workloads are identified by (name, suite, seed) — the registry
    builds each exactly once per process and generation is seed-deterministic.
    File-backed workloads key on their path; anything else falls back to the
    object id.  An id-keyed entry only hits while the caller holds the same
    object, and — because CPython recycles ``id()`` as soon as the object is
    collected — it is only *valid* that long too: :func:`get_packed` pins a
    weak reference whose death callback drops the entry, so a recycled id
    can never serve a stale pack (and unreferenceable objects are simply
    not cached).
    """
    seed = getattr(workload, "seed", None)
    path = getattr(workload, "path", None)
    if seed is None and path is None:
        return (id(workload), warmup, sim)
    return (type(workload).__name__, workload.name,
            getattr(workload, "suite", ""), seed, str(path), warmup, sim)


_PACK_CACHE: OrderedDict[tuple, PackedTrace] = OrderedDict()

#: weak references pinning the anonymous (id-keyed) cache entries to their
#: living workload objects; the death callback invalidates the entry before
#: CPython can hand the id to a new allocation
_ANON_REFS: dict[tuple, "weakref.ref[Workload]"] = {}

#: running byte total of the locally cached packs, maintained incrementally
#: on insert/evict/clear so the gauge update is O(1) on the pack hot path
_CACHE_BYTES = 0

#: lazily bound (hits, misses, evictions, shared_hits, bytes-gauge) registry
#: instruments — bound on first use because `repro.workloads` and `repro.obs`
#: import each other's packages (same cycle `log_event` dodges below)
_PACK_METRICS = None


def _pack_metrics():
    global _PACK_METRICS
    if _PACK_METRICS is None:
        from repro.obs.metrics import get_metrics

        reg = get_metrics()
        _PACK_METRICS = (
            reg.counter("pack_cache.hits", "pack-cache lookups served locally"),
            reg.counter("pack_cache.misses", "pack-cache lookups that packed"),
            reg.counter("pack_cache.evictions", "packs evicted by the LRU bound"),
            reg.counter("pack_cache.shared_hits",
                        "lookups served by the shared (shm) provider"),
            reg.gauge("pack_cache.bytes", "resident bytes of locally cached packs"),
        )
    return _PACK_METRICS


def _update_bytes_gauge() -> None:
    """Publish the running byte total (O(1); the total is maintained
    incrementally on insert/evict/clear, never re-summed on the hot path)."""
    _pack_metrics()[4].set(_CACHE_BYTES)

#: consulted by :func:`get_packed` before the local cache; returns a shared
#: (e.g. shm-attached) pack for a key, or None to fall through.  Installed by
#: :mod:`repro.workloads.shm` in grid worker processes.
_SHARED_PROVIDER: Optional[Callable[[tuple], Optional[PackedTrace]]] = None


def install_shared_provider(provider: Optional[Callable[[tuple], Optional[PackedTrace]]]) -> None:
    """Install (or with ``None`` remove) the shared pack provider.

    Provider hits bypass the local LRU entirely: shared packs are owned by
    their publishing process and must not pin duplicate buffers here.
    """
    global _SHARED_PROVIDER
    _SHARED_PROVIDER = provider


def set_pack_cache_capacity(capacity: int) -> int:
    """Resize the process-wide pack cache; returns the previous capacity.

    Shrinking evicts immediately (oldest first, counted as evictions).
    """
    global _CACHE_CAPACITY
    if capacity < 1:
        raise ValueError(f"pack cache capacity must be >= 1, got {capacity}")
    previous = _CACHE_CAPACITY
    _CACHE_CAPACITY = capacity
    if len(_PACK_CACHE) > _CACHE_CAPACITY:
        while len(_PACK_CACHE) > _CACHE_CAPACITY:
            _evict_oldest()
        _update_bytes_gauge()
    return previous


def pack_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current size/capacity (a copy).

    The counters live in the process-wide
    :class:`~repro.obs.metrics.MetricsRegistry` (so grid workers ship them
    back with their chunks); this accessor keeps the historical dict shape.
    """
    hits, misses, evictions, shared, _bytes = _pack_metrics()
    return {
        "hits": int(hits.total()),
        "misses": int(misses.total()),
        "evictions": int(evictions.total()),
        "shared_hits": int(shared.total()),
        "size": len(_PACK_CACHE),
        "capacity": _CACHE_CAPACITY,
    }


def _evict_oldest() -> None:
    global _CACHE_BYTES
    key, packed = _PACK_CACHE.popitem(last=False)
    _CACHE_BYTES -= packed.nbytes()
    # the death callback (if any) checks _ANON_REFS before touching the
    # cache, so popping here fully retires an anonymous entry
    _ANON_REFS.pop(key, None)
    evictions = _pack_metrics()[2]
    evictions.inc()
    # observability: a thrashing cache (grid wider than the capacity) shows
    # up as a steady eviction stream on the repro.obs logger
    from repro.obs import log_event

    log_event(
        "pack-cache-eviction",
        workload=packed.name,
        bytes=packed.nbytes(),
        evictions=int(evictions.total()),
        capacity=_CACHE_CAPACITY,
    )


def _make_anon_reaper(key: tuple) -> Callable[[object], None]:
    """Death callback dropping an id-keyed cache entry with its workload.

    Fires at referent finalisation — before CPython can hand the id to a
    new allocation — so a recycled id can never hit a stale pack.  Guarded
    on ``_ANON_REFS`` because eviction/clear may have retired the entry
    (and possibly re-inserted a new one under the same recycled key) first.
    """
    def _reap(ref: object, key: tuple = key) -> None:
        global _CACHE_BYTES
        if _ANON_REFS.get(key) is not ref:
            return
        del _ANON_REFS[key]
        packed = _PACK_CACHE.pop(key, None)
        if packed is not None:
            _CACHE_BYTES -= packed.nbytes()
            _update_bytes_gauge()
    return _reap


def get_packed(workload: Workload, warmup: int, sim: int, *,
               capacity: Optional[int] = None) -> PackedTrace:
    """Return a (cached) :class:`PackedTrace` covering the given window.

    The cache is process-wide and LRU-bounded (``capacity`` overrides the
    bound for this call and onwards).  In shm-backed grid workers a shared
    provider serves zero-copy attachments first — those never enter the
    local cache.  Without one, each worker process builds its own packs
    (the arrays are picklable, but shipping them per cell would cost more
    than re-packing once per worker).
    """
    if capacity is not None:
        set_pack_cache_capacity(capacity)
    metrics = _pack_metrics()
    key = _pack_key(workload, warmup, sim)
    if _SHARED_PROVIDER is not None:
        packed = _SHARED_PROVIDER(key)
        if packed is not None:
            metrics[3].inc()
            return packed
    packed = _PACK_CACHE.get(key)
    if packed is not None:
        metrics[0].inc()
        _PACK_CACHE.move_to_end(key)
        return packed
    metrics[1].inc()
    from repro.obs.tracing import trace_span

    with trace_span("pack", workload=workload.name, warmup=warmup, sim=sim):
        packed = PackedTrace.from_workload(workload, warmup, sim)
    anonymous = getattr(workload, "seed", None) is None and \
        getattr(workload, "path", None) is None
    if anonymous:
        # id-keyed entries are only valid while the workload object lives:
        # CPython recycles id() after collection, so pin a weak reference
        # whose death callback drops the entry first.  Objects that cannot
        # be weakly referenced are served uncached.
        try:
            _ANON_REFS[key] = weakref.ref(workload, _make_anon_reaper(key))
        except TypeError:
            return packed
    global _CACHE_BYTES
    _PACK_CACHE[key] = packed
    _CACHE_BYTES += packed.nbytes()
    while len(_PACK_CACHE) > _CACHE_CAPACITY:
        _evict_oldest()
    _update_bytes_gauge()
    return packed


def clear_pack_cache() -> None:
    """Drop every cached pack (tests, forked workers, memory pressure).

    Counters survive a clear (they audit process lifetime, not cache
    contents); drops are not counted as evictions.  Forked grid workers
    additionally reset the whole metrics registry
    (:func:`repro.obs.metrics.reset_metrics`) so the parent's warm-up packs
    are not double-counted in merged grid metrics.
    """
    global _CACHE_BYTES
    _PACK_CACHE.clear()
    _ANON_REFS.clear()
    _CACHE_BYTES = 0
    _update_bytes_gauge()
