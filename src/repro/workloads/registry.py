"""Workload registry: the 396-workload set, splits, and 8-core mixes.

Mirrors Section IV-A:

* 218 *seen* workloads (used when designing DRIPPER / running feature
  selection);
* 178 *unseen* workloads (held out; Section V-B8);
* a set of non-memory-intensive workloads (Section V-B9);
* 300 random 8-core mixes drawn from the seen set (Section IV-A2).

Benches run stratified samples of these sets (Python simulation speed);
:func:`stratified_sample` makes the sampling deterministic and
suite-balanced.  ``EXPERIMENTS.md`` records what each bench actually ran.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.workloads.suites import (
    GAP_ALGORITHMS,
    GRAPH_FLAVOURS,
    LIGRA_ALGORITHMS,
    LIGRA_FLAVOURS,
    PARSEC_BENCHMARKS,
    SPEC_BENCHMARKS,
    gkb5,
    graph,
    kernel,
    non_intensive,
    parsec,
    qmm,
    spec,
)
from repro.workloads.synthetic import SyntheticWorkload

#: GKB5 indices in the seen set (101 and 310 appear in Figure 2)
_GKB5_SEEN = (101, 310, 7, 19, 33, 42, 55, 68, 74, 88, 95, 120, 133, 147, 152,
              166, 171, 189, 204, 218, 225, 239, 246, 258)
_GKB5_UNSEEN = (301, 317, 322, 338, 345, 359, 364, 378, 385, 399, 406, 412,
                428, 437, 449, 466)

#: QMM_INT ids in the seen set (13, 365, 859 appear in Figure 2)
_QMM_INT_SEEN = (13, 365, 859) + tuple(range(100, 164, 2))
_QMM_INT_UNSEEN = tuple(range(501, 557, 2))

#: QMM_FP ids (44 appears in Figure 2)
_QMM_FP_SEEN = (44,) + tuple(range(200, 238, 2))
_QMM_FP_UNSEEN = tuple(range(601, 641, 2))


@lru_cache(maxsize=None)
def seen_workloads() -> tuple[SyntheticWorkload, ...]:
    """The 218 seen (development) workloads."""
    workloads: list[SyntheticWorkload] = []
    for benchmark in SPEC_BENCHMARKS:
        for simpoint in range(3):
            workloads.append(spec(benchmark, simpoint))
    for algorithm in GAP_ALGORITHMS:
        for flavour in GRAPH_FLAVOURS:
            workloads.append(graph(algorithm, flavour, "GAP"))
    for algorithm in LIGRA_ALGORITHMS:
        for flavour in LIGRA_FLAVOURS:
            workloads.append(graph(algorithm, flavour, "LIGRA"))
    for benchmark in PARSEC_BENCHMARKS:
        workloads.append(parsec(benchmark))
    for index in _GKB5_SEEN:
        workloads.append(gkb5(index))
    for index in _QMM_INT_SEEN:
        workloads.append(qmm("int", index))
    for index in _QMM_FP_SEEN:
        workloads.append(qmm("fp", index))
    return tuple(workloads)


@lru_cache(maxsize=None)
def unseen_workloads() -> tuple[SyntheticWorkload, ...]:
    """The 178 unseen (held-out) workloads."""
    workloads: list[SyntheticWorkload] = []
    for benchmark in SPEC_BENCHMARKS:
        for simpoint in (3, 4):
            workloads.append(spec(benchmark, simpoint))
    for algorithm in GAP_ALGORITHMS:
        for flavour in GRAPH_FLAVOURS:
            workloads.append(graph(algorithm, flavour, "GAP", seed=1))
    for algorithm in LIGRA_ALGORITHMS:
        for flavour in LIGRA_FLAVOURS:
            workloads.append(graph(algorithm, flavour, "LIGRA", seed=1))
    for benchmark in PARSEC_BENCHMARKS:
        workloads.append(parsec(benchmark, seed=1))
    for index in _GKB5_UNSEEN:
        workloads.append(gkb5(index))
    for index in _QMM_INT_UNSEEN:
        workloads.append(qmm("int", index))
    for index in _QMM_FP_UNSEEN:
        workloads.append(qmm("fp", index))
    return tuple(workloads)


@lru_cache(maxsize=None)
def non_intensive_workloads() -> tuple[SyntheticWorkload, ...]:
    """Non-memory-intensive workloads (LLC MPKI < 1, Section V-B9)."""
    return tuple(non_intensive(i) for i in range(40))


@lru_cache(maxsize=None)
def kernel_workloads() -> tuple[SyntheticWorkload, ...]:
    """Hit-dominated kernel workloads (drive-kernel benchmarking set).

    Not part of the paper's seen/unseen split — these exist to exercise the
    vectorized drive tier's span-skipping on workloads where nearly every
    record is provably uneventful (see ``scripts/bench_hotloop.py``).
    """
    return tuple(kernel(i) for i in range(8))


@lru_cache(maxsize=None)
def motivation_workloads() -> tuple[SyntheticWorkload, ...]:
    """The memory-intensive subset used in the Section II-C motivation study.

    Includes every workload named in the Figure 2 discussion.
    """
    names = [
        # Permit PGC wins (per the paper)
        "astar", "cc.road", "MIS.road", "vips", "qmm_int_365", "gkb5_101",
        "tc.road", "qmm_int_13", "lbm", "libquantum", "bwaves",
        # Discard PGC wins
        "sphinx3", "fotonik3d_s", "bc.web", "pr.web", "qmm_int_859",
        "qmm_fp_44", "gkb5_310", "soplex", "fluidanimate",
        # mixed / neutral
        "mcf", "omnetpp", "gcc", "canneal", "bfs.urand", "PageRank.web",
    ]
    return tuple(by_name(name) for name in names)


@lru_cache(maxsize=None)
def _name_index() -> dict[str, SyntheticWorkload]:
    index: dict[str, SyntheticWorkload] = {}
    for workload in (seen_workloads() + unseen_workloads()
                     + non_intensive_workloads() + kernel_workloads()):
        index[workload.name] = workload
    return index


def by_name(name: str) -> SyntheticWorkload:
    """Look a workload up by its registry name."""
    index = _name_index()
    if name not in index:
        raise KeyError(f"unknown workload {name!r} ({len(index)} registered)")
    return index[name]


def stratified_sample(
    workloads: tuple[SyntheticWorkload, ...], count: int, seed: int = 0
) -> list[SyntheticWorkload]:
    """Deterministic suite-balanced sample of `count` workloads."""
    if count >= len(workloads):
        return list(workloads)
    by_suite: dict[str, list[SyntheticWorkload]] = {}
    for workload in workloads:
        by_suite.setdefault(workload.suite, []).append(workload)
    rng = random.Random(seed)
    suites = sorted(by_suite)
    picked: list[SyntheticWorkload] = []
    quota = {suite: max(1, round(count * len(by_suite[suite]) / len(workloads))) for suite in suites}
    for suite in suites:
        pool = by_suite[suite]
        picked.extend(rng.sample(pool, min(quota[suite], len(pool))))
    rng.shuffle(picked)
    return picked[:count]


def make_mixes(n_mixes: int = 300, mix_size: int = 8, seed: int = 42) -> list[list[SyntheticWorkload]]:
    """Random multi-core mixes drawn from the seen set (Section IV-A2)."""
    rng = random.Random(seed)
    pool = list(seen_workloads())
    return [rng.sample(pool, mix_size) for _ in range(n_mixes)]
