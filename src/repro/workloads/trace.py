"""Trace record format and workload protocol.

A trace is a stream of *records*, each describing one memory instruction plus
the run of non-memory instructions preceding it:

``(pc, vaddr, flags, gap)``

* ``pc`` — instruction pointer of the memory instruction;
* ``vaddr`` — virtual byte address accessed;
* ``flags`` — bitwise OR of :data:`LOAD`, :data:`STORE`,
  :data:`MISPREDICT` (record carries a branch that is *forced* to
  mispredict — legacy knob), :data:`DEPENDS` (address depends on the
  previous load — serialises, the pointer-chasing case), :data:`BRANCH`
  (record carries a conditional branch whose direction is :data:`TAKEN`;
  the core's hashed perceptron predictor decides whether it mispredicts);
* ``gap`` — count of non-memory instructions folded in before this record.

Folding non-memory instructions into ``gap`` keeps Python traces compact
while preserving instruction counts, fetch bandwidth, and ROB occupancy.
"""

from __future__ import annotations

from typing import Iterator, Protocol

Record = tuple[int, int, int, int]

LOAD = 1
STORE = 2
MISPREDICT = 4
DEPENDS = 8
BRANCH = 16
TAKEN = 32


class Workload(Protocol):
    """A restartable, deterministic trace source."""

    name: str
    suite: str

    def generate(self) -> Iterator[Record]:
        """Return a fresh iterator over the trace (same sequence every call)."""
        ...


def instructions_in(record: Record) -> int:
    """Instructions a record accounts for (itself plus its gap)."""
    return 1 + record[3]
