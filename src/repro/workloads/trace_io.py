"""Trace file I/O: the native compact format and ChampSim trace import.

Two on-disk formats are supported:

* **native** — the repo's own compact binary format (one 22-byte
  little-endian record: pc u64, vaddr u64, flags u16, gap u32), with a small
  header carrying a magic, version, and the workload name.  Lets users
  snapshot a synthetic trace, edit or subsample it, and replay it
  bit-identically.
* **ChampSim** — the 64-byte `trace_instr_format` used by ChampSim and the
  CVP-1 traces (ip u64, is_branch u8, branch_taken u8, 2 destination + 4
  source registers u8 each, 2 destination + 4 source memory addresses u64
  each).  :func:`read_champsim` converts each instruction's memory operands
  into native records (loads from source memory, stores to destination
  memory), folding memory-free instructions into the next record's ``gap`` —
  the bridge for running this repo's filters on real traces.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.workloads.trace import BRANCH, LOAD, STORE, TAKEN, Record

_MAGIC = b"RPTR"
_VERSION = 1
_HEADER = struct.Struct("<4sHH32s")  # magic, version, reserved, name
_RECORD = struct.Struct("<QQHI")     # pc, vaddr, flags, gap

_CHAMPSIM = struct.Struct("<Q2B6B6Q")  # ip, is_branch, taken, 6 regs, 6 mem
assert _CHAMPSIM.size == 64


def _open(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


# ---------------------------------------------------------------------------
# native format


def _encode_name(name: str) -> bytes:
    """UTF-8 encode a workload name into the 32-byte header field.

    A naive ``encode()[:32]`` can cut through a multi-byte UTF-8 sequence,
    producing a header the reader cannot decode (UnicodeDecodeError on a
    trace we wrote ourselves).  Back the cut off past any continuation bytes
    so the truncation always lands on a character boundary.
    """
    raw = name.encode()
    if len(raw) > 32:
        cut = 32
        while cut > 0 and (raw[cut] & 0xC0) == 0x80:
            cut -= 1
        raw = raw[:cut]
    return raw.ljust(32, b"\0")


def write_trace(records: Iterable[Record], path: str | Path, *, name: str = "") -> int:
    """Write records to a native trace file; returns the record count."""
    count = 0
    with _open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, _VERSION, 0, _encode_name(name)))
        pack = _RECORD.pack
        for pc, vaddr, flags, gap in records:
            fh.write(pack(pc, vaddr, flags, gap))
            count += 1
    return count


def _read_header(fh, path) -> str:
    """Parse the native header from an open stream; returns the name.

    Closes the stream before raising on a malformed header.
    """
    header = fh.read(_HEADER.size)
    try:
        magic, version, _, raw_name = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a native trace file (bad magic {magic!r})")
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported trace version {version}")
        return raw_name.rstrip(b"\0").decode()
    except Exception:
        fh.close()
        raise


def read_trace_header(path: str | Path) -> str:
    """Read just the workload name from a native trace, closing the file.

    Header-only callers (e.g. :class:`FileWorkload` construction) must use
    this instead of discarding :func:`read_trace`'s iterator: the iterator is
    a generator whose ``with fh:`` body never runs unless iterated, so
    dropping it leaks the open file handle until GC.
    """
    fh = _open(path, "rb")
    name = _read_header(fh, path)
    fh.close()
    return name


def read_trace(path: str | Path) -> tuple[str, Iterator[Record]]:
    """Open a native trace; returns (workload name, record iterator)."""
    fh = _open(path, "rb")
    name = _read_header(fh, path)

    def records() -> Iterator[Record]:
        unpack = _RECORD.unpack
        size = _RECORD.size
        with fh:
            while True:
                chunk = fh.read(size)
                if len(chunk) < size:
                    break
                yield unpack(chunk)

    return name, records()


class FileWorkload:
    """A workload backed by a native trace file (restartable)."""

    def __init__(self, path: str | Path, suite: str = "FILE"):
        self.path = Path(path)
        self.suite = suite
        # header-only read: read_trace would hand back a generator owning an
        # open handle, which construction has no reason to start draining
        name = read_trace_header(self.path)
        self.name = name or self.path.stem

    def generate(self) -> Iterator[Record]:
        """Stream the file's records (restartable: reopens per call)."""
        _, records = read_trace(self.path)
        return records


def snapshot_workload(workload, path: str | Path, instructions: int) -> int:
    """Materialise the first `instructions` instructions of a workload."""
    def bounded() -> Iterator[Record]:
        total = 0
        for record in workload.generate():
            yield record
            total += 1 + record[3]
            if total >= instructions:
                break

    return write_trace(bounded(), path, name=workload.name)


# ---------------------------------------------------------------------------
# ChampSim import


def read_champsim(path: str | Path, *, name: str | None = None) -> "ChampsimWorkload":
    """Wrap a ChampSim/CVP-1 binary trace as a workload."""
    return ChampsimWorkload(path, name=name)


class ChampsimWorkload:
    """A workload backed by a ChampSim `trace_instr_format` file.

    Each trace instruction contributes one native record per memory operand
    (source memory -> loads, destination memory -> stores); instructions
    without memory operands accumulate into the next record's ``gap``.
    Branch direction rides on the first record emitted at or after the
    branch.
    """

    def __init__(self, path: str | Path, *, name: str | None = None, suite: str = "CHAMPSIM"):
        self.path = Path(path)
        self.name = name or self.path.stem
        self.suite = suite

    def generate(self) -> Iterator[Record]:
        """Stream converted records from the ChampSim file."""
        unpack = _CHAMPSIM.unpack
        size = _CHAMPSIM.size
        gap = 0
        pending_branch = 0
        pending_ip = 0
        with _open(self.path, "rb") as fh:
            while True:
                chunk = fh.read(size)
                if len(chunk) < size:
                    break
                fields = unpack(chunk)
                ip, is_branch, taken = fields[0], fields[1], fields[2]
                dst_mem = fields[9:11]
                src_mem = fields[11:15]
                if is_branch:
                    if pending_branch:
                        # two consecutive memory-free branches: emit the first
                        # as a standalone record instead of overwriting it, so
                        # its direction still reaches the branch predictor.
                        # The branch instruction is already counted inside
                        # `gap`, so the record re-spends gap-1 of it.
                        yield pending_ip, 0, pending_branch, gap - 1 if gap else 0
                        gap = 0
                    pending_branch = BRANCH | (TAKEN if taken else 0)
                    pending_ip = ip
                emitted = False
                for vaddr in src_mem:
                    if vaddr:
                        yield ip, vaddr, LOAD | pending_branch, gap
                        gap = 0
                        pending_branch = 0
                        emitted = True
                for vaddr in dst_mem:
                    if vaddr:
                        yield ip, vaddr, STORE | pending_branch, gap
                        gap = 0
                        pending_branch = 0
                        emitted = True
                if not emitted:
                    gap += 1


def convert_champsim(src: str | Path, dst: str | Path, *, max_instructions: int | None = None) -> int:
    """Convert a ChampSim trace to the native format; returns records written."""
    workload = ChampsimWorkload(src)

    def bounded() -> Iterator[Record]:
        total = 0
        for record in workload.generate():
            yield record
            total += 1 + record[3]
            if max_instructions is not None and total >= max_instructions:
                break

    return write_trace(bounded(), dst, name=workload.name)
