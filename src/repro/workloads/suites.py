"""Per-suite synthetic workload builders.

Each builder produces a :class:`~repro.workloads.synthetic.SyntheticWorkload`
whose pattern mix is chosen to land in the same behavioural region as the
suite it stands in for (see DESIGN.md §1 for the substitution argument):

* SPEC — named benchmarks with hand-picked profiles; the workloads named in
  Figure 2 get the page-cross-friendliness the paper reports for them
  (astar friendly, sphinx3/fotonik3d_s hostile, ...);
* GAP / LIGRA — CSR graph traversals, flavoured by graph (road = local =
  friendly, web/twitter/kron = scattered = hostile);
* PARSEC — streaming/mixed parallel kernels;
* GKB5 — phased mixes (Geekbench's sub-test structure);
* QMM — short industrial-style traces across a parameter grid.

All random parameter draws happen *eagerly* at build time so a workload's
``generate()`` yields the identical trace on every replay (the multi-core
methodology replays traces until all cores finish).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.workloads.patterns import (
    Alternating,
    Gather,
    GraphCsr,
    PageTiled,
    Pattern,
    PointerChase,
    Stream,
    Strided,
)
from repro.workloads.synthetic import SyntheticWorkload

#: default phase length for single-phase workloads (cycles forever anyway)
_ONE_PHASE = 1 << 30
_PHASE = 24_000


def bind(cls: type[Pattern], region: int, **kwargs) -> Callable[[], Pattern]:
    """Pattern factory with all parameters bound now (replay determinism)."""
    return lambda: cls(region, **kwargs)


def _jitter(rng: random.Random, value: int, spread: float = 0.25) -> int:
    return max(1, int(value * (1.0 + spread * (2 * rng.random() - 1.0))))


# ---------------------------------------------------------------------------
# SPEC profiles


def _spec_phases(benchmark: str, rng: random.Random):
    """Return (phases, mean_gap) for a SPEC benchmark profile."""
    fp = lambda base: _jitter(rng, base)  # noqa: E731 - evaluated eagerly below

    if benchmark == "astar":
        return [
            (bind(Stream, 0, stride_lines=1, footprint_pages=fp(4096)), _PHASE),
            (bind(PointerChase, 1, footprint_pages=fp(2048)), _PHASE // 2),
        ], 2.5
    if benchmark == "lbm":
        return [(bind(Stream, 0, stride_lines=2, footprint_pages=fp(6144)), _ONE_PHASE)], 6.0
    if benchmark == "libquantum":
        return [(bind(Stream, 0, stride_lines=1, footprint_pages=fp(8192)), _ONE_PHASE)], 5.0
    if benchmark == "milc":
        return [(bind(Strided, 0, stride_lines=44, footprint_pages=fp(6144)), _ONE_PHASE)], 5.5
    if benchmark == "leslie3d":
        return [
            (bind(Stream, 0, stride_lines=3, footprint_pages=fp(4096)), _PHASE),
            (bind(Strided, 1, stride_lines=40, footprint_pages=fp(4096)), _PHASE),
        ], 4.0
    if benchmark == "bwaves":
        return [(bind(Stream, 0, stride_lines=1, footprint_pages=fp(8192)), _ONE_PHASE)], 5.0
    if benchmark == "GemsFDTD":
        return [(bind(Strided, 0, stride_lines=36, footprint_pages=fp(8192)), _ONE_PHASE)], 4.0
    if benchmark == "cactuBSSN":
        return [(bind(Strided, 0, stride_lines=48, footprint_pages=fp(6144)), _ONE_PHASE)], 4.0
    if benchmark == "sphinx3":
        return [(bind(PageTiled, 0, footprint_pages=fp(4096), burst_lines=40), _ONE_PHASE)], 2.5
    if benchmark == "fotonik3d_s":
        return [(bind(PageTiled, 0, footprint_pages=fp(8192), burst_lines=56), _ONE_PHASE)], 2.0
    if benchmark == "soplex":
        return [
            (bind(PageTiled, 0, footprint_pages=fp(4096), burst_lines=24), _PHASE),
            (bind(Alternating, 1, footprint_pages=fp(4096), period=2_000), _PHASE),
        ], 2.5
    if benchmark == "zeusmp":
        return [(bind(PageTiled, 0, footprint_pages=fp(3072), burst_lines=48), _ONE_PHASE)], 3.0
    if benchmark == "wrf":
        return [
            (bind(PageTiled, 0, footprint_pages=fp(4096), burst_lines=32), _PHASE),
            (bind(Stream, 1, stride_lines=1, footprint_pages=fp(2048)), _PHASE // 2),
        ], 3.0
    if benchmark == "mcf":
        return [(bind(PointerChase, 0, footprint_pages=fp(12288)), _ONE_PHASE)], 2.0
    if benchmark == "omnetpp":
        return [(bind(Gather, 0, footprint_pages=fp(8192)), _ONE_PHASE)], 2.5
    if benchmark == "xalancbmk":
        return [
            (bind(Gather, 0, footprint_pages=fp(4096)), _PHASE),
            (bind(Alternating, 1, footprint_pages=fp(2048), period=1_500, burst_lines=32), _PHASE),
        ], 3.0
    if benchmark == "gcc":
        return [
            (bind(Stream, 0, stride_lines=1, footprint_pages=fp(1024)), _PHASE // 2),
            (bind(Gather, 1, footprint_pages=fp(4096)), _PHASE),
            (bind(PageTiled, 2, footprint_pages=fp(2048), burst_lines=32), _PHASE),
        ], 3.5
    if benchmark == "perlbench":
        return [
            (bind(Gather, 0, footprint_pages=fp(2048)), _PHASE),
            (bind(Stream, 1, stride_lines=1, footprint_pages=fp(1024)), _PHASE // 2),
        ], 4.0
    if benchmark == "bzip2":
        return [
            (bind(Stream, 0, stride_lines=1, footprint_pages=fp(2048)), _PHASE),
            (bind(Gather, 1, footprint_pages=fp(2048)), _PHASE // 2),
        ], 3.0
    if benchmark == "gobmk":
        return [(bind(Gather, 0, footprint_pages=fp(1024)), _ONE_PHASE)], 5.0
    if benchmark == "hmmer":
        return [(bind(Stream, 0, stride_lines=1, footprint_pages=fp(96)), _ONE_PHASE)], 4.0
    if benchmark == "sjeng":
        return [(bind(Gather, 0, footprint_pages=fp(2048)), _ONE_PHASE)], 4.5
    if benchmark == "roms":
        return [(bind(Stream, 0, stride_lines=2, footprint_pages=fp(6144)), _ONE_PHASE)], 6.0
    if benchmark == "xz":
        return [
            (bind(PointerChase, 0, footprint_pages=fp(6144)), _PHASE),
            (bind(Stream, 1, stride_lines=1, footprint_pages=fp(2048)), _PHASE // 2),
        ], 3.0
    if benchmark == "mcf_s17":
        return [(bind(PointerChase, 0, footprint_pages=fp(16384)), _ONE_PHASE)], 2.0
    raise KeyError(f"unknown SPEC benchmark {benchmark!r}; known: {SPEC_BENCHMARKS}")


SPEC_BENCHMARKS = (
    "astar", "lbm", "libquantum", "milc", "leslie3d", "bwaves", "GemsFDTD",
    "cactuBSSN", "sphinx3", "fotonik3d_s", "soplex", "zeusmp", "wrf", "mcf",
    "omnetpp", "xalancbmk", "gcc", "perlbench", "bzip2", "gobmk", "hmmer",
    "sjeng", "roms", "xz", "mcf_s17",
)


def _stable_hash(text: str) -> int:
    """Deterministic across interpreter runs (unlike builtin hash)."""
    h = 0
    for ch in text:
        h = (h * 131 + ord(ch)) & 0xFFFFFFFF
    return h


#: control-heavy integer benchmarks get data-dependent branch mixes; the
#: loop-dominated FP/stream benchmarks get predictable back-edges
_SPEC_INT_BENCHMARKS = frozenset((
    "astar", "mcf", "mcf_s17", "omnetpp", "xalancbmk", "gcc", "perlbench",
    "bzip2", "gobmk", "hmmer", "sjeng", "xz",
))


def spec(benchmark: str, simpoint: int = 0) -> SyntheticWorkload:
    """A SPEC-like workload; `simpoint` > 0 gives an alternate trace slice."""
    rng = random.Random(_stable_hash(benchmark) + simpoint * 7919)
    phases, gap = _spec_phases(benchmark, rng)
    code = 48 if gap < 3.0 else 160
    if benchmark in _SPEC_INT_BENCHMARKS:
        branches = ("mixed", rng.choice((8, 16, 24)), rng.choice((0.55, 0.65)))
    else:
        branches = ("loop", rng.choice((32, 64, 128)))
    name = benchmark if simpoint == 0 else f"{benchmark}.{simpoint}"
    return SyntheticWorkload(
        name, "SPEC", simpoint * 7919 + _stable_hash(benchmark), phases,
        mean_gap=gap, code_lines=code, branch_profile=branches,
    )


# ---------------------------------------------------------------------------
# GAP / LIGRA graph workloads

GAP_ALGORITHMS = ("bc", "bfs", "cc", "pr", "sssp", "tc")
GRAPH_FLAVOURS = ("road", "web", "twitter", "urand", "kron")
LIGRA_ALGORITHMS = ("BFS", "BC", "Components", "PageRank", "Radii", "Triangle", "MIS", "KCore")
LIGRA_FLAVOURS = ("road", "web", "urand")

#: per-algorithm (mean_gap, store_fraction, nodes_pages) adjustments
_GRAPH_TUNING = {
    "bc": (2.5, 0.10, 6144), "bfs": (2.0, 0.08, 8192), "cc": (2.5, 0.15, 6144),
    "pr": (2.0, 0.20, 8192), "sssp": (2.5, 0.12, 6144), "tc": (3.0, 0.05, 4096),
    "BFS": (2.0, 0.08, 6144), "BC": (2.5, 0.10, 6144), "Components": (2.5, 0.15, 6144),
    "PageRank": (2.0, 0.20, 8192), "Radii": (2.5, 0.10, 4096),
    "Triangle": (3.0, 0.05, 4096), "MIS": (2.0, 0.10, 4096), "KCore": (2.5, 0.12, 6144),
}


def graph(algorithm: str, flavour: str, suite: str, seed: int = 0) -> SyntheticWorkload:
    """A GAP/LIGRA graph-analytics workload."""
    gap, stores, nodes = _GRAPH_TUNING[algorithm]
    name = f"{algorithm}.{flavour}"
    if seed:
        name = f"{name}.{seed}"
    rng = random.Random(_stable_hash(name) + seed)
    nodes = _jitter(rng, nodes, 0.2)
    return SyntheticWorkload(
        name,
        suite,
        seed * 104729 + _stable_hash(name),
        [(bind(GraphCsr, 0, flavour=flavour, nodes_pages=nodes), _ONE_PHASE)],
        mean_gap=gap,
        store_fraction=stores,
        code_lines=64,
    )


# ---------------------------------------------------------------------------
# PARSEC

PARSEC_BENCHMARKS = (
    "bodytrack", "canneal", "dedup", "facesim", "ferret",
    "fluidanimate", "freqmine", "raytrace", "streamcluster", "vips",
)


def parsec(benchmark: str, seed: int = 0) -> SyntheticWorkload:
    """A PARSEC-like workload (seed > 0 gives a held-out variant)."""
    rng = random.Random(_stable_hash(benchmark) + seed * 6271)
    fp = lambda base: _jitter(rng, base)  # noqa: E731

    profiles: dict[str, tuple[list, float]] = {
        "vips": ([(bind(Stream, 0, stride_lines=1, footprint_pages=fp(4096)), _ONE_PHASE)], 4.5),
        "streamcluster": ([
            (bind(Stream, 0, stride_lines=1, footprint_pages=fp(6144)), _PHASE),
            (bind(Gather, 1, footprint_pages=fp(2048)), _PHASE // 2),
        ], 4.0),
        "canneal": ([(bind(Gather, 0, footprint_pages=fp(12288)), _ONE_PHASE)], 2.5),
        "facesim": ([(bind(Strided, 0, stride_lines=40, footprint_pages=fp(6144)), _ONE_PHASE)], 4.0),
        "fluidanimate": ([(bind(PageTiled, 0, footprint_pages=fp(4096), burst_lines=32), _ONE_PHASE)], 3.0),
        "dedup": ([
            (bind(Stream, 0, stride_lines=1, footprint_pages=fp(3072)), _PHASE),
            (bind(PageTiled, 1, footprint_pages=fp(2048), burst_lines=24), _PHASE),
        ], 3.0),
        "ferret": ([
            (bind(Gather, 0, footprint_pages=fp(4096)), _PHASE),
            (bind(Stream, 1, stride_lines=2, footprint_pages=fp(2048)), _PHASE // 2),
        ], 3.0),
        "bodytrack": ([(bind(PageTiled, 0, footprint_pages=fp(2048), burst_lines=40), _ONE_PHASE)], 3.5),
        "freqmine": ([(bind(PointerChase, 0, footprint_pages=fp(6144)), _ONE_PHASE)], 3.0),
        "raytrace": ([(bind(Gather, 0, footprint_pages=fp(8192)), _ONE_PHASE)], 3.0),
    }
    phases, gap = profiles[benchmark]
    name = benchmark if seed == 0 else f"{benchmark}.{seed}"
    return SyntheticWorkload(name, "PARSEC", seed * 6271 + _stable_hash(benchmark), phases, mean_gap=gap)


# ---------------------------------------------------------------------------
# Geekbench (GKB5): phased mixes

#: Figure-2-named workloads keep their paper-reported page-cross sign:
#: gkb5_101 friendly (streaming sub-tests), gkb5_310 hostile (tiled sub-tests)
_GKB5_FORCED: dict[int, str] = {101: "friendly", 310: "hostile"}
_QMM_FORCED: dict[tuple[str, int], str] = {
    ("int", 13): "friendly", ("int", 365): "friendly",
    ("int", 859): "hostile", ("fp", 44): "hostile",
}


def gkb5(index: int, seed: int = 0) -> SyntheticWorkload:
    """A Geekbench-like phased workload; `index` seeds the sub-test mix."""
    rng = random.Random(index * 31 + seed * 17 + 5)
    forced = _GKB5_FORCED.get(index)
    if forced == "friendly":
        phases = [
            (bind(Stream, 0, stride_lines=1, footprint_pages=_jitter(rng, 5120)), 28_000),
            (bind(Strided, 1, stride_lines=rng.choice((36, 44)), footprint_pages=_jitter(rng, 4096)), 20_000),
        ]
        return SyntheticWorkload(
            f"gkb5_{index}" if seed == 0 else f"gkb5_{index}.{seed}",
            "GKB5", index * 131 + seed * 31 + 7, phases,
            mean_gap=5.5, code_lines=256, mispredict_rate=0.002,
        )
    if forced == "hostile":
        phases = [
            (bind(PageTiled, 0, footprint_pages=_jitter(rng, 4096), burst_lines=48), 28_000),
            (bind(Gather, 1, footprint_pages=_jitter(rng, 4096)), 16_000),
        ]
        return SyntheticWorkload(
            f"gkb5_{index}" if seed == 0 else f"gkb5_{index}.{seed}",
            "GKB5", index * 131 + seed * 31 + 7, phases,
            mean_gap=2.5, code_lines=512, mispredict_rate=0.004,
        )
    phases = []
    n_phases = rng.choice((2, 3, 3, 4))
    for i in range(n_phases):
        kind = rng.randrange(6)
        if kind == 5:
            factory = bind(Alternating, i, footprint_pages=_jitter(rng, 3072),
                           period=rng.choice((1_500, 2_500)))
        elif kind == 0:
            factory = bind(Stream, i, stride_lines=rng.choice((1, 1, 2, 4)), footprint_pages=_jitter(rng, 3072))
        elif kind == 1:
            factory = bind(PageTiled, i, footprint_pages=_jitter(rng, 3072), burst_lines=rng.choice((24, 40, 56)))
        elif kind == 2:
            factory = bind(Gather, i, footprint_pages=_jitter(rng, 4096))
        elif kind == 3:
            factory = bind(Strided, i, stride_lines=rng.choice((36, 40, 44, 48)), footprint_pages=_jitter(rng, 4096))
        else:
            factory = bind(PointerChase, i, footprint_pages=_jitter(rng, 6144))
        phases.append((factory, rng.choice((12_000, 20_000, 32_000))))
    return SyntheticWorkload(
        f"gkb5_{index}" if seed == 0 else f"gkb5_{index}.{seed}",
        "GKB5",
        index * 131 + seed * 31 + 7,
        phases,
        mean_gap=rng.choice((2.5, 3.5, 4.5)),
        code_lines=rng.choice((48, 256, 1024, 2048)),
        branch_profile=rng.choice((("loop", 32), ("mixed", 16, 0.65), ("biased", 0.92))),
    )


# ---------------------------------------------------------------------------
# Qualcomm CVP-1 style (QMM_INT / QMM_FP): short industrial traces

def qmm(kind: str, index: int) -> SyntheticWorkload:
    """A Qualcomm-like short trace; `kind` is 'int' or 'fp'."""
    if kind not in ("int", "fp"):
        raise ValueError(f"kind must be 'int' or 'fp', got {kind!r}")
    rng = random.Random(index * 977 + (11 if kind == "int" else 23))
    forced = _QMM_FORCED.get((kind, index))
    if forced == "friendly":
        phases = [(bind(Stream, 0, stride_lines=1, footprint_pages=_jitter(rng, 4096)), 16_000)]
        return SyntheticWorkload(
            f"qmm_{kind}_{index}", f"QMM_{kind.upper()}", index * 509 + 3, phases,
            mean_gap=5.5, code_lines=256, mispredict_rate=0.005,
        )
    if forced == "hostile":
        phases = [(bind(PageTiled, 0, footprint_pages=_jitter(rng, 4096), burst_lines=rng.choice((40, 56))), 16_000)]
        return SyntheticWorkload(
            f"qmm_{kind}_{index}", f"QMM_{kind.upper()}", index * 509 + 3, phases,
            mean_gap=2.0, code_lines=512, mispredict_rate=0.008,
        )
    phases = []
    n_phases = rng.choice((1, 2, 2))
    for i in range(n_phases):
        if kind == "int":
            choice = rng.randrange(5)
            if choice == 4:
                factory = bind(Alternating, i, footprint_pages=_jitter(rng, 3072),
                               period=rng.choice((1_000, 2_000)))
            elif choice == 0:
                factory = bind(Gather, i, footprint_pages=_jitter(rng, 4096))
            elif choice == 1:
                factory = bind(PointerChase, i, footprint_pages=_jitter(rng, 4096))
            elif choice == 2:
                factory = bind(PageTiled, i, footprint_pages=_jitter(rng, 3072), burst_lines=rng.choice((16, 32, 48)))
            else:
                factory = bind(Stream, i, stride_lines=1, footprint_pages=_jitter(rng, 3072))
        else:
            choice = rng.randrange(3)
            if choice == 0:
                factory = bind(Stream, i, stride_lines=rng.choice((1, 2, 4)), footprint_pages=_jitter(rng, 5120))
            elif choice == 1:
                factory = bind(Strided, i, stride_lines=rng.choice((36, 44, 48)), footprint_pages=_jitter(rng, 5120))
            else:
                factory = bind(PageTiled, i, footprint_pages=_jitter(rng, 4096), burst_lines=rng.choice((40, 56)))
        phases.append((factory, rng.choice((8_000, 16_000))))
    if kind == "int":
        gap = rng.choice((2.0, 3.0, 4.0))
        branches = ("mixed", rng.choice((6, 8, 12)), rng.choice((0.6, 0.7)))
    else:
        gap = rng.choice((3.5, 4.0, 4.5))
        branches = ("loop", rng.choice((64, 128)))
    return SyntheticWorkload(
        f"qmm_{kind}_{index}",
        f"QMM_{kind.upper()}",
        index * 509 + 3,
        phases,
        mean_gap=gap,
        code_lines=rng.choice((48, 512, 1536)),
        branch_profile=branches,
    )


# ---------------------------------------------------------------------------
# non-intensive workloads (LLC MPKI < 1): small footprints, sparse memory ops

def kernel(index: int) -> SyntheticWorkload:
    """A hit-dominated kernel workload (the vectorized tier's home turf).

    L1-resident footprints like the CALM set, but with *small* gaps (the
    CALM mean gaps of 10-18 draw gap >= 16 on ~a quarter of records, each
    of which triggers straight-line I-fetch and so bounds an uneventful
    span) and no forced mispredicts.  Every fourth workload carries a loop
    branch profile — branches on every record — as the event-dense
    counterpoint for the differential seams.
    """
    kind = index % 3
    if kind == 0:
        factory = bind(Stream, 0, stride_lines=1,
                       footprint_pages=6 if index % 2 else 8)
    elif kind == 1:
        factory = bind(PageTiled, 0, footprint_pages=4, burst_lines=32)
    else:
        factory = bind(Gather, 0, footprint_pages=2)
    branches = ("loop", 32 if index % 8 < 4 else 64) if index % 4 == 3 else None
    return SyntheticWorkload(
        f"hot_{index}",
        "KERNEL",
        index * 577 + 29,
        [(factory, _ONE_PHASE)],
        mean_gap=2.0 if index % 2 else 3.0,
        code_lines=32 if kind == 0 else 48,
        mispredict_rate=0.0,
        branch_profile=branches,
    )


def non_intensive(index: int) -> SyntheticWorkload:
    """A non-memory-intensive workload (LLC MPKI ~ 0; Section V-B9)."""
    rng = random.Random(index * 397 + 1)
    kind = rng.randrange(3)
    # footprints stay inside the L1D (768 lines) so all cache levels hit and
    # prefetching has nothing to win: LLC MPKI ~ 0 and IPC ~ unchanged
    if kind == 0:
        factory = bind(Stream, 0, stride_lines=1, footprint_pages=rng.choice((4, 6, 8)))
    elif kind == 1:
        # random gathers fill their footprint slowly (coupon collector), so
        # keep it tiny or cold misses bleed past warm-up
        factory = bind(Gather, 0, footprint_pages=2)
    else:
        factory = bind(PageTiled, 0, footprint_pages=rng.choice((2, 4)), burst_lines=32)
    return SyntheticWorkload(
        f"calm_{index}",
        "CALM",
        index * 61 + 13,
        [(factory, _ONE_PHASE)],
        mean_gap=rng.choice((10.0, 14.0, 18.0)),
        code_lines=rng.choice((32, 64)),
    )
