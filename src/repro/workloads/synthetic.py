"""Synthetic workload assembly: phases, intensity, code footprint, branches.

A :class:`SyntheticWorkload` stitches pattern phases into an infinite,
deterministic trace.  Knobs:

* ``phases`` — list of (pattern factory, phase length in instructions); the
  list cycles forever, which is how phase-changing behaviour (exercising the
  adaptive thresholding scheme) is produced;
* ``mean_gap`` — average non-memory instructions per memory instruction
  (memory intensity: small gap = intensive, large gap = non-intensive);
* ``store_fraction`` — fraction of memory records that are stores;
* ``code_lines`` — instruction-footprint in cache lines; the PC walks a loop
  of this size, so large values create L1I pressure (the adaptive scheme's
  L1I-MPKI heuristic);
* ``mispredict_rate`` — probability a record carries a *forced* mispredict
  (legacy knob, kept for workloads without a branch profile);
* ``branch_profile`` — when set, every record carries a conditional branch
  whose direction follows the profile and is predicted by the core's hashed
  perceptron predictor: ``("loop", k)`` (taken k-1 of k, classic loop
  back-edge), ``("biased", p)`` (independently taken with probability p),
  ``("mixed", k, p)`` (loop back-edges interleaved with data-dependent
  biased branches).
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.vm.address import LINE_SHIFT
from repro.workloads.patterns import Pattern
from repro.workloads.trace import BRANCH, DEPENDS, LOAD, MISPREDICT, STORE, TAKEN, Record

#: code region base (separate from all data regions)
_CODE_BASE = 1 << 36

PatternFactory = Callable[[], Pattern]


class SyntheticWorkload:
    """A deterministic, restartable synthetic trace."""

    def __init__(
        self,
        name: str,
        suite: str,
        seed: int,
        phases: list[tuple[PatternFactory, int]],
        *,
        mean_gap: float = 3.0,
        store_fraction: float = 0.12,
        code_lines: int = 48,
        mispredict_rate: float = 0.004,
        branch_profile: tuple | None = None,
        pcs_per_pattern: int = 4,
    ):
        if not phases:
            raise ValueError("a workload needs at least one phase")
        if branch_profile is not None and branch_profile[0] not in ("loop", "biased", "mixed"):
            raise ValueError(f"unknown branch profile {branch_profile!r}")
        self.name = name
        self.suite = suite
        self.seed = seed
        self.phases = phases
        self.mean_gap = mean_gap
        self.store_fraction = store_fraction
        self.code_lines = code_lines
        self.mispredict_rate = mispredict_rate
        self.branch_profile = branch_profile
        self.pcs_per_pattern = pcs_per_pattern

    def generate(self) -> Iterator[Record]:
        """Yield the trace (identical sequence on every call)."""
        rng = random.Random(self.seed)
        patterns = [factory() for factory, _ in self.phases]
        lengths = [length for _, length in self.phases]
        # Load PCs are *stable* per phase (per-IP prefetcher state depends on
        # it) and spread across the code footprint so that walking them
        # exercises the L1I proportionally to ``code_lines``.
        spacing = max(1, self.code_lines // max(1, self.pcs_per_pattern))
        pc_sets = [
            [
                _CODE_BASE
                + (i << 24)
                + ((j * spacing % max(1, self.code_lines)) << LINE_SHIFT)
                + 4 * j
                for j in range(self.pcs_per_pattern)
            ]
            for i in range(len(patterns))
        ]
        gap_hi = max(1, int(2 * self.mean_gap))
        profile = self.branch_profile
        loop_counter = 0
        phase_idx = 0
        instructions_in_phase = 0
        while True:
            pattern = patterns[phase_idx]
            pcs = pc_sets[phase_idx]
            vaddr, depends, stream_id = pattern.next_access(rng)
            gap = rng.randrange(gap_hi + 1) if gap_hi else 0
            flags = STORE if rng.random() < self.store_fraction else LOAD
            if depends:
                flags |= DEPENDS
            if profile is not None:
                if profile[0] == "loop":
                    loop_counter += 1
                    taken = loop_counter % profile[1] != 0
                elif profile[0] == "biased":
                    taken = rng.random() < profile[1]
                else:  # mixed: loop back-edge or data-dependent branch
                    if rng.random() < 0.7:
                        loop_counter += 1
                        taken = loop_counter % profile[1] != 0
                    else:
                        taken = rng.random() < profile[2]
                flags |= BRANCH | (TAKEN if taken else 0)
            elif rng.random() < self.mispredict_rate:
                flags |= MISPREDICT
            # separate PC groups per logical stream, unrolled within a group
            half = max(1, len(pcs) // 2)
            if stream_id == 0:
                pc = pcs[(vaddr >> LINE_SHIFT) % half]
            else:
                pc = pcs[half + (vaddr >> LINE_SHIFT) % (len(pcs) - half)]
            yield pc, vaddr, flags, gap
            instructions_in_phase += 1 + gap
            if instructions_in_phase >= lengths[phase_idx]:
                instructions_in_phase = 0
                phase_idx = (phase_idx + 1) % len(patterns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticWorkload({self.name!r}, suite={self.suite!r}, seed={self.seed})"
